# Empty dependencies file for bench_fig11_gindex_agg.
# This may be replaced when dependencies are built.
