# Empty dependencies file for bench_fig3a_dataset_size.
# This may be replaced when dependencies are built.
