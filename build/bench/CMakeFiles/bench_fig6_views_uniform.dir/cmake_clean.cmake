file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_views_uniform.dir/bench_fig6_views_uniform.cc.o"
  "CMakeFiles/bench_fig6_views_uniform.dir/bench_fig6_views_uniform.cc.o.d"
  "bench_fig6_views_uniform"
  "bench_fig6_views_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_views_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
