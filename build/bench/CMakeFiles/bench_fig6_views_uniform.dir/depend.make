# Empty dependencies file for bench_fig6_views_uniform.
# This may be replaced when dependencies are built.
