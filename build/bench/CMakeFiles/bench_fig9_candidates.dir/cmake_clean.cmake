file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_candidates.dir/bench_fig9_candidates.cc.o"
  "CMakeFiles/bench_fig9_candidates.dir/bench_fig9_candidates.cc.o.d"
  "bench_fig9_candidates"
  "bench_fig9_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
