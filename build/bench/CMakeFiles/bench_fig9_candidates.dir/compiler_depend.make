# Empty compiler generated dependencies file for bench_fig9_candidates.
# This may be replaced when dependencies are built.
