file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_agg_views.dir/bench_fig7_agg_views.cc.o"
  "CMakeFiles/bench_fig7_agg_views.dir/bench_fig7_agg_views.cc.o.d"
  "bench_fig7_agg_views"
  "bench_fig7_agg_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_agg_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
