# Empty dependencies file for bench_fig3c_density.
# This may be replaced when dependencies are built.
