# Empty dependencies file for bench_fig3b_query_size.
# This may be replaced when dependencies are built.
