# Empty compiler generated dependencies file for bench_fig8_zipf.
# This may be replaced when dependencies are built.
