file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_zipf.dir/bench_fig8_zipf.cc.o"
  "CMakeFiles/bench_fig8_zipf.dir/bench_fig8_zipf.cc.o.d"
  "bench_fig8_zipf"
  "bench_fig8_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
