# Empty dependencies file for bench_fig5_edge_domain.
# This may be replaced when dependencies are built.
