file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_edge_domain.dir/bench_fig5_edge_domain.cc.o"
  "CMakeFiles/bench_fig5_edge_domain.dir/bench_fig5_edge_domain.cc.o.d"
  "bench_fig5_edge_domain"
  "bench_fig5_edge_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_edge_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
