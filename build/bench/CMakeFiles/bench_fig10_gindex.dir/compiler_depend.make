# Empty compiler generated dependencies file for bench_fig10_gindex.
# This may be replaced when dependencies are built.
