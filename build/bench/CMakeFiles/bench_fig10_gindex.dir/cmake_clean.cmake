file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gindex.dir/bench_fig10_gindex.cc.o"
  "CMakeFiles/bench_fig10_gindex.dir/bench_fig10_gindex.cc.o.d"
  "bench_fig10_gindex"
  "bench_fig10_gindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
