# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scm_delivery "/root/repo/build/examples/scm_delivery")
set_tests_properties(example_scm_delivery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_order_tracking "/root/repo/build/examples/order_tracking")
set_tests_properties(example_order_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_monitoring "/root/repo/build/examples/network_monitoring")
set_tests_properties(example_network_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shell "sh" "-c" "printf 'load /root/repo/examples/sample_traces.txt\\nseal\\nquery [1,2] AND NOT [3,4]\\nquery SUM [1,2,3]\\nautoviews 4\\ndump\\nstats\\nquit\\n' | /root/repo/build/examples/colgraph_shell")
set_tests_properties(example_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
