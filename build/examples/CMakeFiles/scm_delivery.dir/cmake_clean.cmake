file(REMOVE_RECURSE
  "CMakeFiles/scm_delivery.dir/scm_delivery.cpp.o"
  "CMakeFiles/scm_delivery.dir/scm_delivery.cpp.o.d"
  "scm_delivery"
  "scm_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scm_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
