# Empty compiler generated dependencies file for scm_delivery.
# This may be replaced when dependencies are built.
