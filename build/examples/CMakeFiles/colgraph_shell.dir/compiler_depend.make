# Empty compiler generated dependencies file for colgraph_shell.
# This may be replaced when dependencies are built.
