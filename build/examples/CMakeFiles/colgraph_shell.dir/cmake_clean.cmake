file(REMOVE_RECURSE
  "CMakeFiles/colgraph_shell.dir/colgraph_shell.cpp.o"
  "CMakeFiles/colgraph_shell.dir/colgraph_shell.cpp.o.d"
  "colgraph_shell"
  "colgraph_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colgraph_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
