file(REMOVE_RECURSE
  "CMakeFiles/order_tracking.dir/order_tracking.cpp.o"
  "CMakeFiles/order_tracking.dir/order_tracking.cpp.o.d"
  "order_tracking"
  "order_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
