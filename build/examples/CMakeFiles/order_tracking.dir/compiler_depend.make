# Empty compiler generated dependencies file for order_tracking.
# This may be replaced when dependencies are built.
