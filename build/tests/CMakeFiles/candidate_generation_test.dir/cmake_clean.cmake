file(REMOVE_RECURSE
  "CMakeFiles/candidate_generation_test.dir/candidate_generation_test.cc.o"
  "CMakeFiles/candidate_generation_test.dir/candidate_generation_test.cc.o.d"
  "candidate_generation_test"
  "candidate_generation_test.pdb"
  "candidate_generation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
