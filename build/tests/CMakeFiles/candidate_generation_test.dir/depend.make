# Empty dependencies file for candidate_generation_test.
# This may be replaced when dependencies are built.
