file(REMOVE_RECURSE
  "CMakeFiles/ewah_bitmap_test.dir/ewah_bitmap_test.cc.o"
  "CMakeFiles/ewah_bitmap_test.dir/ewah_bitmap_test.cc.o.d"
  "ewah_bitmap_test"
  "ewah_bitmap_test.pdb"
  "ewah_bitmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ewah_bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
