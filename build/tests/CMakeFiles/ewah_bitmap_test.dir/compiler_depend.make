# Empty compiler generated dependencies file for ewah_bitmap_test.
# This may be replaced when dependencies are built.
