file(REMOVE_RECURSE
  "CMakeFiles/engine_io_test.dir/engine_io_test.cc.o"
  "CMakeFiles/engine_io_test.dir/engine_io_test.cc.o.d"
  "engine_io_test"
  "engine_io_test.pdb"
  "engine_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
