# Empty dependencies file for engine_io_test.
# This may be replaced when dependencies are built.
