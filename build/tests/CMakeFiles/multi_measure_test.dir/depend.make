# Empty dependencies file for multi_measure_test.
# This may be replaced when dependencies are built.
