file(REMOVE_RECURSE
  "CMakeFiles/multi_measure_test.dir/multi_measure_test.cc.o"
  "CMakeFiles/multi_measure_test.dir/multi_measure_test.cc.o.d"
  "multi_measure_test"
  "multi_measure_test.pdb"
  "multi_measure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_measure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
