file(REMOVE_RECURSE
  "CMakeFiles/open_path_test.dir/open_path_test.cc.o"
  "CMakeFiles/open_path_test.dir/open_path_test.cc.o.d"
  "open_path_test"
  "open_path_test.pdb"
  "open_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
