# Empty compiler generated dependencies file for open_path_test.
# This may be replaced when dependencies are built.
