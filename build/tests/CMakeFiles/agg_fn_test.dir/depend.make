# Empty dependencies file for agg_fn_test.
# This may be replaced when dependencies are built.
