file(REMOVE_RECURSE
  "CMakeFiles/agg_fn_test.dir/agg_fn_test.cc.o"
  "CMakeFiles/agg_fn_test.dir/agg_fn_test.cc.o.d"
  "agg_fn_test"
  "agg_fn_test.pdb"
  "agg_fn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_fn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
