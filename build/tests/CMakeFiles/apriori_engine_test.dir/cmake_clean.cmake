file(REMOVE_RECURSE
  "CMakeFiles/apriori_engine_test.dir/apriori_engine_test.cc.o"
  "CMakeFiles/apriori_engine_test.dir/apriori_engine_test.cc.o.d"
  "apriori_engine_test"
  "apriori_engine_test.pdb"
  "apriori_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apriori_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
