# Empty dependencies file for record_links_test.
# This may be replaced when dependencies are built.
