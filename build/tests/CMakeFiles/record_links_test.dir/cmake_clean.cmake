file(REMOVE_RECURSE
  "CMakeFiles/record_links_test.dir/record_links_test.cc.o"
  "CMakeFiles/record_links_test.dir/record_links_test.cc.o.d"
  "record_links_test"
  "record_links_test.pdb"
  "record_links_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_links_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
