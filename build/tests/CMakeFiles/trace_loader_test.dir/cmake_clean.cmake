file(REMOVE_RECURSE
  "CMakeFiles/trace_loader_test.dir/trace_loader_test.cc.o"
  "CMakeFiles/trace_loader_test.dir/trace_loader_test.cc.o.d"
  "trace_loader_test"
  "trace_loader_test.pdb"
  "trace_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
