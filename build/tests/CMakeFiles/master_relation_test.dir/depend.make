# Empty dependencies file for master_relation_test.
# This may be replaced when dependencies are built.
