file(REMOVE_RECURSE
  "CMakeFiles/master_relation_test.dir/master_relation_test.cc.o"
  "CMakeFiles/master_relation_test.dir/master_relation_test.cc.o.d"
  "master_relation_test"
  "master_relation_test.pdb"
  "master_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
