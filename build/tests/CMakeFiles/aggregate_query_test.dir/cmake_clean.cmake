file(REMOVE_RECURSE
  "CMakeFiles/aggregate_query_test.dir/aggregate_query_test.cc.o"
  "CMakeFiles/aggregate_query_test.dir/aggregate_query_test.cc.o.d"
  "aggregate_query_test"
  "aggregate_query_test.pdb"
  "aggregate_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
