# Empty dependencies file for aggregate_query_test.
# This may be replaced when dependencies are built.
