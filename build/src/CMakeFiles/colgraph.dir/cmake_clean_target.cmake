file(REMOVE_RECURSE
  "libcolgraph.a"
)
