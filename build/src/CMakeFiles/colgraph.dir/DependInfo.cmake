
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/graph_db.cc" "src/CMakeFiles/colgraph.dir/baselines/graph_db.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/baselines/graph_db.cc.o.d"
  "/root/repo/src/baselines/rdf_store.cc" "src/CMakeFiles/colgraph.dir/baselines/rdf_store.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/baselines/rdf_store.cc.o.d"
  "/root/repo/src/baselines/row_store.cc" "src/CMakeFiles/colgraph.dir/baselines/row_store.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/baselines/row_store.cc.o.d"
  "/root/repo/src/bitmap/bitmap.cc" "src/CMakeFiles/colgraph.dir/bitmap/bitmap.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/bitmap/bitmap.cc.o.d"
  "/root/repo/src/bitmap/ewah_bitmap.cc" "src/CMakeFiles/colgraph.dir/bitmap/ewah_bitmap.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/bitmap/ewah_bitmap.cc.o.d"
  "/root/repo/src/columnstore/column.cc" "src/CMakeFiles/colgraph.dir/columnstore/column.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/columnstore/column.cc.o.d"
  "/root/repo/src/columnstore/debug.cc" "src/CMakeFiles/colgraph.dir/columnstore/debug.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/columnstore/debug.cc.o.d"
  "/root/repo/src/columnstore/master_relation.cc" "src/CMakeFiles/colgraph.dir/columnstore/master_relation.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/columnstore/master_relation.cc.o.d"
  "/root/repo/src/columnstore/persistence.cc" "src/CMakeFiles/colgraph.dir/columnstore/persistence.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/columnstore/persistence.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/colgraph.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/core/engine.cc.o.d"
  "/root/repo/src/core/engine_io.cc" "src/CMakeFiles/colgraph.dir/core/engine_io.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/core/engine_io.cc.o.d"
  "/root/repo/src/core/multi_measure.cc" "src/CMakeFiles/colgraph.dir/core/multi_measure.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/core/multi_measure.cc.o.d"
  "/root/repo/src/core/record_links.cc" "src/CMakeFiles/colgraph.dir/core/record_links.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/core/record_links.cc.o.d"
  "/root/repo/src/graph/catalog.cc" "src/CMakeFiles/colgraph.dir/graph/catalog.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/graph/catalog.cc.o.d"
  "/root/repo/src/graph/flatten.cc" "src/CMakeFiles/colgraph.dir/graph/flatten.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/graph/flatten.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/colgraph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/path.cc" "src/CMakeFiles/colgraph.dir/graph/path.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/graph/path.cc.o.d"
  "/root/repo/src/graph/region.cc" "src/CMakeFiles/colgraph.dir/graph/region.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/graph/region.cc.o.d"
  "/root/repo/src/mining/gindex.cc" "src/CMakeFiles/colgraph.dir/mining/gindex.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/mining/gindex.cc.o.d"
  "/root/repo/src/mining/gspan.cc" "src/CMakeFiles/colgraph.dir/mining/gspan.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/mining/gspan.cc.o.d"
  "/root/repo/src/query/aggregate.cc" "src/CMakeFiles/colgraph.dir/query/aggregate.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/query/aggregate.cc.o.d"
  "/root/repo/src/query/engine.cc" "src/CMakeFiles/colgraph.dir/query/engine.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/query/engine.cc.o.d"
  "/root/repo/src/query/expr.cc" "src/CMakeFiles/colgraph.dir/query/expr.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/query/expr.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/colgraph.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/query/parser.cc.o.d"
  "/root/repo/src/query/rewriter.cc" "src/CMakeFiles/colgraph.dir/query/rewriter.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/query/rewriter.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/colgraph.dir/util/random.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/colgraph.dir/util/status.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/colgraph.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/views/aggregate_views.cc" "src/CMakeFiles/colgraph.dir/views/aggregate_views.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/views/aggregate_views.cc.o.d"
  "/root/repo/src/views/apriori.cc" "src/CMakeFiles/colgraph.dir/views/apriori.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/views/apriori.cc.o.d"
  "/root/repo/src/views/candidate_generation.cc" "src/CMakeFiles/colgraph.dir/views/candidate_generation.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/views/candidate_generation.cc.o.d"
  "/root/repo/src/views/materializer.cc" "src/CMakeFiles/colgraph.dir/views/materializer.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/views/materializer.cc.o.d"
  "/root/repo/src/views/set_cover.cc" "src/CMakeFiles/colgraph.dir/views/set_cover.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/views/set_cover.cc.o.d"
  "/root/repo/src/workload/base_graphs.cc" "src/CMakeFiles/colgraph.dir/workload/base_graphs.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/workload/base_graphs.cc.o.d"
  "/root/repo/src/workload/query_generator.cc" "src/CMakeFiles/colgraph.dir/workload/query_generator.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/workload/query_generator.cc.o.d"
  "/root/repo/src/workload/record_generator.cc" "src/CMakeFiles/colgraph.dir/workload/record_generator.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/workload/record_generator.cc.o.d"
  "/root/repo/src/workload/trace_loader.cc" "src/CMakeFiles/colgraph.dir/workload/trace_loader.cc.o" "gcc" "src/CMakeFiles/colgraph.dir/workload/trace_loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
