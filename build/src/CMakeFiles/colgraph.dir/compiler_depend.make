# Empty compiler generated dependencies file for colgraph.
# This may be replaced when dependencies are built.
