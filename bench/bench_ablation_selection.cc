// Ablation: greedy extended-set-cover view selection vs the naive
// "materialize one view per query" policy at equal space budgets. The
// greedy exploits shared subgraphs, so at small budgets it covers more of
// the workload per materialized column.
#include <set>

#include "bench_util.h"
#include "views/candidate_generation.h"
#include "views/materializer.h"
#include "views/set_cover.h"

namespace colgraph::bench {
namespace {

uint64_t BitmapsFetched(const ColGraphEngine& engine, const ViewCatalog& views,
                        const std::vector<GraphQuery>& workload) {
  QueryEngine qe(&engine.relation(), &engine.catalog(), &views);
  engine.stats().Reset();
  for (const GraphQuery& q : workload) {
    const auto resolved = qe.Resolve(q);
    if (!resolved.satisfiable) continue;
    qe.MatchIds(resolved.ids, QueryOptions{}, false);
  }
  return engine.stats().bitmap_columns_fetched;
}

void Run() {
  Title("Ablation — greedy set-cover selection vs one-view-per-query");
  PaperNote(
      "greedy shares subgraph views across queries; per-query "
      "materialization wastes budget on redundant bitmaps");

  RecordGenOptions rec_options;
  const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(20000), 1000,
                                 rec_options, 543);
  ColGraphEngine engine = BuildEngine(ds);
  QueryGenerator qgen(&ds.trunks, &ds.universe, 79);
  QueryGenOptions q_options;
  q_options.min_edges = 8;
  q_options.max_edges = 25;
  // Zipf workload: real sharing for the greedy to exploit.
  const auto workload = qgen.ZipfWorkload(100, 30, 1.2, q_options);

  std::vector<std::vector<EdgeId>> universes;
  for (const GraphQuery& q : workload) {
    const auto resolved = engine.query_engine().Resolve(q);
    if (resolved.satisfiable && !resolved.ids.empty()) {
      universes.push_back(resolved.ids);
    }
  }

  // Greedy candidates + ordering.
  auto candidates = GenerateGraphViewCandidates(universes, {});
  if (!candidates.ok()) std::abort();
  const auto selection = GreedyExtendedSetCover(universes, *candidates, 100);
  std::vector<std::pair<GraphViewDef, size_t>> greedy;
  ViewCatalog scratch;
  for (size_t index : selection.selected) {
    auto col = MaterializeGraphView((*candidates)[index],
                                    &engine.mutable_relation(), &scratch);
    if (!col.ok()) std::abort();
    greedy.emplace_back((*candidates)[index], *col);
  }

  // Naive: one whole-query view per (distinct) query, workload order.
  std::vector<std::pair<GraphViewDef, size_t>> naive;
  {
    std::set<std::vector<EdgeId>> seen;
    for (const auto& u : universes) {
      if (!seen.insert(u).second) continue;
      const GraphViewDef def = GraphViewDef::Make(u);
      auto col =
          MaterializeGraphView(def, &engine.mutable_relation(), &scratch);
      if (!col.ok()) std::abort();
      naive.emplace_back(def, *col);
    }
  }

  Row({"budget (views)", "greedy bitmaps", "naive bitmaps", "no views"});
  const uint64_t base = BitmapsFetched(engine, ViewCatalog{}, workload);
  for (size_t budget : {2u, 5u, 10u, 20u, 50u}) {
    auto trim = [&](const std::vector<std::pair<GraphViewDef, size_t>>& all) {
      ViewCatalog catalog;
      for (size_t i = 0; i < std::min(budget, all.size()); ++i) {
        catalog.AddGraphView(all[i].first, all[i].second);
      }
      return catalog;
    };
    Row({std::to_string(budget),
         std::to_string(BitmapsFetched(engine, trim(greedy), workload)),
         std::to_string(BitmapsFetched(engine, trim(naive), workload)),
         std::to_string(base)});
  }
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
