// Figure 9: number of candidate views as the minimum support minSup grows
// (Section 5.2), for graph views and aggregate views under uniform and
// Zipf query distributions. Expected shape: a sharp drop as minSup first
// rises, with Zipf workloads producing more shared (hence more surviving)
// candidates at higher supports. Candidate generation itself is fast
// (paper: < 1 second; naive enumeration infeasible).
#include <set>

#include "bench_util.h"
#include "graph/path.h"
#include "views/candidate_generation.h"

namespace colgraph::bench {
namespace {

size_t CountGraphViewCandidates(const std::vector<GraphQuery>& workload,
                                const ColGraphEngine& engine,
                                size_t min_support) {
  std::vector<std::vector<EdgeId>> universes;
  for (const GraphQuery& q : workload) {
    const auto resolved = engine.query_engine().Resolve(q);
    if (resolved.satisfiable && !resolved.ids.empty()) {
      universes.push_back(resolved.ids);
    }
  }
  CandidateGenOptions options;
  options.min_support = min_support;
  auto candidates = GenerateGraphViewCandidates(universes, options);
  return candidates.ok() ? candidates->size() : 0;
}

size_t CountAggViewCandidates(const std::vector<GraphQuery>& workload,
                              size_t min_support) {
  std::vector<std::vector<Path>> maximal_paths;
  for (const GraphQuery& q : workload) {
    auto paths = MaximalPaths(q.graph());
    if (paths.ok()) maximal_paths.push_back(std::move(paths).value());
  }
  auto candidate_paths = GenerateAggViewCandidatePaths(maximal_paths);
  if (!candidate_paths.ok()) return 0;
  // Support of a candidate path = number of queries whose graph contains it.
  size_t surviving = 0;
  for (const Path& p : *candidate_paths) {
    size_t support = 0;
    for (const GraphQuery& q : workload) {
      bool contained = true;
      for (const Edge& e : p.Edges()) {
        if (!q.graph().HasEdge(e.from, e.to)) {
          contained = false;
          break;
        }
      }
      support += contained;
      if (support >= min_support) break;
    }
    if (support >= min_support) ++surviving;
  }
  return surviving;
}

void Run() {
  Title("Figure 9 — number of candidate views vs minimum support, NY");
  PaperNote(
      "sharp drop as minSup first increases; generation runs in well under "
      "a second (naive enumeration infeasible)");

  RecordGenOptions rec_options;
  const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(20000), 1000,
                                 rec_options, 111);
  ColGraphEngine engine = BuildEngine(ds);
  QueryGenerator qgen(&ds.trunks, &ds.universe, 59);
  QueryGenOptions q_options;
  q_options.min_edges = 8;
  q_options.max_edges = 25;
  const auto uniform = qgen.UniformWorkload(100, q_options);
  const auto zipf = qgen.ZipfWorkload(100, 30, 1.2, q_options);

  Row({"minSup", "GraphViews-Zipf", "GraphViews-Unif", "AggViews-Zipf",
       "AggViews-Unif"});
  Stopwatch watch;
  for (size_t min_sup_pct : {1u, 2u, 5u, 10u, 20u, 30u, 40u, 50u}) {
    const size_t min_support = std::max<size_t>(1, min_sup_pct);
    Row({std::to_string(min_sup_pct) + "%",
         std::to_string(CountGraphViewCandidates(zipf, engine, min_support)),
         std::to_string(
             CountGraphViewCandidates(uniform, engine, min_support)),
         std::to_string(CountAggViewCandidates(zipf, min_support)),
         std::to_string(CountAggViewCandidates(uniform, min_support))});
  }
  std::printf("  total candidate-generation time: %.3fs (paper: < 1s)\n",
              watch.ElapsedSeconds());
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
