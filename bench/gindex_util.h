// Shared driver for the gIndex comparison experiments (Figures 10-11):
// mines discriminative fragments with gSpan + gIndex over a small record
// sample (the paper could only afford a 1% sample: mining took 1.5h vs
// < 1s for view selection), materializes them as extra bitmap columns, and
// sweeps the space budget against the materialized-view alternative.
#pragma once

#include <unordered_set>

#include "bench_util.h"
#include "mining/gindex.h"
#include "mining/gspan.h"
#include "views/candidate_generation.h"
#include "views/materializer.h"
#include "views/set_cover.h"

namespace colgraph::bench {

/// Mines gIndex fragments from a sample of the dataset's records.
/// \param answer_fraction fraction of the sample drawn from records that
///        answer the workload (1.0 = gIndexQ, 0.2 = gIndexQ+D)
inline std::vector<FrequentFragment> MineFragments(
    const Dataset& ds, ColGraphEngine& engine,
    const std::vector<GraphQuery>& workload, double answer_fraction,
    size_t sample_size, uint64_t seed) {
  // Records answering the workload, balanced per query (a handful of
  // answers for every query so each query's subpath fragments clear the
  // support threshold — the "tailored for these queries" training of the
  // paper's gIndex_Q line).
  Rng rng(seed);
  std::unordered_set<RecordId> chosen;
  const size_t answer_budget =
      static_cast<size_t>(static_cast<double>(sample_size) * answer_fraction);
  const size_t per_query =
      std::max<size_t>(1, answer_budget / std::max<size_t>(1, workload.size()) + 1);
  for (const GraphQuery& q : workload) {
    if (chosen.size() >= answer_budget) break;
    size_t taken = 0;
    engine.Match(q).ForEachSetBit([&](size_t r) {
      if (taken < per_query && chosen.size() < answer_budget) {
        if (chosen.insert(r).second) ++taken;
      }
    });
  }
  std::vector<std::vector<Edge>> sample;
  for (RecordId r : chosen) sample.push_back(ds.records[r].elements);
  while (sample.size() < sample_size) {
    sample.push_back(
        ds.records[rng.Uniform(0, ds.records.size() - 1)].elements);
  }

  GspanOptions gspan;
  gspan.min_support = std::max<size_t>(3, sample_size / 50);
  gspan.max_fragment_edges = 4;
  auto mined = MineFrequentSubgraphs(sample, engine.catalog(), gspan);
  if (!mined.ok()) {
    std::fprintf(stderr, "gSpan failed: %s\n",
                 mined.status().ToString().c_str());
    std::abort();
  }
  // With named entities, containing a fragment == containing all its
  // edges, so the candidate-set shrink ratio of every multi-edge fragment
  // is exactly 1 and gIndex's default gamma=2 would select nothing: its
  // pruning-power criterion is the wrong utility for this data model
  // (which is the paper's point — views are selected for *fetch*
  // reduction instead). gamma=1 keeps all frequent fragments, ordered
  // size-ascending / support-descending, and the budget sweep caps them.
  GindexOptions gindex;
  gindex.gamma = 1.0;
  auto selected = SelectDiscriminativeFragments(*mined, sample.size(), gindex);
  // Drop size-1 fragments (the base schema already has those bitmaps),
  // order by expected fetch benefit — (|f|-1) bitmaps saved per use,
  // weighted by how often the sample suggests the fragment will be usable
  // — and cap at 100 so the budget axis is commensurate with the views.
  std::vector<FrequentFragment> multi;
  for (auto& f : selected) {
    if (f.edges.size() >= 2) multi.push_back(std::move(f));
  }
  std::sort(multi.begin(), multi.end(),
            [](const FrequentFragment& a, const FrequentFragment& b) {
              const size_t ba = (a.edges.size() - 1) * a.support;
              const size_t bb = (b.edges.size() - 1) * b.support;
              return ba != bb ? ba > bb : a.edges < b.edges;
            });
  if (multi.size() > 100) multi.resize(100);
  return multi;
}

/// Materializes bitmap columns for fragment edge sets; returns the ordered
/// (def, relation view index) list for budget-prefix sweeps.
inline std::vector<std::pair<GraphViewDef, size_t>> MaterializeFragments(
    const std::vector<FrequentFragment>& fragments, ColGraphEngine& engine) {
  std::vector<std::pair<GraphViewDef, size_t>> materialized;
  ViewCatalog scratch;
  for (const FrequentFragment& f : fragments) {
    const GraphViewDef def = GraphViewDef::Make(f.edges);
    auto column =
        MaterializeGraphView(def, &engine.mutable_relation(), &scratch);
    if (!column.ok()) std::abort();
    materialized.emplace_back(def, *column);
  }
  return materialized;
}

}  // namespace colgraph::bench
