// Ablation: plain word-parallel bitmaps vs EWAH-compressed bitmaps for the
// core operation of the system (ANDing bitmap columns), across record
// densities. Justifies the design choice in DESIGN.md: plain bitmaps in
// memory for query evaluation, EWAH for the on-disk footprint.
#include <benchmark/benchmark.h>

#include "bitmap/bitmap.h"
#include "bitmap/ewah_bitmap.h"
#include "util/random.h"

namespace colgraph {
namespace {

Bitmap RandomBitmap(size_t bits, double density, uint64_t seed) {
  Rng rng(seed);
  Bitmap b(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(density)) b.Set(i);
  }
  return b;
}

void BM_PlainAnd(benchmark::State& state) {
  const size_t bits = 1 << 20;
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const Bitmap a = RandomBitmap(bits, density, 1);
  const Bitmap b = RandomBitmap(bits, density, 2);
  for (auto _ : state) {
    Bitmap r = a;
    r.And(b);
    benchmark::DoNotOptimize(r.Count());
  }
  state.SetLabel("density=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_PlainAnd)->Arg(1)->Arg(10)->Arg(50);

void BM_EwahAnd(benchmark::State& state) {
  const size_t bits = 1 << 20;
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const EwahBitmap a =
      EwahBitmap::FromBitmap(RandomBitmap(bits, density, 1));
  const EwahBitmap b =
      EwahBitmap::FromBitmap(RandomBitmap(bits, density, 2));
  for (auto _ : state) {
    const EwahBitmap r = EwahBitmap::And(a, b);
    benchmark::DoNotOptimize(r.Count());
  }
  state.SetLabel("density=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_EwahAnd)->Arg(1)->Arg(10)->Arg(50);

void BM_EwahCompressionRatio(benchmark::State& state) {
  const size_t bits = 1 << 20;
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const Bitmap plain = RandomBitmap(bits, density, 3);
  size_t compressed_bytes = 0;
  for (auto _ : state) {
    const EwahBitmap e = EwahBitmap::FromBitmap(plain);
    compressed_bytes = e.CompressedBytes();
    benchmark::DoNotOptimize(compressed_bytes);
  }
  state.counters["plain_bytes"] = static_cast<double>(plain.MemoryBytes());
  state.counters["ewah_bytes"] = static_cast<double>(compressed_bytes);
}
BENCHMARK(BM_EwahCompressionRatio)->Arg(1)->Arg(10)->Arg(50);

}  // namespace
}  // namespace colgraph

BENCHMARK_MAIN();
