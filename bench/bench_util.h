// Shared setup helpers for the experiment harnesses: scaled dataset
// construction (the paper's 320M/100M-record datasets are reproduced at a
// configurable scale factor; shapes, not absolute numbers, are the target)
// and fixed-width table printing so each binary emits the same rows/series
// as the corresponding paper table or figure.
//
// Environment:
//   COLGRAPH_SCALE        multiplies all record counts (default 1.0; raise
//                         on a bigger machine to approach the paper's
//                         scale).
//   COLGRAPH_THREADS      worker-thread count for the harnesses that have a
//                         parallel section (same as passing --threads=N).
//   COLGRAPH_METRICS_OUT  destination for the machine-readable metrics dump
//                         (same as passing --metrics-out=FILE).
//   COLGRAPH_TIMEOUT_MS   evaluation deadline for the timed workload (same
//                         as passing --timeout-ms=N); a mis-scaled run
//                         aborts with DeadlineExceeded instead of hanging.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/stopwatch.h"
#include "workload/base_graphs.h"
#include "workload/query_generator.h"
#include "workload/record_generator.h"

namespace colgraph::bench {

inline double ScaleFactor() {
  const char* env = std::getenv("COLGRAPH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline size_t Scaled(size_t base) {
  const double scaled = static_cast<double>(base) * ScaleFactor();
  return scaled < 1 ? 1 : static_cast<size_t>(scaled);
}

/// Thread count for a harness run: `--threads=N` on the command line wins,
/// then COLGRAPH_THREADS, then 1 (serial — the paper's configuration).
/// Every harness prints the same figures for any value; threads only move
/// the wall clock (DESIGN.md §8).
inline size_t ThreadCount(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--threads=";
    if (arg.rfind(prefix, 0) == 0) {
      const long v = std::atol(arg.c_str() + prefix.size());
      return v > 1 ? static_cast<size_t>(v) : 1;
    }
  }
  if (const char* env = std::getenv("COLGRAPH_THREADS")) {
    const long v = std::atol(env);
    return v > 1 ? static_cast<size_t>(v) : 1;
  }
  return 1;
}

/// Destination of the machine-readable metrics dump: `--metrics-out=FILE`
/// on the command line wins, then COLGRAPH_METRICS_OUT, else "" (no dump).
inline std::string MetricsOutPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--metrics-out=";
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  if (const char* env = std::getenv("COLGRAPH_METRICS_OUT")) return env;
  return "";
}

/// Evaluation deadline in milliseconds: `--timeout-ms=N` on the command
/// line wins, then COLGRAPH_TIMEOUT_MS, else 0 (no deadline). Harnesses
/// arm a CancellationToken with the budget and thread it through
/// QueryOptions::cancel (util/cancellation.h), so a mis-scaled workload
/// stops with DeadlineExceeded instead of hanging a CI job.
inline uint64_t TimeoutMs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--timeout-ms=";
    if (arg.rfind(prefix, 0) == 0) {
      const long long v = std::atoll(arg.c_str() + prefix.size());
      return v > 0 ? static_cast<uint64_t>(v) : 0;
    }
  }
  if (const char* env = std::getenv("COLGRAPH_TIMEOUT_MS")) {
    const long long v = std::atoll(env);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  return 0;
}

/// Arms `token` with `timeout_ms` (no-op when 0) and returns QueryOptions
/// carrying it. The token must outlive every query evaluated with the
/// returned options.
inline QueryOptions ArmDeadline(uint64_t timeout_ms, CancellationToken* token) {
  QueryOptions options;
  if (timeout_ms > 0) {
    token->SetTimeout(timeout_ms);
    options.cancel = token;
  }
  return options;
}

/// Standard harness reaction to an evaluation error when a deadline is
/// armed: report a DeadlineExceeded on stderr and tell the caller to stop
/// the sweep; abort on anything else (a real bug, as before).
inline bool DeadlineFired(const Status& status, const char* where) {
  if (status.ok()) return false;
  if (status.IsDeadlineExceeded()) {
    std::fprintf(stderr, "  [timeout] %s: %s\n", where,
                 status.ToString().c_str());
    return true;
  }
  std::fprintf(stderr, "%s failed: %s\n", where, status.ToString().c_str());
  std::abort();
}

/// Query-log capture path (DESIGN.md §10): `--query-log=FILE` wins, then
/// COLGRAPH_QUERY_LOG, else "" (no capture). Harnesses that build several
/// engines suffix the path per engine so each log stands alone. The
/// resulting log feeds tools/colgraph_replay and --advise-views.
inline std::string QueryLogPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--query-log=";
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  if (const char* env = std::getenv("COLGRAPH_QUERY_LOG")) return env;
  return "";
}

/// Closes an engine's query log (flush + footer + fsync), complaining on
/// stderr instead of failing the bench — capture is advisory.
inline void FinishQueryLog(ColGraphEngine* engine) {
  if (engine == nullptr || engine->query_log() == nullptr) return;
  const std::string path = engine->query_log()->path();
  const Status closed = engine->CloseQueryLog();
  if (!closed.ok()) {
    std::fprintf(stderr, "query log close failed: %s\n",
                 closed.ToString().c_str());
    return;
  }
  std::printf("  query log written to %s\n", path.c_str());
}

/// Writes the harness's BENCH_*.json: bench name, scale, thread count, and
/// either the engine's full DumpMetricsJson (shape + FetchStats + the
/// process-wide registry) or, when no single engine survives to the end of
/// the run, just the registry (which the per-phase spans fed throughout).
/// No-op when `path` is empty; aborts on I/O failure so CI catches a
/// broken dump instead of uploading an empty artifact.
inline void WriteMetricsOut(const std::string& path,
                            const std::string& bench_name, size_t num_threads,
                            const ColGraphEngine* engine = nullptr) {
  if (path.empty()) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String(bench_name);
  w.Key("scale");
  w.Double(ScaleFactor());
  w.Key("threads");
  w.Uint(num_threads);
  if (engine != nullptr) {
    w.Key("engine_metrics");
    w.Raw(engine->DumpMetricsJson());
  } else {
    w.Key("metrics");
    w.Raw(obs::MetricsRegistry::Global().ToJson());
  }
  w.EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --metrics-out file %s\n", path.c_str());
    std::abort();
  }
  const std::string& json = w.str();
  if (std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
      std::fputc('\n', f) == EOF || std::fclose(f) != 0) {
    std::fprintf(stderr, "short write to --metrics-out file %s\n",
                 path.c_str());
    std::abort();
  }
  std::printf("  metrics written to %s\n", path.c_str());
}

/// The synthetic stand-in for the paper's NY road network.
inline DirectedGraph MakeNyBase() { return MakeRoadNetwork(120, 120); }

/// The synthetic stand-in for the Gnutella p2p snapshot.
inline DirectedGraph MakeGnuBase() { return MakePowerLawNetwork(3000, 3, 4242); }

/// Record-size profile matching Table 2's NY row (35..100 edges, avg 85).
inline RecordGenOptions NyRecordOptions() {
  RecordGenOptions options;
  options.min_edges = 35;
  options.max_edges = 100;
  options.size_draws = 3;
  return options;
}

/// Record-size profile matching Table 2's GNU row (45..100 edges, avg 75).
inline RecordGenOptions GnuRecordOptions() {
  RecordGenOptions options;
  options.min_edges = 45;
  options.max_edges = 100;
  return options;
}

struct Dataset {
  DirectedGraph universe;
  std::vector<GraphRecord> records;
  std::vector<std::vector<NodeRef>> trunks;
  std::string name;
};

/// Builds a dataset of `num_records` random-walk records over a
/// `universe_edges`-edge sub-universe of `base`.
inline Dataset MakeDataset(const DirectedGraph& base, std::string name,
                           size_t num_records, size_t universe_edges,
                           RecordGenOptions rec_options, uint64_t seed) {
  Dataset ds;
  ds.name = std::move(name);
  auto universe = SelectEdgeUniverse(base, universe_edges, seed);
  if (!universe.ok()) {
    std::fprintf(stderr, "universe selection failed: %s\n",
                 universe.status().ToString().c_str());
    std::abort();
  }
  ds.universe = std::move(universe).value();
  WalkRecordGenerator generator(&ds.universe, rec_options, seed + 1);
  ds.records.reserve(num_records);
  ds.trunks.reserve(num_records);
  for (size_t i = 0; i < num_records; ++i) {
    std::vector<NodeRef> trunk;
    ds.records.push_back(generator.Next(&trunk));
    ds.trunks.push_back(std::move(trunk));
  }
  return ds;
}

/// Ingests a dataset into a fresh ColGraphEngine. When `register_universe`
/// is set, the full edge universe is registered first so the relation's
/// column count equals the domain size even when records leave edges
/// untouched (needed by the edge-domain sweep of Figure 5).
inline ColGraphEngine BuildEngine(const Dataset& ds,
                                  EngineOptions options = {},
                                  bool register_universe = false) {
  ColGraphEngine engine(options);
  if (register_universe) engine.RegisterUniverse(ds.universe.edges());
  for (const GraphRecord& r : ds.records) {
    auto status = engine.AddRecord(r);
    if (!status.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   status.status().ToString().c_str());
      std::abort();
    }
  }
  auto sealed = engine.Seal();
  if (!sealed.ok()) {
    std::fprintf(stderr, "seal failed: %s\n", sealed.ToString().c_str());
    std::abort();
  }
  return engine;
}

// --- Output formatting. ---

inline void Title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PaperNote(const std::string& note) {
  std::printf("    [paper] %s\n", note.c_str());
}

inline void Row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-18s", c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

inline std::string FmtBytes(size_t bytes) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buffer;
}

}  // namespace colgraph::bench
