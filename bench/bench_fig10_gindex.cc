// Figure 10: 100 uniform graph queries with gIndex discriminative
// fragments (as extra bitmap columns) vs materialized graph views, over a
// space budget sweep. Expected shape: fragments help, but views — selected
// *for the workload* — reduce times further at every budget.
#include "gindex_util.h"

namespace colgraph::bench {
namespace {

struct WorkloadCost {
  double seconds = 0;
  uint64_t bitmaps = 0;  // bitmap columns fetched per workload pass
};

WorkloadCost TimeWorkload(const ColGraphEngine& engine,
                          const ViewCatalog& views,
                          const std::vector<GraphQuery>& workload) {
  QueryEngine qe(&engine.relation(), &engine.catalog(), &views);
  engine.stats().Reset();
  Stopwatch watch;
  for (int rep = 0; rep < 3; ++rep) {
    for (const GraphQuery& q : workload) {
      auto result = qe.RunGraphQuery(q);
      if (!result.ok()) std::abort();
    }
  }
  WorkloadCost cost;
  cost.seconds = watch.ElapsedSeconds() / 3;
  cost.bitmaps = engine.stats().bitmap_columns_fetched / 3;
  return cost;
}

void Run() {
  Title("Figure 10 — gIndex fragments vs graph views, 100 uniform queries");
  PaperNote(
      "both reduce times; views win at every budget (paper: fragment "
      "mining took 1.5h on a 1% sample, view selection < 1s)");

  const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(60000), 1000,
                                 NyRecordOptions(), 321);
  ColGraphEngine engine = BuildEngine(ds);
  QueryGenerator qgen(&ds.trunks, &ds.universe, 61);
  QueryGenOptions q_options;
  q_options.min_edges = 8;
  q_options.max_edges = 25;
  const auto workload = qgen.UniformWorkload(100, q_options);

  // gIndex_Q: fragments mined from query-answering records only.
  Stopwatch mine_watch;
  const auto frags_q = MineFragments(ds, engine, workload, 1.0, 400, 71);
  // gIndex_Q+D: 20% answers, 80% random records.
  const auto frags_qd = MineFragments(ds, engine, workload, 0.2, 400, 73);
  const double mining_seconds = mine_watch.ElapsedSeconds();

  // Views: greedy selection for the same workload.
  Stopwatch select_watch;
  std::vector<std::vector<EdgeId>> universes;
  for (const GraphQuery& q : workload) {
    const auto resolved = engine.query_engine().Resolve(q);
    if (resolved.satisfiable && !resolved.ids.empty()) {
      universes.push_back(resolved.ids);
    }
  }
  auto candidates = GenerateGraphViewCandidates(universes, {});
  if (!candidates.ok()) std::abort();
  const auto selection = GreedyExtendedSetCover(universes, *candidates, 100);
  const double selection_seconds = select_watch.ElapsedSeconds();

  std::vector<FrequentFragment> view_frags;  // reuse fragment materializer
  const auto mat_q = MaterializeFragments(frags_q, engine);
  const auto mat_qd = MaterializeFragments(frags_qd, engine);
  std::vector<std::pair<GraphViewDef, size_t>> mat_views;
  {
    ViewCatalog scratch;
    for (size_t index : selection.selected) {
      auto column = MaterializeGraphView((*candidates)[index],
                                         &engine.mutable_relation(), &scratch);
      if (!column.ok()) std::abort();
      mat_views.emplace_back((*candidates)[index], *column);
    }
  }
  std::printf(
      "  mined %zu (Q) / %zu (Q+D) discriminative fragments in %.2fs; "
      "selected %zu views in %.3fs\n",
      frags_q.size(), frags_qd.size(), mining_seconds, mat_views.size(),
      selection_seconds);

  Row({"budget", "gIndex_Q+D (s/bitmaps)", "gIndex_Q (s/bitmaps)",
       "Views (s/bitmaps)"});
  for (size_t budget_pct : {0u, 20u, 40u, 60u, 80u, 100u}) {
    auto trim = [&](const std::vector<std::pair<GraphViewDef, size_t>>& all) {
      ViewCatalog catalog;
      const size_t k = budget_pct * all.size() / 100;
      for (size_t i = 0; i < k; ++i) {
        catalog.AddGraphView(all[i].first, all[i].second);
      }
      return catalog;
    };
    const WorkloadCost qd = TimeWorkload(engine, trim(mat_qd), workload);
    const WorkloadCost q = TimeWorkload(engine, trim(mat_q), workload);
    const WorkloadCost v = TimeWorkload(engine, trim(mat_views), workload);
    auto cell = [](const WorkloadCost& c) {
      return Fmt(c.seconds) + " / " + std::to_string(c.bitmaps);
    };
    Row({std::to_string(budget_pct) + "%", cell(qd), cell(q), cell(v)});
  }
  (void)view_frags;
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
