// Figure 3(c): execution time of 100 queries as record density grows
// (10% / 20% / 50% of the 1000-edge universe per record). Query graphs are
// constructed for the same density factors. Expected shape: the column
// store stays flat (larger queries are more selective), the baselines grow.
#include "comparison_util.h"

namespace colgraph::bench {
namespace {

void Run(size_t num_threads, const std::string& query_log,
         uint64_t timeout_ms) {
  Title("Figure 3(c) — query time vs record density, NY");
  PaperNote(
      "column store flat across density; row store grows with density "
      "(paper x-axis: 10%, 20%, 50%; 1M records)");
  Row({"density", "Column Store", "Neo4j Store", "Rdf Store", "Row Store"});

  for (const double density : {0.10, 0.20, 0.50}) {
    const size_t record_edges = static_cast<size_t>(density * 1000);
    RecordGenOptions rec_options;
    rec_options.min_edges = record_edges;
    rec_options.max_edges = record_edges;
    const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(5000), 1000,
                                   rec_options, 777);
    QueryGenerator qgen(&ds.trunks, &ds.universe, 17);
    // Query density matches record density (Section 7.2).
    const auto workload = qgen.StructuralWorkload(100, record_edges);

    std::vector<std::string> cells{Fmt(density * 100, 0) + "%"};
    const std::string log_path =
        query_log.empty()
            ? ""
            : query_log + "." + std::to_string(record_edges);
    cells.push_back(Fmt(TimeColumnStore(ds, workload, nullptr, num_threads,
                                        log_path, timeout_ms)) +
                    "s");
    for (const auto& [name, factory] : BaselineFactories()) {
      (void)name;
      cells.push_back(Fmt(TimeBaseline(factory, ds, workload)) + "s");
    }
    Row(cells);
  }
}

}  // namespace
}  // namespace colgraph::bench

int main(int argc, char** argv) {
  const size_t threads = colgraph::bench::ThreadCount(argc, argv);
  colgraph::bench::Run(threads, colgraph::bench::QueryLogPath(argc, argv),
                       colgraph::bench::TimeoutMs(argc, argv));
  colgraph::bench::WriteMetricsOut(colgraph::bench::MetricsOutPath(argc, argv),
                                   "fig3c_density", threads);
}
