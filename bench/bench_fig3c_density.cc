// Figure 3(c): execution time of 100 queries as record density grows
// (10% / 20% / 50% of the 1000-edge universe per record). Query graphs are
// constructed for the same density factors. Expected shape: the column
// store stays flat (larger queries are more selective), the baselines grow.
#include <algorithm>

#include "bitmap/hybrid_bitmap.h"
#include "columnstore/column.h"
#include "comparison_util.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace colgraph::bench {
namespace {

void Run(size_t num_threads, const std::string& query_log,
         uint64_t timeout_ms) {
  Title("Figure 3(c) — query time vs record density, NY");
  PaperNote(
      "column store flat across density; row store grows with density "
      "(paper x-axis: 10%, 20%, 50%; 1M records)");
  Row({"density", "Column Store", "Neo4j Store", "Rdf Store", "Row Store"});

  for (const double density : {0.10, 0.20, 0.50}) {
    const size_t record_edges = static_cast<size_t>(density * 1000);
    RecordGenOptions rec_options;
    rec_options.min_edges = record_edges;
    rec_options.max_edges = record_edges;
    const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(5000), 1000,
                                   rec_options, 777);
    QueryGenerator qgen(&ds.trunks, &ds.universe, 17);
    // Query density matches record density (Section 7.2).
    const auto workload = qgen.StructuralWorkload(100, record_edges);

    std::vector<std::string> cells{Fmt(density * 100, 0) + "%"};
    const std::string log_path =
        query_log.empty()
            ? ""
            : query_log + "." + std::to_string(record_edges);
    cells.push_back(Fmt(TimeColumnStore(ds, workload, nullptr, num_threads,
                                        log_path, timeout_ms)) +
                    "s");
    for (const auto& [name, factory] : BaselineFactories()) {
      (void)name;
      cells.push_back(Fmt(TimeBaseline(factory, ds, workload)) + "s");
    }
    Row(cells);
  }
}

// ISSUE 8: hybrid-container sweep at sparse densities. Reproduces the
// engine's MatchIds AND-loop shapes — the fig3a/fig6 hot loop — over
// presence columns sparse enough that seal-time encoding picks hybrid
// containers, and times the pre-hybrid path (word-at-a-time Bitmap::And)
// against the compressed path (HybridBitmap::And + final ToBitmap).
// Per-sample times land in the metrics registry as fig3c.and.ewah_us /
// fig3c.and.hybrid_us so the committed BENCH_fig3c.json baseline gates
// regressions of either path through tools/bench_compare.py.
void RunHybridSweep() {
  Title("Figure 3(c) supplement — AND loop: hybrid containers vs words");
  PaperNote(
      "0.1% row is inside the 1/256 seal-time threshold (the regime the "
      "engine hybrid-encodes) and feeds the gated histograms; the 1% row "
      "sits above the cutoff and documents why it is where it is");
  Row({"density", "words", "hybrid", "speedup"});

  // Fixed floor keeps the committed baseline comparable across
  // COLGRAPH_SCALE settings: the AND loop cost is set by the bitmap
  // length, not the workload size. 1M records matches the paper's fig3
  // regime — long enough that the word loop's O(num_records) cost
  // dominates the compressed path's per-container overhead.
  const size_t num_records = std::max<size_t>(Scaled(2000000), 1000000);
  constexpr size_t kColumns = 8;
  constexpr size_t kSamples = 24;   // recorded histogram samples per path
  constexpr size_t kBatch = 24;     // ANDs per sample: lifts sample means
                                    // past bench_compare's noise floor
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();

  for (const double density : {0.01, 0.001}) {
    // Histograms only cover the in-regime density: above the cutoff the
    // engine never picks hybrid, so gating that row would track a code
    // path production doesn't run.
    const bool in_regime =
        density * static_cast<double>(BitmapColumn::kHybridDensityDivisor) <=
        1.0;
    Rng rng(20260808);
    std::vector<Bitmap> plain;
    std::vector<HybridBitmap> hybrid;
    for (size_t c = 0; c < kColumns; ++c) {
      Bitmap bits(num_records);
      for (size_t i = 0; i < num_records; ++i) {
        if (rng.Bernoulli(density)) bits.Set(i);
      }
      hybrid.push_back(HybridBitmap::FromBitmap(bits));
      plain.push_back(std::move(bits));
    }

    // Correctness witness outside the timed region: both paths must
    // produce the same conjunction.
    {
      Bitmap expect = plain[0];
      expect.And(plain[1]);
      expect.And(plain[2]);
      expect.And(plain[3]);
      HybridBitmap running = HybridBitmap::And(hybrid[0], hybrid[1]);
      running = HybridBitmap::And(running, hybrid[2]);
      running = HybridBitmap::And(running, hybrid[3]);
      if (!(running.ToBitmap() == expect)) std::abort();
    }

    uint64_t words_total_us = 0;
    uint64_t hybrid_total_us = 0;
    uint64_t sink_words = 0;  // O(1) observable keeps the loops live
    uint64_t sink_hybrid = 0;
    for (size_t s = 0; s < kSamples; ++s) {
      Stopwatch sw;
      for (size_t b = 0; b < kBatch; ++b) {
        const size_t base = (s * kBatch + b) % kColumns;
        Bitmap result = plain[base];
        result.And(plain[(base + 1) % kColumns]);
        result.And(plain[(base + 2) % kColumns]);
        result.And(plain[(base + 3) % kColumns]);
        sink_words += result.words().back();
      }
      const uint64_t words_us = sw.ElapsedMicros();
      if (in_regime) reg.GetHistogram("fig3c.and.ewah_us").Record(words_us);
      words_total_us += words_us;

      sw.Restart();
      for (size_t b = 0; b < kBatch; ++b) {
        const size_t base = (s * kBatch + b) % kColumns;
        HybridBitmap running =
            HybridBitmap::And(hybrid[base], hybrid[(base + 1) % kColumns]);
        running = HybridBitmap::And(running, hybrid[(base + 2) % kColumns]);
        running = HybridBitmap::And(running, hybrid[(base + 3) % kColumns]);
        const Bitmap materialized = running.ToBitmap();
        sink_hybrid += materialized.words().back();
      }
      const uint64_t hybrid_us = sw.ElapsedMicros();
      if (in_regime) reg.GetHistogram("fig3c.and.hybrid_us").Record(hybrid_us);
      hybrid_total_us += hybrid_us;
    }
    // Paired loops over identical operands: any divergence is a bug.
    if (sink_words != sink_hybrid) std::abort();

    const double speedup =
        hybrid_total_us > 0
            ? static_cast<double>(words_total_us) /
                  static_cast<double>(hybrid_total_us)
            : 0.0;
    Row({Fmt(density * 100, 1) + "%",
         Fmt(static_cast<double>(words_total_us) / 1e6) + "s",
         Fmt(static_cast<double>(hybrid_total_us) / 1e6) + "s",
         Fmt(speedup, 1) + "x"});
  }
}

}  // namespace
}  // namespace colgraph::bench

int main(int argc, char** argv) {
  const size_t threads = colgraph::bench::ThreadCount(argc, argv);
  colgraph::bench::Run(threads, colgraph::bench::QueryLogPath(argc, argv),
                       colgraph::bench::TimeoutMs(argc, argv));
  colgraph::bench::RunHybridSweep();
  colgraph::bench::WriteMetricsOut(colgraph::bench::MetricsOutPath(argc, argv),
                                   "fig3c_density", threads);
}
