// Figure 6: run time of 100 uniform graph queries on the NY dataset as the
// view space budget grows from 0% to 100% (k = budget% of 100 views), with
// the break-down into the mandatory measure-fetch part and the structural
// ("rest of query") part that views actually reduce. Expected shape: the
// fetch part is constant; the rest shrinks with the budget (paper: up to
// 32% total / 57% of the non-mandatory part).
#include "bench_util.h"
#include "views/candidate_generation.h"
#include "views/materializer.h"
#include "views/set_cover.h"

namespace colgraph::bench {
namespace {

void Run(size_t num_threads, const std::string& metrics_out,
         const std::string& query_log, uint64_t timeout_ms) {
  Title("Figure 6 — run time vs space budget, 100 uniform graph queries, NY");
  PaperNote(
      "fetch-measures cost is mandatory and flat; the structural part "
      "drops with budget (paper: -32% total, -57% non-mandatory at 100%)");

  const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(200000), 1000,
                                 NyRecordOptions(), 606);
  EngineOptions engine_options;
  engine_options.num_threads = num_threads;
  engine_options.query_log.path = query_log;
  ColGraphEngine engine = BuildEngine(ds, engine_options);

  QueryGenerator qgen(&ds.trunks, &ds.universe, 29);
  QueryGenOptions q_options;
  q_options.min_edges = 15;
  q_options.max_edges = 40;
  const auto workload = qgen.UniformWorkload(100, q_options);
  constexpr int kReps = 3;  // repeat the workload; report per-pass times

  // One deadline covers the whole harness run: the budget sweep's timed
  // loops poll it through QueryOptions::cancel where evaluation can fail.
  CancellationToken deadline;
  const QueryOptions timed_options = ArmDeadline(timeout_ms, &deadline);

  // Resolve workload universes once; generate candidates; greedily order
  // the full 100-view selection, then sweep budgets over prefixes.
  std::vector<std::vector<EdgeId>> universes;
  for (const GraphQuery& q : workload) {
    const auto resolved = engine.query_engine().Resolve(q);
    if (resolved.satisfiable && !resolved.ids.empty()) {
      universes.push_back(resolved.ids);
    }
  }
  auto candidates = GenerateGraphViewCandidates(universes, {});
  if (!candidates.ok()) std::abort();
  const auto selection = GreedyExtendedSetCover(universes, *candidates, 100);

  // Materialize every selected view up front (as one batch across the
  // engine's pool when --threads > 1); budgets pick prefixes.
  std::vector<std::pair<GraphViewDef, size_t>> materialized;
  {
    std::vector<GraphViewDef> selected_defs;
    for (size_t index : selection.selected) {
      selected_defs.push_back((*candidates)[index]);
    }
    ViewCatalog scratch;
    Stopwatch mat_watch;
    auto columns = MaterializeGraphViews(selected_defs,
                                         &engine.mutable_relation(), &scratch,
                                         engine.pool());
    const double mat_seconds = mat_watch.ElapsedSeconds();
    if (!columns.ok()) std::abort();
    for (size_t i = 0; i < selected_defs.size(); ++i) {
      materialized.emplace_back(selected_defs[i], (*columns)[i]);
    }
    std::printf("  materialized %zu views in %ss (%zu thread%s)\n",
                materialized.size(), Fmt(mat_seconds).c_str(), num_threads,
                num_threads == 1 ? "" : "s");
  }
  std::printf("  greedy selected %zu views for the 100-query workload\n",
              materialized.size());

  Row({"budget", "views", "t fetch (s)", "t rest (s)", "t total (s)",
       "bitmaps fetched"});
  double baseline_total = 0;
  for (size_t budget_pct : {0u, 10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u,
                            100u}) {
    // The budget picks a prefix of the greedy selection order.
    const size_t views_used = budget_pct * materialized.size() / 100;
    ViewCatalog trimmed;
    for (size_t i = 0; i < views_used; ++i) {
      trimmed.AddGraphView(materialized[i].first, materialized[i].second);
    }
    QueryEngine qe(&engine.relation(), &engine.catalog(), &trimmed);

    PhaseTimer fetch_timer, match_timer;
    engine.stats().Reset();
    for (int rep = 0; rep < kReps; ++rep) {
      for (const GraphQuery& q : workload) {
        const auto resolved = qe.Resolve(q);
        if (!resolved.satisfiable) continue;
        Bitmap matches;
        {
          ScopedPhase phase(&match_timer);
          matches = qe.MatchIds(resolved.ids, timed_options, false);
        }
        {
          ScopedPhase phase(&fetch_timer);
          const MeasureTable table = qe.FetchMeasures(matches, resolved.ids);
          (void)table;
        }
      }
    }
    const double total = (match_timer.total_seconds() +
                          fetch_timer.total_seconds()) /
                         kReps;
    if (budget_pct == 0) baseline_total = total;
    Row({std::to_string(budget_pct) + "%", std::to_string(views_used),
         Fmt(fetch_timer.total_seconds() / kReps),
         Fmt(match_timer.total_seconds() / kReps),
         Fmt(total) + (budget_pct == 100
                           ? "  (" + Fmt(100.0 * (baseline_total - total) /
                                             baseline_total,
                                         1) +
                                 "% saved)"
                           : ""),
         std::to_string(engine.stats().bitmap_columns_fetched)});
  }

  // The budget loop drives MatchIds/FetchMeasures directly (to split the
  // timings), which bypasses query-log capture; run the workload once more
  // through the logging path, untimed, so --query-log captures it.
  if (engine.query_log() != nullptr) {
    for (const GraphQuery& q : workload) {
      auto result = engine.RunGraphQuery(q, timed_options);
      if (!result.ok() &&
          DeadlineFired(result.status(), "fig6 capture pass")) {
        break;
      }
    }
  }

  // Thread-scaling coda: a 1000-query uniform workload (10x the figure's),
  // end to end, through the batch API. Serial and parallel runs return
  // bit-identical tables; only the wall clock moves.
  if (num_threads > 1) {
    const auto scaling_workload = qgen.UniformWorkload(1000, q_options);
    Stopwatch watch;
    auto batch = engine.EvaluateBatch(scaling_workload, timed_options);
    const double par_seconds = watch.ElapsedSeconds();
    if (!batch.ok() && DeadlineFired(batch.status(), "fig6 scaling batch")) {
      FinishQueryLog(&engine);
      WriteMetricsOut(metrics_out, "fig6_views_uniform", num_threads, &engine);
      return;
    }
    watch.Restart();
    for (const GraphQuery& q : scaling_workload) {
      auto result = engine.RunGraphQuery(q, timed_options);
      if (!result.ok() &&
          DeadlineFired(result.status(), "fig6 scaling serial")) {
        break;
      }
    }
    const double ser_seconds = watch.ElapsedSeconds();
    std::printf("  EvaluateBatch(1000 queries): %ss with %zu threads vs %ss "
                "serial (%.2fx)\n",
                Fmt(par_seconds).c_str(), num_threads,
                Fmt(ser_seconds).c_str(),
                par_seconds > 0 ? ser_seconds / par_seconds : 0.0);
  }

  FinishQueryLog(&engine);
  WriteMetricsOut(metrics_out, "fig6_views_uniform", num_threads, &engine);
}

}  // namespace
}  // namespace colgraph::bench

int main(int argc, char** argv) {
  colgraph::bench::Run(colgraph::bench::ThreadCount(argc, argv),
                       colgraph::bench::MetricsOutPath(argc, argv),
                       colgraph::bench::QueryLogPath(argc, argv),
                       colgraph::bench::TimeoutMs(argc, argv));
}
