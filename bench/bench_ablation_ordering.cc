// Ablation: selectivity-ordered AND pipelines vs id-ordered. Ordering the
// most selective bitmaps first empties the running conjunction sooner, so
// unsatisfiable or highly selective queries stop fetching early — the
// optimization behind the column store's flat curves in Figures 3(b)/3(c).
#include "bench_util.h"

namespace colgraph::bench {
namespace {

void Run() {
  Title("Ablation — selectivity-ordered vs id-ordered bitmap ANDs");
  PaperNote(
      "ordered pipelines short-circuit sooner on selective queries; "
      "answers are identical by construction");

  const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(50000), 1000,
                                 NyRecordOptions(), 2024);
  ColGraphEngine engine = BuildEngine(ds);
  QueryGenerator qgen(&ds.trunks, &ds.universe, 83);

  Row({"query edges", "ordered fetches", "id-order fetches", "ordered (s)",
       "id-order (s)"});
  for (size_t query_edges : {10u, 50u, 200u}) {
    const auto workload = qgen.StructuralWorkload(100, query_edges);
    QueryOptions ordered;
    QueryOptions id_order;
    id_order.order_by_selectivity = false;

    engine.stats().Reset();
    Stopwatch ordered_watch;
    for (const GraphQuery& q : workload) engine.Match(q, ordered);
    const double ordered_seconds = ordered_watch.ElapsedSeconds();
    const uint64_t ordered_fetches = engine.stats().bitmap_columns_fetched;

    engine.stats().Reset();
    Stopwatch id_watch;
    for (const GraphQuery& q : workload) engine.Match(q, id_order);
    const double id_seconds = id_watch.ElapsedSeconds();
    const uint64_t id_fetches = engine.stats().bitmap_columns_fetched;

    Row({std::to_string(query_edges), std::to_string(ordered_fetches),
         std::to_string(id_fetches), Fmt(ordered_seconds),
         Fmt(id_seconds)});
  }
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
