// Figure 5: query time as the universe of distinct edge ids grows from 1K
// to 100K (records at 10% density of the universe, so records grow too).
// The master relation auto-partitions at 1000 columns; retrieval across
// sub-relations pays recid joins, so the column store degrades slowly with
// the domain size — but stays below the native graph store, whose time
// grows with the query output (the paper's crossover never happens).
#include "comparison_util.h"

namespace colgraph::bench {
namespace {

void Run() {
  Title("Figure 5 — query time vs edge-domain size (vertical partitioning)");
  PaperNote(
      "records grow with the domain (10% density), so retrieving a record "
      "joins more sub-relations: the column store degrades with the domain "
      "size but stays ahead of the native graph store (paper: 100 "
      "sub-relations at the rightmost point)");
  Row({"distinct edges", "partitions", "path queries (s)",
       "record retrieval (s)", "Neo4j queries (s)"});

  const DirectedGraph base = MakeRoadNetwork(250, 250);  // ~249K edges
  for (size_t universe_edges : {1000u, 5000u, 20000u, 50000u, 100000u}) {
    const size_t record_edges = universe_edges / 10;  // 10% density
    RecordGenOptions rec_options;
    rec_options.min_edges = record_edges;
    rec_options.max_edges = record_edges;
    const size_t num_records = Scaled(2000);  // fixed record count
    const Dataset ds = MakeDataset(base, "NY-wide", num_records,
                                   universe_edges, rec_options, 999);
    QueryGenerator qgen(&ds.trunks, &ds.universe, 23);
    QueryGenOptions q_options;
    q_options.min_edges = 5;
    q_options.max_edges = 15;
    const auto workload = qgen.UniformWorkload(100, q_options);

    ColGraphEngine engine = BuildEngine(ds, {}, /*register_universe=*/true);
    const size_t partitions = engine.relation().num_partitions();

    // Part 1: 100 path queries (match + fetch the query measures).
    Stopwatch watch;
    for (const GraphQuery& q : workload) {
      auto result = engine.RunGraphQuery(q);
      (void)result;
    }
    const double query_seconds = watch.ElapsedSeconds();

    // Part 2: full-record reconstruction — fetch every measure of 200
    // records; at 10% density of a 100K-edge domain each record's columns
    // span up to 100 sub-relations (the cost the paper attributes to
    // partitioning).
    const QueryEngine qe = engine.query_engine();
    Stopwatch retrieval_watch;
    for (size_t r = 0; r < std::min<size_t>(200, ds.records.size()); ++r) {
      std::vector<EdgeId> ids;
      ids.reserve(ds.records[r].elements.size());
      for (const Edge& e : ds.records[r].elements) {
        ids.push_back(*engine.catalog().Lookup(e));
      }
      Bitmap one(engine.num_records());
      one.Set(r);
      const MeasureTable table = qe.FetchMeasures(one, ids);
      (void)table;
    }
    const double retrieval_seconds = retrieval_watch.ElapsedSeconds();

    // Neo4j comparison on the same 100 path queries.
    const double neo_seconds = TimeBaseline(
        [] { return std::make_unique<GraphDb>(); }, ds, workload);

    Row({std::to_string(universe_edges), std::to_string(partitions),
         Fmt(query_seconds), Fmt(retrieval_seconds), Fmt(neo_seconds)});
  }
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
