// Figure 3(a): total execution time of 100 uniform graph queries as the
// dataset grows (paper: 1M / 5M / 10M NY records; here scaled 1:100).
// Expected shape: the column store scales linearly and stays orders of
// magnitude below the row store; the native graph and RDF stores land in
// between.
#include "comparison_util.h"

namespace colgraph::bench {
namespace {

void Run(size_t num_threads, const std::string& query_log,
         uint64_t timeout_ms) {
  Title("Figure 3(a) — query time vs dataset size, 100 uniform queries, NY");
  PaperNote(
      "column store ~linear, orders of magnitude below the row store; "
      "neo4j/rdf in between (paper x-axis: 1M, 5M, 10M records)");
  if (num_threads > 1) {
    std::printf("    [threads] column store runs EvaluateBatch over %zu "
                "workers (baselines stay serial)\n",
                num_threads);
  }
  Row({"records", "Column Store", "Neo4j Store", "Rdf Store", "Row Store"});

  RecordGenOptions rec_options;  // NY profile: 35..100 edges
  for (size_t base : {10000u, 30000u, 60000u}) {
    const size_t n = Scaled(base);
    const Dataset ds =
        MakeDataset(MakeNyBase(), "NY", n, 1000, rec_options, 31337);
    QueryGenerator qgen(&ds.trunks, &ds.universe, 7);
    QueryGenOptions q_options;
    q_options.min_edges = 3;
    q_options.max_edges = 10;
    const auto workload = qgen.UniformWorkload(100, q_options);

    std::vector<std::string> cells{std::to_string(n)};
    // One engine per dataset size: suffix the log path so each capture
    // stands alone.
    const std::string log_path =
        query_log.empty() ? "" : query_log + "." + std::to_string(n);
    cells.push_back(Fmt(TimeColumnStore(ds, workload, nullptr, num_threads,
                                        log_path, timeout_ms)) +
                    "s");
    for (const auto& [name, factory] : BaselineFactories()) {
      (void)name;
      cells.push_back(Fmt(TimeBaseline(factory, ds, workload)) + "s");
    }
    Row(cells);
  }
}

}  // namespace
}  // namespace colgraph::bench

int main(int argc, char** argv) {
  const size_t threads = colgraph::bench::ThreadCount(argc, argv);
  colgraph::bench::Run(threads, colgraph::bench::QueryLogPath(argc, argv),
                       colgraph::bench::TimeoutMs(argc, argv));
  // The column-store engines are scoped to TimeColumnStore, so the dump is
  // the process-wide registry (per-phase spans fed it throughout).
  colgraph::bench::WriteMetricsOut(colgraph::bench::MetricsOutPath(argc, argv),
                                   "fig3a_dataset_size", threads);
}
