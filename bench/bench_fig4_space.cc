// Figure 4: disk space of the four stores as record density grows. The
// column store's NULL-suppressed layout is essentially density-linear only
// in the packed values, and its total stays smallest; the row store grows
// linearly in triplets; the native graph store pays the largest per-object
// overhead — the paper's ordering.
#include "comparison_util.h"

namespace colgraph::bench {
namespace {

void Run() {
  Title("Figure 4 — disk space vs record density, NY");
  PaperNote(
      "row store linear in density; neo4j largest footprint; column store "
      "smallest (paper: 1M records, 1000 edge ids)");
  Row({"density", "Column Store", "Neo4j Store", "Rdf Store", "Row Store"});

  for (const double density : {0.10, 0.20, 0.50}) {
    const size_t record_edges = static_cast<size_t>(density * 1000);
    RecordGenOptions rec_options;
    rec_options.min_edges = record_edges;
    rec_options.max_edges = record_edges;
    const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(5000), 1000,
                                   rec_options, 888);

    std::vector<std::string> cells{Fmt(density * 100, 0) + "%"};
    {
      ColGraphEngine engine = BuildEngine(ds);
      cells.push_back(FmtBytes(engine.relation().DiskBytes()));
    }
    for (const auto& [name, factory] : BaselineFactories()) {
      (void)name;
      auto store = factory();
      for (const GraphRecord& r : ds.records) {
        if (!store->AddRecord(r).ok()) std::abort();
      }
      if (!store->Seal().ok()) std::abort();
      cells.push_back(FmtBytes(store->DiskBytes()));
    }
    Row(cells);
  }
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
