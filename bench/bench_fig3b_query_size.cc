// Figure 3(b): execution time of 100 queries as the query graph grows from
// 1 to 1000 edges (dataset fixed). Expected shape: the column store gets
// *faster* with larger queries (more selective => fewer measures fetched,
// offsetting the extra bitmaps), while the baselines degrade.
#include "comparison_util.h"

namespace colgraph::bench {
namespace {

void Run(size_t num_threads, const std::string& query_log,
         uint64_t timeout_ms) {
  Title("Figure 3(b) — query time vs query size (#edges), NY");
  PaperNote(
      "column store improves as queries grow (smaller result sets); "
      "baselines degrade (paper x-axis: 1..1000 edges, 1M records)");
  Row({"query edges", "Column Store", "Neo4j Store", "Rdf Store",
       "Row Store"});

  const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(100000), 1000,
                                 NyRecordOptions(), 555);
  QueryGenerator qgen(&ds.trunks, &ds.universe, 13);

  for (size_t query_edges : {1u, 10u, 100u, 1000u}) {
    // Structural queries of the exact requested size (not tied to records,
    // exactly as the sweep requires: selectivity falls with size).
    const auto workload = qgen.StructuralWorkload(100, query_edges);
    std::vector<std::string> cells{std::to_string(query_edges)};
    const std::string log_path =
        query_log.empty() ? ""
                          : query_log + "." + std::to_string(query_edges);
    cells.push_back(Fmt(TimeColumnStore(ds, workload, nullptr, num_threads,
                                        log_path, timeout_ms)) +
                    "s");
    for (const auto& [name, factory] : BaselineFactories()) {
      (void)name;
      cells.push_back(Fmt(TimeBaseline(factory, ds, workload)) + "s");
    }
    Row(cells);
  }
}

}  // namespace
}  // namespace colgraph::bench

int main(int argc, char** argv) {
  const size_t threads = colgraph::bench::ThreadCount(argc, argv);
  colgraph::bench::Run(threads, colgraph::bench::QueryLogPath(argc, argv),
                       colgraph::bench::TimeoutMs(argc, argv));
  colgraph::bench::WriteMetricsOut(colgraph::bench::MetricsOutPath(argc, argv),
                                   "fig3b_query_size", threads);
}
