// Helpers for the four-system comparison experiments (Figures 3-5): run
// the same query workload against the column store and each from-scratch
// baseline, building and tearing the baselines down one at a time to keep
// the peak footprint bounded.
#pragma once

#include <functional>
#include <memory>

#include "baselines/graph_db.h"
#include "baselines/rdf_store.h"
#include "baselines/row_store.h"
#include "bench_util.h"

namespace colgraph::bench {

using StoreFactory = std::function<std::unique_ptr<GraphStoreInterface>()>;

inline std::vector<std::pair<std::string, StoreFactory>> BaselineFactories() {
  return {
      {"Neo4j Store", [] { return std::make_unique<GraphDb>(); }},
      {"Rdf Store", [] { return std::make_unique<RdfStore>(); }},
      {"Row Store", [] { return std::make_unique<RowStore>(); }},
  };
}

/// Wall-clock seconds to run `workload` on the column store built from `ds`.
/// With `num_threads > 1` the workload goes through EvaluateBatch across the
/// engine's pool; the per-query results (and so `result_records`) are
/// bit-identical to the serial loop. A non-zero `timeout_ms` arms a
/// cooperative deadline over the timed run; on expiry the measurement stops
/// early (partial result count, elapsed time so far).
inline double TimeColumnStore(const Dataset& ds,
                              const std::vector<GraphQuery>& workload,
                              size_t* result_records = nullptr,
                              size_t num_threads = 1,
                              const std::string& query_log_path = "",
                              uint64_t timeout_ms = 0) {
  EngineOptions options;
  options.num_threads = num_threads;
  options.query_log.path = query_log_path;
  ColGraphEngine engine = BuildEngine(ds, options);
  CancellationToken deadline;
  const QueryOptions query_options = ArmDeadline(timeout_ms, &deadline);
  size_t total = 0;
  Stopwatch watch;
  double seconds = 0;
  if (num_threads > 1) {
    auto results = engine.EvaluateBatch(workload, query_options);
    seconds = watch.ElapsedSeconds();
    if (results.ok()) {
      for (const MeasureTable& table : *results) total += table.records.size();
    } else if (results.status().IsDeadlineExceeded()) {
      std::fprintf(stderr, "  [timeout] column-store batch: %s\n",
                   results.status().ToString().c_str());
    }
  } else {
    for (const GraphQuery& q : workload) {
      auto result = engine.RunGraphQuery(q, query_options);
      if (result.ok()) {
        total += result->records.size();
        continue;
      }
      if (result.status().IsDeadlineExceeded()) {
        std::fprintf(stderr, "  [timeout] column-store workload: %s\n",
                     result.status().ToString().c_str());
        break;
      }
    }
    seconds = watch.ElapsedSeconds();
  }
  if (result_records != nullptr) *result_records = total;
  FinishQueryLog(&engine);  // timing above excludes the close
  return seconds;
}

/// Wall-clock seconds for one baseline (built fresh, then destroyed).
inline double TimeBaseline(const StoreFactory& factory, const Dataset& ds,
                           const std::vector<GraphQuery>& workload) {
  auto store = factory();
  for (const GraphRecord& r : ds.records) {
    auto status = store->AddRecord(r);
    if (!status.ok()) std::abort();
  }
  if (!store->Seal().ok()) std::abort();
  Stopwatch watch;
  for (const GraphQuery& q : workload) {
    auto result = store->RunGraphQuery(q);
    (void)result;
  }
  return watch.ElapsedSeconds();
}

}  // namespace colgraph::bench
