// Table 2: description of the NY and GNU datasets. The paper's full scale
// (320M / 100M records, 241 GB / 68 GB) is reproduced at a scale factor;
// the structural statistics (distinct edge ids, edges-per-record bounds)
// match the paper exactly.
#include "bench_util.h"
#include "columnstore/persistence.h"

namespace colgraph::bench {
namespace {

void Describe(const Dataset& ds, const RecordGenOptions& options,
              const std::string& paper_records,
              const std::string& paper_measures,
              const std::string& paper_size) {
  ColGraphEngine engine = BuildEngine(ds);
  size_t total_measures = 0, min_edges = SIZE_MAX, max_edges = 0;
  for (const GraphRecord& r : ds.records) {
    total_measures += r.measures.size();
    min_edges = std::min(min_edges, r.elements.size());
    max_edges = std::max(max_edges, r.elements.size());
  }
  Title("Table 2 — " + ds.name + " dataset");
  Row({"statistic", "measured", "paper (full scale)"});
  Row({"graph records", std::to_string(ds.records.size()), paper_records});
  Row({"total measures", std::to_string(total_measures), paper_measures});
  Row({"size on disk", FmtBytes(engine.relation().DiskBytes()), paper_size});
  Row({"distinct edge ids", std::to_string(engine.catalog().size()), "1000"});
  Row({"min edges/record", std::to_string(min_edges),
       std::to_string(options.min_edges)});
  Row({"max edges/record", std::to_string(max_edges),
       std::to_string(options.max_edges)});
  Row({"avg edges/record",
       Fmt(static_cast<double>(total_measures) /
               static_cast<double>(ds.records.size()),
           1),
       ds.name == "NY" ? "85" : "75"});
}

void Run() {
  const RecordGenOptions ny_options = NyRecordOptions();
  const Dataset ny = MakeDataset(MakeNyBase(), "NY", Scaled(200000), 1000,
                                 ny_options, 1001);
  Describe(ny, ny_options, "320 Million", "27.3 Billion", "241 GB");

  const RecordGenOptions gnu_options = GnuRecordOptions();
  const Dataset gnu = MakeDataset(MakeGnuBase(), "GNU", Scaled(65000), 1000,
                                  gnu_options, 2002);
  Describe(gnu, gnu_options, "100 Million", "7.5 Billion", "68 GB");

  PaperNote(
      "scale factor ~1/1600 of the paper's datasets; structural statistics "
      "(edge-id domain, record sizes) match Table 2 exactly.");
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
