// Figure 8: relative execution time of 100 Zipf-distributed queries
// (simple and aggregate, NY and GNU) as the view budget grows. Skewed
// workloads share structure, so a small budget already covers the hot
// queries: the curves drop faster than the uniform ones (paper: up to
// -34% for simple queries, -94% for aggregate queries).
#include "bench_util.h"
#include "views/aggregate_views.h"
#include "views/candidate_generation.h"
#include "views/materializer.h"
#include "views/set_cover.h"

namespace colgraph::bench {
namespace {

struct Series {
  std::string name;
  std::vector<double> relative;        // wall-clock ratio per budget step
  std::vector<double> relative_cost;   // fetched-column ratio (cost model)
};

const std::vector<size_t> kBudgets{0, 20, 40, 60, 80, 100};

Series RunSimple(const Dataset& ds, const std::string& label, uint64_t seed) {
  ColGraphEngine engine = BuildEngine(ds);
  QueryGenerator qgen(&ds.trunks, &ds.universe, seed);
  QueryGenOptions q_options;
  q_options.min_edges = 8;
  q_options.max_edges = 25;
  const auto workload = qgen.ZipfWorkload(100, 30, 1.2, q_options);

  std::vector<std::vector<EdgeId>> universes;
  for (const GraphQuery& q : workload) {
    const auto resolved = engine.query_engine().Resolve(q);
    if (resolved.satisfiable && !resolved.ids.empty()) {
      universes.push_back(resolved.ids);
    }
  }
  auto candidates = GenerateGraphViewCandidates(universes, {});
  if (!candidates.ok()) std::abort();
  const auto selection = GreedyExtendedSetCover(universes, *candidates, 100);
  std::vector<std::pair<GraphViewDef, size_t>> materialized;
  ViewCatalog scratch;
  for (size_t index : selection.selected) {
    auto column = MaterializeGraphView((*candidates)[index],
                                       &engine.mutable_relation(), &scratch);
    if (!column.ok()) std::abort();
    materialized.emplace_back((*candidates)[index], *column);
  }

  Series series{label + " (simple)", {}, {}};
  double baseline = 0, baseline_cost = 0;
  for (size_t budget_pct : kBudgets) {
    const size_t views_used = budget_pct * materialized.size() / 100;
    ViewCatalog trimmed;
    for (size_t i = 0; i < views_used; ++i) {
      trimmed.AddGraphView(materialized[i].first, materialized[i].second);
    }
    QueryEngine qe(&engine.relation(), &engine.catalog(), &trimmed);
    engine.stats().Reset();
    Stopwatch watch;
    for (int rep = 0; rep < 3; ++rep) {
      for (const GraphQuery& q : workload) {
        auto result = qe.RunGraphQuery(q);
        if (!result.ok()) std::abort();
      }
    }
    const double t = watch.ElapsedSeconds() / 3;
    const double cost =
        static_cast<double>(engine.stats().bitmap_columns_fetched);
    if (budget_pct == 0) {
      baseline = t;
      baseline_cost = cost;
    }
    series.relative.push_back(baseline > 0 ? t / baseline : 1.0);
    series.relative_cost.push_back(baseline_cost > 0 ? cost / baseline_cost
                                                     : 1.0);
  }
  return series;
}

Series RunAggregate(const Dataset& ds, const std::string& label,
                    uint64_t seed) {
  ColGraphEngine engine = BuildEngine(ds);
  QueryGenerator qgen(&ds.trunks, &ds.universe, seed);
  QueryGenOptions q_options;
  q_options.min_edges = 8;
  q_options.max_edges = 25;
  const auto workload = qgen.ZipfWorkload(100, 30, 1.2, q_options);

  auto selected =
      SelectAggregateViews(workload, AggFn::kSum, engine.catalog(), 100);
  if (!selected.ok()) std::abort();
  std::vector<std::pair<AggViewDef, size_t>> materialized;
  ViewCatalog scratch;
  for (const AggViewDef& def : *selected) {
    auto column =
        MaterializeAggView(def, &engine.mutable_relation(), &scratch);
    if (!column.ok()) std::abort();
    materialized.emplace_back(def, *column);
  }

  Series series{label + " (aggregate)", {}, {}};
  double baseline = 0, baseline_cost = 0;
  for (size_t budget_pct : kBudgets) {
    const size_t views_used = budget_pct * materialized.size() / 100;
    ViewCatalog trimmed;
    for (size_t i = 0; i < views_used; ++i) {
      trimmed.AddAggView(materialized[i].first, materialized[i].second);
    }
    QueryEngine qe(&engine.relation(), &engine.catalog(), &trimmed);
    engine.stats().Reset();
    Stopwatch watch;
    for (int rep = 0; rep < 3; ++rep) {
      for (const GraphQuery& q : workload) {
        auto result = qe.RunAggregateQuery(q, AggFn::kSum);
        if (!result.ok()) std::abort();
      }
    }
    const double t = watch.ElapsedSeconds() / 3;
    const double cost = static_cast<double>(engine.stats().values_fetched);
    if (budget_pct == 0) {
      baseline = t;
      baseline_cost = cost;
    }
    series.relative.push_back(baseline > 0 ? t / baseline : 1.0);
    series.relative_cost.push_back(baseline_cost > 0 ? cost / baseline_cost
                                                     : 1.0);
  }
  return series;
}

void Run() {
  Title("Figure 8 — relative time of 100 Zipf queries vs space budget");
  PaperNote(
      "skew -> sharing -> faster drop; paper: up to -34% (simple) and "
      "-94% (aggregate) at full budget");

  RecordGenOptions ny_options;
  const Dataset ny = MakeDataset(MakeNyBase(), "NY", Scaled(60000), 1000,
                                 ny_options, 808);
  RecordGenOptions gnu_options;
  gnu_options.min_edges = 45;
  const Dataset gnu = MakeDataset(MakeGnuBase(), "GNU", Scaled(30000), 1000,
                                  gnu_options, 909);

  const std::vector<Series> series{
      RunSimple(ny, "NY", 41),
      RunSimple(gnu, "GNU", 43),
      RunAggregate(ny, "NY", 47),
      RunAggregate(gnu, "GNU", 53),
  };

  std::vector<std::string> header{"budget"};
  for (const auto& s : series) header.push_back(s.name);
  std::printf("  relative wall-clock time:\n");
  Row(header);
  for (size_t b = 0; b < kBudgets.size(); ++b) {
    std::vector<std::string> cells{std::to_string(kBudgets[b]) + "%"};
    for (const auto& s : series) cells.push_back(Fmt(s.relative[b], 3));
    Row(cells);
  }
  std::printf(
      "  relative fetched-column cost (bitmaps for simple, values for "
      "aggregate — the paper's I/O model):\n");
  Row(header);
  for (size_t b = 0; b < kBudgets.size(); ++b) {
    std::vector<std::string> cells{std::to_string(kBudgets[b]) + "%"};
    for (const auto& s : series) cells.push_back(Fmt(s.relative_cost[b], 3));
    Row(cells);
  }
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
