// Figure 7: run time of 100 uniform *aggregate* graph queries (SUM path
// aggregation) on the GNU dataset as the view budget grows. Aggregate
// views pre-consolidate measures along paths, so unlike Figure 6 the
// measure-fetch part itself shrinks too (paper: up to 89% total savings).
#include "bench_util.h"
#include "views/aggregate_views.h"
#include "views/materializer.h"

namespace colgraph::bench {
namespace {

void Run(size_t num_threads, const std::string& metrics_out,
         const std::string& query_log, uint64_t timeout_ms) {
  Title(
      "Figure 7 — run time vs space budget, 100 uniform aggregate queries, "
      "GNU");
  PaperNote(
      "aggregate views shrink both the structural part and the measure "
      "fetch (paper: up to -89% at 100% budget)");

  const Dataset ds = MakeDataset(MakeGnuBase(), "GNU", Scaled(65000), 1000,
                                 GnuRecordOptions(), 707);
  EngineOptions engine_options;
  engine_options.num_threads = num_threads;
  engine_options.query_log.path = query_log;
  ColGraphEngine engine = BuildEngine(ds, engine_options);

  QueryGenerator qgen(&ds.trunks, &ds.universe, 37);
  QueryGenOptions q_options;
  q_options.min_edges = 8;
  q_options.max_edges = 25;
  const auto workload = qgen.UniformWorkload(100, q_options);
  constexpr int kReps = 3;

  // One deadline covers the whole harness run; the sweep stops at the
  // current budget row when it fires.
  CancellationToken deadline;
  const QueryOptions timed_options = ArmDeadline(timeout_ms, &deadline);

  auto selected =
      SelectAggregateViews(workload, AggFn::kSum, engine.catalog(), 100);
  if (!selected.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 selected.status().ToString().c_str());
    std::abort();
  }
  // One batch across the engine's pool when --threads > 1; registration
  // order (and so every column index) matches the serial loop.
  std::vector<std::pair<AggViewDef, size_t>> materialized;
  {
    ViewCatalog scratch;
    Stopwatch mat_watch;
    auto columns = MaterializeAggViews(*selected, &engine.mutable_relation(),
                                       &scratch, engine.pool());
    const double mat_seconds = mat_watch.ElapsedSeconds();
    if (!columns.ok()) std::abort();
    for (size_t i = 0; i < selected->size(); ++i) {
      materialized.emplace_back((*selected)[i], (*columns)[i]);
    }
    std::printf("  materialized %zu aggregate views in %ss (%zu thread%s)\n",
                materialized.size(), Fmt(mat_seconds).c_str(), num_threads,
                num_threads == 1 ? "" : "s");
  }
  std::printf("  greedy selected %zu aggregate views\n", materialized.size());

  Row({"budget", "views", "t total (s)", "measure cols", "values fetched"});
  double baseline_total = 0;
  for (size_t budget_pct : {0u, 10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u,
                            100u}) {
    const size_t views_used = budget_pct * materialized.size() / 100;
    ViewCatalog trimmed;
    for (size_t i = 0; i < views_used; ++i) {
      trimmed.AddAggView(materialized[i].first, materialized[i].second);
    }
    // The engine's log rides along so the trimmed-catalog runs are
    // captured too — one log covers the whole budget sweep.
    QueryEngine qe(&engine.relation(), &engine.catalog(), &trimmed,
                   engine.query_log());

    engine.stats().Reset();
    bool timed_out = false;
    Stopwatch watch;
    for (int rep = 0; rep < kReps && !timed_out; ++rep) {
      for (const GraphQuery& q : workload) {
        auto result = qe.RunAggregateQuery(q, AggFn::kSum, timed_options);
        if (!result.ok()) {
          timed_out = DeadlineFired(result.status(), "fig7 budget sweep");
          break;
        }
      }
    }
    if (timed_out) break;
    const double total = watch.ElapsedSeconds() / kReps;
    if (budget_pct == 0) baseline_total = total;
    Row({std::to_string(budget_pct) + "%", std::to_string(views_used),
         Fmt(total) + (budget_pct == 100
                           ? "  (" + Fmt(100.0 * (baseline_total - total) /
                                             baseline_total,
                                         1) +
                                 "% saved)"
                           : ""),
         std::to_string(engine.stats().measure_columns_fetched / kReps),
         std::to_string(engine.stats().values_fetched / kReps)});
  }

  // Thread-scaling coda: the whole aggregate workload through the batch
  // API. Per-query results are bit-identical to the serial loop.
  if (num_threads > 1) {
    Stopwatch watch;
    auto batch =
        engine.EvaluatePathAggBatch(workload, AggFn::kSum, timed_options);
    const double par_seconds = watch.ElapsedSeconds();
    if (!batch.ok() && DeadlineFired(batch.status(), "fig7 scaling batch")) {
      FinishQueryLog(&engine);
      WriteMetricsOut(metrics_out, "fig7_agg_views", num_threads, &engine);
      return;
    }
    watch.Restart();
    for (const GraphQuery& q : workload) {
      auto result = engine.RunAggregateQuery(q, AggFn::kSum, timed_options);
      if (!result.ok() &&
          DeadlineFired(result.status(), "fig7 scaling serial")) {
        break;
      }
    }
    const double ser_seconds = watch.ElapsedSeconds();
    std::printf("  EvaluatePathAggBatch(100 queries): %ss with %zu threads "
                "vs %ss serial (%.2fx)\n",
                Fmt(par_seconds).c_str(), num_threads,
                Fmt(ser_seconds).c_str(),
                par_seconds > 0 ? ser_seconds / par_seconds : 0.0);
  }

  FinishQueryLog(&engine);
  WriteMetricsOut(metrics_out, "fig7_agg_views", num_threads, &engine);
}

}  // namespace
}  // namespace colgraph::bench

int main(int argc, char** argv) {
  colgraph::bench::Run(colgraph::bench::ThreadCount(argc, argv),
                       colgraph::bench::MetricsOutPath(argc, argv),
                       colgraph::bench::QueryLogPath(argc, argv),
                       colgraph::bench::TimeoutMs(argc, argv));
}
