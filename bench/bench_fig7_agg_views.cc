// Figure 7: run time of 100 uniform *aggregate* graph queries (SUM path
// aggregation) on the GNU dataset as the view budget grows. Aggregate
// views pre-consolidate measures along paths, so unlike Figure 6 the
// measure-fetch part itself shrinks too (paper: up to 89% total savings).
#include "bench_util.h"
#include "views/aggregate_views.h"
#include "views/materializer.h"

namespace colgraph::bench {
namespace {

void Run() {
  Title(
      "Figure 7 — run time vs space budget, 100 uniform aggregate queries, "
      "GNU");
  PaperNote(
      "aggregate views shrink both the structural part and the measure "
      "fetch (paper: up to -89% at 100% budget)");

  const Dataset ds = MakeDataset(MakeGnuBase(), "GNU", Scaled(65000), 1000,
                                 GnuRecordOptions(), 707);
  ColGraphEngine engine = BuildEngine(ds);

  QueryGenerator qgen(&ds.trunks, &ds.universe, 37);
  QueryGenOptions q_options;
  q_options.min_edges = 8;
  q_options.max_edges = 25;
  const auto workload = qgen.UniformWorkload(100, q_options);
  constexpr int kReps = 3;

  auto selected =
      SelectAggregateViews(workload, AggFn::kSum, engine.catalog(), 100);
  if (!selected.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 selected.status().ToString().c_str());
    std::abort();
  }
  std::vector<std::pair<AggViewDef, size_t>> materialized;
  {
    ViewCatalog scratch;
    for (const AggViewDef& def : *selected) {
      auto column =
          MaterializeAggView(def, &engine.mutable_relation(), &scratch);
      if (!column.ok()) std::abort();
      materialized.emplace_back(def, *column);
    }
  }
  std::printf("  greedy selected %zu aggregate views\n", materialized.size());

  Row({"budget", "views", "t total (s)", "measure cols", "values fetched"});
  double baseline_total = 0;
  for (size_t budget_pct : {0u, 10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u,
                            100u}) {
    const size_t views_used = budget_pct * materialized.size() / 100;
    ViewCatalog trimmed;
    for (size_t i = 0; i < views_used; ++i) {
      trimmed.AddAggView(materialized[i].first, materialized[i].second);
    }
    QueryEngine qe(&engine.relation(), &engine.catalog(), &trimmed);

    engine.stats().Reset();
    Stopwatch watch;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const GraphQuery& q : workload) {
        auto result = qe.RunAggregateQuery(q, AggFn::kSum);
        if (!result.ok()) std::abort();
      }
    }
    const double total = watch.ElapsedSeconds() / kReps;
    if (budget_pct == 0) baseline_total = total;
    Row({std::to_string(budget_pct) + "%", std::to_string(views_used),
         Fmt(total) + (budget_pct == 100
                           ? "  (" + Fmt(100.0 * (baseline_total - total) /
                                             baseline_total,
                                         1) +
                                 "% saved)"
                           : ""),
         std::to_string(engine.stats().measure_columns_fetched / kReps),
         std::to_string(engine.stats().values_fetched / kReps)});
  }
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
