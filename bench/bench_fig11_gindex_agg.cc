// Figure 11: 100 uniform *aggregate* graph queries with gIndex fragments
// vs materialized aggregate views. Fragments only speed up matching; the
// aggregate views also pre-consolidate measures, so their advantage is
// larger here than in Figure 10 (paper: up to 6x faster than gIndex_Q).
#include "gindex_util.h"

#include "views/aggregate_views.h"

namespace colgraph::bench {
namespace {

double TimeWorkload(const ColGraphEngine& engine, const ViewCatalog& views,
                    const std::vector<GraphQuery>& workload) {
  QueryEngine qe(&engine.relation(), &engine.catalog(), &views);
  Stopwatch watch;
  for (int rep = 0; rep < 3; ++rep) {
    for (const GraphQuery& q : workload) {
      auto result = qe.RunAggregateQuery(q, AggFn::kSum);
      if (!result.ok()) std::abort();
    }
  }
  return watch.ElapsedSeconds() / 3;
}

void Run() {
  Title(
      "Figure 11 — gIndex fragments vs aggregate views, 100 uniform "
      "aggregate queries");
  PaperNote(
      "fragments cannot reduce measure retrieval; aggregate views can "
      "(paper: views up to 6x faster than gIndex_Q)");

  const Dataset ds = MakeDataset(MakeNyBase(), "NY", Scaled(60000), 1000,
                                 NyRecordOptions(), 432);
  ColGraphEngine engine = BuildEngine(ds);
  QueryGenerator qgen(&ds.trunks, &ds.universe, 67);
  QueryGenOptions q_options;
  q_options.min_edges = 8;
  q_options.max_edges = 25;
  const auto workload = qgen.UniformWorkload(100, q_options);

  const auto frags_q = MineFragments(ds, engine, workload, 1.0, 400, 81);
  const auto frags_qd = MineFragments(ds, engine, workload, 0.2, 400, 83);
  const auto mat_q = MaterializeFragments(frags_q, engine);
  const auto mat_qd = MaterializeFragments(frags_qd, engine);

  auto selected =
      SelectAggregateViews(workload, AggFn::kSum, engine.catalog(), 100);
  if (!selected.ok()) std::abort();
  std::vector<std::pair<AggViewDef, size_t>> mat_views;
  {
    ViewCatalog scratch;
    for (const AggViewDef& def : *selected) {
      auto column =
          MaterializeAggView(def, &engine.mutable_relation(), &scratch);
      if (!column.ok()) std::abort();
      mat_views.emplace_back(def, *column);
    }
  }
  std::printf("  %zu (Q) / %zu (Q+D) fragments; %zu aggregate views\n",
              frags_q.size(), frags_qd.size(), mat_views.size());

  Row({"budget", "gIndex_Q+D (s)", "gIndex_Q (s)", "Views (s)"});
  for (size_t budget_pct : {0u, 20u, 40u, 60u, 80u, 100u}) {
    auto trim_frags =
        [&](const std::vector<std::pair<GraphViewDef, size_t>>& all) {
          ViewCatalog catalog;
          const size_t k = budget_pct * all.size() / 100;
          for (size_t i = 0; i < k; ++i) {
            catalog.AddGraphView(all[i].first, all[i].second);
          }
          return catalog;
        };
    ViewCatalog c_views;
    const size_t k = budget_pct * mat_views.size() / 100;
    for (size_t i = 0; i < k; ++i) {
      c_views.AddAggView(mat_views[i].first, mat_views[i].second);
    }
    const ViewCatalog c_qd = trim_frags(mat_qd);
    const ViewCatalog c_q = trim_frags(mat_q);
    Row({std::to_string(budget_pct) + "%",
         Fmt(TimeWorkload(engine, c_qd, workload)),
         Fmt(TimeWorkload(engine, c_q, workload)),
         Fmt(TimeWorkload(engine, c_views, workload))});
  }
}

}  // namespace
}  // namespace colgraph::bench

int main() { colgraph::bench::Run(); }
