// Standalone replacement for libFuzzer's driver, so the fuzz harnesses
// build and the bounded fuzz_smoke ctest runs on any toolchain (libFuzzer
// needs Clang; this repo's CI also builds with GCC). Accepts the subset of
// libFuzzer's CLI the build uses — `-runs=N -seed=S -max_len=M` plus
// positional corpus files/directories — so the same ctest command works
// against either driver.
//
// Behavior: every corpus input is replayed verbatim first (the regression
// corpus is a set of must-not-crash inputs), then `runs` deterministic
// xorshift64-driven mutants of random corpus picks are fed to the harness.
// Any crash/UB surfaces exactly as it would under libFuzzer (abort / ASan
// report); there is no coverage feedback, which is fine for the smoke
// gate — real exploration happens in the Clang CI job.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

class XorShift64 {
 public:
  explicit XorShift64(uint64_t seed) : state_(seed != 0 ? seed : 0x9E3779B9u) {}

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  size_t Below(size_t bound) {
    return bound == 0 ? 0 : static_cast<size_t>(Next() % bound);
  }

 private:
  uint64_t state_;
};

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Mutate(std::vector<uint8_t>* data, XorShift64* rng, size_t max_len) {
  const size_t mutations = 1 + rng->Below(8);
  for (size_t i = 0; i < mutations; ++i) {
    switch (rng->Below(5)) {
      case 0:  // flip one bit
        if (!data->empty()) {
          (*data)[rng->Below(data->size())] ^=
              static_cast<uint8_t>(1u << rng->Below(8));
        }
        break;
      case 1:  // overwrite one byte
        if (!data->empty()) {
          (*data)[rng->Below(data->size())] =
              static_cast<uint8_t>(rng->Next());
        }
        break;
      case 2:  // truncate
        if (!data->empty()) data->resize(rng->Below(data->size() + 1));
        break;
      case 3:  // insert a random byte
        if (data->size() < max_len) {
          data->insert(data->begin() +
                           static_cast<std::ptrdiff_t>(
                               rng->Below(data->size() + 1)),
                       static_cast<uint8_t>(rng->Next()));
        }
        break;
      case 4:  // duplicate a slice (grows structure-shaped inputs)
        if (!data->empty() && data->size() < max_len) {
          const size_t begin = rng->Below(data->size());
          const size_t len =
              std::min(1 + rng->Below(32), data->size() - begin);
          std::vector<uint8_t> slice(data->begin() +
                                         static_cast<std::ptrdiff_t>(begin),
                                     data->begin() +
                                         static_cast<std::ptrdiff_t>(begin +
                                                                     len));
          data->insert(data->begin() +
                           static_cast<std::ptrdiff_t>(
                               rng->Below(data->size() + 1)),
                       slice.begin(), slice.end());
        }
        break;
    }
  }
  if (data->size() > max_len) data->resize(max_len);
}

bool ParseSizeFlag(const char* arg, const char* name, uint64_t* out) {
  const size_t name_len = std::strlen(name);
  if (std::strncmp(arg, name, name_len) != 0) return false;
  *out = std::strtoull(arg + name_len, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 256;
  uint64_t seed = 1;
  uint64_t max_len = 65536;
  std::vector<std::filesystem::path> corpus_paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (ParseSizeFlag(arg, "-runs=", &value)) {
      runs = value;
    } else if (ParseSizeFlag(arg, "-seed=", &value)) {
      seed = value;
    } else if (ParseSizeFlag(arg, "-max_len=", &value)) {
      max_len = value;
    } else if (arg[0] == '-') {
      // Ignore other libFuzzer flags for CLI compatibility.
    } else {
      corpus_paths.emplace_back(arg);
    }
  }

  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::directory_iterator(path, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) corpus.push_back(ReadFile(file));
    } else if (std::filesystem::is_regular_file(path, ec)) {
      corpus.push_back(ReadFile(path));
    }
  }

  // Replay the corpus verbatim: these are regression inputs that must be
  // handled cleanly (distilled from torture tests and past fuzz findings).
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  XorShift64 rng(seed);
  std::vector<uint8_t> scratch;
  for (uint64_t i = 0; i < runs; ++i) {
    if (corpus.empty()) {
      scratch.assign(rng.Below(static_cast<size_t>(max_len)), 0);
      for (auto& b : scratch) b = static_cast<uint8_t>(rng.Next());
    } else {
      scratch = corpus[rng.Below(corpus.size())];
      Mutate(&scratch, &rng, static_cast<size_t>(max_len));
    }
    LLVMFuzzerTestOneInput(scratch.data(), scratch.size());
  }

  std::fprintf(stderr,
               "standalone fuzz driver: %llu corpus inputs + %llu mutants, "
               "no crashes\n",
               static_cast<unsigned long long>(corpus.size()),
               static_cast<unsigned long long>(runs));
  return 0;
}
