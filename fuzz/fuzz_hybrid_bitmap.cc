// Fuzz harness for HybridBitmap::FromRawChecked — the validator between
// on-disk container bytes and the compressed AND/OR kernels. Invariant:
// for ANY word buffer and ANY claimed bit count, FromRawChecked either
// returns a bitmap whose containers satisfy every structural invariant
// (safe to Test / And / Or / re-serialize) or Status::Corruption — never a
// crash, OOB read, or overflow.
//
// Structure-aware: besides probing the input's claimed bit count, the
// harness derives the bit count the descriptor table itself implies (last
// container key + one full chunk) so mutants regularly reach the *accept*
// path — the container walk that validation exists to protect. Accepted
// decodes are exercised hard: full materialization, a round-trip that must
// re-serialize byte-identically, and a self-AND that must be a fixpoint.

#include <cstdint>
#include <cstring>
#include <vector>

#include "bitmap/hybrid_bitmap.h"
#include "util/check.h"
#include "util/status.h"

namespace {

void CheckFromRaw(const std::vector<uint64_t>& buffer, uint64_t num_bits) {
  const colgraph::StatusOr<colgraph::HybridBitmap> result =
      colgraph::HybridBitmap::FromRawChecked(buffer,
                                             static_cast<size_t>(num_bits));
  if (!result.ok()) {
    COLGRAPH_CHECK(result.status().IsCorruption())
        << "FromRawChecked must fail as Corruption, got: "
        << result.status().ToString();
    return;
  }
  const colgraph::HybridBitmap& hybrid = result.value();

  // Accepted: every downstream consumer must now be safe.
  // Re-serialize byte-identically (the codec is canonical)...
  const std::vector<uint64_t> raw = hybrid.ToRaw();
  COLGRAPH_CHECK(raw == buffer) << "accepted buffer is not canonical";

  // ...and run the compressed kernels: X AND X == X.
  const colgraph::HybridBitmap self_and =
      colgraph::HybridBitmap::And(hybrid, hybrid);
  COLGRAPH_CHECK_EQ(self_and.Count(), hybrid.Count());

  // Materialization allocates num_bits/8 bytes, so only do it for sane
  // claims. A tiny container set under a huge num_bits is a *valid*
  // mostly-trailing-zeros bitmap — accepting it is correct, and in
  // production num_bits is the snapshot's sanity-capped record count, not
  // attacker data; materializing it here would just OOM the harness.
  if (num_bits > (uint64_t{1} << 26)) return;
  const colgraph::Bitmap bits = hybrid.ToBitmap();
  COLGRAPH_CHECK_EQ(bits.size(), static_cast<size_t>(num_bits));
  COLGRAPH_CHECK_EQ(bits.Count(), hybrid.Count());
  COLGRAPH_CHECK(self_and.ToBitmap() == bits);
  colgraph::Bitmap inplace(bits.size());
  hybrid.OrInto(&inplace);
  COLGRAPH_CHECK(inplace == bits);
}

// The bit count the descriptor table implies: enough chunks to hold the
// highest container key. Mirrors only the layout, not the validation.
uint64_t ImpliedBits(const std::vector<uint64_t>& buffer) {
  if (buffer.empty()) return 0;
  const uint64_t n = buffer[0];
  if (n == 0 || n > buffer.size() - 1) return 0;
  const uint64_t last_key = buffer[static_cast<size_t>(n)] & 0xFFFFFFFFull;
  if (last_key >= (uint64_t{1} << 16)) return 0;  // invalid anyway
  return (last_key + 1) * colgraph::HybridBitmap::kChunkBits;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Layout: [u64 claimed bit count][u64 words...]; a short tail is dropped.
  uint64_t claimed_bits = 0;
  if (size >= sizeof(claimed_bits)) {
    std::memcpy(&claimed_bits, data, sizeof(claimed_bits));
    data += sizeof(claimed_bits);
    size -= sizeof(claimed_bits);
  }
  // Cap the claim so deep container validation is reachable; the uncapped
  // probe keeps the plain bound check honest against absurd counts.
  const uint64_t capped_bits = claimed_bits % ((uint64_t{1} << 22) + 1);

  std::vector<uint64_t> words(size / sizeof(uint64_t));
  if (!words.empty()) {
    std::memcpy(words.data(), data, words.size() * sizeof(uint64_t));
  }

  CheckFromRaw(words, capped_bits);
  CheckFromRaw(words, claimed_bits);  // uncapped: bound-check path
  CheckFromRaw(words, 0);

  // Derived counts from the descriptor table: a full final chunk and an
  // unaligned tail inside it — the accept path needs a plausible num_bits.
  const uint64_t implied = ImpliedBits(words);
  if (implied > 0 && implied <= (uint64_t{1} << 22)) {
    CheckFromRaw(words, implied);
    CheckFromRaw(words, implied - (claimed_bits % 63 + 1));
  }
  return 0;
}
