// Fuzz harness for the relation snapshot codec (v1 legacy through the v4
// extent layout). Invariant under test: DecodeRelation on ANY byte string
// returns a clean Status — never a crash, out-of-bounds access, or
// unbounded allocation.
//
// Structure-aware: each input is decoded twice. The raw pass exercises the
// magic/footer/CRC rejection paths; the fixup pass recomputes every
// section CRC and the footer over the (mutated) payload bytes so the
// input penetrates *past* checksum validation into the real parsing code
// (header bounds, extent-directory validation, column decode, EWAH
// validation). Without the fixup a checksummed format would deflect
// nearly every mutant at the CRC check and the deep paths would never be
// fuzzed.

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "columnstore/persistence.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/status.h"

namespace {

constexpr uint32_t kRelationMagic = 0x4347524C;   // "CGRL" (persistence.cc)
constexpr uint32_t kFooterMagic = 0x43474654;     // io_util.cc footer
constexpr size_t kFooterBytes = 16;               // [crc u32][len u64][magic u32]
constexpr size_t kSectionHeaderBytes = 12;        // [len u64][crc u32]

void CheckDecode(std::vector<char> data) {
  const colgraph::StatusOr<colgraph::MasterRelation> result =
      colgraph::DecodeRelation(std::move(data), "fuzz input");
  if (!result.ok()) {
    const colgraph::Status& st = result.status();
    COLGRAPH_CHECK(st.IsCorruption() || st.IsInvalidArgument())
        << "snapshot decode must fail cleanly, got: " << st.ToString();
  }
}

// Rewrites the preamble to the relation magic, re-checksums every section
// whose length prefix is in bounds, and rebuilds the footer, so the
// mutated payload bytes — not the stale CRCs — decide how decoding goes.
std::vector<char> FixupChecksums(std::vector<char> data) {
  if (data.size() < 2 * sizeof(uint32_t)) return data;
  std::memcpy(data.data(), &kRelationMagic, sizeof(kRelationMagic));
  uint32_t version = 0;
  std::memcpy(&version, data.data() + 4, sizeof(version));
  if (version < 2) return data;  // v1 has no checksums to fix
  if (data.size() < 2 * sizeof(uint32_t) + kFooterBytes) return data;

  const size_t footer_pos = data.size() - kFooterBytes;
  // v2/v3 bodies are wall-to-wall sections. A v4 body has exactly two
  // (header, extent directory) followed by raw page-aligned column
  // extents with no section framing — walking past the second section
  // would misread extent bytes as section headers and stamp bogus "CRCs"
  // into the very payloads under test, so cap the walk there. Extents
  // carry no per-extent checksum; the footer rebuild below is all the
  // fixing they need.
  size_t sections_left =
      version >= 4 ? 2 : std::numeric_limits<size_t>::max();
  size_t pos = 2 * sizeof(uint32_t);
  while (sections_left > 0 && footer_pos - pos >= kSectionHeaderBytes) {
    uint64_t len = 0;
    std::memcpy(&len, data.data() + pos, sizeof(len));
    if (len > footer_pos - pos - kSectionHeaderBytes) break;
    const uint32_t crc = colgraph::Crc32c(
        data.data() + pos + kSectionHeaderBytes, static_cast<size_t>(len));
    std::memcpy(data.data() + pos + sizeof(len), &crc, sizeof(crc));
    pos += kSectionHeaderBytes + static_cast<size_t>(len);
    --sections_left;
  }

  const uint32_t file_crc = colgraph::Crc32c(data.data(), footer_pos);
  const uint64_t body_len = footer_pos;
  std::memcpy(data.data() + footer_pos, &file_crc, sizeof(file_crc));
  std::memcpy(data.data() + footer_pos + 4, &body_len, sizeof(body_len));
  std::memcpy(data.data() + footer_pos + 12, &kFooterMagic,
              sizeof(kFooterMagic));
  return data;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::vector<char> raw(reinterpret_cast<const char*>(data),
                        reinterpret_cast<const char*>(data) + size);
  CheckDecode(raw);
  CheckDecode(FixupChecksums(std::move(raw)));
  return 0;
}
