// Fuzz harness for the text query parser (query/parser.h). Invariant:
// ParseQuery on ANY string — including non-ASCII bytes, deep nesting, and
// numbers beyond uint64 — returns OK or InvalidArgument, never crashes,
// overflows the stack, or trips UB in <cctype>.
//
// This harness surfaced the parser bugs fixed alongside it: unbounded
// '(' recursion (stack overflow), ctype calls on negative char values
// (UB for bytes >= 0x80), and silent NodeId truncation of huge literals.
// Their distilled inputs live in fuzz/corpus/fuzz_parser/ as regressions.

#include <cstdint>
#include <string>

#include "query/parser.h"
#include "util/check.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const colgraph::StatusOr<colgraph::ParsedQuery> result =
      colgraph::ParseQuery(text);
  if (!result.ok()) {
    COLGRAPH_CHECK(result.status().IsInvalidArgument())
        << "parser must fail as InvalidArgument, got: "
        << result.status().ToString();
  }
  return 0;
}
