// Fuzz harness for EwahBitmap::FromRawChecked — the validator that stands
// between on-disk bytes and the trusting decompression paths (ToBitmap /
// ForEachWord). Invariant: for ANY word buffer and ANY claimed bit count,
// FromRawChecked either returns a bitmap that is safe to fully decompress
// or Status::Corruption — never a crash, OOB read, or overflow.
//
// Structure-aware: besides the bit count taken from the input header, the
// harness walks the marker stream the same way the validator does and
// derives the bit count the buffer would actually decode to, then probes
// that too — that is the only way mutants regularly reach the *accept*
// path, whose decompression is the code the validation exists to protect.

#include <cstdint>
#include <cstring>
#include <vector>

#include "bitmap/ewah_bitmap.h"
#include "util/check.h"
#include "util/status.h"

namespace {

// Mirrors the marker layout in ewah_bitmap.h: bit 0 = run bit, bits 1..32
// = run words, bits 33..63 = literal words.
uint64_t DecodedWords(const std::vector<uint64_t>& buffer) {
  uint64_t words = 0;
  size_t pos = 0;
  while (pos < buffer.size()) {
    const uint64_t marker = buffer[pos++];
    const uint64_t run_words = (marker >> 1) & 0xFFFFFFFFull;
    const uint64_t literal_words = marker >> 33;
    words += run_words + literal_words;
    if (literal_words > buffer.size() - pos) return words;  // invalid anyway
    pos += static_cast<size_t>(literal_words);
    if (words > (uint64_t{1} << 40)) return words;  // already implausible
  }
  return words;
}

void CheckFromRaw(std::vector<uint64_t> buffer, uint64_t num_bits) {
  const colgraph::StatusOr<colgraph::EwahBitmap> result =
      colgraph::EwahBitmap::FromRawChecked(std::move(buffer),
                                           static_cast<size_t>(num_bits));
  if (!result.ok()) {
    COLGRAPH_CHECK(result.status().IsCorruption())
        << "FromRawChecked must fail as Corruption, got: "
        << result.status().ToString();
    return;
  }
  // Accepted: the whole point of the check is that decompression is now
  // safe. Exercise it.
  const colgraph::Bitmap bits = result.value().ToBitmap();
  COLGRAPH_CHECK_EQ(bits.size(), static_cast<size_t>(num_bits));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Layout: [u64 claimed bit count][u64 words...]; a short tail is dropped.
  uint64_t claimed_bits = 0;
  if (size >= sizeof(claimed_bits)) {
    std::memcpy(&claimed_bits, data, sizeof(claimed_bits));
    data += sizeof(claimed_bits);
    size -= sizeof(claimed_bits);
  }
  // Cap the claim: a count in the exabit range is rejected before any
  // interesting code runs, and the harness wants deep coverage, not a
  // trivial bound check. (FromRawChecked itself must survive any value —
  // the uncapped probe below keeps that honest.)
  const uint64_t capped_bits = claimed_bits % ((uint64_t{1} << 22) + 1);

  std::vector<uint64_t> words(size / sizeof(uint64_t));
  if (!words.empty()) {
    std::memcpy(words.data(), data, words.size() * sizeof(uint64_t));
  }

  CheckFromRaw(words, capped_bits);
  CheckFromRaw(words, claimed_bits);  // uncapped: bound-check path
  CheckFromRaw(words, 0);

  // Derived count: what the marker stream actually encodes. When the
  // stream is well-formed this hits the accept path.
  const uint64_t decoded_words = DecodedWords(words);
  if (decoded_words <= (uint64_t{1} << 22) / 64) {
    const uint64_t full = decoded_words * 64;
    CheckFromRaw(words, full);
    if (full > 0) {
      // Partial last word: num_bits that doesn't land on a word boundary.
      CheckFromRaw(words, full - (claimed_bits % 63 + 1));
    }
  }
  return 0;
}
