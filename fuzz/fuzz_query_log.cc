// Fuzz harness for the query-log reader (obs/query_log_reader.h).
// Invariant: DecodeQueryLog on ANY byte string returns a clean Status —
// never a crash, OOB access, or unbounded allocation — and every record a
// successful decode yields rebuilds a GraphQuery via ToQuery() without
// tripping any internal check.
//
// Structure-aware: the raw pass exercises magic/framing/CRC rejection; the
// fixup pass rewrites the header and re-checksums every frame whose length
// prefix is in bounds, so mutated *payload* bytes reach the record
// deserializer (kind/edge-count/phase-timing parsing) instead of dying at
// the frame CRC.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "obs/query_log.h"
#include "obs/query_log_reader.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/status.h"

namespace {

constexpr size_t kFrameHeaderBytes = 13;  // u8 type + u64 len + u32 crc

void CheckDecode(const std::vector<char>& data) {
  const colgraph::StatusOr<std::vector<colgraph::obs::QueryLogRecord>>
      result = colgraph::obs::DecodeQueryLog(data, "fuzz input");
  if (!result.ok()) {
    const colgraph::Status& st = result.status();
    COLGRAPH_CHECK(st.IsCorruption() || st.IsInvalidArgument())
        << "query-log decode must fail cleanly, got: " << st.ToString();
    return;
  }
  // A decoded record must be usable: replay rebuilds the query from it.
  for (const colgraph::obs::QueryLogRecord& record : result.value()) {
    const colgraph::GraphQuery query = record.ToQuery();
    (void)query;
  }
}

std::vector<char> FixupChecksums(std::vector<char> data) {
  if (data.size() < 2 * sizeof(uint32_t)) return data;
  std::memcpy(data.data(), &colgraph::obs::kQueryLogMagic, sizeof(uint32_t));
  std::memcpy(data.data() + 4, &colgraph::obs::kQueryLogVersion,
              sizeof(uint32_t));
  size_t pos = 2 * sizeof(uint32_t);
  while (data.size() - pos >= kFrameHeaderBytes) {
    uint64_t len = 0;
    std::memcpy(&len, data.data() + pos + 1, sizeof(len));
    if (len > data.size() - pos - kFrameHeaderBytes) break;
    const uint32_t crc = colgraph::Crc32c(data.data() + pos + kFrameHeaderBytes,
                                          static_cast<size_t>(len));
    std::memcpy(data.data() + pos + 1 + sizeof(len), &crc, sizeof(crc));
    pos += kFrameHeaderBytes + static_cast<size_t>(len);
  }
  return data;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::vector<char> raw(reinterpret_cast<const char*>(data),
                        reinterpret_cast<const char*>(data) + size);
  CheckDecode(raw);
  CheckDecode(FixupChecksums(std::move(raw)));
  return 0;
}
