// Supply-chain delivery analytics: the paper's motivating scenario
// (Figure 1 and queries Q1-Q3 of Section 2).
//
// A delivery network connects production lines {A,B,C} through hubs —
// region 2 holds {D,E,F,G} — to customer end-points {I,J,K}. Every customer
// order produces a graph record: the routes its articles took, annotated
// with shipping hours per leg. The example ingests thousands of such
// records and answers:
//   Q1  delivery time along the path [A,D,E,G,I]
//   Q2  total hours on the leased legs [C,H] and [F,J,K] (logical OR of
//       two graph queries)
//   Q3  longest delivery time from a region-1 production line to end-point
//       I via region-2 hubs (composite paths + MAX, built with path-join)
// and then materializes an aggregate view on the region-2 corridor to show
// the query rewrite cutting fetched columns.
//
// Build & run:  cmake --build build && ./build/examples/scm_delivery
#include <cstdio>
#include <map>

#include "core/engine.h"
#include "graph/path.h"
#include "util/random.h"

using namespace colgraph;

namespace {

// Location ids.
enum : NodeId { A = 1, B, C, D, E, F, G, H, I, J, K };
const std::map<NodeId, const char*> kNames{
    {A, "A"}, {B, "B"}, {C, "C"}, {D, "D"}, {E, "E"}, {F, "F"},
    {G, "G"}, {H, "H"}, {I, "I"}, {J, "J"}, {K, "K"}};

NodeRef N(NodeId id) { return NodeRef{id, 0}; }

// The delivery network of Figure 1.
std::vector<Edge> Network() {
  return {
      Edge{N(A), N(D)}, Edge{N(A), N(B)}, Edge{N(B), N(F)},
      Edge{N(D), N(E)}, Edge{N(E), N(G)}, Edge{N(G), N(I)},
      Edge{N(F), N(J)}, Edge{N(J), N(K)}, Edge{N(C), N(H)},
      Edge{N(H), N(K)},
  };
}

// Route templates an order may take (each a path through the network).
const std::vector<std::vector<NodeId>> kRoutes{
    {A, D, E, G, I},     // own route via region 2
    {A, B, F, J, K},     // own route via F
    {C, H, K},           // leased carrier
    {B, F, J, K},        // partial, production line B
};

std::string PathName(const std::vector<NodeId>& route) {
  std::string s = "[";
  for (size_t i = 0; i < route.size(); ++i) {
    if (i) s += ",";
    s += kNames.at(route[i]);
  }
  return s + "]";
}

}  // namespace

int main() {
  std::printf("SCM delivery analytics (Figure 1 / queries Q1-Q3)\n\n");

  ColGraphEngine engine;
  engine.RegisterUniverse(Network());

  // Ingest 5000 order records: each order ships over 1-3 route templates
  // with per-leg shipping hours.
  Rng rng(2024);
  const size_t kOrders = 5000;
  for (size_t order = 0; order < kOrders; ++order) {
    GraphRecord record;
    record.id = order;
    const size_t num_routes = rng.Uniform(1, 3);
    std::map<std::pair<NodeId, NodeId>, double> legs;
    for (size_t r = 0; r < num_routes; ++r) {
      const auto& route = kRoutes[rng.Uniform(0, kRoutes.size() - 1)];
      for (size_t i = 0; i + 1 < route.size(); ++i) {
        legs[{route[i], route[i + 1]}] = rng.UniformReal(1.0, 24.0);
      }
    }
    for (const auto& [leg, hours] : legs) {
      record.elements.push_back(Edge{N(leg.first), N(leg.second)});
      record.measures.push_back(hours);
    }
    if (!engine.AddRecord(record).ok()) return 1;
  }
  if (!engine.Seal().ok()) return 1;
  std::printf("ingested %zu order records over %zu legs\n\n",
              engine.num_records(), engine.catalog().size());

  // --- Q1: delivery time along [A,D,E,G,I]. ---
  const GraphQuery q1 = GraphQuery::FromPath({N(A), N(D), N(E), N(G), N(I)});
  auto q1_result = engine.RunAggregateQuery(q1, AggFn::kSum);
  if (!q1_result.ok()) return 1;
  double q1_total = 0;
  for (double v : q1_result->values[0]) q1_total += v;
  std::printf("Q1: %zu orders shipped via %s; avg delivery %.1f hours\n",
              q1_result->records.size(), PathName({A, D, E, G, I}).c_str(),
              q1_result->records.empty()
                  ? 0.0
                  : q1_total / static_cast<double>(q1_result->records.size()));

  // --- Q2: cost of the leased legs [C,H] and [F,J,K]. ---
  // Logical OR of two graph queries locates orders using either leased
  // route; the leased legs' measures are then fetched for exactly those.
  const GraphQuery leased1 = GraphQuery::FromPath({N(C), N(H)});
  const GraphQuery leased2 = GraphQuery::FromPath({N(F), N(J), N(K)});
  const Bitmap either = QueryEngine::OrSets(engine.Match(leased1),
                                            engine.Match(leased2));
  std::vector<EdgeId> leased_edges;
  for (const Edge& e : {Edge{N(C), N(H)}, Edge{N(F), N(J)}, Edge{N(J), N(K)}}) {
    leased_edges.push_back(*engine.catalog().Lookup(e));
  }
  const MeasureTable leased =
      engine.query_engine().FetchMeasures(either, leased_edges);
  double leased_hours = 0;
  size_t leased_legs = 0;
  for (const auto& col : leased.columns) {
    for (double v : col) {
      if (v == v) {  // skip NaN (order did not use that leg)
        leased_hours += v;
        ++leased_legs;
      }
    }
  }
  std::printf(
      "Q2: %zu orders used a leased route; %zu leased legs totalling %.0f "
      "carrier hours\n",
      either.Count(), leased_legs, leased_hours);

  // --- Q3: longest delivery from region 1 to I via region-2 hubs. ---
  // Build the relevant paths with the path-join operator:
  // [A,D) ⋈ [D,E,G) ⋈ [G,I] — every source-to-I path crossing region 2.
  const Path into_region({N(A), N(D)}, false, true);
  const Path corridor({N(D), N(E), N(G)}, false, true);
  const Path out_region({N(G), N(I)}, false, false);
  auto joined = into_region.Join(corridor);
  if (!joined.ok()) return 1;
  auto full = joined->Join(out_region);
  if (!full.ok()) return 1;
  std::printf("Q3: composed path %s via path-join\n",
              full->ToString().c_str());
  const GraphQuery q3 = GraphQuery::FromPath(full->nodes());
  auto q3_result = engine.RunAggregateQuery(q3, AggFn::kSum);
  if (!q3_result.ok()) return 1;
  double longest = 0;
  for (double v : q3_result->values[0]) longest = std::max(longest, v);
  std::printf("    longest region-1 -> I delivery via region 2: %.1f hours\n",
              longest);

  // --- Materialize the region-2 corridor as an aggregate view. ---
  AggViewDef corridor_view;
  corridor_view.fn = AggFn::kSum;
  for (const Edge& e :
       {Edge{N(D), N(E)}, Edge{N(E), N(G)}}) {
    corridor_view.elements.push_back(*engine.catalog().Lookup(e));
  }
  if (!engine.MaterializeView(corridor_view).ok()) return 1;

  engine.stats().Reset();
  auto rewritten = engine.RunAggregateQuery(q1, AggFn::kSum);
  if (!rewritten.ok()) return 1;
  // Pre-aggregated segments change the floating-point association order,
  // so compare with a tolerance.
  bool identical = rewritten->records == q1_result->records;
  for (size_t i = 0; identical && i < rewritten->values[0].size(); ++i) {
    identical = std::abs(rewritten->values[0][i] - q1_result->values[0][i]) <
                1e-9 * (1.0 + std::abs(q1_result->values[0][i]));
  }
  std::printf(
      "\nwith the region-2 corridor view materialized, Q1 touches %llu "
      "measure columns (4 without it) and returns identical answers: %s\n",
      static_cast<unsigned long long>(
          engine.stats().measure_columns_fetched),
      identical ? "yes" : "NO");
  return 0;
}
