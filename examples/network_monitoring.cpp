// P2P network monitoring: the paper's second dataset scenario (Section
// 7.1). A network administrator records, per monitoring interval, the
// link-level traffic of a Gnutella-style overlay as one graph record per
// interval/flow group, then analyzes utilization across routes.
//
// Demonstrates the full analytics pipeline on synthetic data:
//   1. build the overlay and a 1000-link universe,
//   2. ingest tens of thousands of traffic records (random walks = flows),
//   3. run a skewed (Zipf) workload of route-utilization queries,
//   4. let the engine select & materialize graph + aggregate views for the
//      workload and report the cost reduction.
//
// Build & run:  cmake --build build && ./build/examples/network_monitoring
#include <cstdio>

#include "core/engine.h"
#include "workload/base_graphs.h"
#include "workload/query_generator.h"
#include "workload/record_generator.h"

using namespace colgraph;

int main() {
  std::printf("P2P network monitoring (GNU-style dataset)\n\n");

  // 1. Overlay + universe.
  const DirectedGraph overlay = MakePowerLawNetwork(2000, 3, 99);
  auto universe = SelectEdgeUniverse(overlay, 1000, 7);
  if (!universe.ok()) {
    std::fprintf(stderr, "%s\n", universe.status().ToString().c_str());
    return 1;
  }
  std::printf("overlay: %zu hosts, %zu links; monitoring universe: %zu links\n",
              overlay.num_nodes(), overlay.num_edges(),
              universe->num_edges());

  // 2. Traffic records: each record is the set of links one flow group
  //    traversed, measured in MB transferred.
  RecordGenOptions rec_options;
  rec_options.min_edges = 45;
  rec_options.max_edges = 100;
  rec_options.measure_lo = 0.1;   // MB
  rec_options.measure_hi = 900.0;
  WalkRecordGenerator generator(&*universe, rec_options, 13);

  ColGraphEngine engine;
  std::vector<std::vector<NodeRef>> trunks;
  const size_t kRecords = 30000;
  for (size_t i = 0; i < kRecords; ++i) {
    std::vector<NodeRef> trunk;
    const GraphRecord record = generator.Next(&trunk);
    trunks.push_back(std::move(trunk));
    if (!engine.AddRecord(record).ok()) return 1;
  }
  if (!engine.Seal().ok()) return 1;
  std::printf("ingested %zu traffic records (%s)\n\n", engine.num_records(),
              "one per flow group");

  // 3. Route-utilization workload: administrators look at the same hot
  //    routes over and over -> Zipf-distributed path queries.
  QueryGenerator qgen(&trunks, &*universe, 17);
  QueryGenOptions q_options;
  q_options.min_edges = 6;
  q_options.max_edges = 20;
  const auto workload = qgen.ZipfWorkload(100, 25, 1.2, q_options);

  // Baseline cost: no views.
  QueryOptions no_views;
  no_views.use_views = false;
  engine.stats().Reset();
  double total_mb = 0;
  size_t total_flows = 0;
  for (const GraphQuery& q : workload) {
    auto result = engine.RunAggregateQuery(q, AggFn::kSum, no_views);
    if (!result.ok()) return 1;
    for (const auto& per_path : result->values) {
      for (double v : per_path) total_mb += v;
    }
    total_flows += result->records.size();
  }
  const auto baseline = engine.stats();
  std::printf(
      "workload: 100 route queries matched %zu flow traversals, %.1f GB "
      "total transfer\n",
      total_flows, total_mb / 1024.0);
  std::printf("  baseline cost: %llu bitmap + %llu measure column fetches\n",
              static_cast<unsigned long long>(baseline.bitmap_columns_fetched),
              static_cast<unsigned long long>(
                  baseline.measure_columns_fetched));

  // 4. Select and materialize views for the workload.
  auto graph_views = engine.SelectAndMaterializeGraphViews(workload, 20);
  auto agg_views =
      engine.SelectAndMaterializeAggViews(workload, AggFn::kSum, 20);
  if (!graph_views.ok() || !agg_views.ok()) return 1;
  std::printf("\nmaterialized %zu graph views and %zu aggregate views\n",
              *graph_views, *agg_views);

  engine.stats().Reset();
  double total_mb_views = 0;
  for (const GraphQuery& q : workload) {
    auto result = engine.RunAggregateQuery(q, AggFn::kSum);
    if (!result.ok()) return 1;
    for (const auto& per_path : result->values) {
      for (double v : per_path) total_mb_views += v;
    }
  }
  const auto with_views = engine.stats();
  std::printf("  rewritten cost: %llu bitmap + %llu measure column fetches\n",
              static_cast<unsigned long long>(
                  with_views.bitmap_columns_fetched),
              static_cast<unsigned long long>(
                  with_views.measure_columns_fetched));
  std::printf("  answers identical: %s\n",
              std::abs(total_mb - total_mb_views) < 1e-6 * total_mb
                  ? "yes"
                  : "NO");
  const double saved =
      100.0 *
      (1.0 - static_cast<double>(with_views.bitmap_columns_fetched +
                                 with_views.measure_columns_fetched) /
                 static_cast<double>(baseline.bitmap_columns_fetched +
                                     baseline.measure_columns_fetched));
  std::printf("  column fetches saved by views: %.1f%%\n", saved);
  return 0;
}
