// colgraph_shell — an interactive (and scriptable) shell over the engine,
// the fourth example application. Feed it commands on stdin:
//
//   load <trace-file>     ingest walk records (see workload/trace_loader.h)
//   seal                  freeze the relation; enables queries
//   append <trace-file>   incremental ingest (views refresh automatically)
//   query <text>          run a query in the text language, e.g.
//                           query [1,2,3] AND NOT [3,4]
//                           query SUM [1,2,3,4]
//   autoviews <budget>    select & materialize views for the queries run
//                         so far in this session
//   dump                  print the master relation (Table 1 layout)
//   save <file>           persist the whole engine state
//   open <file>           load a previously saved engine
//   stats                 column-fetch counters since the last `stats`
//   quit
//
// Example session:
//   printf 'load t.txt\nseal\nquery [1,2]\nquit\n' | ./colgraph_shell
#include <cstdio>
#include <iostream>
#include <sstream>

#include "columnstore/debug.h"
#include "core/engine.h"
#include "core/engine_io.h"
#include "query/parser.h"
#include "workload/trace_loader.h"

using namespace colgraph;

namespace {

void PrintMatch(const Bitmap& matches) {
  std::printf("%zu record(s) match:", matches.Count());
  size_t shown = 0;
  matches.ForEachSetBit([&](size_t r) {
    if (shown < 10) std::printf(" r%zu", r);
    ++shown;
  });
  if (shown > 10) std::printf(" ... (+%zu more)", shown - 10);
  std::printf("\n");
}

void PrintAggregate(const PathAggResult& result, AggFn fn) {
  std::printf("%zu matching record(s), %zu maximal path(s)\n",
              result.records.size(), result.paths.size());
  for (size_t p = 0; p < result.paths.size(); ++p) {
    double lo = 0, hi = 0, sum = 0;
    for (size_t r = 0; r < result.values[p].size(); ++r) {
      const double v = result.values[p][r];
      if (r == 0) lo = hi = v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    std::printf("  path %s: %s per record in [%.3f, %.3f], mean %.3f\n",
                result.paths[p].ToString().c_str(), AggFnName(fn), lo, hi,
                result.values[p].empty()
                    ? 0.0
                    : sum / static_cast<double>(result.values[p].size()));
  }
}

}  // namespace

int main() {
  ColGraphEngine engine;
  std::vector<GraphQuery> history;  // workload for `autoviews`

  std::string line;
  std::printf("colgraph shell — type commands (quit to exit)\n");
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;

    if (command == "quit" || command == "exit") break;

    if (command == "load" || command == "append") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: %s <trace-file>\n", command.c_str());
        continue;
      }
      if (command == "append") {
        if (auto s = engine.BeginAppend(); !s.ok()) {
          std::printf("error: %s\n", s.ToString().c_str());
          continue;
        }
      }
      const auto added = IngestTraceFile(&engine, path);
      if (!added.ok()) {
        std::printf("error: %s\n", added.status().ToString().c_str());
        continue;
      }
      if (command == "append") {
        if (auto s = engine.FinishAppend(); !s.ok()) {
          std::printf("error: %s\n", s.ToString().c_str());
          continue;
        }
      }
      std::printf("ingested %zu record(s); total %zu\n", *added,
                  engine.num_records());
      continue;
    }

    if (command == "seal") {
      if (auto s = engine.Seal(); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("sealed %zu record(s) over %zu edge column(s)\n",
                    engine.num_records(), engine.relation().num_edge_columns());
      }
      continue;
    }

    if (command == "query") {
      std::string text;
      std::getline(in, text);
      const auto parsed = ParseQuery(text);
      if (!parsed.ok()) {
        std::printf("parse error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      if (!engine.relation().sealed()) {
        std::printf("error: seal the relation first\n");
        continue;
      }
      if (parsed->kind == ParsedQuery::Kind::kMatch) {
        PrintMatch(parsed->expr->Evaluate(engine.query_engine()));
        // Leaves join the workload history for autoviews.
        if (parsed->expr->op() == QueryExpr::Op::kLeaf) {
          history.push_back(parsed->expr->query());
        }
      } else {
        const auto result = engine.RunAggregateQuery(parsed->query, parsed->fn);
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
          continue;
        }
        PrintAggregate(*result, parsed->fn);
        history.push_back(parsed->query);
      }
      continue;
    }

    if (command == "autoviews") {
      size_t budget = 10;
      in >> budget;
      if (history.empty()) {
        std::printf("no queries in this session yet\n");
        continue;
      }
      const auto graph_views =
          engine.SelectAndMaterializeGraphViews(history, budget);
      const auto agg_views =
          engine.SelectAndMaterializeAggViews(history, AggFn::kSum, budget);
      if (!graph_views.ok() || !agg_views.ok()) {
        std::printf("error: %s\n",
                    (!graph_views.ok() ? graph_views.status() : agg_views.status())
                        .ToString()
                        .c_str());
        continue;
      }
      std::printf("materialized %zu graph view(s), %zu aggregate view(s)\n",
                  *graph_views, *agg_views);
      continue;
    }

    if (command == "dump") {
      std::fputs(DumpRelation(engine.relation()).c_str(), stdout);
      continue;
    }

    if (command == "save" || command == "open") {
      std::string path;
      if (!(in >> path)) {
        std::printf("usage: %s <file>\n", command.c_str());
        continue;
      }
      if (command == "save") {
        const Status s = WriteEngine(engine, path);
        std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
      } else {
        auto loaded = ReadEngine(path);
        if (!loaded.ok()) {
          std::printf("error: %s\n", loaded.status().ToString().c_str());
        } else {
          engine = std::move(loaded).value();
          std::printf("opened: %zu record(s), %zu view(s)\n",
                      engine.num_records(),
                      engine.views().num_graph_views() +
                          engine.views().num_agg_views());
        }
      }
      continue;
    }

    if (command == "stats") {
      const FetchStats& s = engine.stats();
      std::printf(
          "bitmap columns: %llu, measure columns: %llu, values: %llu, "
          "partition joins: %llu\n",
          static_cast<unsigned long long>(s.bitmap_columns_fetched),
          static_cast<unsigned long long>(s.measure_columns_fetched),
          static_cast<unsigned long long>(s.values_fetched),
          static_cast<unsigned long long>(s.partition_joins));
      engine.stats().Reset();
      continue;
    }

    std::printf("unknown command '%s'\n", command.c_str());
  }
  return 0;
}
