// Order tracking: a fuller SCM scenario exercising the extension modules —
// multi-measure records (hours AND cost per leg), orders split into linked
// sub-orders (parallel deliveries, Section 3.1's multigraph handling),
// metadata filters, and a region treated as one aggregate node.
//
// Build & run:  cmake --build build && ./build/examples/order_tracking
#include <cstdio>

#include "core/multi_measure.h"
#include "core/record_links.h"
#include "graph/region.h"
#include "query/statistics.h"
#include "util/random.h"

using namespace colgraph;

namespace {

enum : NodeId { A = 1, B, C, D, E, F, G, H, I, J, K };
NodeRef N(NodeId id) { return NodeRef{id, 0}; }

const std::vector<std::vector<NodeId>> kRoutes{
    {A, D, E, G, I},
    {A, B, F, J, K},
    {C, H, K},
};

}  // namespace

int main() {
  std::printf("Order tracking — multi-measure, sub-orders, regions\n\n");

  MultiMeasureEngine engine({"hours", "cost"});
  RecordLinkIndex links;
  Rng rng(7);

  // 3000 orders; every third order ships as two parallel sub-orders
  // (a multigraph modeled as two linked records).
  const size_t kOrders = 3000;
  GroupId next_group = 1;
  RecordId next_record = 0;
  for (size_t order = 0; order < kOrders; ++order) {
    const size_t shipments = (order % 3 == 0) ? 2 : 1;
    const GroupId group = next_group++;
    for (size_t s = 0; s < shipments; ++s) {
      const auto& route = kRoutes[rng.Uniform(0, kRoutes.size() - 1)];
      std::vector<double> hours, cost;
      for (size_t leg = 0; leg + 1 < route.size(); ++leg) {
        hours.push_back(rng.UniformReal(1.0, 24.0));
        cost.push_back(rng.UniformReal(10.0, 500.0));
      }
      auto rid = engine.AddWalk(route, {hours, cost});
      if (!rid.ok()) return 1;
      if (shipments > 1) {
        if (!links.Link(*rid, group).ok()) return 1;
      }
      links.SetMeta(*rid, "type", order % 5 == 0 ? "fast-track" : "regular");
      next_record = *rid + 1;
    }
  }
  if (!engine.Seal().ok()) return 1;
  std::printf("ingested %zu records (%zu logical orders)\n\n",
              engine.num_records(), kOrders);

  // Per-family aggregation over the region-2 route.
  const GraphQuery route1 = GraphQuery::FromPath({N(A), N(D), N(E), N(G), N(I)});
  const auto hours = engine.RunAggregateQuery(0, route1, AggFn::kSum);
  const auto cost = engine.RunAggregateQuery(1, route1, AggFn::kSum);
  if (!hours.ok() || !cost.ok()) return 1;
  const Summary hour_stats = Summarize(hours->values[0]);
  const Summary cost_stats = Summarize(cost->values[0]);
  std::printf(
      "route [A,D,E,G,I]: %zu shipments; hours mean %.1f (stddev %.1f), "
      "cost mean %.0f (stddev %.0f)\n",
      hour_stats.count, hour_stats.mean, hour_stats.stddev, cost_stats.mean,
      cost_stats.stddev);

  // Logical-order semantics: expand shipment matches to whole orders.
  const Bitmap shipments = engine.Match(route1);
  const Bitmap orders = links.ExpandToGroups(shipments);
  std::printf(
      "%zu shipments used the route; with linked sub-orders the affected "
      "logical orders span %zu records\n",
      shipments.Count(), orders.Count());

  // Metadata filter composes by bitmap AND.
  Bitmap fast = links.FilterMeta("type", "fast-track", next_record);
  fast.And(shipments);
  std::printf("of those, %zu are fast-track shipments\n", fast.Count());

  // Region 2 as an aggregate node: index its internal legs with a single
  // bitmap column (per measure family).
  DirectedGraph network;
  for (const auto& route : kRoutes) {
    for (size_t i = 0; i + 1 < route.size(); ++i) {
      network.AddEdge(N(route[i]), N(route[i + 1]));
    }
  }
  const std::vector<NodeRef> region2{N(D), N(E), N(F), N(G)};
  auto region_view =
      RegionGraphView(network, region2, engine.engine(0).catalog());
  if (!region_view.ok()) {
    std::printf("region view failed: %s\n",
                region_view.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "region-2 graph view covers %zu internal legs (one bitmap column "
      "replaces them for matching)\n",
      region_view->size());
  return 0;
}
