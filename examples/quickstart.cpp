// Quickstart: the paper's running example end to end.
//
// Builds the three graph records of Figure 2, shows the master-relation
// layout of Table 1 (measures + bitmaps + views), runs the path
// aggregation query SUM(A,C,E,F) — which must return record 2 with the
// value 7 — and demonstrates a graph view and an aggregate graph view.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"

using namespace colgraph;

namespace {

// Node names of Figure 2.
constexpr NodeId A = 1, B = 2, C = 3, D = 4, E = 5, F = 6, G = 7;

NodeRef N(NodeId id) { return NodeRef{id, 0}; }

GraphRecord Record(RecordId id, std::vector<Edge> elements,
                   std::vector<double> measures) {
  GraphRecord r;
  r.id = id;
  r.elements = std::move(elements);
  r.measures = std::move(measures);
  return r;
}

int g_failures = 0;

void Check(bool condition, const char* what) {
  std::printf("  [%s] %s\n", condition ? "ok" : "FAIL", what);
  if (!condition) ++g_failures;
}

}  // namespace

int main() {
  std::printf("ColGraph quickstart — Figure 2 / Table 1 of the paper\n\n");

  ColGraphEngine engine;

  // The three records of Figure 2 (edge ids e1..e7 in catalog order).
  // record 1: edges around A,B,C,D,E (ids e1..e5)
  auto r1 = engine.AddRecord(Record(0,
                                    {Edge{N(A), N(B)}, Edge{N(B), N(C)},
                                     Edge{N(A), N(D)}, Edge{N(D), N(E)},
                                     Edge{N(A), N(C)}},
                                    {3, 4, 2, 1, 2}));
  // record 2: same subgraph region plus the tail E->F->G (e6, e7)
  auto r2 = engine.AddRecord(Record(1,
                                    {Edge{N(B), N(C)}, Edge{N(A), N(D)},
                                     Edge{N(D), N(E)}, Edge{N(A), N(C)},
                                     Edge{N(C), N(E)}, Edge{N(E), N(F)},
                                     Edge{N(F), N(G)}},
                                    {1, 2, 2, 1, 2, 4, 1}));
  // record 3: only the right-hand part
  auto r3 = engine.AddRecord(Record(2,
                                    {Edge{N(D), N(E)}, Edge{N(C), N(E)},
                                     Edge{N(E), N(F)}, Edge{N(F), N(G)}},
                                    {5, 4, 3, 1}));
  if (!r1.ok() || !r2.ok() || !r3.ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  if (auto s = engine.Seal(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("ingested %zu records over %zu distinct edges\n",
              engine.num_records(), engine.catalog().size());

  // --- Graph query: which records contain the path (A,C,E,F)? ---
  const GraphQuery acef = GraphQuery::FromPath({N(A), N(C), N(E), N(F)});
  const Bitmap matches = engine.Match(acef);
  std::printf("\ngraph query [A,C,E,F] matches %zu record(s)\n",
              matches.Count());
  Check(matches.Count() == 1 && matches.Test(1),
        "only record 2 contains the path (paper, Section 3.4)");

  // --- Path aggregation: SUM(A,C,E,F) = 7 for record 2 (Section 3.4). ---
  // Measures on that path in record 2: (A,C)=1, (C,E)=2, (E,F)=4.
  auto agg = engine.RunAggregateQuery(acef, AggFn::kSum);
  if (!agg.ok()) {
    std::fprintf(stderr, "%s\n", agg.status().ToString().c_str());
    return 1;
  }
  std::printf("SUM(A,C,E,F) per matching record:\n");
  for (size_t i = 0; i < agg->records.size(); ++i) {
    std::printf("  record %llu -> %.0f\n",
                static_cast<unsigned long long>(agg->records[i]),
                agg->values[0][i]);
  }
  Check(agg->values[0][0] == 7,
        "SUM(A,C,E,F) = 7 for record 2, as in the paper");

  // --- Graph view (Table 1's bv1): the subgraph of edges e1..e4. ---
  const EdgeId e_ab = *engine.catalog().Lookup(Edge{N(A), N(B)});
  const EdgeId e_bc = *engine.catalog().Lookup(Edge{N(B), N(C)});
  const EdgeId e_ad = *engine.catalog().Lookup(Edge{N(A), N(D)});
  const EdgeId e_de = *engine.catalog().Lookup(Edge{N(D), N(E)});
  auto view = engine.MaterializeView(GraphViewDef::Make({e_ab, e_bc, e_ad, e_de}));
  Check(view.ok(), "materialized graph view bv1 (one extra bitmap column)");

  // --- Aggregate graph view (Table 1's mp1/bp1): SUM over [e6, e7]. ---
  const EdgeId e_ef = *engine.catalog().Lookup(Edge{N(E), N(F)});
  const EdgeId e_fg = *engine.catalog().Lookup(Edge{N(F), N(G)});
  AggViewDef mp1;
  mp1.elements = {e_ef, e_fg};
  mp1.fn = AggFn::kSum;
  auto agg_view = engine.MaterializeView(mp1);
  Check(agg_view.ok(), "materialized aggregate view (mp1, bp1)");
  const MeasureColumn& mp = engine.relation().FetchAggregateView(*agg_view);
  Check(!mp.Get(0).has_value(), "mp1 is NULL for record 1 (no E->F->G)");
  Check(mp.Get(1) == 5.0, "mp1(record 2) = 4+1 = 5 (Table 1)");
  Check(mp.Get(2) == 4.0, "mp1(record 3) = 3+1 = 4 (Table 1)");

  // --- The rewritten query now touches fewer columns. ---
  engine.stats().Reset();
  auto rewritten = engine.RunAggregateQuery(
      GraphQuery::FromPath({N(E), N(F), N(G)}), AggFn::kSum);
  Check(rewritten.ok() &&
            engine.stats().measure_columns_fetched == 1,
        "SUM(E,F,G) answered from the view: 1 measure column instead of 2");
  std::printf("\ndone.\n");
  return g_failures == 0 ? 0 : 1;
}
