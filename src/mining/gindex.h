// gIndex-style discriminative fragment selection (Yan, Yu & Han,
// SIGMOD'04): from the frequent fragments mined by gSpan, keep a fragment
// only when it prunes substantially more than the fragments it contains —
// i.e. when |candidates(selected subfragments)| / |candidates(fragment)|
// >= gamma. Selected fragments become extra bitmap columns in the master
// relation (Section 6.3), acting purely as indexes for record matching.
#pragma once

#include <vector>

#include "mining/gspan.h"

namespace colgraph {

struct GindexOptions {
  /// Discriminative ratio threshold (gIndex's gamma; paper default 2.0):
  /// fragment f is selected iff |∩ D(selected subfragments)| >= gamma *
  /// |D(f)|, i.e. it shrinks the candidate set by at least gamma.
  double gamma = 2.0;
  /// Maximum number of fragments to select (the "space budget" axis of
  /// Figures 10-11). 0 means unlimited.
  size_t max_fragments = 0;
};

/// \brief Selects discriminative fragments, size-ascending (size-1
/// fragments are always discriminative, as in gIndex).
///
/// \param frequent fragments from MineFrequentSubgraphs, with their
///        supporting-record lists over the mining sample
/// \param sample_size number of records in the mining sample
std::vector<FrequentFragment> SelectDiscriminativeFragments(
    const std::vector<FrequentFragment>& frequent, size_t sample_size,
    const GindexOptions& options = {});

}  // namespace colgraph
