// Frequent connected-subgraph mining in the spirit of gSpan (Yan & Han,
// ICDM'02), specialized to the paper's setting: because nodes are *named
// entities* shared across records, there is no isomorphism search — a
// fragment is canonically identified by its sorted edge-id set, and
// pattern growth extends a fragment by one adjacent edge at a time with
// projected support lists (the role DFS codes and rightmost extension play
// in general gSpan). Used to feed gIndex fragment selection (Section 6.3,
// Figures 10-11).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/catalog.h"
#include "graph/graph.h"
#include "util/status.h"

namespace colgraph {

/// \brief A mined fragment: a connected set of edges with its support.
struct FrequentFragment {
  std::vector<EdgeId> edges;  ///< sorted
  size_t support = 0;         ///< number of records containing the fragment
  /// Ids of the supporting records within the mined sample (ascending).
  std::vector<uint32_t> supporting_records;
};

struct GspanOptions {
  /// Minimum support (absolute record count).
  size_t min_support = 2;
  /// Maximum fragment size in edges (gIndex's maxL).
  size_t max_fragment_edges = 4;
  /// Hard cap on emitted fragments.
  size_t max_fragments = 200000;
};

/// \brief Mines all frequent connected fragments of the record sample.
///
/// \param records  each record as its edge list (structural edges only)
/// \param catalog  the shared naming scheme mapping edges to ids
StatusOr<std::vector<FrequentFragment>> MineFrequentSubgraphs(
    const std::vector<std::vector<Edge>>& records, const EdgeCatalog& catalog,
    const GspanOptions& options = {});

}  // namespace colgraph
