#include "mining/gindex.h"

#include <algorithm>

#include "bitmap/bitmap.h"

namespace colgraph {

namespace {

Bitmap ToBitmap(const std::vector<uint32_t>& records, size_t sample_size) {
  Bitmap b(sample_size);
  for (uint32_t r : records) b.Set(r);
  return b;
}

bool IsSubset(const std::vector<EdgeId>& small,
              const std::vector<EdgeId>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

std::vector<FrequentFragment> SelectDiscriminativeFragments(
    const std::vector<FrequentFragment>& frequent, size_t sample_size,
    const GindexOptions& options) {
  // Process size-ascending so a fragment's subfragments are decided first.
  std::vector<const FrequentFragment*> ordered;
  ordered.reserve(frequent.size());
  for (const auto& f : frequent) ordered.push_back(&f);
  std::sort(ordered.begin(), ordered.end(),
            [](const FrequentFragment* a, const FrequentFragment* b) {
              if (a->edges.size() != b->edges.size()) {
                return a->edges.size() < b->edges.size();
              }
              // Within a size class prefer higher support: those index the
              // heavier parts of the workload first under a tight budget.
              if (a->support != b->support) return a->support > b->support;
              return a->edges < b->edges;
            });

  std::vector<FrequentFragment> selected;
  std::vector<Bitmap> selected_bitmaps;
  for (const FrequentFragment* fragment : ordered) {
    if (options.max_fragments != 0 &&
        selected.size() >= options.max_fragments) {
      break;
    }
    if (fragment->edges.size() == 1) {
      // Size-1 fragments are discriminative by definition (they are the
      // atomic bitmap columns the framework already keeps).
      selected.push_back(*fragment);
      selected_bitmaps.push_back(
          ToBitmap(fragment->supporting_records, sample_size));
      continue;
    }
    // Candidate set using only the already-selected subfragments: the
    // intersection of their supporting-record sets.
    Bitmap candidates(sample_size);
    candidates.Fill();
    bool any_subfragment = false;
    for (size_t i = 0; i < selected.size(); ++i) {
      if (selected[i].edges.size() >= fragment->edges.size()) continue;
      if (IsSubset(selected[i].edges, fragment->edges)) {
        candidates.And(selected_bitmaps[i]);
        any_subfragment = true;
      }
    }
    if (!any_subfragment) {
      // No indexed subfragment: the fragment is trivially informative.
      selected.push_back(*fragment);
      selected_bitmaps.push_back(
          ToBitmap(fragment->supporting_records, sample_size));
      continue;
    }
    const double upper = static_cast<double>(candidates.Count());
    const double own = static_cast<double>(fragment->support);
    if (own > 0 && upper / own >= options.gamma) {
      selected.push_back(*fragment);
      selected_bitmaps.push_back(
          ToBitmap(fragment->supporting_records, sample_size));
    }
  }
  return selected;
}

}  // namespace colgraph
