#include "mining/gspan.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace colgraph {

namespace {

// Per-record edge-id sets (sorted) and a node -> incident-edge adjacency of
// the union graph, used to propose connected extensions.
struct MiningIndex {
  std::vector<std::vector<EdgeId>> transactions;  // sorted edge ids
  std::unordered_map<EdgeId, std::vector<uint32_t>> postings;  // edge -> recs
  // Union-graph adjacency: node -> incident edge ids (both directions).
  std::unordered_map<NodeRef, std::vector<EdgeId>, NodeRefHash> incident;
  std::unordered_map<EdgeId, Edge> id_to_edge;
};

MiningIndex BuildIndex(const std::vector<std::vector<Edge>>& records,
                       const EdgeCatalog& catalog) {
  MiningIndex index;
  index.transactions.resize(records.size());
  for (uint32_t r = 0; r < records.size(); ++r) {
    for (const Edge& e : records[r]) {
      const auto id = catalog.Lookup(e);
      if (!id.has_value()) continue;
      index.transactions[r].push_back(*id);
      if (!index.id_to_edge.count(*id)) {
        index.id_to_edge[*id] = e;
        if (!e.IsNode()) {
          index.incident[e.from].push_back(*id);
          index.incident[e.to].push_back(*id);
        }
      }
    }
    auto& t = index.transactions[r];
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    for (EdgeId id : t) index.postings[id].push_back(r);
  }
  return index;
}

bool TransactionContains(const std::vector<EdgeId>& transaction, EdgeId id) {
  return std::binary_search(transaction.begin(), transaction.end(), id);
}

}  // namespace

StatusOr<std::vector<FrequentFragment>> MineFrequentSubgraphs(
    const std::vector<std::vector<Edge>>& records, const EdgeCatalog& catalog,
    const GspanOptions& options) {
  const MiningIndex index = BuildIndex(records, catalog);

  std::vector<FrequentFragment> result;
  std::set<std::vector<EdgeId>> seen;
  std::deque<FrequentFragment> queue;

  // Level 1: frequent single edges.
  for (const auto& [id, postings] : index.postings) {
    if (postings.size() < options.min_support) continue;
    FrequentFragment frag;
    frag.edges = {id};
    frag.support = postings.size();
    frag.supporting_records = postings;
    seen.insert(frag.edges);
    result.push_back(frag);
    queue.push_back(std::move(frag));
  }

  // Pattern growth: extend each frequent fragment by one edge adjacent to
  // any of its nodes, recounting support only within the projected
  // (supporting) record list.
  while (!queue.empty()) {
    const FrequentFragment fragment = std::move(queue.front());
    queue.pop_front();
    if (fragment.edges.size() >= options.max_fragment_edges) continue;

    // Candidate extensions: edges incident to the fragment's nodes.
    std::set<EdgeId> extensions;
    for (EdgeId id : fragment.edges) {
      const Edge& e = index.id_to_edge.at(id);
      for (const NodeRef& endpoint : {e.from, e.to}) {
        auto it = index.incident.find(endpoint);
        if (it == index.incident.end()) continue;
        for (EdgeId ext : it->second) extensions.insert(ext);
      }
    }
    for (EdgeId ext : extensions) {
      if (std::binary_search(fragment.edges.begin(), fragment.edges.end(),
                             ext)) {
        continue;
      }
      std::vector<EdgeId> grown = fragment.edges;
      grown.insert(std::upper_bound(grown.begin(), grown.end(), ext), ext);
      if (seen.count(grown)) continue;
      // Projected support: supporting records of the parent that also
      // contain the extension edge.
      std::vector<uint32_t> support;
      for (uint32_t r : fragment.supporting_records) {
        if (TransactionContains(index.transactions[r], ext)) {
          support.push_back(r);
        }
      }
      if (support.size() < options.min_support) continue;
      seen.insert(grown);
      FrequentFragment child;
      child.edges = std::move(grown);
      child.support = support.size();
      child.supporting_records = std::move(support);
      result.push_back(child);
      if (result.size() > options.max_fragments) {
        return Status::OutOfRange(
            "gSpan exceeded max_fragments; raise min_support or lower "
            "max_fragment_edges");
      }
      queue.push_back(std::move(child));
    }
  }

  std::sort(result.begin(), result.end(),
            [](const FrequentFragment& a, const FrequentFragment& b) {
              return a.edges.size() != b.edges.size()
                         ? a.edges.size() < b.edges.size()
                         : a.edges < b.edges;
            });
  return result;
}

}  // namespace colgraph
