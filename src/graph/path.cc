#include "graph/path.h"

#include <algorithm>
#include <unordered_set>

namespace colgraph {

std::vector<Edge> Path::Elements() const {
  std::vector<Edge> elements;
  if (nodes_.empty()) return elements;
  if (nodes_.size() == 1) {
    // Degenerate node path [A,A]: just the node, unless fully open.
    if (!start_open_ && !end_open_) elements.push_back(Edge{nodes_[0], nodes_[0]});
    return elements;
  }
  if (!start_open_) elements.push_back(Edge{nodes_.front(), nodes_.front()});
  for (size_t i = 0; i + 1 < nodes_.size(); ++i) {
    elements.push_back(Edge{nodes_[i], nodes_[i + 1]});
    if (i + 1 < nodes_.size() - 1) {
      elements.push_back(Edge{nodes_[i + 1], nodes_[i + 1]});
    }
  }
  if (!end_open_) elements.push_back(Edge{nodes_.back(), nodes_.back()});
  return elements;
}

std::vector<Edge> Path::Edges() const {
  std::vector<Edge> edges;
  for (size_t i = 0; i + 1 < nodes_.size(); ++i) {
    edges.push_back(Edge{nodes_[i], nodes_[i + 1]});
  }
  return edges;
}

StatusOr<Path> Path::Join(const Path& other) const {
  if (empty() || other.empty()) {
    return Status::InvalidArgument("path-join with empty path");
  }
  if (!(back() == other.front())) {
    return Status::InvalidArgument("path-join endpoints differ: " +
                                   back().ToString() + " vs " +
                                   other.front().ToString());
  }
  // Exactly one side must be open at the junction so the shared node's
  // measure is counted once.
  if (end_open_ == other.start_open_) {
    return Status::InvalidArgument(
        "path-join requires exactly one open end at the common node " +
        back().ToString());
  }
  std::vector<NodeRef> joined = nodes_;
  joined.insert(joined.end(), other.nodes_.begin() + 1, other.nodes_.end());
  return Path(std::move(joined), start_open_, other.end_open_);
}

bool Path::IsSubpathOf(const Path& other) const {
  if (nodes_.size() > other.nodes_.size()) return false;
  return std::search(other.nodes_.begin(), other.nodes_.end(), nodes_.begin(),
                     nodes_.end()) != other.nodes_.end();
}

std::string Path::ToString() const {
  std::string s = start_open_ ? "(" : "[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) s += ",";
    s += nodes_[i].ToString();
  }
  s += end_open_ ? ")" : "]";
  return s;
}

namespace {

// DFS path enumeration from each start node to any target node.
Status Dfs(const DirectedGraph& graph,
           const std::unordered_set<NodeRef, NodeRefHash>& targets,
           std::vector<NodeRef>* current,
           std::unordered_set<NodeRef, NodeRefHash>* on_path,
           std::vector<Path>* out, size_t max_paths) {
  const NodeRef here = current->back();
  if (targets.count(here) && current->size() >= 1) {
    if (out->size() >= max_paths) {
      return Status::OutOfRange("path enumeration exceeded max_paths");
    }
    out->emplace_back(*current);
  }
  for (const NodeRef& next : graph.OutNeighbors(here)) {
    if (on_path->count(next)) continue;  // keep paths simple
    current->push_back(next);
    on_path->insert(next);
    COLGRAPH_RETURN_NOT_OK(
        Dfs(graph, targets, current, on_path, out, max_paths));
    on_path->erase(next);
    current->pop_back();
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<Path>> EnumerateCompositePath(
    const DirectedGraph& graph, const std::vector<NodeRef>& from,
    const std::vector<NodeRef>& to, size_t max_paths) {
  std::unordered_set<NodeRef, NodeRefHash> targets(to.begin(), to.end());
  std::vector<Path> result;
  for (const NodeRef& start : from) {
    if (!graph.HasNode(start)) continue;
    std::vector<NodeRef> current{start};
    std::unordered_set<NodeRef, NodeRefHash> on_path{start};
    COLGRAPH_RETURN_NOT_OK(
        Dfs(graph, targets, &current, &on_path, &result, max_paths));
  }
  return result;
}

StatusOr<std::vector<Path>> MaximalPaths(const DirectedGraph& graph,
                                         size_t max_paths) {
  if (!graph.IsAcyclic()) {
    return Status::InvalidArgument(
        "maximal-path extraction requires a DAG; flatten the graph first");
  }
  return EnumerateCompositePath(graph, graph.SourceNodes(),
                                graph.TerminalNodes(), max_paths);
}

}  // namespace colgraph
