// Regions — named groups of nodes treated as one "aggregate node" for
// analysis (Section 2's region 2; the zoom-in/out operators of the
// authors' prior work). Regions support:
//   * boundary extraction (Src/Ter of the region subgraph),
//   * composite-path expansion: all source→terminal paths of a network
//     crossing the region (the paper's [Src(Gq),Src(R)) ⋈ [...] ⋈
//     (Ter(R),Ter(Gq)] expression),
//   * a region graph view: the single bitmap column indexing the region's
//     internal edges (the Section 5.1.1 example).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/catalog.h"
#include "graph/graph.h"
#include "graph/path.h"
#include "util/status.h"
#include "views/view_defs.h"

namespace colgraph {

/// \brief Registry of named node groups.
class RegionCatalog {
 public:
  /// Defines (or redefines) a region.
  void Define(const std::string& name, std::vector<NodeRef> nodes);

  /// Returns the region's nodes, or NotFound.
  StatusOr<std::vector<NodeRef>> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return regions_.count(name) > 0;
  }
  size_t size() const { return regions_.size(); }

 private:
  std::unordered_map<std::string, std::vector<NodeRef>> regions_;
};

/// \brief Entry/exit nodes of a region within a network: region nodes with
/// an in-edge from outside (sources) / an out-edge to outside (terminals).
/// Isolated region nodes count as both.
struct RegionBoundary {
  std::vector<NodeRef> sources;
  std::vector<NodeRef> terminals;
};
RegionBoundary ComputeRegionBoundary(const DirectedGraph& network,
                                     const std::vector<NodeRef>& region);

enum class RegionTraversal : uint8_t {
  kAny,  ///< paths touching at least one region node
  kAll,  ///< paths visiting every region node (the paper's "through all
         ///< hubs of region 2")
};

/// \brief All simple paths in `network` from a node of `sources` to a node
/// of `terminals` that traverse the region per `mode`.
StatusOr<std::vector<Path>> PathsViaRegion(
    const DirectedGraph& network, const std::vector<NodeRef>& sources,
    const std::vector<NodeRef>& terminals, const std::vector<NodeRef>& region,
    RegionTraversal mode = RegionTraversal::kAny, size_t max_paths = 100000);

/// \brief The region's graph view: the set of catalog-known elements
/// internal to the region (edges with both endpoints inside, plus region
/// nodes' own measure columns). Materializing it yields the single bitmap
/// column of the Section 5.1.1 region-2 example. Fails when the region has
/// no internal element in the catalog.
StatusOr<GraphViewDef> RegionGraphView(const DirectedGraph& network,
                                       const std::vector<NodeRef>& region,
                                       const EdgeCatalog& catalog);

}  // namespace colgraph
