// EdgeCatalog: the "universally adopted naming scheme" of Section 3.1. Maps
// each distinct edge (or node, as self-edge) in the application's universe
// to a dense EdgeId, which is the column index of its measure column m_i
// and bitmap column b_i in the master relation.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace colgraph {

/// \brief Bidirectional edge <-> EdgeId mapping.
///
/// Ids are assigned densely in first-seen order, so the column store can
/// index columns by EdgeId directly. The catalog can be pre-populated from
/// a base network (fixing the universe, as in the experiments where the
/// domain has exactly 1000 distinct edge ids) or grown on demand at ingest.
class EdgeCatalog {
 public:
  /// Returns the id of `e`, assigning a fresh one if unseen.
  EdgeId GetOrAssign(const Edge& e);

  /// Returns the id of `e` or nullopt when the edge is not in the universe.
  std::optional<EdgeId> Lookup(const Edge& e) const;

  /// Reverse lookup; id must be < size().
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  /// Number of distinct edges in the universe.
  size_t size() const { return edges_.size(); }

  /// Maps a set of edges to ids, failing on the first unknown edge.
  StatusOr<std::vector<EdgeId>> LookupAll(const std::vector<Edge>& edges) const;

 private:
  std::unordered_map<Edge, EdgeId, EdgeHash> ids_;
  std::vector<Edge> edges_;
};

}  // namespace colgraph
