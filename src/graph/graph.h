// Core graph model (Section 3 of the paper): graph records, graph queries,
// and the directed-graph structure shared by both. Nodes and edges are
// "named entities" drawn from a common universe; a node X is modeled as the
// self-edge [X,X], so the storage layer sees only edges.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace colgraph {

/// Base node identifier (a location, workflow state, host, ...).
using NodeId = uint32_t;

/// Column / bitmap identifier of a distinct edge in the universe.
using EdgeId = uint32_t;

/// Record identifier (row position in the master relation).
using RecordId = uint64_t;

constexpr EdgeId kInvalidEdgeId = static_cast<EdgeId>(-1);

/// \brief A node occurrence after cycle flattening (Section 6.2).
///
/// Flattening a cyclic record renames repeated visits: A, A', A'' become
/// occurrences 0, 1, 2 of base node A. Plain (acyclic) data always uses
/// occurrence 0.
struct NodeRef {
  NodeId base = 0;
  uint32_t occurrence = 0;

  bool operator==(const NodeRef& o) const {
    return base == o.base && occurrence == o.occurrence;
  }
  bool operator<(const NodeRef& o) const {
    return base != o.base ? base < o.base : occurrence < o.occurrence;
  }
  std::string ToString() const;
};

/// \brief A directed edge between two node occurrences. [X,X] denotes the
/// node X itself (its internal measure).
struct Edge {
  NodeRef from;
  NodeRef to;

  bool IsNode() const { return from == to; }
  bool operator==(const Edge& o) const { return from == o.from && to == o.to; }
  bool operator<(const Edge& o) const {
    return from == o.from ? to < o.to : from < o.from;
  }
  std::string ToString() const;
};

struct NodeRefHash {
  size_t operator()(const NodeRef& n) const {
    return std::hash<uint64_t>()((uint64_t{n.base} << 32) | n.occurrence);
  }
};

struct EdgeHash {
  size_t operator()(const Edge& e) const {
    const size_t h1 = NodeRefHash()(e.from);
    const size_t h2 = NodeRefHash()(e.to);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
  }
};

/// \brief Adjacency-indexed directed graph over NodeRefs.
///
/// Used to represent both the structure of a graph record (before it is
/// shredded into columns) and a graph query. Parallel edges are not
/// represented (the paper models multigraphs via linked records).
class DirectedGraph {
 public:
  /// Adds an edge (idempotent); inserts endpoints as nodes.
  void AddEdge(NodeRef from, NodeRef to);
  void AddEdge(const Edge& e) { AddEdge(e.from, e.to); }
  /// Adds an isolated node (idempotent).
  void AddNode(NodeRef n);

  bool HasEdge(NodeRef from, NodeRef to) const;
  bool HasNode(NodeRef n) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<NodeRef>& nodes() const { return nodes_; }

  /// Outgoing / incoming neighbors of a node (empty if absent).
  const std::vector<NodeRef>& OutNeighbors(NodeRef n) const;
  const std::vector<NodeRef>& InNeighbors(NodeRef n) const;

  size_t OutDegree(NodeRef n) const { return OutNeighbors(n).size(); }
  size_t InDegree(NodeRef n) const { return InNeighbors(n).size(); }

  /// Source nodes: in-degree 0 (Src(G) in the paper).
  std::vector<NodeRef> SourceNodes() const;
  /// Terminal nodes: out-degree 0 (Ter(G)).
  std::vector<NodeRef> TerminalNodes() const;

  /// True iff the graph contains no directed cycle.
  bool IsAcyclic() const;

  /// Structural intersection: the graph of edges present in both. (Used by
  /// candidate-view generation: G_vi,j = G_qi ∩ G_qj.)
  static DirectedGraph Intersect(const DirectedGraph& a,
                                 const DirectedGraph& b);

  /// Structural union (G_All of Section 5.4; never a multigraph).
  static DirectedGraph Union(const DirectedGraph& a, const DirectedGraph& b);

  /// True iff every edge of `sub` is an edge of this graph.
  bool ContainsSubgraph(const DirectedGraph& sub) const;

  bool operator==(const DirectedGraph& o) const;

 private:
  std::vector<NodeRef> nodes_;
  std::vector<Edge> edges_;
  std::unordered_map<NodeRef, std::vector<NodeRef>, NodeRefHash> out_;
  std::unordered_map<NodeRef, std::vector<NodeRef>, NodeRefHash> in_;
  std::unordered_set<Edge, EdgeHash> edge_set_;
};

/// \brief One graph data record: structure plus a measure per element.
///
/// `measures[i]` is the measure recorded on `elements[i]`, where an element
/// is an edge or a node (self-edge). This is the ingest-side representation;
/// the column store shreds it into (edge-id -> measure) pairs.
struct GraphRecord {
  RecordId id = 0;
  std::vector<Edge> elements;
  std::vector<double> measures;

  /// Builds the structural graph of the record's true edges (self-edges are
  /// node measures, not structure).
  DirectedGraph Structure() const;
};

/// \brief A graph query (Section 3.2): a directed graph whose matches are
/// the records containing it as a subgraph (by shared edge identity).
class GraphQuery {
 public:
  GraphQuery() = default;
  explicit GraphQuery(DirectedGraph graph) : graph_(std::move(graph)) {}

  /// Convenience: query for a single node path [n0, n1, ..., nk].
  static GraphQuery FromPath(const std::vector<NodeRef>& nodes);

  const DirectedGraph& graph() const { return graph_; }
  DirectedGraph& mutable_graph() { return graph_; }

  size_t num_edges() const { return graph_.num_edges(); }

 private:
  DirectedGraph graph_;
};

}  // namespace colgraph
