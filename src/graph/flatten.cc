#include "graph/flatten.h"

#include <unordered_map>

namespace colgraph {

std::vector<NodeRef> FlattenWalk(const std::vector<NodeId>& walk) {
  std::vector<NodeRef> refs;
  refs.reserve(walk.size());
  std::unordered_map<NodeId, uint32_t> visits;
  for (NodeId n : walk) {
    uint32_t& count = visits[n];
    refs.push_back(NodeRef{n, count});
    ++count;
  }
  return refs;
}

std::vector<Edge> WalkToEdges(const std::vector<NodeId>& walk) {
  const std::vector<NodeRef> refs = FlattenWalk(walk);
  std::vector<Edge> edges;
  if (refs.size() < 2) return edges;
  edges.reserve(refs.size() - 1);
  for (size_t i = 0; i + 1 < refs.size(); ++i) {
    edges.push_back(Edge{refs[i], refs[i + 1]});
  }
  return edges;
}

namespace {

enum class Mark : uint8_t { kUnvisited, kOnStack, kDone };

struct DagifyState {
  const DirectedGraph* input;
  DirectedGraph output;
  std::unordered_map<NodeRef, Mark, NodeRefHash> mark;
  std::unordered_map<NodeRef, uint32_t, NodeRefHash> next_occurrence;
};

void Visit(DagifyState* s, NodeRef u) {
  s->mark[u] = Mark::kOnStack;
  for (const NodeRef& v : s->input->OutNeighbors(u)) {
    auto state = s->mark.count(v) ? s->mark[v] : Mark::kUnvisited;
    if (state == Mark::kOnStack) {
      // Back edge: re-target to a fresh occurrence of v's base node.
      uint32_t& occ = s->next_occurrence[v];
      if (occ == 0) occ = v.occurrence + 1;
      NodeRef fresh{v.base, occ++};
      s->output.AddEdge(u, fresh);
    } else {
      s->output.AddEdge(u, v);
      if (state == Mark::kUnvisited) Visit(s, v);
    }
  }
  s->mark[u] = Mark::kDone;
}

}  // namespace

DirectedGraph FlattenToDag(const DirectedGraph& graph) {
  DagifyState s;
  s.input = &graph;
  // Start from source nodes first so the BFS/DFS-order naming scheme is
  // deterministic for a given input, then sweep any remaining (cycle-only)
  // components.
  for (const NodeRef& n : graph.SourceNodes()) {
    if (!s.mark.count(n)) Visit(&s, n);
  }
  for (const NodeRef& n : graph.nodes()) {
    if (!s.mark.count(n)) Visit(&s, n);
  }
  for (const NodeRef& n : graph.nodes()) s.output.AddNode(n);
  // Self-edges are node measures, not adjacency, and pass through verbatim.
  for (const Edge& e : graph.edges()) {
    if (e.IsNode()) s.output.AddEdge(e);
  }
  return s.output;
}

}  // namespace colgraph
