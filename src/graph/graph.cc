#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace colgraph {

std::string NodeRef::ToString() const {
  std::string s = std::to_string(base);
  for (uint32_t i = 0; i < occurrence; ++i) s += '\'';
  return s;
}

std::string Edge::ToString() const {
  // Built with append rather than operator+ chains: the `const char* +
  // std::string&&` overload trips GCC 12's bogus -Wrestrict (PR 105651).
  std::string s;
  if (IsNode()) {
    s += '[';
    s += from.ToString();
    s += ']';
    return s;
  }
  s += '(';
  s += from.ToString();
  s += ',';
  s += to.ToString();
  s += ')';
  return s;
}

void DirectedGraph::AddNode(NodeRef n) {
  if (out_.find(n) != out_.end()) return;
  out_[n] = {};
  in_[n] = {};
  nodes_.push_back(n);
}

void DirectedGraph::AddEdge(NodeRef from, NodeRef to) {
  Edge e{from, to};
  if (edge_set_.count(e)) return;
  AddNode(from);
  AddNode(to);
  edge_set_.insert(e);
  edges_.push_back(e);
  if (!(from == to)) {
    out_[from].push_back(to);
    in_[to].push_back(from);
  }
}

bool DirectedGraph::HasEdge(NodeRef from, NodeRef to) const {
  return edge_set_.count(Edge{from, to}) > 0;
}

bool DirectedGraph::HasNode(NodeRef n) const {
  return out_.find(n) != out_.end();
}

const std::vector<NodeRef>& DirectedGraph::OutNeighbors(NodeRef n) const {
  static const std::vector<NodeRef> kEmpty;
  auto it = out_.find(n);
  return it == out_.end() ? kEmpty : it->second;
}

const std::vector<NodeRef>& DirectedGraph::InNeighbors(NodeRef n) const {
  static const std::vector<NodeRef> kEmpty;
  auto it = in_.find(n);
  return it == in_.end() ? kEmpty : it->second;
}

std::vector<NodeRef> DirectedGraph::SourceNodes() const {
  std::vector<NodeRef> result;
  for (const NodeRef& n : nodes_) {
    if (InDegree(n) == 0) result.push_back(n);
  }
  return result;
}

std::vector<NodeRef> DirectedGraph::TerminalNodes() const {
  std::vector<NodeRef> result;
  for (const NodeRef& n : nodes_) {
    if (OutDegree(n) == 0) result.push_back(n);
  }
  return result;
}

bool DirectedGraph::IsAcyclic() const {
  // Kahn's algorithm: the graph is acyclic iff all nodes can be peeled in
  // topological order. Self-edges are node measures, not structure, and are
  // excluded from adjacency by construction.
  std::unordered_map<NodeRef, size_t, NodeRefHash> in_degree;
  for (const NodeRef& n : nodes_) in_degree[n] = InDegree(n);
  std::vector<NodeRef> frontier;
  for (const auto& [n, d] : in_degree) {
    if (d == 0) frontier.push_back(n);
  }
  size_t peeled = 0;
  while (!frontier.empty()) {
    NodeRef n = frontier.back();
    frontier.pop_back();
    ++peeled;
    for (const NodeRef& m : OutNeighbors(n)) {
      if (--in_degree[m] == 0) frontier.push_back(m);
    }
  }
  return peeled == nodes_.size();
}

DirectedGraph DirectedGraph::Intersect(const DirectedGraph& a,
                                       const DirectedGraph& b) {
  DirectedGraph result;
  const DirectedGraph& small = a.num_edges() <= b.num_edges() ? a : b;
  const DirectedGraph& large = a.num_edges() <= b.num_edges() ? b : a;
  for (const Edge& e : small.edges()) {
    if (large.edge_set_.count(e)) result.AddEdge(e);
  }
  return result;
}

DirectedGraph DirectedGraph::Union(const DirectedGraph& a,
                                   const DirectedGraph& b) {
  DirectedGraph result;
  for (const Edge& e : a.edges()) result.AddEdge(e);
  for (const Edge& e : b.edges()) result.AddEdge(e);
  for (const NodeRef& n : a.nodes()) result.AddNode(n);
  for (const NodeRef& n : b.nodes()) result.AddNode(n);
  return result;
}

bool DirectedGraph::ContainsSubgraph(const DirectedGraph& sub) const {
  for (const Edge& e : sub.edges()) {
    if (!edge_set_.count(e)) return false;
  }
  return true;
}

bool DirectedGraph::operator==(const DirectedGraph& o) const {
  if (num_nodes() != o.num_nodes() || num_edges() != o.num_edges()) {
    return false;
  }
  for (const Edge& e : edges_) {
    if (!o.edge_set_.count(e)) return false;
  }
  for (const NodeRef& n : nodes_) {
    if (!o.HasNode(n)) return false;
  }
  return true;
}

DirectedGraph GraphRecord::Structure() const {
  DirectedGraph g;
  for (const Edge& e : elements) {
    if (e.IsNode()) {
      g.AddNode(e.from);
    } else {
      g.AddEdge(e);
    }
  }
  return g;
}

GraphQuery GraphQuery::FromPath(const std::vector<NodeRef>& nodes) {
  DirectedGraph g;
  COLGRAPH_CHECK(!nodes.empty());
  if (nodes.size() == 1) {
    g.AddNode(nodes[0]);
  }
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    g.AddEdge(nodes[i], nodes[i + 1]);
  }
  return GraphQuery(std::move(g));
}

}  // namespace colgraph
