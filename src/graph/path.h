// Paths: the fundamental structural unit for graph queries (Section 3.3).
// Implements closed / open-ended paths, the path-join operator (⋈),
// composite-path enumeration, and maximal-path extraction from query DAGs.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace colgraph {

/// \brief A path of node occurrences with independently open/closed ends.
///
/// [A,D,E] is closed at both ends (node measures of A and E included);
/// (D,E,G) is open at both (only the internal node E and the edges count);
/// [D,E,G) is open at the right end only. A single node A is the degenerate
/// path [A,A] (just that node's measure).
class Path {
 public:
  Path() = default;
  /// \param nodes      the node sequence, at least one node
  /// \param start_open whether the first node's own measure is excluded
  /// \param end_open   whether the last node's own measure is excluded
  Path(std::vector<NodeRef> nodes, bool start_open = false,
       bool end_open = false)
      : nodes_(std::move(nodes)),
        start_open_(start_open),
        end_open_(end_open) {}

  const std::vector<NodeRef>& nodes() const { return nodes_; }
  bool start_open() const { return start_open_; }
  bool end_open() const { return end_open_; }

  bool empty() const { return nodes_.empty(); }
  /// Number of edges (length 0 for a single node).
  size_t Length() const { return nodes_.empty() ? 0 : nodes_.size() - 1; }

  NodeRef front() const { return nodes_.front(); }
  NodeRef back() const { return nodes_.back(); }

  /// The measurable elements of the path: its edges, the self-edges of all
  /// internal nodes, and the self-edges of closed endpoints. The storage
  /// layer maps these to columns (elements absent from the catalog carry no
  /// measure and are skipped there).
  std::vector<Edge> Elements() const;

  /// Only the true edges of the path, in order.
  std::vector<Edge> Edges() const;

  /// Path-join (⋈): concatenates when back() == other.front() and exactly
  /// one of the two paths is open at that common endpoint (so the shared
  /// node's measure is counted exactly once). Returns InvalidArgument
  /// otherwise, e.g. [A,D,E] ⋈ [E,G,I] is rejected since E would repeat.
  StatusOr<Path> Join(const Path& other) const;

  /// True iff this path's node sequence occurs as a contiguous subsequence
  /// of `other`'s (openness ignored; used by the candidate-view pruning).
  bool IsSubpathOf(const Path& other) const;

  /// Notation of Section 3.3, e.g. "[A,D,E)".
  std::string ToString() const;

  bool operator==(const Path& o) const {
    return nodes_ == o.nodes_ && start_open_ == o.start_open_ &&
           end_open_ == o.end_open_;
  }

 private:
  std::vector<NodeRef> nodes_;
  bool start_open_ = false;
  bool end_open_ = false;
};

/// \brief Enumerates the composite path [from, to]* in `graph`: every simple
/// path starting at a node of `from` and ending at a node of `to`.
///
/// \param max_paths enumeration cap; Status is OutOfRange when exceeded
///        (query graphs in the targeted applications are small, but the cap
///        keeps adversarial inputs from exploding).
StatusOr<std::vector<Path>> EnumerateCompositePath(
    const DirectedGraph& graph, const std::vector<NodeRef>& from,
    const std::vector<NodeRef>& to, size_t max_paths = 100000);

/// \brief The set of maximal paths of a query graph: all paths from
/// Src(G) to Ter(G). Requires the graph to be a DAG.
StatusOr<std::vector<Path>> MaximalPaths(const DirectedGraph& graph,
                                         size_t max_paths = 100000);

}  // namespace colgraph
