#include "graph/catalog.h"

namespace colgraph {

EdgeId EdgeCatalog::GetOrAssign(const Edge& e) {
  auto it = ids_.find(e);
  if (it != ids_.end()) return it->second;
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  ids_.emplace(e, id);
  edges_.push_back(e);
  return id;
}

std::optional<EdgeId> EdgeCatalog::Lookup(const Edge& e) const {
  auto it = ids_.find(e);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

StatusOr<std::vector<EdgeId>> EdgeCatalog::LookupAll(
    const std::vector<Edge>& edges) const {
  std::vector<EdgeId> result;
  result.reserve(edges.size());
  for (const Edge& e : edges) {
    auto id = Lookup(e);
    if (!id.has_value()) {
      return Status::NotFound("edge not in catalog: " + e.ToString());
    }
    result.push_back(*id);
  }
  return result;
}

}  // namespace colgraph
