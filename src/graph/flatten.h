// Cycle flattening (Section 6.2): path aggregation requires DAG records, so
// cyclic traces are renamed via node occurrences (A, A', A'', ...). Walk
// data (the common case: RFID/SCM traces are node sequences) flattens
// exactly; arbitrary graphs are DAG-ified by re-targeting back edges to
// fresh occurrences.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace colgraph {

/// \brief Flattens a node walk into occurrence-annotated refs.
///
/// The i-th visit to base node X becomes NodeRef{X, i-1}: the walk
/// A,B,C,A,D turns into A, B, C, A', D and its edges (A,B), (B,C), (C,A'),
/// (A',D) — exactly the paper's example.
std::vector<NodeRef> FlattenWalk(const std::vector<NodeId>& walk);

/// \brief Converts the walk directly into the flattened edge sequence.
std::vector<Edge> WalkToEdges(const std::vector<NodeId>& walk);

/// \brief DAG-ifies an arbitrary directed graph.
///
/// Every back edge (u, v) discovered by DFS is re-targeted to a fresh
/// occurrence of v, mirroring the walk semantics ("the package came *back*
/// to v"). The result is acyclic and preserves all edges (modulo renaming).
DirectedGraph FlattenToDag(const DirectedGraph& graph);

}  // namespace colgraph
