#include "graph/region.h"

#include <algorithm>
#include <unordered_set>

namespace colgraph {

void RegionCatalog::Define(const std::string& name,
                           std::vector<NodeRef> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  regions_[name] = std::move(nodes);
}

StatusOr<std::vector<NodeRef>> RegionCatalog::Lookup(
    const std::string& name) const {
  auto it = regions_.find(name);
  if (it == regions_.end()) {
    return Status::NotFound("region not defined: " + name);
  }
  return it->second;
}

RegionBoundary ComputeRegionBoundary(const DirectedGraph& network,
                                     const std::vector<NodeRef>& region) {
  const std::unordered_set<NodeRef, NodeRefHash> inside(region.begin(),
                                                        region.end());
  RegionBoundary boundary;
  for (const NodeRef& n : region) {
    if (!network.HasNode(n)) continue;
    bool external_in = false, external_out = false;
    for (const NodeRef& m : network.InNeighbors(n)) {
      if (!inside.count(m)) {
        external_in = true;
        break;
      }
    }
    for (const NodeRef& m : network.OutNeighbors(n)) {
      if (!inside.count(m)) {
        external_out = true;
        break;
      }
    }
    // Nodes with no internal connectivity act as both entry and exit.
    const bool isolated =
        network.InDegree(n) == 0 && network.OutDegree(n) == 0;
    if (external_in || isolated) boundary.sources.push_back(n);
    if (external_out || isolated) boundary.terminals.push_back(n);
  }
  return boundary;
}

StatusOr<std::vector<Path>> PathsViaRegion(
    const DirectedGraph& network, const std::vector<NodeRef>& sources,
    const std::vector<NodeRef>& terminals, const std::vector<NodeRef>& region,
    RegionTraversal mode, size_t max_paths) {
  COLGRAPH_ASSIGN_OR_RETURN(
      std::vector<Path> all,
      EnumerateCompositePath(network, sources, terminals, max_paths));
  const std::unordered_set<NodeRef, NodeRefHash> inside(region.begin(),
                                                        region.end());
  std::vector<Path> result;
  for (Path& p : all) {
    size_t touched = 0;
    std::unordered_set<NodeRef, NodeRefHash> distinct;
    for (const NodeRef& n : p.nodes()) {
      if (inside.count(n) && distinct.insert(n).second) ++touched;
    }
    const bool keep = mode == RegionTraversal::kAny ? touched >= 1
                                                    : touched == inside.size();
    if (keep) result.push_back(std::move(p));
  }
  return result;
}

StatusOr<GraphViewDef> RegionGraphView(const DirectedGraph& network,
                                       const std::vector<NodeRef>& region,
                                       const EdgeCatalog& catalog) {
  const std::unordered_set<NodeRef, NodeRefHash> inside(region.begin(),
                                                        region.end());
  std::vector<EdgeId> internal;
  for (const Edge& e : network.edges()) {
    if (!inside.count(e.from) || !inside.count(e.to)) continue;
    const auto id = catalog.Lookup(e);
    if (id.has_value()) internal.push_back(*id);
  }
  for (const NodeRef& n : region) {
    const auto id = catalog.Lookup(Edge{n, n});
    if (id.has_value()) internal.push_back(*id);
  }
  if (internal.empty()) {
    return Status::InvalidArgument(
        "region has no catalog-known internal elements; nothing to index");
  }
  return GraphViewDef::Make(std::move(internal));
}

}  // namespace colgraph
