// Uncompressed bitmap over record ids. This is the in-memory workhorse
// behind the paper's bitmap columns (Section 4.2): evaluating a graph query
// reduces to word-parallel ANDs of the bitmaps of its edges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace colgraph {

/// \brief Fixed-universe bitmap with word-parallel boolean algebra.
///
/// A bitmap column b_i in the master relation holds one bit per graph
/// record; bit r is set iff record r contains edge e_i. All bitmaps over the
/// same relation share the same length (the record count), which is what
/// makes the paper's "cost = number of bitmaps fetched" model sensible.
class Bitmap {
 public:
  Bitmap() = default;
  /// Creates an all-zero bitmap of `num_bits` bits.
  explicit Bitmap(size_t num_bits)
      : num_bits_(num_bits), words_(WordCount(num_bits), 0) {}

  static constexpr size_t kWordBits = 64;

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  /// Grows (or shrinks) to `num_bits`; new bits are zero.
  void Resize(size_t num_bits);

  void Set(size_t pos);
  void Clear(size_t pos);
  bool Test(size_t pos) const;

  /// Sets all bits to zero / one (one respects the tail padding).
  void Reset();
  void Fill();

  /// Number of set bits.
  size_t Count() const;
  /// True iff no bit is set.
  bool None() const;

  /// In-place boolean algebra. Operands must have equal size().
  void And(const Bitmap& other);
  void Or(const Bitmap& other);
  void AndNot(const Bitmap& other);  ///< this &= ~other
  void Not();                        ///< complement (tail stays zero)

  /// Out-of-place variants.
  static Bitmap AndAll(const std::vector<const Bitmap*>& operands);

  /// ORs `src` into this bitmap starting at bit `offset`: bit i of `src`
  /// sets bit offset+i here. Requires offset + src.size() <= size(). This
  /// is the record-id rebasing blit behind multi-dataset queries
  /// (DESIGN.md §14): per-dataset match results land at the dataset's
  /// global base offset. Word-shifted, not bit-at-a-time.
  void OrAt(const Bitmap& src, size_t offset);

  /// Appends the positions of all set bits to `out`.
  void AppendSetBits(std::vector<uint64_t>* out) const;
  /// Convenience: returns the positions of all set bits.
  std::vector<uint64_t> ToVector() const;

  /// Calls fn(pos) for every set bit in ascending order. `fn` returning is
  /// the only control flow; this is the hot loop for measure fetches.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * kWordBits + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Raw word access (used by the compressed codec and persistence).
  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

  /// Size of the in-memory representation in bytes.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  bool operator==(const Bitmap& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  static size_t WordCount(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
  /// Zeroes any bits beyond num_bits_ in the last word.
  void ClearTail();

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace colgraph
