// Runtime-dispatched dense word kernels shared by the bitmap containers:
// AND/OR over arrays of 64-bit words, with an AVX2 path selected at first
// use when the CPU supports it and a portable scalar fallback otherwise.
// Two knobs force the scalar path: the COLGRAPH_NO_SIMD environment
// variable (read once per process, for whole-run jobs like the sanitizer
// CI legs) and SetForceScalarForTest (an in-process switch the differential
// tests flip so one binary exercises both kernels).
#pragma once

#include <cstddef>
#include <cstdint>

namespace colgraph::simd {

/// dst[i] &= src[i] for i in [0, n).
void AndWords(uint64_t* dst, const uint64_t* src, size_t n);

/// dst[i] |= src[i] for i in [0, n).
void OrWords(uint64_t* dst, const uint64_t* src, size_t n);

/// True when calls dispatch to the AVX2 kernels (CPU support present,
/// COLGRAPH_NO_SIMD unset, no test override active).
bool UsingAvx2();

/// Test hook: true forces the scalar kernels regardless of CPU support.
/// Effective immediately for subsequent calls on this thread; flip it only
/// while no kernel runs concurrently.
void SetForceScalarForTest(bool force);

}  // namespace colgraph::simd
