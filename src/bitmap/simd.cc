#include "bitmap/simd.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define COLGRAPH_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#endif

namespace colgraph::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

void AndWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

#if defined(COLGRAPH_HAVE_AVX2_TARGET)

// Per-function target attribute instead of a separate -mavx2 TU: the
// compiler may only emit AVX2 instructions inside these bodies, so the
// binary stays runnable on non-AVX2 hardware as long as dispatch guards
// every call.
__attribute__((target("avx2"))) void AndWordsAvx2(uint64_t* dst,
                                                  const uint64_t* src,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void OrWordsAvx2(uint64_t* dst,
                                                 const uint64_t* src,
                                                 size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

bool CpuAllowsAvx2() {
  // One probe per process: CPU capability plus the COLGRAPH_NO_SIMD kill
  // switch, which the sanitizer CI legs set to sanitize the scalar kernels
  // on hardware that would otherwise always take the AVX2 path.
  static const bool allowed = [] {
    if (std::getenv("COLGRAPH_NO_SIMD") != nullptr) return false;
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return allowed;
}

#else

bool CpuAllowsAvx2() { return false; }

#endif  // COLGRAPH_HAVE_AVX2_TARGET

}  // namespace

bool UsingAvx2() {
  return CpuAllowsAvx2() && !g_force_scalar.load(std::memory_order_relaxed);
}

void SetForceScalarForTest(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
#if defined(COLGRAPH_HAVE_AVX2_TARGET)
  if (UsingAvx2()) {
    AndWordsAvx2(dst, src, n);
    return;
  }
#endif
  AndWordsScalar(dst, src, n);
}

void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
#if defined(COLGRAPH_HAVE_AVX2_TARGET)
  if (UsingAvx2()) {
    OrWordsAvx2(dst, src, n);
    return;
  }
#endif
  OrWordsScalar(dst, src, n);
}

}  // namespace colgraph::simd
