#include "bitmap/bitmap.h"

#include "util/check.h"

namespace colgraph {

void Bitmap::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize(WordCount(num_bits), 0);
  ClearTail();
}

void Bitmap::Set(size_t pos) {
  COLGRAPH_DCHECK_LT(pos, num_bits_);
  words_[pos / kWordBits] |= (uint64_t{1} << (pos % kWordBits));
}

void Bitmap::Clear(size_t pos) {
  COLGRAPH_DCHECK_LT(pos, num_bits_);
  words_[pos / kWordBits] &= ~(uint64_t{1} << (pos % kWordBits));
}

bool Bitmap::Test(size_t pos) const {
  COLGRAPH_DCHECK_LT(pos, num_bits_);
  return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1;
}

void Bitmap::Reset() {
  for (auto& w : words_) w = 0;
}

void Bitmap::Fill() {
  for (auto& w : words_) w = ~uint64_t{0};
  ClearTail();
}

size_t Bitmap::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(__builtin_popcountll(w));
  return count;
}

bool Bitmap::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void Bitmap::And(const Bitmap& other) {
  COLGRAPH_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitmap::Or(const Bitmap& other) {
  COLGRAPH_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitmap::AndNot(const Bitmap& other) {
  COLGRAPH_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

void Bitmap::Not() {
  for (auto& w : words_) w = ~w;
  ClearTail();
}

void Bitmap::OrAt(const Bitmap& src, size_t offset) {
  COLGRAPH_CHECK(offset <= num_bits_ && src.num_bits_ <= num_bits_ - offset)
      << "OrAt source exceeds the destination universe";
  if (src.num_bits_ == 0) return;
  const size_t word0 = offset / kWordBits;
  const size_t shift = offset % kWordBits;
  const size_t n = src.words_.size();
  if (shift == 0) {
    for (size_t i = 0; i < n; ++i) words_[word0 + i] |= src.words_[i];
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = src.words_[i];
    words_[word0 + i] |= w << shift;
    // The spilled high part lands one word up; the size check above
    // guarantees the slot exists whenever the spill is nonzero (the
    // source's tail padding beyond num_bits_ is zero by invariant).
    const uint64_t spill = w >> (kWordBits - shift);
    if (spill != 0) words_[word0 + i + 1] |= spill;
  }
}

Bitmap Bitmap::AndAll(const std::vector<const Bitmap*>& operands) {
  if (operands.empty()) return Bitmap();
  Bitmap result = *operands[0];
  for (size_t i = 1; i < operands.size(); ++i) result.And(*operands[i]);
  return result;
}

void Bitmap::AppendSetBits(std::vector<uint64_t>* out) const {
  ForEachSetBit([out](size_t pos) { out->push_back(pos); });
}

std::vector<uint64_t> Bitmap::ToVector() const {
  std::vector<uint64_t> out;
  out.reserve(Count());
  AppendSetBits(&out);
  return out;
}

void Bitmap::ClearTail() {
  const size_t tail = num_bits_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace colgraph
