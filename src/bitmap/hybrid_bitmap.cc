#include "bitmap/hybrid_bitmap.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "bitmap/simd.h"
#include "util/check.h"

namespace colgraph {

namespace {

constexpr size_t kWordBits = Bitmap::kWordBits;

uint32_t RunFirst(uint32_t run) { return run & 0xFFFFu; }
uint32_t RunLast(uint32_t run) { return run >> 16; }
uint32_t MakeRun(uint32_t first, uint32_t last) { return first | (last << 16); }

uint32_t PopcountWords(const uint64_t* words, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(words[i]));
  }
  return static_cast<uint32_t>(total);
}

/// Sorted-uint16 intersection; gallops (exponential probe + binary search)
/// when one side is much smaller, linear merge otherwise.
std::vector<uint16_t> IntersectArrays(const std::vector<uint16_t>& a,
                                      const std::vector<uint16_t>& b) {
  const std::vector<uint16_t>* small = &a;
  const std::vector<uint16_t>* large = &b;
  if (small->size() > large->size()) std::swap(small, large);
  std::vector<uint16_t> out;
  out.reserve(small->size());
  if (small->size() * 32 < large->size()) {
    size_t base = 0;  // every element before base is < the probe value
    for (const uint16_t v : *small) {
      size_t offset = 1;
      while (base + offset < large->size() && (*large)[base + offset] < v) {
        offset *= 2;
      }
      const size_t window_end = std::min(base + offset + 1, large->size());
      const auto it = std::lower_bound(
          large->begin() + static_cast<std::ptrdiff_t>(base),
          large->begin() + static_cast<std::ptrdiff_t>(window_end), v);
      base = static_cast<size_t>(it - large->begin());
      if (base < large->size() && (*large)[base] == v) out.push_back(v);
    }
    return out;
  }
  // Large similar-sized arrays: merging costs small+large data-dependent
  // steps, but an 8 KiB stack bitset is L1-resident — scatter the smaller
  // side, then probe with the larger side in order (output stays sorted).
  if (small->size() + large->size() > 2048) {
    uint64_t scratch[HybridBitmap::kChunkWords] = {};
    for (const uint16_t v : *small) {
      scratch[v / 64] |= uint64_t{1} << (v % 64);
    }
    for (const uint16_t v : *large) {
      if (((scratch[v / 64] >> (v % 64)) & 1) != 0) out.push_back(v);
    }
    return out;
  }

  // Branchless merge: the comparisons compile to flag-setting increments
  // instead of branches, which matters because element order is random —
  // a branching merge pays a misprediction on nearly every step.
  out.resize(small->size());
  size_t i = 0, j = 0, k = 0;
  while (i < small->size() && j < large->size()) {
    const uint16_t x = (*small)[i];
    const uint16_t y = (*large)[j];
    out[k] = x;
    k += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  out.resize(k);
  return out;
}

/// In-place `words &= runs` over a chunk-relative word span: words outside
/// any run are zeroed, words a run only partially covers are masked, and
/// words fully inside a run pass through untouched.
void AndRunsIntoWords(const std::vector<uint32_t>& runs, uint64_t* words,
                      size_t num_words) {
  size_t w = 0;  // first word not yet finalized
  bool open = false;
  uint64_t open_mask = 0;  // pending partial coverage of word `w`
  auto zero_range = [words](size_t from, size_t to) {
    if (to > from) std::memset(words + from, 0, (to - from) * sizeof(uint64_t));
  };
  for (const uint32_t run : runs) {
    const size_t first = RunFirst(run);
    const size_t last = RunLast(run);
    const size_t first_word = first / kWordBits;
    const size_t last_word = last / kWordBits;
    COLGRAPH_DCHECK_LT(last_word, num_words);
    if (open && first_word != w) {
      words[w] &= open_mask;
      open = false;
      ++w;
    }
    zero_range(w, first_word);
    w = first_word;
    const uint64_t head = ~uint64_t{0} << (first % kWordBits);
    const uint64_t tail =
        (last % kWordBits) == kWordBits - 1
            ? ~uint64_t{0}
            : ((uint64_t{1} << ((last % kWordBits) + 1)) - 1);
    if (first_word == last_word) {
      const uint64_t mask = head & tail;
      open_mask = open ? (open_mask | mask) : mask;
      open = true;
    } else {
      words[first_word] &= open ? (open_mask | head) : head;
      open = false;
      // Interior words are fully covered: leave them as-is.
      if ((last % kWordBits) == kWordBits - 1) {
        w = last_word + 1;
      } else {
        w = last_word;
        open_mask = tail;
        open = true;
      }
    }
  }
  if (open) {
    words[w] &= open_mask;
    ++w;
  }
  zero_range(w, num_words);
}

/// `words |= container` over a chunk-local kChunkWords buffer.
void OrContainerIntoWords(const HybridBitmap::Container& c, uint64_t* words) {
  switch (c.type) {
    case HybridBitmap::ContainerType::kBitset:
      simd::OrWords(words, c.bitset.data(), HybridBitmap::kChunkWords);
      break;
    case HybridBitmap::ContainerType::kArray:
      for (const uint16_t raw : c.array) {
        const size_t v = raw;
        words[v / kWordBits] |= uint64_t{1} << (v % kWordBits);
      }
      break;
    case HybridBitmap::ContainerType::kRun:
      for (const uint32_t run : c.runs) {
        const size_t first = RunFirst(run);
        const size_t last = RunLast(run);
        const size_t fw = first / kWordBits;
        const size_t lw = last / kWordBits;
        const uint64_t head = ~uint64_t{0} << (first % kWordBits);
        const uint64_t tail =
            (last % kWordBits) == kWordBits - 1
                ? ~uint64_t{0}
                : ((uint64_t{1} << ((last % kWordBits) + 1)) - 1);
        if (fw == lw) {
          words[fw] |= head & tail;
        } else {
          words[fw] |= head;
          for (size_t k = fw + 1; k < lw; ++k) words[k] = ~uint64_t{0};
          words[lw] |= tail;
        }
      }
      break;
  }
}

std::vector<uint64_t> MaterializeWords(const HybridBitmap::Container& c) {
  std::vector<uint64_t> words(HybridBitmap::kChunkWords, 0);
  OrContainerIntoWords(c, words.data());
  return words;
}

HybridBitmap::Container MakeArrayContainer(std::vector<uint16_t> values) {
  HybridBitmap::Container c;
  c.type = HybridBitmap::ContainerType::kArray;
  c.cardinality = static_cast<uint32_t>(values.size());
  c.array = std::move(values);
  return c;
}

}  // namespace

HybridBitmap HybridBitmap::FromBitmap(const Bitmap& bits) {
  HybridBitmap out;
  out.num_bits_ = bits.size();
  const std::vector<uint64_t>& words = bits.words();
  const size_t num_chunks = NumChunks(bits.size());
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const size_t word_begin = chunk * kChunkWords;
    const size_t word_end = std::min(word_begin + kChunkWords, words.size());
    uint32_t card = 0;
    uint32_t num_runs = 0;
    bool prev_bit = false;
    for (size_t w = word_begin; w < word_end; ++w) {
      const uint64_t word = words[w];
      card += static_cast<uint32_t>(__builtin_popcountll(word));
      // Run starts are 0->1 transitions; carry the top bit across words.
      const uint64_t shifted = (word << 1) | (prev_bit ? uint64_t{1} : 0);
      num_runs += static_cast<uint32_t>(__builtin_popcountll(word & ~shifted));
      prev_bit = (word >> (kWordBits - 1)) != 0;
    }
    if (card == 0) continue;

    // Enumerate the chunk's set bits once; both the array and the run
    // extraction below consume them in order.
    auto for_each_set = [&](auto&& fn) {
      for (size_t w = word_begin; w < word_end; ++w) {
        uint64_t word = words[w];
        const size_t base = (w - word_begin) * kWordBits;
        while (word != 0) {
          const size_t bit = static_cast<size_t>(__builtin_ctzll(word));
          fn(static_cast<uint32_t>(base + bit));
          word &= word - 1;
        }
      }
    };

    Container c;
    c.cardinality = card;
    const uint64_t run_bytes = uint64_t{4} * num_runs;
    const uint64_t array_bytes =
        card <= kArrayMaxCardinality ? uint64_t{2} * card : ~uint64_t{0};
    const uint64_t bitset_bytes = uint64_t{kChunkWords} * 8;
    if (run_bytes < array_bytes && run_bytes < bitset_bytes) {
      c.type = ContainerType::kRun;
      c.runs.reserve(num_runs);
      uint32_t run_start = 0;
      uint32_t prev = 0;
      bool in_run = false;
      for_each_set([&](uint32_t v) {
        if (!in_run) {
          run_start = v;
          in_run = true;
        } else if (v != prev + 1) {
          c.runs.push_back(MakeRun(run_start, prev));
          run_start = v;
        }
        prev = v;
      });
      c.runs.push_back(MakeRun(run_start, prev));
    } else if (card <= kArrayMaxCardinality) {
      c.type = ContainerType::kArray;
      c.array.reserve(card);
      for_each_set(
          [&](uint32_t v) { c.array.push_back(static_cast<uint16_t>(v)); });
    } else {
      c.type = ContainerType::kBitset;
      c.bitset.assign(kChunkWords, 0);
      std::copy(words.begin() + static_cast<std::ptrdiff_t>(word_begin),
                words.begin() + static_cast<std::ptrdiff_t>(word_end),
                c.bitset.begin());
    }
    out.AppendContainer(static_cast<uint32_t>(chunk), std::move(c));
  }
  return out;
}

void HybridBitmap::AppendContainer(uint32_t key, Container c) {
  COLGRAPH_DCHECK_GT(c.cardinality, 0u);
  count_ += c.cardinality;
  keys_.push_back(key);
  containers_.push_back(std::move(c));
}

Bitmap HybridBitmap::ToBitmap() const {
  Bitmap out(num_bits_);
  OrInto(&out);
  return out;
}

bool HybridBitmap::Test(size_t pos) const {
  COLGRAPH_DCHECK_LT(pos, num_bits_);
  const uint32_t key = static_cast<uint32_t>(pos / kChunkBits);
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return false;
  const Container& c = containers_[static_cast<size_t>(it - keys_.begin())];
  const uint16_t off = static_cast<uint16_t>(pos % kChunkBits);
  switch (c.type) {
    case ContainerType::kArray:
      return std::binary_search(c.array.begin(), c.array.end(), off);
    case ContainerType::kBitset:
      return ((c.bitset[off / kWordBits] >> (off % kWordBits)) & 1) != 0;
    case ContainerType::kRun: {
      // First run whose last >= off; it contains off iff its first <= off.
      const auto rit = std::lower_bound(
          c.runs.begin(), c.runs.end(), off,
          [](uint32_t run, uint16_t o) { return RunLast(run) < o; });
      return rit != c.runs.end() && RunFirst(*rit) <= off;
    }
  }
  return false;
}

HybridBitmap::Container HybridBitmap::FinishBitset(std::vector<uint64_t> words) {
  const uint32_t card = PopcountWords(words.data(), words.size());
  if (card <= kArrayMaxCardinality) {
    Container c;
    c.type = ContainerType::kArray;
    c.cardinality = card;
    c.array.reserve(card);
    for (size_t w = 0; w < words.size(); ++w) {
      uint64_t word = words[w];
      const size_t base = w * kWordBits;
      while (word != 0) {
        const size_t bit = static_cast<size_t>(__builtin_ctzll(word));
        c.array.push_back(static_cast<uint16_t>(base + bit));
        word &= word - 1;
      }
    }
    return c;
  }
  Container c;
  c.type = ContainerType::kBitset;
  c.cardinality = card;
  c.bitset = std::move(words);
  return c;
}

HybridBitmap::Container HybridBitmap::CanonicalizeRuns(
    std::vector<uint32_t> runs, uint32_t cardinality) {
  Container c;
  c.cardinality = cardinality;
  if (cardinality == 0) return c;
  const uint64_t run_bytes = uint64_t{4} * runs.size();
  const uint64_t array_bytes = cardinality <= kArrayMaxCardinality
                                   ? uint64_t{2} * cardinality
                                   : ~uint64_t{0};
  const uint64_t bitset_bytes = uint64_t{kChunkWords} * 8;
  if (run_bytes < array_bytes && run_bytes < bitset_bytes) {
    c.type = ContainerType::kRun;
    c.runs = std::move(runs);
    return c;
  }
  if (cardinality <= kArrayMaxCardinality) {
    c.type = ContainerType::kArray;
    c.array.reserve(cardinality);
    for (const uint32_t run : runs) {
      for (uint32_t v = RunFirst(run); v <= RunLast(run); ++v) {
        c.array.push_back(static_cast<uint16_t>(v));
      }
    }
    return c;
  }
  c.type = ContainerType::kBitset;
  c.bitset.assign(kChunkWords, 0);
  Container tmp;
  tmp.type = ContainerType::kRun;
  tmp.runs = std::move(runs);
  OrContainerIntoWords(tmp, c.bitset.data());
  return c;
}

HybridBitmap::Container HybridBitmap::AndContainers(const Container& a,
                                                    const Container& b) {
  // Normalize so each unordered type pair is handled once (AND commutes).
  const Container* x = &a;
  const Container* y = &b;
  if (static_cast<int>(x->type) > static_cast<int>(y->type)) std::swap(x, y);

  if (x->type == ContainerType::kArray) {
    if (y->type == ContainerType::kArray) {
      return MakeArrayContainer(IntersectArrays(x->array, y->array));
    }
    std::vector<uint16_t> out;
    out.reserve(x->array.size());
    if (y->type == ContainerType::kBitset) {
      for (const uint16_t raw : x->array) {
        const size_t v = raw;
        if (((y->bitset[v / kWordBits] >> (v % kWordBits)) & 1) != 0) {
          out.push_back(raw);
        }
      }
    } else {  // kRun: both sides sorted, advance the run cursor once.
      size_t j = 0;
      for (const uint16_t raw : x->array) {
        while (j < y->runs.size() && RunLast(y->runs[j]) < raw) ++j;
        if (j == y->runs.size()) break;
        if (RunFirst(y->runs[j]) <= raw) out.push_back(raw);
      }
    }
    return MakeArrayContainer(std::move(out));
  }

  if (x->type == ContainerType::kBitset) {
    std::vector<uint64_t> words = x->bitset;
    if (y->type == ContainerType::kBitset) {
      simd::AndWords(words.data(), y->bitset.data(), kChunkWords);
    } else {  // kRun
      AndRunsIntoWords(y->runs, words.data(), kChunkWords);
    }
    return FinishBitset(std::move(words));
  }

  // kRun x kRun: clip interval lists against each other.
  std::vector<uint32_t> runs;
  uint32_t card = 0;
  size_t i = 0, j = 0;
  while (i < x->runs.size() && j < y->runs.size()) {
    const uint32_t first =
        std::max(RunFirst(x->runs[i]), RunFirst(y->runs[j]));
    const uint32_t last = std::min(RunLast(x->runs[i]), RunLast(y->runs[j]));
    if (first <= last) {
      runs.push_back(MakeRun(first, last));
      card += last - first + 1;
    }
    if (RunLast(x->runs[i]) < RunLast(y->runs[j])) {
      ++i;
    } else {
      ++j;
    }
  }
  return CanonicalizeRuns(std::move(runs), card);
}

HybridBitmap::Container HybridBitmap::OrContainers(const Container& a,
                                                   const Container& b,
                                                   size_t chunk_bits) {
  (void)chunk_bits;  // invariants keep every element inside the chunk
  std::vector<uint64_t> words = MaterializeWords(a);
  OrContainerIntoWords(b, words.data());
  return FinishBitset(std::move(words));
}

HybridBitmap HybridBitmap::And(const HybridBitmap& a, const HybridBitmap& b) {
  COLGRAPH_CHECK_EQ(a.num_bits_, b.num_bits_);
  HybridBitmap out;
  out.num_bits_ = a.num_bits_;
  const size_t max_out = std::min(a.keys_.size(), b.keys_.size());
  out.keys_.reserve(max_out);
  out.containers_.reserve(max_out);
  size_t i = 0, j = 0;
  while (i < a.keys_.size() && j < b.keys_.size()) {
    if (a.keys_[i] < b.keys_[j]) {
      ++i;
    } else if (b.keys_[j] < a.keys_[i]) {
      ++j;
    } else {
      Container c = AndContainers(a.containers_[i], b.containers_[j]);
      if (c.cardinality != 0) out.AppendContainer(a.keys_[i], std::move(c));
      ++i;
      ++j;
    }
  }
  return out;
}

HybridBitmap HybridBitmap::Or(const HybridBitmap& a, const HybridBitmap& b) {
  COLGRAPH_CHECK_EQ(a.num_bits_, b.num_bits_);
  HybridBitmap out;
  out.num_bits_ = a.num_bits_;
  size_t i = 0, j = 0;
  while (i < a.keys_.size() || j < b.keys_.size()) {
    if (j == b.keys_.size() ||
        (i < a.keys_.size() && a.keys_[i] < b.keys_[j])) {
      out.AppendContainer(a.keys_[i], a.containers_[i]);
      ++i;
    } else if (i == a.keys_.size() || b.keys_[j] < a.keys_[i]) {
      out.AppendContainer(b.keys_[j], b.containers_[j]);
      ++j;
    } else {
      const size_t chunk_base = static_cast<size_t>(a.keys_[i]) * kChunkBits;
      const size_t chunk_bits =
          std::min(kChunkBits, a.num_bits_ - chunk_base);
      out.AppendContainer(
          a.keys_[i],
          OrContainers(a.containers_[i], b.containers_[j], chunk_bits));
      ++i;
      ++j;
    }
  }
  return out;
}

void HybridBitmap::AndInto(Bitmap* dst) const {
  COLGRAPH_CHECK_EQ(dst->size(), num_bits_);
  std::vector<uint64_t>& words = dst->mutable_words();
  auto zero_range = [&words](size_t from, size_t to) {
    if (to > from) {
      std::memset(words.data() + from, 0, (to - from) * sizeof(uint64_t));
    }
  };
  size_t next = 0;  // first word not yet processed
  for (size_t i = 0; i < keys_.size(); ++i) {
    const size_t word_begin = static_cast<size_t>(keys_[i]) * kChunkWords;
    const size_t word_end = std::min(word_begin + kChunkWords, words.size());
    zero_range(next, word_begin);
    const Container& c = containers_[i];
    switch (c.type) {
      case ContainerType::kBitset:
        simd::AndWords(words.data() + word_begin, c.bitset.data(),
                       word_end - word_begin);
        break;
      case ContainerType::kArray: {
        // Rewrite only the words named by array values; every other word
        // of the chunk becomes zero.
        size_t w = word_begin;
        size_t j = 0;
        while (j < c.array.size()) {
          const size_t word_idx = word_begin + c.array[j] / kWordBits;
          zero_range(w, word_idx);
          uint64_t mask = 0;
          while (j < c.array.size() &&
                 word_begin + c.array[j] / kWordBits == word_idx) {
            mask |= uint64_t{1} << (c.array[j] % kWordBits);
            ++j;
          }
          words[word_idx] &= mask;
          w = word_idx + 1;
        }
        zero_range(w, word_end);
        break;
      }
      case ContainerType::kRun:
        AndRunsIntoWords(c.runs, words.data() + word_begin,
                         word_end - word_begin);
        break;
    }
    next = word_end;
  }
  zero_range(next, words.size());
}

void HybridBitmap::OrInto(Bitmap* dst) const {
  COLGRAPH_CHECK_EQ(dst->size(), num_bits_);
  std::vector<uint64_t>& words = dst->mutable_words();
  for (size_t i = 0; i < keys_.size(); ++i) {
    const size_t word_begin = static_cast<size_t>(keys_[i]) * kChunkWords;
    const size_t word_end = std::min(word_begin + kChunkWords, words.size());
    const Container& c = containers_[i];
    if (c.type == ContainerType::kBitset) {
      simd::OrWords(words.data() + word_begin, c.bitset.data(),
                    word_end - word_begin);
    } else {
      // Array/run writes are sparse; apply them at the absolute offset.
      Bitmap unused;  // silence clang-tidy on the lambda-free path
      (void)unused;
      switch (c.type) {
        case ContainerType::kArray:
          for (const uint16_t raw : c.array) {
            const size_t v = raw;
            words[word_begin + v / kWordBits] |= uint64_t{1}
                                                 << (v % kWordBits);
          }
          break;
        case ContainerType::kRun:
          for (const uint32_t run : c.runs) {
            const size_t first = RunFirst(run);
            const size_t last = RunLast(run);
            const size_t fw = word_begin + first / kWordBits;
            const size_t lw = word_begin + last / kWordBits;
            const uint64_t head = ~uint64_t{0} << (first % kWordBits);
            const uint64_t tail =
                (last % kWordBits) == kWordBits - 1
                    ? ~uint64_t{0}
                    : ((uint64_t{1} << ((last % kWordBits) + 1)) - 1);
            if (fw == lw) {
              words[fw] |= head & tail;
            } else {
              words[fw] |= head;
              for (size_t k = fw + 1; k < lw; ++k) words[k] = ~uint64_t{0};
              words[lw] |= tail;
            }
          }
          break;
        case ContainerType::kBitset:
          break;  // handled above
      }
    }
  }
}

uint64_t HybridBitmap::PayloadWords(const Container& c) {
  switch (c.type) {
    case ContainerType::kArray:
      return (uint64_t{c.cardinality} + 3) / 4;
    case ContainerType::kBitset:
      return kChunkWords;
    case ContainerType::kRun:
      return (static_cast<uint64_t>(c.runs.size()) + 1) / 2;
  }
  return 0;
}

std::vector<uint64_t> HybridBitmap::ToRaw() const {
  std::vector<uint64_t> out;
  size_t total = 1 + keys_.size();
  for (const Container& c : containers_) {
    total += 1 + static_cast<size_t>(PayloadWords(c));
  }
  out.reserve(total);
  out.push_back(static_cast<uint64_t>(keys_.size()));
  for (size_t i = 0; i < keys_.size(); ++i) {
    const Container& c = containers_[i];
    out.push_back(static_cast<uint64_t>(keys_[i]) |
                  (static_cast<uint64_t>(c.type) << 32) |
                  (PayloadWords(c) << 40));
  }
  for (const Container& c : containers_) {
    const uint64_t extra =
        c.type == ContainerType::kRun ? static_cast<uint64_t>(c.runs.size())
                                      : 0;
    out.push_back(uint64_t{c.cardinality} | (extra << 32));
    switch (c.type) {
      case ContainerType::kArray: {
        uint64_t word = 0;
        for (size_t k = 0; k < c.array.size(); ++k) {
          word |= static_cast<uint64_t>(c.array[k]) << (16 * (k % 4));
          if (k % 4 == 3) {
            out.push_back(word);
            word = 0;
          }
        }
        if (c.array.size() % 4 != 0) out.push_back(word);
        break;
      }
      case ContainerType::kBitset:
        out.insert(out.end(), c.bitset.begin(), c.bitset.end());
        break;
      case ContainerType::kRun: {
        uint64_t word = 0;
        for (size_t k = 0; k < c.runs.size(); ++k) {
          word |= static_cast<uint64_t>(c.runs[k]) << (32 * (k % 2));
          if (k % 2 == 1) {
            out.push_back(word);
            word = 0;
          }
        }
        if (c.runs.size() % 2 != 0) out.push_back(word);
        break;
      }
    }
  }
  return out;
}

StatusOr<HybridBitmap> HybridBitmap::FromRawChecked(
    const std::vector<uint64_t>& buffer, size_t num_bits) {
  auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("hybrid bitmap: ") + what);
  };
  if (buffer.empty()) return corrupt("empty buffer");
  const uint64_t n = buffer[0];
  const size_t num_chunks = NumChunks(num_bits);
  if (n > num_chunks) return corrupt("container count exceeds chunk count");
  if (n > buffer.size() - 1) return corrupt("descriptor table exceeds buffer");

  HybridBitmap out;
  out.num_bits_ = num_bits;
  out.keys_.reserve(static_cast<size_t>(n));
  out.containers_.reserve(static_cast<size_t>(n));
  size_t pos = 1 + static_cast<size_t>(n);  // payload cursor
  uint32_t prev_key = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t desc = buffer[1 + i];
    const uint32_t key = static_cast<uint32_t>(desc & 0xFFFFFFFFu);
    const uint64_t type_raw = (desc >> 32) & 0xFF;
    const uint64_t payload_words = desc >> 40;
    if (key >= num_chunks) return corrupt("container key out of range");
    if (i > 0 && key <= prev_key) return corrupt("container keys not ascending");
    prev_key = key;
    if (type_raw > 2) return corrupt("unknown container type");
    const ContainerType type = static_cast<ContainerType>(type_raw);
    if (payload_words > kChunkWords) {
      return corrupt("oversized container payload");
    }
    if (pos >= buffer.size()) return corrupt("truncated container payload");
    const uint64_t lead = buffer[pos];
    const uint32_t card = static_cast<uint32_t>(lead & 0xFFFFFFFFu);
    const uint32_t extra = static_cast<uint32_t>(lead >> 32);
    ++pos;
    if (buffer.size() - pos < payload_words) {
      return corrupt("truncated container payload");
    }
    if (card == 0 || card > kChunkBits) {
      return corrupt("implausible container cardinality");
    }
    const size_t chunk_base = static_cast<size_t>(key) * kChunkBits;
    const size_t chunk_bits = std::min(kChunkBits, num_bits - chunk_base);

    Container c;
    c.type = type;
    c.cardinality = card;
    switch (type) {
      case ContainerType::kArray: {
        if (extra != 0) return corrupt("nonzero reserved bits in array lead");
        if (card > kArrayMaxCardinality) {
          return corrupt("array cardinality above threshold");
        }
        if (payload_words != (uint64_t{card} + 3) / 4) {
          return corrupt("array payload size mismatch");
        }
        c.array.reserve(card);
        uint16_t prev = 0;
        for (uint32_t k = 0; k < card; ++k) {
          const uint64_t word = buffer[pos + k / 4];
          const uint16_t v =
              static_cast<uint16_t>((word >> (16 * (k % 4))) & 0xFFFFu);
          if (k > 0 && v <= prev) return corrupt("array values not ascending");
          if (static_cast<size_t>(v) >= chunk_bits) {
            return corrupt("array value beyond bitmap length");
          }
          c.array.push_back(v);
          prev = v;
        }
        const uint32_t rem = card % 4;
        if (rem != 0 && (buffer[pos + card / 4] >> (16 * rem)) != 0) {
          return corrupt("nonzero array padding");
        }
        break;
      }
      case ContainerType::kBitset: {
        if (extra != 0) return corrupt("nonzero reserved bits in bitset lead");
        if (card <= kArrayMaxCardinality) {
          return corrupt("bitset cardinality below array threshold");
        }
        if (payload_words != kChunkWords) {
          return corrupt("bitset payload size mismatch");
        }
        c.bitset.assign(buffer.begin() + static_cast<std::ptrdiff_t>(pos),
                        buffer.begin() +
                            static_cast<std::ptrdiff_t>(pos + kChunkWords));
        if (PopcountWords(c.bitset.data(), c.bitset.size()) != card) {
          return corrupt("bitset popcount does not match cardinality");
        }
        if (chunk_bits < kChunkBits) {
          // Final partial chunk: bits at or beyond num_bits must be zero.
          const size_t full_words = chunk_bits / kWordBits;
          const size_t rem_bits = chunk_bits % kWordBits;
          size_t check_from = full_words;
          if (rem_bits != 0) {
            const uint64_t tail_mask = ~uint64_t{0} << rem_bits;
            if ((c.bitset[full_words] & tail_mask) != 0) {
              return corrupt("bitset bits beyond bitmap length");
            }
            check_from = full_words + 1;
          }
          for (size_t w = check_from; w < kChunkWords; ++w) {
            if (c.bitset[w] != 0) {
              return corrupt("bitset bits beyond bitmap length");
            }
          }
        }
        break;
      }
      case ContainerType::kRun: {
        const uint32_t num_runs = extra;
        if (num_runs == 0) return corrupt("empty run container");
        if (payload_words != (uint64_t{num_runs} + 1) / 2) {
          return corrupt("run payload size mismatch");
        }
        // The writer only emits a run container when it is strictly the
        // smallest encoding; enforce the same rule on load so a flipped
        // type tag cannot smuggle in a non-canonical layout.
        if (uint64_t{4} * num_runs >= uint64_t{kChunkWords} * 8) {
          return corrupt("run container larger than bitset");
        }
        if (card <= kArrayMaxCardinality &&
            uint64_t{4} * num_runs >= uint64_t{2} * card) {
          return corrupt("run container larger than array");
        }
        c.runs.reserve(num_runs);
        uint64_t total_len = 0;
        uint32_t prev_last = 0;
        for (uint32_t k = 0; k < num_runs; ++k) {
          const uint64_t word = buffer[pos + k / 2];
          const uint32_t run =
              static_cast<uint32_t>((word >> (32 * (k % 2))) & 0xFFFFFFFFu);
          const uint32_t first = RunFirst(run);
          const uint32_t last = RunLast(run);
          if (first > last) return corrupt("inverted run interval");
          if (k > 0 && first <= prev_last + 1) {
            return corrupt("runs not sorted and merged");
          }
          if (static_cast<size_t>(last) >= chunk_bits) {
            return corrupt("run beyond bitmap length");
          }
          total_len += uint64_t{last} - first + 1;
          prev_last = last;
          c.runs.push_back(run);
        }
        if (num_runs % 2 != 0 && (buffer[pos + num_runs / 2] >> 32) != 0) {
          return corrupt("nonzero run padding");
        }
        if (total_len != card) {
          return corrupt("run lengths do not sum to cardinality");
        }
        break;
      }
    }
    pos += static_cast<size_t>(payload_words);
    out.AppendContainer(key, std::move(c));
  }
  if (pos != buffer.size()) {
    return corrupt("trailing words after the last container");
  }
  return out;
}

size_t HybridBitmap::MemoryBytes() const {
  size_t total = keys_.size() * sizeof(uint32_t);
  for (const Container& c : containers_) {
    total += sizeof(Container) + c.array.size() * sizeof(uint16_t) +
             c.bitset.size() * sizeof(uint64_t) +
             c.runs.size() * sizeof(uint32_t);
  }
  return total;
}

HybridBitmap::ContainerStats HybridBitmap::Stats() const {
  ContainerStats stats;
  for (const Container& c : containers_) {
    switch (c.type) {
      case ContainerType::kArray:
        ++stats.arrays;
        break;
      case ContainerType::kBitset:
        ++stats.bitsets;
        break;
      case ContainerType::kRun:
        ++stats.runs;
        break;
    }
  }
  return stats;
}

}  // namespace colgraph
