#include "bitmap/ewah_bitmap.h"

#include "util/check.h"

namespace colgraph {

namespace {
constexpr uint64_t kMaxRunWords = 0xFFFFFFFFull;
constexpr uint64_t kMaxLiteralWords = (uint64_t{1} << 31) - 1;
}  // namespace

uint64_t EwahBitmap::MakeMarker(bool run_bit, uint64_t run_words,
                                uint64_t literal_words) {
  COLGRAPH_DCHECK_LE(run_words, kMaxRunWords);
  COLGRAPH_DCHECK_LE(literal_words, kMaxLiteralWords);
  return (literal_words << 33) | (run_words << 1) | (run_bit ? 1 : 0);
}

EwahBitmap EwahBitmap::FromBitmap(const Bitmap& bitmap) {
  EwahBitmap out;
  out.num_bits_ = bitmap.size();
  const auto& words = bitmap.words();

  size_t i = 0;
  while (i < words.size()) {
    // Greedily take a run of identical all-zero or all-one words.
    bool run_bit = false;
    uint64_t run_len = 0;
    while (i < words.size() && run_len < kMaxRunWords) {
      if (words[i] == 0) {
        if (run_len > 0 && run_bit) break;
        run_bit = false;
      } else if (words[i] == ~uint64_t{0}) {
        if (run_len > 0 && !run_bit) break;
        run_bit = true;
      } else {
        break;
      }
      ++run_len;
      ++i;
    }
    // Then the literal words until the next compressible run of >= 2 words
    // (a single fill word is cheaper stored as a literal than as a new
    // marker group, but the simple "until next fill word" policy is fine).
    size_t literal_start = i;
    while (i < words.size() && (i - literal_start) < kMaxLiteralWords) {
      const uint64_t w = words[i];
      if (w == 0 || w == ~uint64_t{0}) break;
      ++i;
    }
    const uint64_t literal_count = i - literal_start;
    out.buffer_.push_back(MakeMarker(run_bit, run_len, literal_count));
    for (size_t j = literal_start; j < i; ++j) out.buffer_.push_back(words[j]);
  }
  return out;
}

template <typename Fn>
void EwahBitmap::ForEachWord(Fn&& fn) const {
  size_t i = 0;
  while (i < buffer_.size()) {
    const uint64_t marker = buffer_[i++];
    const bool run_bit = MarkerRunBit(marker);
    const uint64_t run_words = MarkerRunWords(marker);
    const uint64_t fill = run_bit ? ~uint64_t{0} : 0;
    for (uint64_t k = 0; k < run_words; ++k) fn(fill);
    const uint64_t literal_words = MarkerLiteralWords(marker);
    for (uint64_t k = 0; k < literal_words; ++k) fn(buffer_[i++]);
  }
}

Bitmap EwahBitmap::ToBitmap() const {
  Bitmap out(num_bits_);
  auto& words = out.mutable_words();
  size_t pos = 0;
  ForEachWord([&](uint64_t w) {
    COLGRAPH_DCHECK_LT(pos, words.size());
    words[pos++] = w;
  });
  // The tail of the last word may contain garbage from an all-ones fill.
  out.Resize(num_bits_);
  return out;
}

namespace {

// Sequential reader over a compressed stream: exposes the current chunk
// (a fill run or literal words) and advances by whole words.
class Cursor {
 public:
  explicit Cursor(const std::vector<uint64_t>& buffer) : buffer_(buffer) {
    LoadMarker();
  }

  bool done() const { return run_left_ == 0 && literal_left_ == 0; }
  bool in_run() const { return run_left_ > 0; }
  bool run_bit() const { return run_bit_; }
  uint64_t run_left() const { return run_left_; }
  uint64_t literal() const { return buffer_[pos_]; }

  // Advances by `words` within the current run (must be <= run_left()).
  void SkipRun(uint64_t words) {
    run_left_ -= words;
    MaybeAdvance();
  }
  // Consumes one literal word.
  void NextLiteral() {
    --literal_left_;
    ++pos_;
    MaybeAdvance();
  }

 private:
  void LoadMarker() {
    while (pos_ < buffer_.size()) {
      const uint64_t marker = buffer_[pos_++];
      run_bit_ = marker & 1;
      run_left_ = (marker >> 1) & 0xFFFFFFFFull;
      literal_left_ = marker >> 33;
      if (run_left_ > 0 || literal_left_ > 0) return;
    }
    run_left_ = literal_left_ = 0;
  }
  void MaybeAdvance() {
    if (run_left_ == 0 && literal_left_ == 0) LoadMarker();
  }

  const std::vector<uint64_t>& buffer_;
  size_t pos_ = 0;
  bool run_bit_ = false;
  uint64_t run_left_ = 0;
  uint64_t literal_left_ = 0;
};

// RLE writer: buffers the trailing run/literal state and emits marker
// groups lazily (same layout FromBitmap produces).
class Appender {
 public:
  void AppendFill(bool bit, uint64_t words) {
    if (words == 0) return;
    if (!literals_.empty() || (run_words_ > 0 && run_bit_ != bit)) FlushRun(false);
    if (run_words_ == 0) run_bit_ = bit;
    run_words_ += words;
  }
  void AppendLiteral(uint64_t word) {
    if (word == 0) {
      AppendFill(false, 1);
      return;
    }
    if (word == ~uint64_t{0}) {
      AppendFill(true, 1);
      return;
    }
    literals_.push_back(word);
  }
  std::vector<uint64_t> Finish() {
    FlushRun(true);
    return std::move(out_);
  }

 private:
  void FlushRun(bool final) {
    if (run_words_ == 0 && literals_.empty() && !final) return;
    if (run_words_ == 0 && literals_.empty()) return;
    out_.push_back((static_cast<uint64_t>(literals_.size()) << 33) |
                   (run_words_ << 1) | (run_bit_ ? 1 : 0));
    out_.insert(out_.end(), literals_.begin(), literals_.end());
    run_words_ = 0;
    run_bit_ = false;
    literals_.clear();
  }

  std::vector<uint64_t> out_;
  bool run_bit_ = false;
  uint64_t run_words_ = 0;
  std::vector<uint64_t> literals_;
};

}  // namespace

EwahBitmap EwahBitmap::And(const EwahBitmap& a, const EwahBitmap& b) {
  COLGRAPH_CHECK_EQ(a.num_bits_, b.num_bits_);
  // Streaming AND directly over the compressed representations: zero runs
  // skip the other operand wholesale; one runs copy it; literal-literal
  // pairs AND word-wise. Never decompresses either input.
  Cursor ca(a.buffer_), cb(b.buffer_);
  Appender out;
  while (!ca.done() && !cb.done()) {
    if (ca.in_run() && cb.in_run()) {
      const uint64_t step = std::min(ca.run_left(), cb.run_left());
      out.AppendFill(ca.run_bit() && cb.run_bit(), step);
      ca.SkipRun(step);
      cb.SkipRun(step);
    } else if (ca.in_run()) {
      if (ca.run_bit()) {
        out.AppendLiteral(cb.literal());
      } else {
        out.AppendFill(false, 1);
      }
      ca.SkipRun(1);
      cb.NextLiteral();
    } else if (cb.in_run()) {
      if (cb.run_bit()) {
        out.AppendLiteral(ca.literal());
      } else {
        out.AppendFill(false, 1);
      }
      cb.SkipRun(1);
      ca.NextLiteral();
    } else {
      out.AppendLiteral(ca.literal() & cb.literal());
      ca.NextLiteral();
      cb.NextLiteral();
    }
  }
  EwahBitmap result;
  result.num_bits_ = a.num_bits_;
  result.buffer_ = out.Finish();
  return result;
}

size_t EwahBitmap::Count() const {
  size_t count = 0;
  ForEachWord([&](uint64_t w) {
    count += static_cast<size_t>(__builtin_popcountll(w));
  });
  // Fill words may have set padding bits past num_bits_; subtract them.
  const size_t padded_bits =
      ((num_bits_ + Bitmap::kWordBits - 1) / Bitmap::kWordBits) *
      Bitmap::kWordBits;
  if (padded_bits != num_bits_) {
    // Recount exactly via decompression only when padding could matter.
    return ToBitmap().Count();
  }
  return count;
}

EwahBitmap EwahBitmap::FromRaw(std::vector<uint64_t> buffer, size_t num_bits) {
  EwahBitmap out;
  out.buffer_ = std::move(buffer);
  out.num_bits_ = num_bits;
  return out;
}

StatusOr<EwahBitmap> EwahBitmap::FromRawChecked(std::vector<uint64_t> buffer,
                                                size_t num_bits) {
  const uint64_t words_needed =
      (static_cast<uint64_t>(num_bits) + Bitmap::kWordBits - 1) /
      Bitmap::kWordBits;
  uint64_t total_words = 0;
  size_t i = 0;
  while (i < buffer.size()) {
    const uint64_t marker = buffer[i++];
    total_words += MarkerRunWords(marker);
    const uint64_t literal_words = MarkerLiteralWords(marker);
    if (literal_words > buffer.size() - i) {
      return Status::Corruption(
          "EWAH marker claims literal words past the end of the buffer");
    }
    i += literal_words;
    total_words += literal_words;
    // Run lengths are bounded per marker, so total_words grows by < 2^33
    // per iteration and this early exit also prevents uint64 overflow.
    if (total_words > words_needed) {
      return Status::Corruption("EWAH stream decodes past its bit length");
    }
  }
  if (total_words != words_needed) {
    return Status::Corruption("EWAH stream shorter than its bit length");
  }
  return FromRaw(std::move(buffer), num_bits);
}

}  // namespace colgraph
