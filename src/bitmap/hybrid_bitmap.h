// Roaring-style hybrid compressed bitmap (ROADMAP item 3). The bit space is
// split into 2^16-bit chunks and each non-empty chunk stores whichever of
// three containers is smallest for its contents:
//
//   container | holds                          | chosen when
//   ----------|--------------------------------|---------------------------
//   array     | sorted uint16 bit offsets      | cardinality <= 4096
//   bitset    | 1024 raw 64-bit words          | cardinality >  4096
//   run       | sorted (first,last) intervals  | 4*runs < min(2*card, 8192)
//
// (the run container wins ties against nothing: it is picked only when its
// byte size is strictly below both alternatives, so every encoding is
// deterministic for given contents). ANDs between hybrid bitmaps combine
// container pairs without materializing words — galloping intersection for
// skewed array pairs, interval clipping for runs, SIMD word kernels
// (bitmap/simd.h) for bitset pairs — and AndInto() applies a hybrid operand
// to an uncompressed Bitmap in place, which is how the query engine's
// conjunction loop consumes columns sealed in this encoding.
//
// The serialized form (ToRaw / FromRawChecked) is a flat word buffer meant
// to be embedded in the checksummed v3 snapshot sections: FromRawChecked
// validates every key, length, ordering, and cardinality claim against the
// buffer actually present and returns Status::Corruption on any violation,
// matching the FromRawChecked discipline of EwahBitmap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitmap/bitmap.h"
#include "util/status.h"

namespace colgraph {

/// \brief Chunked hybrid-container bitmap with compressed boolean algebra.
class HybridBitmap {
 public:
  static constexpr size_t kChunkBits = size_t{1} << 16;
  static constexpr size_t kChunkWords = kChunkBits / Bitmap::kWordBits;
  /// Largest cardinality stored as a sorted uint16 array; above it the
  /// chunk is a bitset (the classic roaring threshold: 4096 * 2 bytes ==
  /// the 8 KiB bitset).
  static constexpr uint32_t kArrayMaxCardinality = 4096;

  enum class ContainerType : uint8_t { kArray = 0, kBitset = 1, kRun = 2 };

  /// One chunk's payload; exactly one of the three vectors is populated,
  /// selected by `type`. Runs pack an inclusive interval as
  /// (first | last << 16) and are sorted, non-overlapping, and maximal
  /// (adjacent intervals are merged).
  struct Container {
    ContainerType type = ContainerType::kArray;
    uint32_t cardinality = 0;
    std::vector<uint16_t> array;
    std::vector<uint64_t> bitset;
    std::vector<uint32_t> runs;

    bool operator==(const Container& other) const {
      return type == other.type && cardinality == other.cardinality &&
             array == other.array && bitset == other.bitset &&
             runs == other.runs;
    }
  };

  HybridBitmap() = default;

  /// Compresses a plain bitmap (container per chunk by the size rule).
  static HybridBitmap FromBitmap(const Bitmap& bits);

  /// Decompresses into a plain bitmap of the original length.
  Bitmap ToBitmap() const;

  size_t size_bits() const { return num_bits_; }
  size_t Count() const { return count_; }
  bool None() const { return count_ == 0; }
  bool Test(size_t pos) const;

  /// Compressed conjunction / disjunction. Operands must share size_bits().
  static HybridBitmap And(const HybridBitmap& a, const HybridBitmap& b);
  static HybridBitmap Or(const HybridBitmap& a, const HybridBitmap& b);

  /// In-place conjunction into an uncompressed bitmap of the same length
  /// (the engine's running-result loop): words in chunks absent here are
  /// zeroed wholesale, bitset chunks AND word-at-a-time through the SIMD
  /// kernels, array/run chunks rewrite only the covered words.
  void AndInto(Bitmap* dst) const;

  /// In-place disjunction into an uncompressed bitmap of the same length.
  void OrInto(Bitmap* dst) const;

  /// Serialized form: [u64 container_count] then one descriptor word per
  /// container (key | type << 32 | payload_words << 40) then the payloads
  /// in container order, each led by a cardinality word.
  std::vector<uint64_t> ToRaw() const;

  /// Validating decoder for untrusted buffers (disk, fuzzer): every
  /// length, key ordering, type, payload size, element ordering, padding
  /// byte, and cardinality claim is checked against the buffer actually
  /// present — no allocation is sized from an unvalidated claim — and any
  /// violation returns Status::Corruption. A bitmap that decodes is safe
  /// for every read API and satisfies all class invariants.
  static StatusOr<HybridBitmap> FromRawChecked(
      const std::vector<uint64_t>& buffer, size_t num_bits);

  /// In-memory footprint in bytes (keys + container payloads).
  size_t MemoryBytes() const;

  size_t num_containers() const { return keys_.size(); }

  /// Container mix, for tests and EXPLAIN-style introspection.
  struct ContainerStats {
    size_t arrays = 0;
    size_t bitsets = 0;
    size_t runs = 0;
  };
  ContainerStats Stats() const;

  /// Representation equality. Construction is deterministic, so two
  /// bitmaps built through the same operations compare equal; use
  /// ToBitmap() to compare across construction paths.
  bool operator==(const HybridBitmap& other) const {
    return num_bits_ == other.num_bits_ && count_ == other.count_ &&
           keys_ == other.keys_ && containers_ == other.containers_;
  }

 private:
  static size_t NumChunks(size_t num_bits) {
    return (num_bits + kChunkBits - 1) / kChunkBits;
  }
  static uint64_t PayloadWords(const Container& c);
  static Container AndContainers(const Container& a, const Container& b);
  static Container OrContainers(const Container& a, const Container& b,
                                size_t chunk_bits);
  /// Applies the size rule to an intersection expressed as runs.
  static Container CanonicalizeRuns(std::vector<uint32_t> runs,
                                    uint32_t cardinality);
  /// Demotes a bitset container to an array when small enough.
  static Container FinishBitset(std::vector<uint64_t> words);

  void AppendContainer(uint32_t key, Container c);

  size_t num_bits_ = 0;
  size_t count_ = 0;
  std::vector<uint32_t> keys_;         // chunk indexes, strictly ascending
  std::vector<Container> containers_;  // aligned with keys_
};

}  // namespace colgraph
