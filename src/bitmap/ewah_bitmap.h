// EWAH (Enhanced Word-Aligned Hybrid) compressed bitmap. Bitmap columns in
// the master relation are extremely sparse for rarely-used edges, so the
// on-disk representation run-length-encodes runs of all-zero / all-one
// 64-bit words. ANDs can be evaluated directly on the compressed form.
#pragma once

#include <cstdint>
#include <vector>

#include "bitmap/bitmap.h"
#include "util/status.h"

namespace colgraph {

/// \brief RLE-compressed bitmap using 64-bit aligned words.
///
/// Encoding: a sequence of (marker, literal...) groups. Each marker word
/// packs: bit 0 = run bit value, bits 1..32 = run length in words, bits
/// 33..63 = number of literal words following the marker. This is the
/// classic EWAH layout; compression is proportional to the clustering of
/// the column, and boolean ops stream both inputs without decompressing.
class EwahBitmap {
 public:
  EwahBitmap() = default;

  /// Compresses a plain bitmap.
  static EwahBitmap FromBitmap(const Bitmap& bitmap);

  /// Decompresses into a plain bitmap of the original length.
  Bitmap ToBitmap() const;

  /// Streaming AND over the compressed representations.
  static EwahBitmap And(const EwahBitmap& a, const EwahBitmap& b);

  /// Number of bits in the (logical, uncompressed) bitmap.
  size_t size_bits() const { return num_bits_; }

  /// Number of set bits, computed from the compressed form.
  size_t Count() const;

  /// Compressed footprint in bytes (what a disk column would occupy).
  size_t CompressedBytes() const { return buffer_.size() * sizeof(uint64_t); }

  const std::vector<uint64_t>& buffer() const { return buffer_; }

  /// Re-creates a compressed bitmap from a raw buffer (persistence path).
  /// Trusts the buffer: use FromRawChecked for bytes read from disk.
  static EwahBitmap FromRaw(std::vector<uint64_t> buffer, size_t num_bits);

  /// Validating variant of FromRaw for untrusted (on-disk) buffers: walks
  /// the marker stream and rejects with Status::Corruption any encoding
  /// whose literal words run past the buffer or whose decoded word count
  /// differs from ceil(num_bits / 64). A bitmap that passes is safe to
  /// decompress: ToBitmap / ForEachWord stay in bounds.
  static StatusOr<EwahBitmap> FromRawChecked(std::vector<uint64_t> buffer,
                                             size_t num_bits);

  bool operator==(const EwahBitmap& other) const {
    return num_bits_ == other.num_bits_ && buffer_ == other.buffer_;
  }

 private:
  // Marker word layout helpers.
  static uint64_t MakeMarker(bool run_bit, uint64_t run_words,
                             uint64_t literal_words);
  static bool MarkerRunBit(uint64_t marker) { return marker & 1; }
  static uint64_t MarkerRunWords(uint64_t marker) {
    return (marker >> 1) & 0xFFFFFFFFull;
  }
  static uint64_t MarkerLiteralWords(uint64_t marker) { return marker >> 33; }

  /// Expands the compressed stream into raw words via a callback
  /// `fn(word)` invoked once per logical 64-bit word.
  template <typename Fn>
  void ForEachWord(Fn&& fn) const;

  size_t num_bits_ = 0;
  std::vector<uint64_t> buffer_;
};

}  // namespace colgraph
