// colgraphd wire protocol (DESIGN.md §12): length-prefixed CRC-32C-framed
// request/response messages over a local stream socket, reusing the frame
// idiom of the durable query log (obs/query_log.h):
//
//   [u8 type][u64 payload_len LE][u32 crc32c(payload)][payload bytes]
//
// Request payload:
//   [u32 magic 'CGRQ'][u8 op][u8 pad x3][u64 timeout_ms][u32 len][body]
//   optional context extension (tracing, DESIGN.md §15):
//   [u32 magic 'CGRX'][u64 request_id][u8 flags][u8 pad x3]
// Response payload:
//   [u32 magic 'CGRS'][u32 wire code][u64 snapshot_epoch][u32 len][body]
//   optional trace extension (echoed only when the request's context set
//   the trace flag):
//   [u32 magic 'CGRT'][u64 request_id][u32 trace_len][trace JSON]
//
// Compatibility rules for the extensions: a message *without* an extension
// is byte-identical to the pre-extension encoding, so a new peer in the
// default configuration interoperates with an old one in both directions.
// A request *with* a context reaches an old server as trailing bytes and
// is rejected with a clean InvalidArgument — tracing is opt-in per request
// precisely so that clients only send the extension to servers that
// support it. The response extension is strictly demand-driven: a server
// never volunteers it, so an old client (which cannot ask) never sees it.
//
// The body is UTF-8 text: the query / trace input on requests, the
// rendered result (or error message) on responses. Wire codes are a
// frozen enumeration decoupled from StatusCode so the in-memory enum can
// evolve without breaking deployed clients. Every decoder is
// bounds-checked and CRC-verified: a malformed or torn frame surfaces as
// Status::Corruption / InvalidArgument, never as an out-of-bounds read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace colgraph::server {

// --- Frame layer. ---

inline constexpr uint8_t kRequestFrame = 0x10;
inline constexpr uint8_t kResponseFrame = 0x11;

/// [type][len][crc] — the fixed prefix of every frame.
inline constexpr size_t kFrameHeaderBytes =
    sizeof(uint8_t) + sizeof(uint64_t) + sizeof(uint32_t);

/// Upper bound on one frame's payload. A hostile or corrupt length prefix
/// must not make the peer allocate unbounded memory.
inline constexpr uint64_t kMaxFramePayloadBytes = uint64_t{64} << 20;

struct FrameHeader {
  uint8_t type = 0;
  uint64_t payload_len = 0;
  uint32_t crc = 0;
};

/// Parses a frame header from exactly kFrameHeaderBytes of `data`.
/// Rejects unknown frame types and payload lengths above the cap.
[[nodiscard]] Status DecodeFrameHeader(const char* data, FrameHeader* out);

/// Verifies `payload` against the header's CRC-32C.
[[nodiscard]] Status VerifyFrameCrc(const FrameHeader& header,
                                    const char* payload, size_t len);

/// Wraps `payload` in a [type|len|crc|payload] frame appended to `out`.
void AppendFrame(uint8_t type, const std::vector<char>& payload,
                 std::vector<char>* out);

// --- Wire status codes (frozen; see the table in DESIGN.md §12). ---

inline constexpr uint32_t kWireOk = 0;
inline constexpr uint32_t kWireInvalidArgument = 1;
inline constexpr uint32_t kWireNotFound = 2;
inline constexpr uint32_t kWireAlreadyExists = 3;
inline constexpr uint32_t kWireOutOfRange = 4;
inline constexpr uint32_t kWireIOError = 5;
inline constexpr uint32_t kWireCorruption = 6;
inline constexpr uint32_t kWireNotSupported = 7;
inline constexpr uint32_t kWireInternal = 8;
inline constexpr uint32_t kWireDeadlineExceeded = 9;
inline constexpr uint32_t kWireCancelled = 10;
inline constexpr uint32_t kWireResourceExhausted = 11;
inline constexpr uint32_t kWireUnavailable = 12;

uint32_t WireCodeFromStatus(const Status& status);
/// Reconstructs a Status from a wire code + message; unknown codes decode
/// as Internal (a newer server talking to an older client).
Status StatusFromWire(uint32_t code, const std::string& message);

/// The retryability matrix (DESIGN.md §12): a client may safely retry
/// RESOURCE_EXHAUSTED (admission rejection — nothing executed) and
/// UNAVAILABLE (drain / not-yet-up — nothing executed). DEADLINE_EXCEEDED
/// and CANCELLED spent the caller's budget; everything else is a
/// deterministic failure that a retry would only repeat.
bool IsRetryableWireCode(uint32_t code);

// --- Message layer. ---

enum class RequestOp : uint8_t {
  kPing = 0,    ///< liveness probe; response body is "pong"
  kQuery = 1,   ///< body: text query (query/parser.h grammar)
  kIngest = 2,  ///< body: trace lines (workload/trace_loader.h format)
  kStats = 3,   ///< response body: the server's DumpMetricsJson document
};

// --- Request-context extension (tracing, DESIGN.md §15). ---

/// Context flag bit 0: the client asks the server to echo the request's
/// trace in the response extension.
inline constexpr uint8_t kContextFlagTrace = 0x01;

/// \brief Optional per-request identity appended after the request body.
/// The request id is client-generated (any nonzero 64-bit value; the
/// client library draws them from its jittered Rng) and keys the server's
/// trace record and slow-query-log entry for end-to-end attribution.
struct RequestContextExt {
  uint64_t request_id = 0;
  uint8_t flags = 0;

  bool trace() const { return (flags & kContextFlagTrace) != 0; }
};

struct Request {
  RequestOp op = RequestOp::kPing;
  /// Per-request deadline in milliseconds; 0 = no deadline. The server
  /// arms a CancellationToken with it and threads the token through query
  /// evaluation (QueryOptions::cancel).
  uint64_t timeout_ms = 0;
  std::string body;
  /// When true, `context` is encoded as the opt-in extension — send only
  /// to servers that understand it (old servers reject the frame cleanly).
  bool has_context = false;
  RequestContextExt context;
};

struct Response {
  uint32_t code = kWireOk;
  /// Epoch of the engine snapshot that served the request — lets clients
  /// (and the stress tests) attribute a result to one published state.
  uint64_t snapshot_epoch = 0;
  /// Rendered result on OK; error message otherwise.
  std::string body;
  /// Trace echo (set only when the request's context asked for it):
  /// the request id as the server resolved it, plus the server-rendered
  /// trace JSON (RequestContext::ToJson).
  bool has_trace = false;
  uint64_t request_id = 0;
  std::string trace_json;

  bool ok() const { return code == kWireOk; }
  /// The response's Status (OK, or StatusFromWire(code, body)).
  Status ToStatus() const;
};

/// Serializes a request/response as one complete frame appended to `out`.
void AppendRequestFrame(const Request& request, std::vector<char>* out);
void AppendResponseFrame(const Response& response, std::vector<char>* out);

/// Parses a request/response payload (frame header and CRC already
/// verified). Bounds-checked; corrupt magic/lengths are InvalidArgument.
[[nodiscard]] StatusOr<Request> DecodeRequestPayload(const char* data,
                                                     size_t len);
[[nodiscard]] StatusOr<Response> DecodeResponsePayload(const char* data,
                                                       size_t len);

}  // namespace colgraph::server
