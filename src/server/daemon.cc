#include "server/daemon.h"

#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "util/cancellation.h"
#include "workload/trace_loader.h"

namespace colgraph::server {

namespace {

// Serving metrics (DESIGN.md §12 / README "Metrics"): request and overload
// counters, plus the live gauges DumpMetricsJson exposes.
obs::Counter& RequestCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("server.requests");
  return c;
}
obs::Counter& OverloadCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("server.overload_rejections");
  return c;
}
obs::Counter& ConnectionCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("server.connections");
  return c;
}
obs::Counter& ProtocolErrorCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("server.protocol_errors");
  return c;
}
obs::Gauge& InFlightGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("server.in_flight");
  return g;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("server.queue_depth");
  return g;
}
// Storage shape of the *served* snapshot (DESIGN.md §15): set at every
// publish so the exporter and STATS responses show how fragmented the
// tail is and how much the daemon currently serves.
obs::Gauge& TailDatasetsGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("server.tail_datasets");
  return g;
}
obs::Gauge& TotalRecordsGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("server.total_records");
  return g;
}

/// RAII +1/-1 on a gauge.
class GaugeScope {
 public:
  explicit GaugeScope(obs::Gauge* gauge) : gauge_(gauge) { gauge_->Add(1); }
  ~GaugeScope() { gauge_->Add(-1); }
  GaugeScope(const GaugeScope&) = delete;
  GaugeScope& operator=(const GaugeScope&) = delete;

 private:
  obs::Gauge* gauge_;
};

std::string FormatValue(double v) {
  char buffer[64];
  // %.17g round-trips every double bit-exactly, so serial re-evaluation
  // renders byte-identical bodies (the stress test's oracle).
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

std::string RenderMatchResult(const Bitmap& matches) {
  std::string out = "match " + std::to_string(matches.Count()) + ":";
  matches.ForEachSetBit(
      [&](size_t r) { out += " r" + std::to_string(r); });
  out += "\n";
  return out;
}

std::string RenderAggResult(const PathAggResult& result, AggFn fn) {
  std::string out = std::string(AggFnName(fn)) + " over " +
                    std::to_string(result.records.size()) + " record(s), " +
                    std::to_string(result.paths.size()) + " path(s)\n";
  for (size_t p = 0; p < result.paths.size(); ++p) {
    out += "path " + result.paths[p].ToString() + ":";
    for (const double v : result.values[p]) out += " " + FormatValue(v);
    out += "\n";
  }
  return out;
}

StatusOr<std::unique_ptr<Daemon>> Daemon::Start(
    std::shared_ptr<const ColGraphEngine> initial, DaemonOptions options) {
  if (initial == nullptr) {
    return Status::InvalidArgument("colgraphd needs an initial engine");
  }
  if (!initial->relation().sealed()) {
    return Status::InvalidArgument(
        "colgraphd serves sealed engines; Seal() the initial snapshot");
  }
  if (options.num_workers == 0) {
    return Status::InvalidArgument("colgraphd needs at least one worker");
  }

  // Durable dataset directory: open it (sweeping any crash debris) and
  // re-attach its live datasets behind the initial snapshot, so records
  // sealed by a previous run survive the restart.
  std::unique_ptr<DatasetStore> store;
  if (!options.data_dir.empty()) {
    DatasetStore::Options store_options;
    store_options.relation = initial->options().relation;
    COLGRAPH_ASSIGN_OR_RETURN(
        DatasetStore opened,
        DatasetStore::Open(options.data_dir, store_options));
    store = std::make_unique<DatasetStore>(std::move(opened));
    COLGRAPH_ASSIGN_OR_RETURN(std::vector<MasterRelation> datasets,
                              store->LoadAll());
    if (!datasets.empty()) {
      ColGraphEngine restored = initial->SharedCopy();
      for (MasterRelation& dataset : datasets) {
        COLGRAPH_RETURN_NOT_OK(restored.AttachDataset(
            std::make_shared<const MasterRelation>(std::move(dataset))));
      }
      initial = std::make_shared<const ColGraphEngine>(std::move(restored));
    }
  }

  COLGRAPH_ASSIGN_OR_RETURN(
      UnixListener listener,
      UnixListener::Bind(options.socket_path,
                         static_cast<int>(options.max_queued_connections)));
  std::unique_ptr<Daemon> daemon(new Daemon(
      std::move(options), std::move(initial), std::move(listener)));
  if (store != nullptr) {
    const MutexLock writer_lock(daemon->writer_mu_);
    daemon->store_ = std::move(store);
  }

  // Telemetry sinks (DESIGN.md §15). The slow-query log must open or the
  // daemon refuses to start — silently serving without the capture the
  // operator asked for is worse than failing fast. The Daemon destructor
  // drains cleanly if either Open fails here.
  if (!daemon->options_.slow_query_log.path.empty()) {
    COLGRAPH_ASSIGN_OR_RETURN(
        daemon->slow_log_,
        obs::SlowQueryLog::Open(daemon->options_.slow_query_log));
  }
  if (!daemon->options_.metrics_dir.empty()) {
    obs::MetricsExporterOptions exporter_options;
    exporter_options.dir = daemon->options_.metrics_dir;
    exporter_options.period_ms = daemon->options_.metrics_period_ms;
    // Export what a STATS request would answer: the *served* snapshot's
    // DumpMetricsJson (engine + registry), not the bare registry.
    Daemon* raw = daemon.get();
    exporter_options.source = [raw] {
      return raw->snapshots_.Acquire()->DumpMetricsJson();
    };
    COLGRAPH_ASSIGN_OR_RETURN(
        daemon->exporter_,
        obs::MetricsExporter::Start(std::move(exporter_options)));
  }
  return daemon;
}

Daemon::Daemon(DaemonOptions options,
               std::shared_ptr<const ColGraphEngine> initial,
               UnixListener listener)
    : options_(std::move(options)),
      snapshots_(std::move(initial)),
      admission_(options_.max_in_flight),
      listener_(std::move(listener)),
      conn_pool_(std::make_unique<ThreadPool>(options_.num_workers)),
      accept_pool_(std::make_unique<ThreadPool>(1)) {
  // Register the serving gauges now so a kStats response (and any metrics
  // dump) lists them at zero before the first request arrives.
  InFlightGauge();
  QueueDepthGauge();
  {
    const std::shared_ptr<const ColGraphEngine> snapshot =
        snapshots_.Acquire();
    TailDatasetsGauge().Set(static_cast<int64_t>(snapshot->tails().size()));
    TotalRecordsGauge().Set(
        static_cast<int64_t>(snapshot->total_records()));
  }
  accept_pool_->Schedule([this] { AcceptLoop(); });
}

Daemon::~Daemon() {
  const Status s = Drain();
  if (!s.ok()) {
    std::fprintf(stderr, "colgraphd: drain failed: %s\n",
                 s.ToString().c_str());
  }
}

Status Daemon::Drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Another caller is (or was) draining; tick until its result lands.
    for (;;) {
      {
        const MutexLock lock(drain_mu_);
        if (drained_) return drain_status_;
      }
      SleepMs(options_.poll_tick_ms);
    }
  }

  // 1. Join the accept loop (it exits on its next poll tick), then close
  //    the listener so the socket file disappears — new connects now fail
  //    fast with UNAVAILABLE at the OS level.
  accept_pool_.reset();
  listener_.Close();

  // 2. Join the connection workers. In-flight requests run to completion;
  //    idle connections notice draining_ on their next tick and close;
  //    queued handlers start, observe draining_, and refuse politely.
  conn_pool_.reset();

  // 3. Flush and close the query log — after this the capture file is
  //    complete and replayable. The log is shared by every published
  //    snapshot (engine copies share the sink), so closing it once here
  //    covers all epochs.
  Status status = Status::OK();
  const std::shared_ptr<const ColGraphEngine> snapshot = snapshots_.Acquire();
  if (snapshot->query_log() != nullptr) {
    status = snapshot->query_log()->Close();
  }

  // 4. Stop telemetry: the exporter writes one final document (so the
  //    last interval's counters land on disk), then the slow-query log is
  //    completed with its footer. Close errors surface through the drain
  //    status like the query log's.
  if (exporter_ != nullptr) exporter_->Stop();
  if (slow_log_ != nullptr) {
    const Status slow = slow_log_->Close();
    if (status.ok()) status = slow;
  }

  {
    const MutexLock lock(drain_mu_);
    drained_ = true;
    drain_status_ = status;
  }
  return status;
}

void Daemon::AcceptLoop() {
  while (!draining()) {
    StatusOr<UnixSocket> accepted = listener_.Accept(options_.poll_tick_ms);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;  // stop-flag tick
      if (draining()) break;
      std::fprintf(stderr, "colgraphd: accept failed: %s\n",
                   accepted.status().ToString().c_str());
      SleepMs(options_.poll_tick_ms);
      continue;
    }
    ConnectionCounter().Increment();

    // Bounded handler queue: beyond the cap, shed load at the front door
    // with the retryable overload status instead of queueing invisibly.
    const size_t queued =
        queued_connections_.fetch_add(1, std::memory_order_acq_rel);
    if (queued >= options_.max_queued_connections) {
      queued_connections_.fetch_sub(1, std::memory_order_acq_rel);
      OverloadCounter().Increment();
      Response overload = ErrorResponse(Status::ResourceExhausted(
          "connection rejected: " +
          std::to_string(options_.max_queued_connections) +
          " connections already queued (retry with backoff)"));
      std::vector<char> frame;
      AppendResponseFrame(overload, &frame);
      UnixSocket socket = std::move(accepted).value();
      (void)socket.WriteAll(frame.data(), frame.size(),
                            options_.io_timeout_ms);
      continue;  // socket closes on scope exit
    }
    QueueDepthGauge().Add(1);

    // shared_ptr: std::function requires a copyable callable, and the
    // socket must survive until the (single) invocation runs.
    auto socket =
        std::make_shared<UnixSocket>(std::move(accepted).value());
    const uint64_t enqueued_us = obs::NowMicros();
    conn_pool_->Schedule([this, socket, enqueued_us]() mutable {
      queued_connections_.fetch_sub(1, std::memory_order_acq_rel);
      QueueDepthGauge().Add(-1);
      // The accept queue is timed across threads, so the wait is measured
      // here and carried into the first request's trace by ReadRequest.
      const uint64_t dequeued_us = obs::NowMicros();
      obs::RecordQueueWait(nullptr, enqueued_us, dequeued_us);
      const uint64_t wait_us =
          dequeued_us >= enqueued_us ? dequeued_us - enqueued_us : 0;
      HandleConnection(std::move(*socket), wait_us);
    });
  }
}

Status Daemon::ReadRequest(UnixSocket* socket, Request* request,
                           Response* error_response, bool* fatal_out,
                           obs::RequestContext* ctx,
                           uint64_t* pending_queue_wait_us) {
  *fatal_out = false;

  // Idle phase: wait for the first header byte in short ticks so a drain
  // interrupts keep-alive connections promptly. No idle cap — a client may
  // hold a connection open as long as the daemon is serving.
  for (;;) {
    if (draining()) return Status::Unavailable("server draining");
    const Status ready = socket->WaitReadable(options_.poll_tick_ms);
    if (ready.ok()) break;
    if (!ready.IsDeadlineExceeded()) return ready;
  }

  // The request begins now: re-anchor the context so keep-alive idle time
  // is excluded, then let the first request on the connection absorb the
  // accept-queue wait (already counted in the histogram by AcceptLoop).
  ctx->MarkStart();
  if (*pending_queue_wait_us > 0) {
    ctx->trace().Add(obs::ServerPhaseName(obs::ServerPhase::kQueueWait), 0,
                     *pending_queue_wait_us);
    *pending_queue_wait_us = 0;
  }
  const obs::ServerSpan decode_span(obs::ServerPhase::kDecode, ctx);

  // Framed phase: once bytes start flowing the peer must complete the
  // frame within the IO budget or be dropped (hung-client defense).
  char header_bytes[kFrameHeaderBytes];
  COLGRAPH_RETURN_NOT_OK(socket->ReadFull(header_bytes, kFrameHeaderBytes,
                                          options_.io_timeout_ms));
  FrameHeader header;
  Status s = DecodeFrameHeader(header_bytes, &header);
  if (s.ok() && header.type != kRequestFrame) {
    s = Status::InvalidArgument("protocol: expected a request frame");
  }
  if (!s.ok()) {
    // The stream is desynchronized — answer, then hang up.
    ProtocolErrorCounter().Increment();
    *error_response = ErrorResponse(s);
    *fatal_out = true;
    return Status::OK();
  }

  std::vector<char> payload(header.payload_len);
  COLGRAPH_RETURN_NOT_OK(
      socket->ReadFull(payload.data(), payload.size(),
                       options_.io_timeout_ms));
  s = VerifyFrameCrc(header, payload.data(), payload.size());
  if (s.ok()) {
    StatusOr<Request> decoded =
        DecodeRequestPayload(payload.data(), payload.size());
    if (decoded.ok()) {
      *request = std::move(decoded).value();
      if (request->has_context) {
        ctx->AdoptWireContext(request->context.request_id,
                              request->context.trace());
      }
      return Status::OK();
    }
    s = decoded.status();
  }
  ProtocolErrorCounter().Increment();
  *error_response = ErrorResponse(s);
  *fatal_out = true;
  return Status::OK();
}

void Daemon::HandleConnection(UnixSocket socket, uint64_t queue_wait_us) {
  for (;;) {
    Request request;
    Response response;
    bool fatal = false;
    obs::RequestContext ctx;
    const Status read = ReadRequest(&socket, &request, &response, &fatal,
                                    &ctx, &queue_wait_us);
    if (!read.ok()) {
      // Clean disconnect (Unavailable), hung peer (DeadlineExceeded), or
      // torn frame (IOError): nothing to answer, drop the connection.
      return;
    }
    if (!fatal) response = ExecuteWithContext(request, &ctx);

    std::vector<char> frame;
    {
      const obs::ServerSpan encode_span(obs::ServerPhase::kEncode, &ctx);
      if (!fatal) MaybeEchoTrace(request, ctx, &response);
      AppendResponseFrame(response, &frame);
    }
    Status written;
    {
      const obs::ServerSpan write_span(obs::ServerPhase::kWrite, &ctx);
      written =
          socket.WriteAll(frame.data(), frame.size(), options_.io_timeout_ms);
    }
    // Capture after the write so the record's total covers the full
    // server-side lifetime. The echoed trace (rendered before the encode
    // span closed) necessarily lacks the encode/write events; the
    // slow-query record has them.
    if (!fatal) MaybeCaptureSlowQuery(request, &ctx, response);
    if (!written.ok() || fatal) return;
  }
}

Response Daemon::ErrorResponse(const Status& status) const {
  Response response;
  response.code = WireCodeFromStatus(status);
  response.snapshot_epoch = snapshots_.epoch();
  response.body = status.message();
  return response;
}

Response Daemon::Execute(const Request& request) {
  // Direct (in-process) callers get the same finalize the socket path
  // performs itself: trace echo and slow-query capture, minus the
  // encode/write phases that only exist on a real connection.
  obs::RequestContext ctx;
  if (request.has_context) {
    ctx.AdoptWireContext(request.context.request_id,
                         request.context.trace());
  }
  Response response = ExecuteWithContext(request, &ctx);
  MaybeEchoTrace(request, ctx, &response);
  MaybeCaptureSlowQuery(request, &ctx, response);
  return response;
}

Response Daemon::ExecuteWithContext(const Request& request,
                                    obs::RequestContext* ctx) {
  RequestCounter().Increment();
  if (ctx->request_id() == 0) {
    // Old-protocol client (no wire context): assign a daemon-local id so
    // the trace record and any slow-query capture stay keyed.
    ctx->set_request_id(request_seq_.fetch_add(1, std::memory_order_relaxed) +
                        1);
  }
  if (draining()) {
    return ErrorResponse(
        Status::Unavailable("server draining; no new requests"));
  }

  // The admission span closes as soon as the slot outcome is known; the
  // slot itself stays held for the whole execution.
  auto admission_span = std::make_unique<const obs::ServerSpan>(
      obs::ServerPhase::kAdmission, ctx);
  const AdmissionSlot slot(&admission_, "request");
  admission_span.reset();
  if (!slot.admitted()) {
    OverloadCounter().Increment();
    return ErrorResponse(slot.status());
  }
  const GaugeScope in_flight(&InFlightGauge());

  CancellationToken token;
  const uint64_t timeout_ms = request.timeout_ms > 0
                                  ? request.timeout_ms
                                  : options_.default_timeout_ms;
  if (timeout_ms > 0) token.SetTimeout(timeout_ms);
  if (options_.test_delay_before_execute_ms > 0) {
    SleepMs(options_.test_delay_before_execute_ms);
  }
  if (const Status pre = token.Check(); !pre.ok()) {
    return ErrorResponse(pre);
  }

  const obs::ServerSpan evaluate_span(obs::ServerPhase::kEvaluate, ctx);
  switch (request.op) {
    case RequestOp::kPing: {
      Response response;
      response.snapshot_epoch = snapshots_.epoch();
      response.body = "pong";
      return response;
    }
    case RequestOp::kStats: {
      Response response;
      const std::shared_ptr<const ColGraphEngine> engine =
          snapshots_.Acquire(&response.snapshot_epoch);
      // Body selects the document (old clients send an empty body and get
      // the full dump, unchanged): "registry" returns just the process
      // registry — cheap enough for `stats --watch` to poll every second.
      if (request.body == "registry") {
        response.body = obs::MetricsRegistry::Global().ToJson();
      } else if (request.body.empty() || request.body == "full") {
        response.body = engine->DumpMetricsJson();
      } else {
        return ErrorResponse(Status::InvalidArgument(
            "unknown stats selector: " + request.body +
            " (expected empty, \"full\", or \"registry\")"));
      }
      return response;
    }
    case RequestOp::kQuery:
      return ExecuteQuery(request, token, ctx);
    case RequestOp::kIngest: {
      StatusOr<Response> response = Ingest(request.body);
      if (!response.ok()) return ErrorResponse(response.status());
      return std::move(response).value();
    }
  }
  return ErrorResponse(Status::Internal("unreachable request op"));
}

void Daemon::MaybeEchoTrace(const Request& request,
                            const obs::RequestContext& ctx,
                            Response* response) const {
  if (!request.has_context || !request.context.trace()) return;
  response->has_trace = true;
  response->request_id = ctx.request_id();
  response->trace_json = ctx.ToJson(response->snapshot_epoch);
}

void Daemon::MaybeCaptureSlowQuery(const Request& request,
                                   obs::RequestContext* ctx,
                                   const Response& response) {
  if (slow_log_ == nullptr) return;
  const uint64_t total_us = ctx->ElapsedUs();
  bool sampled = false;
  if (!slow_log_->AdmitForCapture(total_us, &sampled)) return;

  obs::SlowQueryRecord record;
  record.request_id = ctx->request_id();
  record.snapshot_epoch = response.snapshot_epoch;
  record.total_us = total_us;
  record.wire_code = response.code;
  record.op = static_cast<uint8_t>(request.op);
  record.sampled = sampled;
  record.query = request.body;  // Append truncates to the cap
  for (const obs::TraceEvent& event : ctx->trace().events()) {
    record.spans.push_back(obs::SlowQuerySpan{
        std::string(event.name), event.start_us, event.duration_us});
  }
  slow_log_->Append(record);
}

Response Daemon::ExecuteQuery(const Request& request,
                              const CancellationToken& token,
                              obs::RequestContext* ctx) {
  const StatusOr<ParsedQuery> parsed = ParseQuery(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());

  Response response;
  const std::shared_ptr<const ColGraphEngine> engine =
      snapshots_.Acquire(&response.snapshot_epoch);

  QueryOptions query_options;
  query_options.cancel = &token;
  // The engine's phase spans land in the same trace as the server phases,
  // so one record shows the whole request (the end-to-end join).
  query_options.trace = &ctx->trace();

  if (parsed->kind == ParsedQuery::Kind::kMatch) {
    const Bitmap matches =
        parsed->expr->Evaluate(engine->query_engine(), query_options);
    // Boolean-expression evaluation returns a plain bitmap (no status
    // channel), so the deadline is enforced at the evaluation boundary.
    if (const Status post = token.Check(); !post.ok()) {
      return ErrorResponse(post);
    }
    response.body = RenderMatchResult(matches);
    return response;
  }

  const StatusOr<PathAggResult> result =
      engine->RunAggregateQuery(parsed->query, parsed->fn, query_options);
  if (!result.ok()) return ErrorResponse(result.status());
  response.body = RenderAggResult(*result, parsed->fn);
  return response;
}

StatusOr<Response> Daemon::Ingest(const std::string& trace_text) {
  // Single writer: ingests serialize here. Readers never wait — they keep
  // evaluating against the previous snapshot until the publish below.
  const MutexLock writer_lock(writer_mu_);

  std::istringstream in(trace_text);
  COLGRAPH_ASSIGN_OR_RETURN(const std::vector<WalkTrace> traces,
                            ParseTraces(in));
  if (traces.empty()) {
    return Status::InvalidArgument("ingest body contains no trace records");
  }

  const std::shared_ptr<const ColGraphEngine> base = snapshots_.Acquire();
  // Append-a-dataset ingest (DESIGN.md §14): the batch becomes a small
  // sealed tail relation; the primary relation is *shared* with the served
  // snapshot, not copied. A failure anywhere below leaves the served
  // snapshot untouched.
  ColGraphEngine next = base->SharedCopy();
  std::vector<GraphRecord> records;
  records.reserve(traces.size());
  for (const WalkTrace& trace : traces) {
    if (trace.walk.size() < 2) {
      return Status::InvalidArgument("a walk needs at least two nodes");
    }
    if (trace.measures.size() != trace.walk.size() - 1) {
      return Status::InvalidArgument("a walk of n nodes needs n-1 measures");
    }
    GraphRecord record;
    record.elements = WalkToEdges(trace.walk);
    record.measures = trace.measures;
    records.push_back(std::move(record));
  }
  COLGRAPH_ASSIGN_OR_RETURN(MasterRelation tail,
                            next.BuildTailRelation(records));
  if (store_ != nullptr) {
    // Durability before visibility: the dataset file is sealed (and the
    // manifest rewritten) before any reader can observe the records.
    COLGRAPH_RETURN_NOT_OK(store_->Seal(tail).status());
  }
  COLGRAPH_RETURN_NOT_OK(next.AttachDataset(
      std::make_shared<const MasterRelation>(std::move(tail))));

  const size_t total = next.total_records();
  const size_t num_tails = next.tails().size();
  COLGRAPH_RETURN_NOT_OK(snapshots_.Publish(
      std::make_shared<const ColGraphEngine>(std::move(next))));
  TailDatasetsGauge().Set(static_cast<int64_t>(num_tails));
  TotalRecordsGauge().Set(static_cast<int64_t>(total));

  // Background compaction: once enough small datasets pile up, merge them
  // off the writer path. The flag collapses triggers so at most one task
  // is queued at a time.
  if (options_.compact_after_datasets > 0 &&
      num_tails >= options_.compact_after_datasets &&
      !compaction_queued_.exchange(true, std::memory_order_acq_rel)) {
    conn_pool_->Schedule([this] {
      const Status status = CompactNow();
      // Unavailable is the quiet outcome: drain raced in, or another
      // process holds the compaction lock — both retry naturally.
      if (!status.ok() && !status.IsUnavailable()) {
        std::fprintf(stderr, "colgraphd: background compaction failed: %s\n",
                     status.ToString().c_str());
      }
      compaction_queued_.store(false, std::memory_order_release);
    });
  }

  Response response;
  response.snapshot_epoch = snapshots_.epoch();
  response.body = "ingested " + std::to_string(traces.size()) +
                  " record(s); " + std::to_string(total) +
                  " total; epoch " +
                  std::to_string(response.snapshot_epoch);
  return response;
}

Status Daemon::CompactNow() {
  const MutexLock writer_lock(writer_mu_);
  if (draining()) return Status::Unavailable("server draining");

  // Durable merge first: if it fails (injected crash, lock contention),
  // the manifest still references every sealed dataset and the served
  // snapshot keeps answering from them — zero records lost.
  if (store_ != nullptr) {
    COLGRAPH_RETURN_NOT_OK(store_->CompactAll());
  }

  const std::shared_ptr<const ColGraphEngine> base = snapshots_.Acquire();
  if (base->tails().empty()) return Status::OK();
  ColGraphEngine next = base->SharedCopy();
  COLGRAPH_RETURN_NOT_OK(next.Compact());
  const size_t total = next.total_records();
  const size_t num_tails = next.tails().size();
  COLGRAPH_RETURN_NOT_OK(snapshots_.Publish(
      std::make_shared<const ColGraphEngine>(std::move(next))));
  TailDatasetsGauge().Set(static_cast<int64_t>(num_tails));
  TotalRecordsGauge().Set(static_cast<int64_t>(total));
  return Status::OK();
}

}  // namespace colgraph::server
