// Local-socket transport for colgraphd. This header and net_socket.cc are
// the ONLY files in src/ allowed to touch the raw socket(2)/send/recv API
// (repo lint rule [no-raw-socket]) — everything else goes through these
// wrappers, which centralize the concerns raw calls get wrong:
//
//   - poll(2)-based timeouts on connect/accept/read/write, so a hung or
//     malicious peer can never wedge a server worker (reads that starve
//     return Status::DeadlineExceeded and the connection is dropped);
//   - EINTR retry loops around every blocking call;
//   - SIGPIPE suppression (MSG_NOSIGNAL) — a peer closing mid-write is a
//     Status, not a process kill;
//   - failpoints net:connect, net:read_error, net:write_error and
//     net:short_write for chaos tests (short:<B> keeps the first B bytes
//     of a write, then reports an injected IOError — a torn frame).
//
// AF_UNIX only: colgraphd serves local clients (the paper's workloads are
// co-located analytics, not a network service), which keeps the attack
// surface at file-permission granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace colgraph::server {

/// Sleeps the calling thread for `ms` milliseconds (poll(2) with no fds —
/// signal-tolerant, no std::thread dependency). Used for client backoff
/// and the daemon's deterministic test delays.
void SleepMs(uint64_t ms);

/// \brief One connected AF_UNIX stream socket. Move-only; closes on
/// destruction.
class UnixSocket {
 public:
  UnixSocket() = default;
  ~UnixSocket() { Close(); }

  UnixSocket(UnixSocket&& other) noexcept;
  UnixSocket& operator=(UnixSocket&& other) noexcept;
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;

  /// Connects to the listener at `path`, waiting up to `timeout_ms`
  /// (0 = no limit). A missing/refusing socket is Status::Unavailable —
  /// the retryable "server not up / draining" signal.
  [[nodiscard]] static StatusOr<UnixSocket> Connect(const std::string& path,
                                                    uint64_t timeout_ms);

  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Writes all `n` bytes, waiting up to `timeout_ms` for writability per
  /// chunk (0 = no limit). A peer that stops draining the socket is
  /// DeadlineExceeded; a closed peer is IOError.
  [[nodiscard]] Status WriteAll(const void* data, size_t n,
                                uint64_t timeout_ms);

  /// Reads exactly `n` bytes into `buf`, waiting up to `timeout_ms` for
  /// readability per chunk (0 = no limit). Clean EOF before the first byte
  /// is Status::Unavailable ("connection closed by peer" — the normal end
  /// of a request loop, and retryable from a client's perspective); EOF
  /// mid-buffer is IOError (a torn frame); a silent peer is
  /// DeadlineExceeded.
  [[nodiscard]] Status ReadFull(void* buf, size_t n, uint64_t timeout_ms);

  /// Waits (without consuming anything) until a read would not block —
  /// data or EOF pending. DeadlineExceeded on timeout. The daemon's
  /// request loop idles in short WaitReadable ticks so a drain request can
  /// interrupt a connection that is merely being kept alive.
  [[nodiscard]] Status WaitReadable(uint64_t timeout_ms);

  int fd() const { return fd_; }

 private:
  friend class UnixListener;
  explicit UnixSocket(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// \brief A bound, listening AF_UNIX socket. Unlinks its path on Close so
/// a drained daemon leaves no stale socket file behind. Move-only.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener() { Close(); }

  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Binds and listens at `path` (unlinking any stale socket file first).
  /// AF_UNIX paths are limited to ~107 bytes; longer paths are
  /// InvalidArgument.
  [[nodiscard]] static StatusOr<UnixListener> Bind(const std::string& path,
                                                   int backlog);

  /// Waits up to `timeout_ms` for a connection. A timeout returns
  /// DeadlineExceeded — the accept loop's normal "check the stop flag"
  /// tick, not an error.
  [[nodiscard]] StatusOr<UnixSocket> Accept(uint64_t timeout_ms);

  bool valid() const { return fd_ >= 0; }
  void Close();
  const std::string& path() const { return path_; }

 private:
  UnixListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

}  // namespace colgraph::server
