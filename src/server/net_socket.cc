#include "server/net_socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/failpoint.h"

namespace colgraph::server {

namespace {

// MSG_NOSIGNAL keeps a peer death out of signal land on Linux; macOS
// spells the same thing SO_NOSIGPIPE (set at connect/accept).
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

void SetNoSigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

std::string ErrnoMessage(const std::string& what, int err) {
  return what + ": " + std::strerror(err);
}

/// Waits for `events` on `fd` up to `timeout_ms` (0 = no limit). Returns
/// OK when ready, DeadlineExceeded on timeout, IOError on poll failure.
Status PollFor(int fd, short events, uint64_t timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int wait = timeout_ms == 0 ? -1 : static_cast<int>(timeout_ms);
  for (;;) {
    const int rc = ::poll(&pfd, 1, wait);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::DeadlineExceeded("socket wait timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    if (errno == EINTR) continue;
    return Status::IOError(ErrnoMessage("poll", errno));
  }
}

Status FillSockaddr(const std::string& path, struct sockaddr_un* addr) {
  if (path.empty()) {
    return Status::InvalidArgument("socket path must not be empty");
  }
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument(
        "socket path exceeds the AF_UNIX limit of " +
        std::to_string(sizeof(addr->sun_path) - 1) + " bytes: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

}  // namespace

void SleepMs(uint64_t ms) {
  if (ms == 0) return;
  // poll with no fds is a portable, EINTR-restartable sleep.
  uint64_t remaining = ms;
  while (remaining > 0) {
    const int chunk =
        remaining > uint64_t{1} << 30 ? 1 << 30 : static_cast<int>(remaining);
    const int rc = ::poll(nullptr, 0, chunk);
    if (rc == 0) remaining -= static_cast<uint64_t>(chunk);
    // EINTR: re-poll for the full chunk; oversleeping a test delay is fine.
  }
}

UnixSocket::UnixSocket(UnixSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UnixSocket::Close() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
}

StatusOr<UnixSocket> UnixSocket::Connect(const std::string& path,
                                         uint64_t timeout_ms) {
  if (failpoint::Hit("net:connect") != failpoint::Action::kOff) {
    return Status::Unavailable("injected connect failure (net:connect)");
  }
  struct sockaddr_un addr;
  COLGRAPH_RETURN_NOT_OK(FillSockaddr(path, &addr));

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket", errno));
  UnixSocket socket(fd);
  SetNoSigpipe(fd);

  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    // No listener / backlog full / stale path: the retryable "server is
    // not up (yet)" signal, not a hard IO failure.
    if (errno == ECONNREFUSED || errno == ENOENT || errno == EAGAIN) {
      return Status::Unavailable(ErrnoMessage("connect to " + path, errno));
    }
    return Status::IOError(ErrnoMessage("connect to " + path, errno));
  }
  // AF_UNIX connect succeeds or fails synchronously; the timeout guards
  // the first write/read instead.
  (void)timeout_ms;
  return socket;
}

Status UnixSocket::WriteAll(const void* data, size_t n, uint64_t timeout_ms) {
  if (!valid()) return Status::IOError("write on closed socket");
  if (failpoint::Hit("net:write_error") != failpoint::Action::kOff) {
    return Status::IOError("injected write failure (net:write_error)");
  }
  uint64_t short_arg = 0;
  size_t limit = n;
  bool injected_short = false;
  if (failpoint::Hit("net:short_write", &short_arg) ==
      failpoint::Action::kShortWrite) {
    // Persist only the first `short_arg` bytes, then report the tear: the
    // peer sees a truncated frame, exactly like a mid-write crash.
    limit = short_arg < n ? static_cast<size_t>(short_arg) : n;
    injected_short = true;
  }

  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < limit) {
    COLGRAPH_RETURN_NOT_OK(PollFor(fd_, POLLOUT, timeout_ms));
    const ssize_t rc = ::send(fd_, p + written, limit - written, kSendFlags);
    if (rc >= 0) {
      written += static_cast<size_t>(rc);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::IOError("peer closed connection mid-write");
    }
    return Status::IOError(ErrnoMessage("send", errno));
  }
  if (injected_short) {
    return Status::IOError("injected short write (net:short_write): wrote " +
                           std::to_string(written) + " of " +
                           std::to_string(n) + " bytes");
  }
  return Status::OK();
}

Status UnixSocket::ReadFull(void* buf, size_t n, uint64_t timeout_ms) {
  if (!valid()) return Status::IOError("read on closed socket");
  if (failpoint::Hit("net:read_error") != failpoint::Action::kOff) {
    return Status::IOError("injected read failure (net:read_error)");
  }
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    COLGRAPH_RETURN_NOT_OK(PollFor(fd_, POLLIN, timeout_ms));
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (got == 0) {
        return Status::Unavailable("connection closed by peer");
      }
      return Status::IOError("unexpected EOF mid-frame (" +
                             std::to_string(got) + " of " + std::to_string(n) +
                             " bytes read)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) {
      return got == 0 ? Status::Unavailable("connection reset by peer")
                      : Status::IOError("connection reset mid-frame");
    }
    return Status::IOError(ErrnoMessage("recv", errno));
  }
  return Status::OK();
}

Status UnixSocket::WaitReadable(uint64_t timeout_ms) {
  if (!valid()) return Status::IOError("wait on closed socket");
  return PollFor(fd_, POLLIN, timeout_ms);
}

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

void UnixListener::Close() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
    (void)::unlink(path_.c_str());
    path_.clear();
  }
}

StatusOr<UnixListener> UnixListener::Bind(const std::string& path,
                                          int backlog) {
  struct sockaddr_un addr;
  COLGRAPH_RETURN_NOT_OK(FillSockaddr(path, &addr));

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket", errno));
  UnixListener listener(fd, path);

  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nothing is listening; remove it first. A *live*
  // daemon is not protected against double-starts by this — deployments
  // use distinct paths per instance.
  (void)::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError(ErrnoMessage("bind " + path, errno));
  }
  if (::listen(fd, backlog) < 0) {
    return Status::IOError(ErrnoMessage("listen " + path, errno));
  }
  return listener;
}

StatusOr<UnixSocket> UnixListener::Accept(uint64_t timeout_ms) {
  if (!valid()) return Status::IOError("accept on closed listener");
  COLGRAPH_RETURN_NOT_OK(PollFor(fd_, POLLIN, timeout_ms));
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    // The connection can vanish between poll and accept; treat transient
    // errno as a timeout tick so the accept loop just re-polls.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Status::DeadlineExceeded("accept raced a vanished connection");
    }
    return Status::IOError(ErrnoMessage("accept", errno));
  }
  SetNoSigpipe(fd);
  return UnixSocket(fd);
}

}  // namespace colgraph::server
