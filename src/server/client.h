// Client for colgraphd (DESIGN.md §12). One Call() sends a framed request
// and reads the framed response, with the retry discipline the serving
// contract promises is safe:
//
//   - *What retries*: transport failures before a response (connect
//     refused, torn/corrupt response frame, peer reset) and responses
//     whose wire code is retryable — RESOURCE_EXHAUSTED (admission
//     rejection) and UNAVAILABLE (drain / server not up). In both cases
//     the server executed nothing chargeable.
//   - *What does not retry*: DEADLINE_EXCEEDED and CANCELLED (the budget
//     was spent server-side; retrying doubles the cost for the same
//     outcome) and every deterministic failure (INVALID_ARGUMENT, ...).
//   - *How*: jittered exponential backoff — backoff_base_ms doubles per
//     attempt, capped at backoff_max_ms, and each sleep is multiplied by a
//     uniform [0.5, 1.0) draw so a fleet of rejected clients does not
//     re-stampede in lockstep. The jitter RNG is seedable for
//     deterministic tests.
//
// Connections are per-call-sequence: Call() reuses the socket across
// requests while it stays healthy and reconnects transparently after a
// transport failure.
#pragma once

#include <cstdint>
#include <string>

#include "server/net_socket.h"
#include "server/protocol.h"
#include "util/random.h"
#include "util/status.h"

namespace colgraph::server {

struct ClientOptions {
  /// Socket path of the daemon. Required.
  std::string socket_path;
  /// Budget for connect plus each read/write chunk; 0 = no limit.
  uint64_t io_timeout_ms = 5000;
  /// Total tries per Call() — the first attempt plus up to
  /// max_attempts - 1 retries of retryable failures.
  size_t max_attempts = 4;
  /// First backoff sleep; doubles per retry up to backoff_max_ms.
  uint64_t backoff_base_ms = 10;
  uint64_t backoff_max_ms = 500;
  /// Seed for backoff jitter (deterministic tests pin it).
  uint64_t jitter_seed = 0x636f6c67;  // "colg"
};

/// \brief Framed-protocol client with reconnect and retry/backoff.
class Client {
 public:
  explicit Client(ClientOptions options)
      : options_(std::move(options)), rng_(options_.jitter_seed) {}

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `request` and returns the server's response, retrying per the
  /// matrix above. A non-OK *response* (e.g. the server's
  /// INVALID_ARGUMENT) is still a successful Call() — inspect
  /// Response::ok() / ToStatus(); a non-OK *Status* means every attempt
  /// failed at the transport layer or with a retryable code.
  [[nodiscard]] StatusOr<Response> Call(const Request& request);

  /// Convenience wrappers over Call().
  [[nodiscard]] StatusOr<Response> Ping();
  [[nodiscard]] StatusOr<Response> Query(const std::string& text,
                                         uint64_t timeout_ms = 0);
  /// Query with the request-context extension (DESIGN.md §15): a fresh
  /// client-generated nonzero request id plus the trace flag, so the
  /// server echoes its joined trace in Response::trace_json. Send only to
  /// servers that understand the extension — an old server rejects the
  /// framed request with INVALID_ARGUMENT (tracing is opt-in per request
  /// for exactly this reason).
  [[nodiscard]] StatusOr<Response> QueryTraced(const std::string& text,
                                               uint64_t timeout_ms = 0);
  [[nodiscard]] StatusOr<Response> Ingest(const std::string& trace_text);
  /// `selector` picks the stats document: "" / "full" = the server's
  /// DumpMetricsJson, "registry" = the bare metrics registry (cheap; what
  /// `stats --watch` polls).
  [[nodiscard]] StatusOr<Response> Stats(const std::string& selector = "");

  /// Drops the cached connection (the next Call reconnects).
  void Disconnect() { socket_.Close(); }

  size_t attempts_made() const { return attempts_made_; }
  /// The request id QueryTraced() generated on its most recent call —
  /// lets callers correlate the response trace and the server's
  /// slow-query record with their own bookkeeping.
  uint64_t last_request_id() const { return last_request_id_; }

 private:
  /// One wire round trip on the cached (or freshly dialed) connection.
  [[nodiscard]] StatusOr<Response> CallOnce(const Request& request);
  uint64_t NextBackoffMs(size_t attempt);

  ClientOptions options_;
  Rng rng_;
  UnixSocket socket_;
  /// Attempts consumed by the most recent Call() (observability for the
  /// chaos tests: "the retry actually happened").
  size_t attempts_made_ = 0;
  uint64_t last_request_id_ = 0;
};

}  // namespace colgraph::server
