// Admission control for colgraphd (DESIGN.md §12): a fixed bound on
// concurrently admitted work. When the bound is hit, new work is rejected
// *immediately* with Status::ResourceExhausted — the clean, retryable
// overload signal — instead of queueing without limit until memory or
// latency collapse. Load shedding at the front door is what keeps the
// in-flight requests' tail latency flat under overload.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "util/status.h"

namespace colgraph::server {

/// \brief Counting admission gate. TryAcquire/Release are lock-free and
/// thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(size_t max_outstanding)
      : max_outstanding_(max_outstanding) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Claims one slot, or rejects with ResourceExhausted naming `what`.
  [[nodiscard]] Status TryAcquire(const char* what) {
    size_t current = outstanding_.load(std::memory_order_relaxed);
    for (;;) {
      if (current >= max_outstanding_) {
        return Status::ResourceExhausted(
            std::string(what) + " rejected: " +
            std::to_string(max_outstanding_) +
            " requests already admitted (retry with backoff)");
      }
      if (outstanding_.compare_exchange_weak(current, current + 1,
                                             std::memory_order_acq_rel)) {
        return Status::OK();
      }
    }
  }

  void Release() { outstanding_.fetch_sub(1, std::memory_order_acq_rel); }

  size_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  size_t max_outstanding() const { return max_outstanding_; }

 private:
  const size_t max_outstanding_;
  std::atomic<size_t> outstanding_{0};
};

/// \brief RAII admission slot: releases on destruction when acquired.
class AdmissionSlot {
 public:
  AdmissionSlot(AdmissionController* controller, const char* what)
      : controller_(controller), status_(controller->TryAcquire(what)) {}
  ~AdmissionSlot() {
    if (status_.ok()) controller_->Release();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  const Status& status() const { return status_; }
  bool admitted() const { return status_.ok(); }

 private:
  AdmissionController* controller_;
  Status status_;
};

}  // namespace colgraph::server
