// colgraphd — the fault-tolerant serving daemon (DESIGN.md §12). One
// process serves many concurrent read queries over a local socket while a
// single writer ingests trace batches and atomically publishes new engine
// snapshots. The robustness contract:
//
//   - *Snapshot isolation*: every query runs against the immutable
//     snapshot it acquired; a publish never tears an in-flight result.
//   - *Deadlines*: a request's timeout_ms is armed on a CancellationToken
//     threaded through query evaluation; expiry returns a clean
//     DEADLINE_EXCEEDED instead of occupying a worker forever.
//   - *Admission control*: a bounded accept queue and a bounded in-flight
//     request count; overload is an immediate, retryable
//     RESOURCE_EXHAUSTED, not an unbounded queue.
//   - *Graceful drain*: Drain() stops accepting, lets in-flight requests
//     finish, answers anything new with UNAVAILABLE, flushes and closes
//     the query log, and removes the socket file. colgraphd wires SIGTERM
//     to it.
//   - *Hostile peers*: hung or slow clients hit poll timeouts; malformed
//     or CRC-corrupt frames get an INVALID_ARGUMENT/CORRUPTION response
//     and the connection is closed (the stream can no longer be trusted).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "columnstore/dataset.h"
#include "core/engine.h"
#include "obs/metrics_exporter.h"
#include "obs/request_context.h"
#include "obs/slow_query_log.h"
#include "server/admission.h"
#include "server/net_socket.h"
#include "server/protocol.h"
#include "server/snapshot.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace colgraph::server {

struct DaemonOptions {
  /// AF_UNIX socket path to serve on. Required.
  std::string socket_path;
  /// Concurrent connection workers (each serves one connection at a time).
  size_t num_workers = 8;
  /// Accepted connections allowed to wait for a free worker; beyond this
  /// the accept loop answers RESOURCE_EXHAUSTED and closes immediately.
  size_t max_queued_connections = 64;
  /// Requests allowed to execute concurrently (the admission bound).
  size_t max_in_flight = 32;
  /// Socket read/write budget per frame; a peer stalling longer is
  /// dropped. 0 disables the guard (not recommended outside tests).
  uint64_t io_timeout_ms = 5000;
  /// Cadence of the accept loop's and idle connections' stop-flag checks.
  uint64_t poll_tick_ms = 50;
  /// Deadline applied to requests that do not carry their own timeout_ms;
  /// 0 = none.
  uint64_t default_timeout_ms = 0;
  /// Test hook: sleep this long after arming a request's deadline and
  /// before executing it — makes "deadline fires during the request"
  /// deterministic in tests. 0 (always, in production) disables it.
  uint64_t test_delay_before_execute_ms = 0;
  /// Durable incremental-ingest directory (DESIGN.md §14). When set, every
  /// Ingest seals its batch as an immutable dataset file here before
  /// publishing, and Start() re-attaches the directory's live datasets to
  /// the initial snapshot. Empty = RAM-only tails (nothing survives a
  /// restart beyond what the initial engine carries).
  std::string data_dir;
  /// Tail-dataset count that triggers a background compaction after an
  /// ingest publish (merge datasets, re-materialize views, republish).
  /// 0 disables background compaction.
  size_t compact_after_datasets = 4;
  /// Slow-query capture (DESIGN.md §15): requests at or above the
  /// threshold — plus an optional deterministic 1-in-N sample — are
  /// recorded with their full joined trace (server + engine phases, keyed
  /// by the wire request id). Empty path disables capture.
  obs::SlowQueryLogOptions slow_query_log;
  /// Metrics exporter (DESIGN.md §15): periodically writes the daemon's
  /// DumpMetricsJson (plus per-interval counter deltas) to
  /// `<metrics_dir>/metrics.json` via write-tmp + atomic rename. Empty
  /// disables.
  std::string metrics_dir;
  /// Export cadence in milliseconds.
  uint64_t metrics_period_ms = 1000;
};

/// Deterministic text renderings of query results — shared by the daemon
/// and the stress tests, which re-evaluate serially against a retained
/// snapshot and require byte-identical bodies.
std::string RenderMatchResult(const Bitmap& matches);
std::string RenderAggResult(const PathAggResult& result, AggFn fn);

/// \brief The serving daemon. Construct via Start(); Drain() (idempotent,
/// also run by the destructor) performs the graceful shutdown.
class Daemon {
 public:
  /// Binds the socket and starts the accept loop. `initial` must be a
  /// sealed engine; it becomes snapshot epoch 0.
  [[nodiscard]] static StatusOr<std::unique_ptr<Daemon>> Start(
      std::shared_ptr<const ColGraphEngine> initial, DaemonOptions options);

  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Graceful drain; returns the query-log close status (the log must be
  /// complete on disk when this returns). Safe to call more than once.
  Status Drain();

  /// Executes one request exactly as a connection worker would —
  /// admission, deadline, snapshot acquisition, rendering. Exposed for
  /// the in-process smoke test and unit tests.
  Response Execute(const Request& request);

  /// Single-writer ingest (DESIGN.md §14): shreds the trace records into a
  /// small sealed tail dataset, durably seals it into data_dir when
  /// configured, attaches it behind the shared primary relation, and
  /// publishes the next epoch — O(batch), never a copy of the world.
  /// Serialized internally; concurrent callers queue on the writer lock.
  [[nodiscard]] StatusOr<Response> Ingest(const std::string& trace_text);

  /// Runs one compaction cycle inline: merges the durable datasets (when
  /// data_dir is configured), collapses the snapshot's tails into its
  /// primary relation, and republishes. Exposed for tests; the background
  /// trigger (compact_after_datasets) calls the same body. A failed or
  /// contended durable merge leaves the served snapshot — and every sealed
  /// dataset — untouched.
  [[nodiscard]] Status CompactNow();

  const std::string& socket_path() const { return options_.socket_path; }
  uint64_t snapshot_epoch() const { return snapshots_.epoch(); }
  SnapshotManager& snapshots() { return snapshots_; }
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  /// Telemetry sinks, for tests and the chaos harness; null when the
  /// corresponding option is unset.
  obs::SlowQueryLog* slow_query_log() { return slow_log_.get(); }
  obs::MetricsExporter* metrics_exporter() { return exporter_.get(); }

 private:
  Daemon(DaemonOptions options, std::shared_ptr<const ColGraphEngine> initial,
         UnixListener listener);

  void AcceptLoop();
  void HandleConnection(UnixSocket socket, uint64_t queue_wait_us);
  /// Reads one request frame; Unavailable = clean disconnect or drain,
  /// other errors = drop the connection. `fatal_out` marks protocol
  /// errors that still produce a response but must close the stream.
  /// `ctx` is re-anchored at the request's first byte; the first request
  /// on a connection absorbs `*pending_queue_wait_us` into its trace.
  Status ReadRequest(UnixSocket* socket, Request* request,
                     Response* error_response, bool* fatal_out,
                     obs::RequestContext* ctx,
                     uint64_t* pending_queue_wait_us);
  /// Execute() minus the finalize step (trace echo + slow-query capture):
  /// the socket path finalizes itself so the captured record includes the
  /// encode/write phases.
  Response ExecuteWithContext(const Request& request,
                              obs::RequestContext* ctx);
  Response ExecuteQuery(const Request& request, const CancellationToken& token,
                        obs::RequestContext* ctx);
  /// Trace echo into `response` when the request asked for it.
  void MaybeEchoTrace(const Request& request, const obs::RequestContext& ctx,
                      Response* response) const;
  /// Offers the finished request to the slow-query log (no-op when
  /// capture is off or the admission rules pass on it).
  void MaybeCaptureSlowQuery(const Request& request, obs::RequestContext* ctx,
                             const Response& response);
  Response ErrorResponse(const Status& status) const;

  DaemonOptions options_;
  SnapshotManager snapshots_;
  AdmissionController admission_;
  UnixListener listener_;
  std::atomic<bool> draining_{false};
  std::atomic<size_t> queued_connections_{0};

  /// Serializes writers (Ingest, CompactNow): build → seal → publish.
  Mutex writer_mu_;
  /// Durable dataset directory; null when options_.data_dir is empty.
  std::unique_ptr<DatasetStore> store_ COLGRAPH_GUARDED_BY(writer_mu_);
  /// Collapses scheduling so at most one background compaction is queued.
  std::atomic<bool> compaction_queued_{false};

  /// Fallback request-id source for clients that sent no wire context
  /// (old protocol) — every slow-query record stays keyed.
  std::atomic<uint64_t> request_seq_{0};
  /// Slow-query capture; null when options_.slow_query_log.path is empty.
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  /// Periodic metrics export; null when options_.metrics_dir is empty.
  std::unique_ptr<obs::MetricsExporter> exporter_;

  /// One worker dedicated to the accept loop; connection handlers run on
  /// conn_pool_. Destroyed (joined) by Drain in accept-first order so no
  /// handler is scheduled after the connection pool starts draining.
  std::unique_ptr<ThreadPool> conn_pool_;
  std::unique_ptr<ThreadPool> accept_pool_;

  Mutex drain_mu_;
  bool drained_ COLGRAPH_GUARDED_BY(drain_mu_) = false;
  Status drain_status_ COLGRAPH_GUARDED_BY(drain_mu_);
};

}  // namespace colgraph::server
