// Snapshot isolation for the serving daemon (DESIGN.md §12): readers
// evaluate against an immutable, reference-counted engine snapshot while a
// single writer builds the next state off to the side and publishes it
// atomically. A query never observes a half-ingested batch — it runs to
// completion against the epoch it acquired, even if ten publishes happen
// meanwhile; the old engine is freed when its last in-flight reader drops
// the shared_ptr.
#pragma once

#include <cstdint>
#include <memory>

#include "core/engine.h"
#include "util/status.h"
#include "util/sync.h"

namespace colgraph::server {

/// \brief Holder of the currently-served engine snapshot. Acquire() and
/// Publish() are thread-safe; the engine behind the returned shared_ptr is
/// const and safe for any number of concurrent readers.
class SnapshotManager {
 public:
  /// Starts at epoch 0 with `initial` (which must be sealed — queries run
  /// against it immediately).
  explicit SnapshotManager(std::shared_ptr<const ColGraphEngine> initial);

  /// The current snapshot; `epoch_out` (optional) receives its epoch.
  std::shared_ptr<const ColGraphEngine> Acquire(
      uint64_t* epoch_out = nullptr) const;

  /// Atomically replaces the served snapshot and bumps the epoch. The
  /// failpoint "server:publish" aborts *before* the swap — simulating a
  /// writer crash mid-publish: the previous snapshot stays served, untorn,
  /// and the epoch does not move.
  [[nodiscard]] Status Publish(std::shared_ptr<const ColGraphEngine> next);

  uint64_t epoch() const;

 private:
  mutable Mutex mu_;
  std::shared_ptr<const ColGraphEngine> engine_ COLGRAPH_GUARDED_BY(mu_);
  uint64_t epoch_ COLGRAPH_GUARDED_BY(mu_) = 0;
};

}  // namespace colgraph::server
