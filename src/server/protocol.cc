#include "server/protocol.h"

#include <cstring>

#include "util/crc32.h"

namespace colgraph::server {

namespace {

constexpr uint32_t kRequestMagic = 0x51524743;   // 'CGRQ' little-endian
constexpr uint32_t kResponseMagic = 0x53524743;  // 'CGRS' little-endian
constexpr uint32_t kContextExtMagic = 0x58524743;  // 'CGRX' little-endian
constexpr uint32_t kTraceExtMagic = 0x54524743;    // 'CGRT' little-endian

void AppendBytes(std::vector<char>* out, const void* data, size_t n) {
  if (n == 0) return;  // out->data() may still be null; memcpy is nonnull
  const size_t old = out->size();
  out->resize(old + n);
  std::memcpy(out->data() + old, data, n);
}

template <typename T>
void AppendPod(std::vector<char>* out, const T& value) {
  AppendBytes(out, &value, sizeof(T));
}

/// Cursor over an untrusted payload; every read is bounds-checked.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t len) : data_(data), len_(len) {}

  template <typename T>
  [[nodiscard]] Status Read(T* out) {
    if (len_ - pos_ < sizeof(T)) {
      return Status::InvalidArgument("protocol: truncated payload");
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  [[nodiscard]] Status ReadString(uint32_t n, std::string* out) {
    if (len_ - pos_ < n) {
      return Status::InvalidArgument("protocol: truncated payload body");
    }
    out->assign(data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == len_; }

 private:
  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace

Status DecodeFrameHeader(const char* data, FrameHeader* out) {
  std::memcpy(&out->type, data, sizeof(out->type));
  std::memcpy(&out->payload_len, data + sizeof(uint8_t),
              sizeof(out->payload_len));
  std::memcpy(&out->crc, data + sizeof(uint8_t) + sizeof(uint64_t),
              sizeof(out->crc));
  if (out->type != kRequestFrame && out->type != kResponseFrame) {
    return Status::InvalidArgument("protocol: unknown frame type " +
                                   std::to_string(out->type));
  }
  if (out->payload_len > kMaxFramePayloadBytes) {
    return Status::InvalidArgument(
        "protocol: frame payload length " + std::to_string(out->payload_len) +
        " exceeds the " + std::to_string(kMaxFramePayloadBytes) + "-byte cap");
  }
  return Status::OK();
}

Status VerifyFrameCrc(const FrameHeader& header, const char* payload,
                      size_t len) {
  const uint32_t actual = Crc32c(payload, len);
  if (actual != header.crc) {
    return Status::Corruption("protocol: frame CRC mismatch (stored " +
                              std::to_string(header.crc) + ", computed " +
                              std::to_string(actual) + ")");
  }
  return Status::OK();
}

void AppendFrame(uint8_t type, const std::vector<char>& payload,
                 std::vector<char>* out) {
  AppendPod(out, type);
  AppendPod(out, static_cast<uint64_t>(payload.size()));
  AppendPod(out, Crc32c(payload.data(), payload.size()));
  AppendBytes(out, payload.data(), payload.size());
}

uint32_t WireCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return kWireOk;
    case StatusCode::kInvalidArgument:
      return kWireInvalidArgument;
    case StatusCode::kNotFound:
      return kWireNotFound;
    case StatusCode::kAlreadyExists:
      return kWireAlreadyExists;
    case StatusCode::kOutOfRange:
      return kWireOutOfRange;
    case StatusCode::kIOError:
      return kWireIOError;
    case StatusCode::kCorruption:
      return kWireCorruption;
    case StatusCode::kNotSupported:
      return kWireNotSupported;
    case StatusCode::kInternal:
      return kWireInternal;
    case StatusCode::kDeadlineExceeded:
      return kWireDeadlineExceeded;
    case StatusCode::kCancelled:
      return kWireCancelled;
    case StatusCode::kResourceExhausted:
      return kWireResourceExhausted;
    case StatusCode::kUnavailable:
      return kWireUnavailable;
  }
  return kWireInternal;
}

Status StatusFromWire(uint32_t code, const std::string& message) {
  switch (code) {
    case kWireOk:
      return Status::OK();
    case kWireInvalidArgument:
      return Status::InvalidArgument(message);
    case kWireNotFound:
      return Status::NotFound(message);
    case kWireAlreadyExists:
      return Status::AlreadyExists(message);
    case kWireOutOfRange:
      return Status::OutOfRange(message);
    case kWireIOError:
      return Status::IOError(message);
    case kWireCorruption:
      return Status::Corruption(message);
    case kWireNotSupported:
      return Status::NotSupported(message);
    case kWireInternal:
      return Status::Internal(message);
    case kWireDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case kWireCancelled:
      return Status::Cancelled(message);
    case kWireResourceExhausted:
      return Status::ResourceExhausted(message);
    case kWireUnavailable:
      return Status::Unavailable(message);
    default:
      return Status::Internal("unknown wire status code " +
                              std::to_string(code) + ": " + message);
  }
}

bool IsRetryableWireCode(uint32_t code) {
  return code == kWireResourceExhausted || code == kWireUnavailable;
}

Status Response::ToStatus() const {
  return ok() ? Status::OK() : StatusFromWire(code, body);
}

void AppendRequestFrame(const Request& request, std::vector<char>* out) {
  std::vector<char> payload;
  AppendPod(&payload, kRequestMagic);
  AppendPod(&payload, static_cast<uint8_t>(request.op));
  AppendPod(&payload, uint8_t{0});
  AppendPod(&payload, uint16_t{0});  // pad: keeps timeout_ms aligned
  AppendPod(&payload, request.timeout_ms);
  AppendPod(&payload, static_cast<uint32_t>(request.body.size()));
  AppendBytes(&payload, request.body.data(), request.body.size());
  if (request.has_context) {
    // Opt-in extension: a context-free request stays byte-identical to the
    // pre-extension encoding (the compat contract in the header comment).
    AppendPod(&payload, kContextExtMagic);
    AppendPod(&payload, request.context.request_id);
    AppendPod(&payload, request.context.flags);
    AppendPod(&payload, uint8_t{0});
    AppendPod(&payload, uint16_t{0});  // pad: keeps the payload end aligned
  }
  AppendFrame(kRequestFrame, payload, out);
}

void AppendResponseFrame(const Response& response, std::vector<char>* out) {
  std::vector<char> payload;
  AppendPod(&payload, kResponseMagic);
  AppendPod(&payload, response.code);
  AppendPod(&payload, response.snapshot_epoch);
  AppendPod(&payload, static_cast<uint32_t>(response.body.size()));
  AppendBytes(&payload, response.body.data(), response.body.size());
  if (response.has_trace) {
    AppendPod(&payload, kTraceExtMagic);
    AppendPod(&payload, response.request_id);
    AppendPod(&payload, static_cast<uint32_t>(response.trace_json.size()));
    AppendBytes(&payload, response.trace_json.data(),
                response.trace_json.size());
  }
  AppendFrame(kResponseFrame, payload, out);
}

StatusOr<Request> DecodeRequestPayload(const char* data, size_t len) {
  PayloadReader reader(data, len);
  uint32_t magic = 0;
  COLGRAPH_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kRequestMagic) {
    return Status::InvalidArgument("protocol: bad request magic");
  }
  uint8_t op = 0, pad8 = 0;
  uint16_t pad16 = 0;
  COLGRAPH_RETURN_NOT_OK(reader.Read(&op));
  COLGRAPH_RETURN_NOT_OK(reader.Read(&pad8));
  COLGRAPH_RETURN_NOT_OK(reader.Read(&pad16));
  if (op > static_cast<uint8_t>(RequestOp::kStats)) {
    return Status::InvalidArgument("protocol: unknown request op " +
                                   std::to_string(op));
  }
  Request request;
  request.op = static_cast<RequestOp>(op);
  COLGRAPH_RETURN_NOT_OK(reader.Read(&request.timeout_ms));
  uint32_t body_len = 0;
  COLGRAPH_RETURN_NOT_OK(reader.Read(&body_len));
  COLGRAPH_RETURN_NOT_OK(reader.ReadString(body_len, &request.body));
  if (!reader.AtEnd()) {
    // Anything after the body must be exactly one context extension; its
    // magic distinguishes the extension from garbage trailing bytes.
    uint32_t ext_magic = 0;
    COLGRAPH_RETURN_NOT_OK(reader.Read(&ext_magic));
    if (ext_magic != kContextExtMagic) {
      return Status::InvalidArgument(
          "protocol: trailing bytes after request");
    }
    uint8_t ext_pad8 = 0;
    uint16_t ext_pad16 = 0;
    COLGRAPH_RETURN_NOT_OK(reader.Read(&request.context.request_id));
    COLGRAPH_RETURN_NOT_OK(reader.Read(&request.context.flags));
    COLGRAPH_RETURN_NOT_OK(reader.Read(&ext_pad8));
    COLGRAPH_RETURN_NOT_OK(reader.Read(&ext_pad16));
    if (!reader.AtEnd()) {
      return Status::InvalidArgument(
          "protocol: trailing bytes after request context");
    }
    request.has_context = true;
  }
  return request;
}

StatusOr<Response> DecodeResponsePayload(const char* data, size_t len) {
  PayloadReader reader(data, len);
  uint32_t magic = 0;
  COLGRAPH_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kResponseMagic) {
    return Status::InvalidArgument("protocol: bad response magic");
  }
  Response response;
  COLGRAPH_RETURN_NOT_OK(reader.Read(&response.code));
  COLGRAPH_RETURN_NOT_OK(reader.Read(&response.snapshot_epoch));
  uint32_t body_len = 0;
  COLGRAPH_RETURN_NOT_OK(reader.Read(&body_len));
  COLGRAPH_RETURN_NOT_OK(reader.ReadString(body_len, &response.body));
  if (!reader.AtEnd()) {
    uint32_t ext_magic = 0;
    COLGRAPH_RETURN_NOT_OK(reader.Read(&ext_magic));
    if (ext_magic != kTraceExtMagic) {
      return Status::InvalidArgument(
          "protocol: trailing bytes after response");
    }
    COLGRAPH_RETURN_NOT_OK(reader.Read(&response.request_id));
    uint32_t trace_len = 0;
    COLGRAPH_RETURN_NOT_OK(reader.Read(&trace_len));
    COLGRAPH_RETURN_NOT_OK(reader.ReadString(trace_len, &response.trace_json));
    if (!reader.AtEnd()) {
      return Status::InvalidArgument(
          "protocol: trailing bytes after response trace");
    }
    response.has_trace = true;
  }
  return response;
}

}  // namespace colgraph::server
