#include "server/client.h"

#include <utility>
#include <vector>

namespace colgraph::server {

StatusOr<Response> Client::CallOnce(const Request& request) {
  if (!socket_.valid()) {
    COLGRAPH_ASSIGN_OR_RETURN(
        socket_, UnixSocket::Connect(options_.socket_path,
                                     options_.io_timeout_ms));
  }

  std::vector<char> frame;
  AppendRequestFrame(request, &frame);
  COLGRAPH_RETURN_NOT_OK(
      socket_.WriteAll(frame.data(), frame.size(), options_.io_timeout_ms));

  char header_bytes[kFrameHeaderBytes];
  COLGRAPH_RETURN_NOT_OK(socket_.ReadFull(header_bytes, kFrameHeaderBytes,
                                          options_.io_timeout_ms));
  FrameHeader header;
  COLGRAPH_RETURN_NOT_OK(DecodeFrameHeader(header_bytes, &header));
  if (header.type != kResponseFrame) {
    return Status::Corruption("protocol: expected a response frame");
  }
  std::vector<char> payload(header.payload_len);
  COLGRAPH_RETURN_NOT_OK(socket_.ReadFull(payload.data(), payload.size(),
                                          options_.io_timeout_ms));
  COLGRAPH_RETURN_NOT_OK(
      VerifyFrameCrc(header, payload.data(), payload.size()));
  return DecodeResponsePayload(payload.data(), payload.size());
}

uint64_t Client::NextBackoffMs(size_t attempt) {
  // Exponential: base * 2^attempt, capped; then jittered into [50%, 100%)
  // so rejected clients spread out instead of re-stampeding in lockstep.
  uint64_t backoff = options_.backoff_base_ms;
  for (size_t i = 0; i < attempt && backoff < options_.backoff_max_ms; ++i) {
    backoff *= 2;
  }
  if (backoff > options_.backoff_max_ms) backoff = options_.backoff_max_ms;
  if (backoff == 0) return 0;
  return static_cast<uint64_t>(static_cast<double>(backoff) *
                               rng_.UniformReal(0.5, 1.0));
}

StatusOr<Response> Client::Call(const Request& request) {
  const size_t max_attempts =
      options_.max_attempts == 0 ? 1 : options_.max_attempts;
  Status last = Status::OK();
  attempts_made_ = 0;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) SleepMs(NextBackoffMs(attempt - 1));
    ++attempts_made_;

    StatusOr<Response> response = CallOnce(request);
    if (response.ok()) {
      if (!response->ok() && IsRetryableWireCode(response->code)) {
        // Overload or drain: the server executed nothing — back off and
        // retry. Any other code (including deadline) is final.
        last = response->ToStatus();
        continue;
      }
      return response;
    }

    // Transport failure. The stream is no longer trustworthy; reconnect on
    // the next attempt. Deterministic local failures (bad socket path)
    // will not improve with retries, so only transport-shaped statuses
    // loop: Unavailable (refused / reset / not up), IOError (torn frame,
    // peer died mid-call), Corruption (damaged response), and a stalled
    // peer's DeadlineExceeded.
    socket_.Close();
    const Status& s = response.status();
    if (s.IsUnavailable() || s.IsIOError() || s.IsCorruption() ||
        s.IsDeadlineExceeded()) {
      last = s;
      continue;
    }
    return s;
  }
  return Status::Unavailable("all " + std::to_string(max_attempts) +
                             " attempts failed; last error: " +
                             last.ToString());
}

StatusOr<Response> Client::Ping() {
  Request request;
  request.op = RequestOp::kPing;
  return Call(request);
}

StatusOr<Response> Client::Query(const std::string& text,
                                 uint64_t timeout_ms) {
  Request request;
  request.op = RequestOp::kQuery;
  request.timeout_ms = timeout_ms;
  request.body = text;
  return Call(request);
}

StatusOr<Response> Client::QueryTraced(const std::string& text,
                                       uint64_t timeout_ms) {
  Request request;
  request.op = RequestOp::kQuery;
  request.timeout_ms = timeout_ms;
  request.body = text;
  request.has_context = true;
  // Any nonzero 64-bit value keys the request; the jitter RNG is already
  // seeded (deterministically in tests), so draw from it.
  request.context.request_id = rng_.Uniform(1, ~uint64_t{0});
  request.context.flags = kContextFlagTrace;
  last_request_id_ = request.context.request_id;
  return Call(request);
}

StatusOr<Response> Client::Ingest(const std::string& trace_text) {
  Request request;
  request.op = RequestOp::kIngest;
  request.body = trace_text;
  return Call(request);
}

StatusOr<Response> Client::Stats(const std::string& selector) {
  Request request;
  request.op = RequestOp::kStats;
  request.body = selector;
  return Call(request);
}

}  // namespace colgraph::server
