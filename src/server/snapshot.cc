#include "server/snapshot.h"

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace colgraph::server {

namespace {

obs::Gauge& EpochGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("server.snapshot_epoch");
  return gauge;
}

}  // namespace

SnapshotManager::SnapshotManager(std::shared_ptr<const ColGraphEngine> initial)
    : engine_(std::move(initial)) {
  EpochGauge().Set(0);
}

std::shared_ptr<const ColGraphEngine> SnapshotManager::Acquire(
    uint64_t* epoch_out) const {
  const MutexLock lock(mu_);
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return engine_;
}

Status SnapshotManager::Publish(std::shared_ptr<const ColGraphEngine> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  // The crash-mid-publish injection point: everything the writer built is
  // abandoned here, before any reader can see it.
  COLGRAPH_FAILPOINT("server:publish");
  uint64_t published;
  {
    const MutexLock lock(mu_);
    engine_ = std::move(next);
    published = ++epoch_;
  }
  EpochGauge().Set(static_cast<int64_t>(published));
  return Status::OK();
}

uint64_t SnapshotManager::epoch() const {
  const MutexLock lock(mu_);
  return epoch_;
}

}  // namespace colgraph::server
