#include "core/multi_measure.h"

#include "graph/flatten.h"
#include "util/check.h"

namespace colgraph {

MultiMeasureEngine::MultiMeasureEngine(std::vector<std::string> family_names,
                                       EngineOptions options)
    : names_(std::move(family_names)) {
  COLGRAPH_CHECK(!names_.empty());
  engines_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) engines_.emplace_back(options);
}

StatusOr<size_t> MultiMeasureEngine::FamilySlot(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("no measure family named '" + name + "'");
}

StatusOr<RecordId> MultiMeasureEngine::AddRecord(
    const std::vector<Edge>& elements,
    const std::vector<std::vector<double>>& measures) {
  if (measures.size() != engines_.size()) {
    return Status::InvalidArgument(
        "expected one measure vector per family (" +
        std::to_string(engines_.size()) + "), got " +
        std::to_string(measures.size()));
  }
  for (const auto& family : measures) {
    if (family.size() != elements.size()) {
      return Status::InvalidArgument(
          "every family must measure every element");
    }
  }
  RecordId rid = 0;
  for (size_t slot = 0; slot < engines_.size(); ++slot) {
    GraphRecord record;
    record.elements = elements;
    record.measures = measures[slot];
    COLGRAPH_ASSIGN_OR_RETURN(rid, engines_[slot].AddRecord(record));
  }
  return rid;
}

StatusOr<RecordId> MultiMeasureEngine::AddWalk(
    const std::vector<NodeId>& walk,
    const std::vector<std::vector<double>>& measures) {
  return AddRecord(WalkToEdges(walk), measures);
}

Status MultiMeasureEngine::Seal() {
  for (auto& engine : engines_) COLGRAPH_RETURN_NOT_OK(engine.Seal());
  return Status::OK();
}

StatusOr<PathAggResult> MultiMeasureEngine::RunAggregateQuery(
    size_t family, const GraphQuery& query, AggFn fn,
    const QueryOptions& options) const {
  if (family >= engines_.size()) {
    return Status::OutOfRange("no measure family " + std::to_string(family));
  }
  return engines_[family].RunAggregateQuery(query, fn, options);
}

StatusOr<size_t> MultiMeasureEngine::SelectAndMaterializeAggViews(
    size_t family, const std::vector<GraphQuery>& workload, AggFn fn,
    size_t budget) {
  if (family >= engines_.size()) {
    return Status::OutOfRange("no measure family " + std::to_string(family));
  }
  return engines_[family].SelectAndMaterializeAggViews(workload, fn, budget);
}

}  // namespace colgraph
