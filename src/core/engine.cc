#include "core/engine.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "views/aggregate_views.h"
#include "views/apriori.h"
#include "views/candidate_generation.h"
#include "views/materializer.h"
#include "views/set_cover.h"

namespace colgraph {

ColGraphEngine::ColGraphEngine(EngineOptions options)
    : options_(std::move(options)), relation_(options_.relation) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (!options_.query_log.path.empty()) {
    auto log = obs::QueryLog::Open(options_.query_log);
    if (log.ok()) {
      query_log_ = std::shared_ptr<obs::QueryLog>(std::move(log.value()));
    } else {
      // Constructors cannot return Status; capture is observability, so
      // degrade to "no log" loudly instead of failing the engine.
      std::fprintf(stderr,
                   "colgraph: query log disabled (open failed): %s\n",
                   log.status().ToString().c_str());
    }
  }
}

ColGraphEngine::ColGraphEngine(const ColGraphEngine& other)
    : options_(other.options_),
      catalog_(other.catalog_),
      relation_(other.relation_),
      views_(other.views_),
      query_log_(other.query_log_),
      append_watermark_(other.append_watermark_) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

ColGraphEngine& ColGraphEngine::operator=(const ColGraphEngine& other) {
  if (this == &other) return *this;
  options_ = other.options_;
  catalog_ = other.catalog_;
  relation_ = other.relation_;
  views_ = other.views_;
  query_log_ = other.query_log_;
  append_watermark_ = other.append_watermark_;
  pool_.reset();
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return *this;
}

ColGraphEngine ColGraphEngine::FromParts(EngineOptions options,
                                         EdgeCatalog catalog,
                                         MasterRelation relation,
                                         ViewCatalog views) {
  ColGraphEngine engine(options);
  engine.catalog_ = std::move(catalog);
  engine.relation_ = std::move(relation);
  engine.views_ = std::move(views);
  return engine;
}

StatusOr<RecordId> ColGraphEngine::AddRecord(const GraphRecord& record) {
  if (record.elements.size() != record.measures.size()) {
    return Status::InvalidArgument(
        "record elements/measures size mismatch for record " +
        std::to_string(record.id));
  }
  std::vector<std::pair<EdgeId, double>> shredded;
  shredded.reserve(record.elements.size());
  for (size_t i = 0; i < record.elements.size(); ++i) {
    shredded.emplace_back(catalog_.GetOrAssign(record.elements[i]),
                          record.measures[i]);
  }
  return relation_.AddRecord(shredded);
}

StatusOr<RecordId> ColGraphEngine::AddWalk(const std::vector<NodeId>& walk,
                                           const std::vector<double>& measures) {
  if (walk.size() < 2) {
    return Status::InvalidArgument("a walk needs at least two nodes");
  }
  if (measures.size() != walk.size() - 1) {
    return Status::InvalidArgument("a walk of n nodes needs n-1 measures");
  }
  GraphRecord record;
  record.elements = WalkToEdges(walk);
  record.measures = measures;
  return AddRecord(record);
}

void ColGraphEngine::RegisterUniverse(const std::vector<Edge>& edges) {
  for (const Edge& e : edges) catalog_.GetOrAssign(e);
  relation_.EnsureColumns(catalog_.size());
}

Status ColGraphEngine::Seal() { return relation_.Seal(); }

Status ColGraphEngine::BeginAppend() {
  COLGRAPH_RETURN_NOT_OK(relation_.Unseal());
  append_watermark_ = relation_.num_records();
  return Status::OK();
}

Status ColGraphEngine::FinishAppend() {
  COLGRAPH_RETURN_NOT_OK(relation_.Seal());
  // Delta maintenance: only the appended record range is re-aggregated.
  return RefreshViewsIncremental(&relation_, views_, append_watermark_);
}

StatusOr<size_t> ColGraphEngine::SelectAndMaterializeGraphViews(
    const std::vector<GraphQuery>& workload, size_t budget) {
  // Resolve each query to its (sorted) element-id universe.
  std::vector<std::vector<EdgeId>> universes;
  universes.reserve(workload.size());
  for (const GraphQuery& q : workload) {
    const QueryEngine::ResolvedQuery resolved = query_engine().Resolve(q);
    if (!resolved.satisfiable || resolved.ids.empty()) continue;
    universes.push_back(resolved.ids);
  }

  std::vector<GraphViewDef> candidates;
  if (options_.candidate_generator == CandidateGenerator::kApriori) {
    AprioriOptions apriori;
    apriori.min_support = std::max<size_t>(2, options_.view_min_support);
    apriori.pool = pool_.get();
    COLGRAPH_ASSIGN_OR_RETURN(AprioriResult mined,
                              MineFrequentItemsets(universes, apriori));
    candidates = FilterSuperseded(mined, universes).itemsets;
  } else {
    CandidateGenOptions gen;
    gen.min_support = options_.view_min_support;
    gen.pool = pool_.get();
    COLGRAPH_ASSIGN_OR_RETURN(candidates,
                              GenerateGraphViewCandidates(universes, gen));
  }
  const SetCoverSelection selection =
      GreedyExtendedSetCover(universes, candidates, budget);

  // Materialize the whole selection as one batch: the per-view bitmap
  // passes fan across the pool, registration stays in selection order.
  std::vector<GraphViewDef> selected_defs;
  selected_defs.reserve(selection.selected.size());
  for (size_t index : selection.selected) {
    selected_defs.push_back(candidates[index]);
  }
  COLGRAPH_RETURN_NOT_OK(
      MaterializeGraphViews(selected_defs, &relation_, &views_, pool_.get())
          .status());
  return selected_defs.size();
}

StatusOr<size_t> ColGraphEngine::SelectAndMaterializeAggViews(
    const std::vector<GraphQuery>& workload, AggFn fn, size_t budget) {
  COLGRAPH_ASSIGN_OR_RETURN(
      std::vector<AggViewDef> selected,
      SelectAggregateViews(workload, fn, catalog_, budget));
  COLGRAPH_RETURN_NOT_OK(
      MaterializeAggViews(selected, &relation_, &views_, pool_.get())
          .status());
  return selected.size();
}

StatusOr<size_t> ColGraphEngine::MaterializeView(const GraphViewDef& def) {
  return MaterializeGraphView(def, &relation_, &views_);
}

StatusOr<size_t> ColGraphEngine::MaterializeView(const AggViewDef& def) {
  return MaterializeAggView(def, &relation_, &views_);
}

Bitmap ColGraphEngine::Match(const GraphQuery& query,
                             const QueryOptions& options) const {
  return query_engine().Match(query, options);
}

StatusOr<MeasureTable> ColGraphEngine::RunGraphQuery(
    const GraphQuery& query, const QueryOptions& options) const {
  return query_engine().RunGraphQuery(query, options);
}

StatusOr<PathAggResult> ColGraphEngine::RunAggregateQuery(
    const GraphQuery& query, AggFn fn, const QueryOptions& options) const {
  return query_engine().RunAggregateQuery(query, fn, options);
}

std::string ColGraphEngine::DumpMetricsJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("uptime_seconds");
  w.Uint(obs::ProcessUptimeSeconds());
  w.Key("engine");
  w.BeginObject();
  w.Key("num_records");
  w.Uint(relation_.num_records());
  w.Key("num_edge_columns");
  w.Uint(relation_.num_edge_columns());
  w.Key("num_graph_views");
  w.Uint(views_.num_graph_views());
  w.Key("num_agg_views");
  w.Uint(views_.num_agg_views());
  w.Key("num_threads");
  w.Uint(options_.num_threads);
  w.EndObject();
  w.Key("fetch_stats");
  w.BeginObject();
  const FetchStats& fs = relation_.stats();
  w.Key("bitmap_columns_fetched");
  w.Uint(fs.bitmap_columns_fetched);
  w.Key("measure_columns_fetched");
  w.Uint(fs.measure_columns_fetched);
  w.Key("values_fetched");
  w.Uint(fs.values_fetched);
  w.Key("partitions_touched");
  w.Uint(fs.partitions_touched);
  w.Key("partition_joins");
  w.Uint(fs.partition_joins);
  w.EndObject();
  w.Key("metrics");
  w.Raw(obs::MetricsRegistry::Global().ToJson());
  w.EndObject();
  return w.str();
}

}  // namespace colgraph
