#include "core/engine.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "views/aggregate_views.h"
#include "views/apriori.h"
#include "views/candidate_generation.h"
#include "views/materializer.h"
#include "views/set_cover.h"

namespace colgraph {

ColGraphEngine::ColGraphEngine(EngineOptions options)
    : options_(std::move(options)),
      relation_(std::make_shared<MasterRelation>(options_.relation)) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (!options_.query_log.path.empty()) {
    auto log = obs::QueryLog::Open(options_.query_log);
    if (log.ok()) {
      query_log_ = std::shared_ptr<obs::QueryLog>(std::move(log.value()));
    } else {
      // Constructors cannot return Status; capture is observability, so
      // degrade to "no log" loudly instead of failing the engine.
      std::fprintf(stderr,
                   "colgraph: query log disabled (open failed): %s\n",
                   log.status().ToString().c_str());
    }
  }
}

ColGraphEngine::ColGraphEngine(const ColGraphEngine& other)
    : options_(other.options_),
      catalog_(other.catalog_),
      relation_(std::make_shared<MasterRelation>(*other.relation_)),
      tails_(other.tails_),  // tails are immutable: sharing IS copying
      views_(other.views_),
      query_log_(other.query_log_),
      append_watermark_(other.append_watermark_) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  RebuildSegments();
}

ColGraphEngine::ColGraphEngine(const ColGraphEngine& other, ShareTag)
    : options_(other.options_),
      catalog_(other.catalog_),
      relation_(other.relation_),  // shared; OwnedRelation() clones on write
      tails_(other.tails_),
      views_(other.views_),
      query_log_(other.query_log_),
      append_watermark_(other.append_watermark_) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  RebuildSegments();
}

ColGraphEngine ColGraphEngine::SharedCopy() const {
  return ColGraphEngine(*this, ShareTag{});
}

ColGraphEngine& ColGraphEngine::operator=(const ColGraphEngine& other) {
  if (this == &other) return *this;
  options_ = other.options_;
  catalog_ = other.catalog_;
  relation_ = std::make_shared<MasterRelation>(*other.relation_);
  tails_ = other.tails_;
  views_ = other.views_;
  query_log_ = other.query_log_;
  append_watermark_ = other.append_watermark_;
  pool_.reset();
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  RebuildSegments();
  return *this;
}

MasterRelation& ColGraphEngine::OwnedRelation() {
  // Copy-on-write: a use_count above one means a SharedCopy (a published
  // snapshot) still reads this relation; clone before the first in-place
  // write. Writer-side races are the caller's to exclude (the daemon holds
  // its writer mutex); readers only ever touch fully-built relations.
  if (relation_.use_count() > 1) {
    relation_ = std::make_shared<MasterRelation>(*relation_);
    RebuildSegments();
  }
  return *relation_;
}

void ColGraphEngine::RebuildSegments() {
  segments_.clear();
  size_t base = relation_->num_records();
  for (const auto& tail : tails_) {
    segments_.push_back(RelationSegment{tail.get(), base});
    base += tail->num_records();
  }
}

size_t ColGraphEngine::total_records() const {
  size_t total = relation_->num_records();
  for (const auto& tail : tails_) total += tail->num_records();
  return total;
}

ColGraphEngine ColGraphEngine::FromParts(EngineOptions options,
                                         EdgeCatalog catalog,
                                         MasterRelation relation,
                                         ViewCatalog views) {
  ColGraphEngine engine(options);
  engine.catalog_ = std::move(catalog);
  engine.relation_ = std::make_shared<MasterRelation>(std::move(relation));
  engine.views_ = std::move(views);
  return engine;
}

StatusOr<RecordId> ColGraphEngine::AddRecord(const GraphRecord& record) {
  if (record.elements.size() != record.measures.size()) {
    return Status::InvalidArgument(
        "record elements/measures size mismatch for record " +
        std::to_string(record.id));
  }
  std::vector<std::pair<EdgeId, double>> shredded;
  shredded.reserve(record.elements.size());
  for (size_t i = 0; i < record.elements.size(); ++i) {
    shredded.emplace_back(catalog_.GetOrAssign(record.elements[i]),
                          record.measures[i]);
  }
  return OwnedRelation().AddRecord(shredded);
}

StatusOr<RecordId> ColGraphEngine::AddWalk(const std::vector<NodeId>& walk,
                                           const std::vector<double>& measures) {
  if (walk.size() < 2) {
    return Status::InvalidArgument("a walk needs at least two nodes");
  }
  if (measures.size() != walk.size() - 1) {
    return Status::InvalidArgument("a walk of n nodes needs n-1 measures");
  }
  GraphRecord record;
  record.elements = WalkToEdges(walk);
  record.measures = measures;
  return AddRecord(record);
}

void ColGraphEngine::RegisterUniverse(const std::vector<Edge>& edges) {
  for (const Edge& e : edges) catalog_.GetOrAssign(e);
  OwnedRelation().EnsureColumns(catalog_.size());
}

Status ColGraphEngine::Seal() { return OwnedRelation().Seal(); }

Status ColGraphEngine::BeginAppend() {
  if (!tails_.empty()) {
    // In-place growth would shift every tail's global id base out from
    // under published bitmaps; collapse the datasets first.
    return Status::InvalidArgument(
        "cannot append in place while tail datasets are attached; "
        "Compact() first");
  }
  COLGRAPH_RETURN_NOT_OK(OwnedRelation().Unseal());
  append_watermark_ = relation_->num_records();
  return Status::OK();
}

Status ColGraphEngine::FinishAppend() {
  COLGRAPH_RETURN_NOT_OK(OwnedRelation().Seal());
  // Delta maintenance: only the appended record range is re-aggregated.
  return RefreshViewsIncremental(relation_.get(), views_, append_watermark_);
}

StatusOr<MasterRelation> ColGraphEngine::BuildTailRelation(
    const std::vector<GraphRecord>& records) {
  MasterRelation tail(options_.relation);
  for (const GraphRecord& record : records) {
    if (record.elements.size() != record.measures.size()) {
      return Status::InvalidArgument(
          "record elements/measures size mismatch for record " +
          std::to_string(record.id));
    }
    std::vector<std::pair<EdgeId, double>> shredded;
    shredded.reserve(record.elements.size());
    for (size_t i = 0; i < record.elements.size(); ++i) {
      shredded.emplace_back(catalog_.GetOrAssign(record.elements[i]),
                            record.measures[i]);
    }
    COLGRAPH_RETURN_NOT_OK(tail.AddRecord(shredded).status());
  }
  COLGRAPH_RETURN_NOT_OK(tail.Seal());
  return tail;
}

Status ColGraphEngine::AttachDataset(
    std::shared_ptr<const MasterRelation> tail) {
  if (tail == nullptr) {
    return Status::InvalidArgument("cannot attach a null tail dataset");
  }
  if (!tail->sealed() || !relation_->sealed()) {
    return Status::InvalidArgument(
        "tail datasets attach to sealed relations only");
  }
  tails_.push_back(std::move(tail));
  RebuildSegments();
  return Status::OK();
}

Status ColGraphEngine::Compact() {
  if (tails_.empty()) return Status::OK();
  const size_t total = total_records();

  // The merged schema is the widest any dataset grew (columns a dataset
  // never had contribute empty presence ranges).
  size_t num_columns = relation_->num_edge_columns();
  for (const auto& tail : tails_) {
    num_columns = std::max(num_columns, tail->num_edge_columns());
  }

  // Column-at-a-time merge, mirroring DatasetStore::CompactAll: each
  // dataset's presence bits land at its global base, values concatenate in
  // dataset order (presence ranks are preserved because bases ascend).
  std::vector<MeasureColumn> cols;
  cols.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    Bitmap presence(total);
    std::vector<double> values;
    const MasterRelation* primary = relation_.get();
    size_t base = 0;
    auto merge_from = [&](const MasterRelation& rel) {
      if (c < rel.num_edge_columns()) {
        const MeasureColumn& col = rel.PeekMeasureColumn(static_cast<EdgeId>(c));
        presence.OrAt(col.presence().bits(), base);
        for (size_t rank = 0; rank < col.num_values(); ++rank) {
          values.push_back(col.ValueAtRank(rank));
        }
      }
      base += rel.num_records();
    };
    merge_from(*primary);
    for (const auto& tail : tails_) merge_from(*tail);
    COLGRAPH_ASSIGN_OR_RETURN(
        MeasureColumn merged,
        MeasureColumn::FromParts(std::move(presence), std::move(values)));
    merged.ChooseEncoding(options_.relation.hybrid_bitmaps);
    cols.push_back(std::move(merged));
  }
  COLGRAPH_ASSIGN_OR_RETURN(
      MasterRelation merged,
      MasterRelation::FromColumns(total, std::move(cols), options_.relation));
  relation_ = std::make_shared<MasterRelation>(std::move(merged));
  tails_.clear();
  RebuildSegments();

  // Re-materialize every registered view over the merged record set: the
  // old view columns lived in the retired primary, and their bitmaps were
  // sized to it. The definitions survive; the columns are rebuilt.
  std::vector<GraphViewDef> graph_defs;
  graph_defs.reserve(views_.num_graph_views());
  for (const auto& [def, index] : views_.graph_views()) {
    (void)index;
    graph_defs.push_back(def);
  }
  std::vector<AggViewDef> agg_defs;
  agg_defs.reserve(views_.num_agg_views());
  for (const auto& [def, index] : views_.agg_views()) {
    (void)index;
    agg_defs.push_back(def);
  }
  ViewCatalog fresh;
  COLGRAPH_RETURN_NOT_OK(
      MaterializeGraphViews(graph_defs, relation_.get(), &fresh, pool_.get())
          .status());
  COLGRAPH_RETURN_NOT_OK(
      MaterializeAggViews(agg_defs, relation_.get(), &fresh, pool_.get())
          .status());
  views_ = std::move(fresh);
  return Status::OK();
}

StatusOr<size_t> ColGraphEngine::SelectAndMaterializeGraphViews(
    const std::vector<GraphQuery>& workload, size_t budget) {
  // Resolve each query to its (sorted) element-id universe.
  std::vector<std::vector<EdgeId>> universes;
  universes.reserve(workload.size());
  for (const GraphQuery& q : workload) {
    const QueryEngine::ResolvedQuery resolved = query_engine().Resolve(q);
    if (!resolved.satisfiable || resolved.ids.empty()) continue;
    universes.push_back(resolved.ids);
  }

  std::vector<GraphViewDef> candidates;
  if (options_.candidate_generator == CandidateGenerator::kApriori) {
    AprioriOptions apriori;
    apriori.min_support = std::max<size_t>(2, options_.view_min_support);
    apriori.pool = pool_.get();
    COLGRAPH_ASSIGN_OR_RETURN(AprioriResult mined,
                              MineFrequentItemsets(universes, apriori));
    candidates = FilterSuperseded(mined, universes).itemsets;
  } else {
    CandidateGenOptions gen;
    gen.min_support = options_.view_min_support;
    gen.pool = pool_.get();
    COLGRAPH_ASSIGN_OR_RETURN(candidates,
                              GenerateGraphViewCandidates(universes, gen));
  }
  const SetCoverSelection selection =
      GreedyExtendedSetCover(universes, candidates, budget);

  // Materialize the whole selection as one batch: the per-view bitmap
  // passes fan across the pool, registration stays in selection order.
  std::vector<GraphViewDef> selected_defs;
  selected_defs.reserve(selection.selected.size());
  for (size_t index : selection.selected) {
    selected_defs.push_back(candidates[index]);
  }
  COLGRAPH_RETURN_NOT_OK(
      MaterializeGraphViews(selected_defs, &OwnedRelation(), &views_,
                            pool_.get())
          .status());
  return selected_defs.size();
}

StatusOr<size_t> ColGraphEngine::SelectAndMaterializeAggViews(
    const std::vector<GraphQuery>& workload, AggFn fn, size_t budget) {
  COLGRAPH_ASSIGN_OR_RETURN(
      std::vector<AggViewDef> selected,
      SelectAggregateViews(workload, fn, catalog_, budget));
  COLGRAPH_RETURN_NOT_OK(
      MaterializeAggViews(selected, &OwnedRelation(), &views_, pool_.get())
          .status());
  return selected.size();
}

StatusOr<size_t> ColGraphEngine::MaterializeView(const GraphViewDef& def) {
  return MaterializeGraphView(def, &OwnedRelation(), &views_);
}

StatusOr<size_t> ColGraphEngine::MaterializeView(const AggViewDef& def) {
  return MaterializeAggView(def, &OwnedRelation(), &views_);
}

Bitmap ColGraphEngine::Match(const GraphQuery& query,
                             const QueryOptions& options) const {
  return query_engine().Match(query, options);
}

StatusOr<MeasureTable> ColGraphEngine::RunGraphQuery(
    const GraphQuery& query, const QueryOptions& options) const {
  return query_engine().RunGraphQuery(query, options);
}

StatusOr<PathAggResult> ColGraphEngine::RunAggregateQuery(
    const GraphQuery& query, AggFn fn, const QueryOptions& options) const {
  return query_engine().RunAggregateQuery(query, fn, options);
}

std::string ColGraphEngine::DumpMetricsJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("uptime_seconds");
  w.Uint(obs::ProcessUptimeSeconds());
  w.Key("engine");
  w.BeginObject();
  w.Key("num_records");
  w.Uint(relation_->num_records());
  w.Key("num_tail_datasets");
  w.Uint(tails_.size());
  w.Key("total_records");
  w.Uint(total_records());
  w.Key("num_edge_columns");
  w.Uint(relation_->num_edge_columns());
  w.Key("num_graph_views");
  w.Uint(views_.num_graph_views());
  w.Key("num_agg_views");
  w.Uint(views_.num_agg_views());
  w.Key("num_threads");
  w.Uint(options_.num_threads);
  w.EndObject();
  w.Key("fetch_stats");
  w.BeginObject();
  const FetchStats& fs = relation_->stats();
  w.Key("bitmap_columns_fetched");
  w.Uint(fs.bitmap_columns_fetched);
  w.Key("measure_columns_fetched");
  w.Uint(fs.measure_columns_fetched);
  w.Key("values_fetched");
  w.Uint(fs.values_fetched);
  w.Key("partitions_touched");
  w.Uint(fs.partitions_touched);
  w.Key("partition_joins");
  w.Uint(fs.partition_joins);
  w.EndObject();
  w.Key("metrics");
  w.Raw(obs::MetricsRegistry::Global().ToJson());
  w.EndObject();
  return w.str();
}

}  // namespace colgraph
