#include "core/record_links.h"

#include <algorithm>

namespace colgraph {

Status RecordLinkIndex::Link(RecordId record, GroupId group) {
  auto [it, inserted] = group_of_.emplace(record, group);
  if (!inserted) {
    if (it->second == group) return Status::OK();  // idempotent
    return Status::AlreadyExists(
        "record " + std::to_string(record) + " already linked to group " +
        std::to_string(it->second));
  }
  auto& members = groups_[group];
  members.insert(std::upper_bound(members.begin(), members.end(), record),
                 record);
  return Status::OK();
}

std::optional<GroupId> RecordLinkIndex::GroupOf(RecordId record) const {
  auto it = group_of_.find(record);
  if (it == group_of_.end()) return std::nullopt;
  return it->second;
}

std::vector<RecordId> RecordLinkIndex::Records(GroupId group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? std::vector<RecordId>{} : it->second;
}

Bitmap RecordLinkIndex::ExpandToGroups(const Bitmap& matches) const {
  Bitmap result = matches;
  matches.ForEachSetBit([&](size_t r) {
    auto it = group_of_.find(r);
    if (it == group_of_.end()) return;
    for (RecordId member : groups_.at(it->second)) {
      if (member < result.size()) result.Set(member);
    }
  });
  return result;
}

Bitmap RecordLinkIndex::RestrictToFullGroups(const Bitmap& matches) const {
  Bitmap result = matches;
  matches.ForEachSetBit([&](size_t r) {
    auto it = group_of_.find(r);
    if (it == group_of_.end()) return;  // unlinked records stand alone
    for (RecordId member : groups_.at(it->second)) {
      if (member >= matches.size() || !matches.Test(member)) {
        result.Clear(r);
        return;
      }
    }
  });
  return result;
}

void RecordLinkIndex::SetMeta(RecordId record, const std::string& key,
                              const std::string& value) {
  metadata_[record][key] = value;
}

std::optional<std::string> RecordLinkIndex::GetMeta(
    RecordId record, const std::string& key) const {
  auto it = metadata_.find(record);
  if (it == metadata_.end()) return std::nullopt;
  auto kv = it->second.find(key);
  if (kv == it->second.end()) return std::nullopt;
  return kv->second;
}

Bitmap RecordLinkIndex::FilterMeta(const std::string& key,
                                   const std::string& value,
                                   size_t domain) const {
  Bitmap result(domain);
  for (const auto& [record, kvs] : metadata_) {
    if (record >= domain) continue;
    auto it = kvs.find(key);
    if (it != kvs.end() && it->second == value) result.Set(record);
  }
  return result;
}

}  // namespace colgraph
