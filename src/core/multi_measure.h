// Multi-measure records (Section 3.1: "our techniques are applicable when
// multiple measures are recorded", e.g. both *time* and *cost* per
// delivery leg). Implemented as one ColGraphEngine per measure family
// sharing the same record ids and structure: every slot sees identical
// bitmaps, so structural matching is done once (slot 0) and only measure
// retrieval is per-slot. The trade-off — bitmap columns duplicated per
// family — mirrors a column store keeping one column group per measure.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

namespace colgraph {

/// \brief Engine over records carrying one measure *per family* on every
/// element (e.g. families {"hours", "cost"}).
class MultiMeasureEngine {
 public:
  /// \param family_names one entry per measure family; at least one.
  explicit MultiMeasureEngine(std::vector<std::string> family_names,
                              EngineOptions options = {});

  size_t num_families() const { return engines_.size(); }
  const std::string& family_name(size_t slot) const { return names_[slot]; }
  /// Index of a family by name, or NotFound.
  [[nodiscard]] StatusOr<size_t> FamilySlot(const std::string& name) const;

  /// Adds a record: `measures[slot][i]` is the measure of `elements[i]`
  /// in family `slot`. All slots must cover every element.
  [[nodiscard]] StatusOr<RecordId> AddRecord(
      const std::vector<Edge>& elements,
      const std::vector<std::vector<double>>& measures);

  /// Walk convenience (cycle-flattened), one measure vector per family.
  [[nodiscard]] StatusOr<RecordId> AddWalk(
      const std::vector<NodeId>& walk,
      const std::vector<std::vector<double>>& measures);

  [[nodiscard]] Status Seal();

  /// Structural matching is family-independent.
  Bitmap Match(const GraphQuery& query,
               const QueryOptions& options = {}) const {
    return engines_[0].Match(query, options);
  }

  /// Path aggregation over one measure family.
  [[nodiscard]] StatusOr<PathAggResult> RunAggregateQuery(
      size_t family, const GraphQuery& query, AggFn fn,
      const QueryOptions& options = {}) const;

  /// Materializes views in one family (views are per-family: the mp
  /// column stores that family's aggregates).
  [[nodiscard]] StatusOr<size_t> SelectAndMaterializeAggViews(
      size_t family, const std::vector<GraphQuery>& workload, AggFn fn,
      size_t budget);

  const ColGraphEngine& engine(size_t family) const {
    return engines_[family];
  }
  size_t num_records() const { return engines_[0].num_records(); }

 private:
  std::vector<std::string> names_;
  std::vector<ColGraphEngine> engines_;
};

}  // namespace colgraph
