#include "core/engine_io.h"

#include <fstream>

#include "columnstore/io_util.h"

namespace colgraph {

namespace {

constexpr uint32_t kMagic = 0x4347454E;  // "CGEN"
constexpr uint32_t kVersion = 1;

void WriteEwah(std::ofstream& out, const Bitmap& bits) {
  const EwahBitmap compressed = EwahBitmap::FromBitmap(bits);
  io::WritePod(out, static_cast<uint64_t>(compressed.size_bits()));
  io::WriteVec(out, compressed.buffer());
}

StatusOr<Bitmap> ReadEwah(std::ifstream& in) {
  uint64_t num_bits = 0;
  std::vector<uint64_t> buffer;
  if (!io::ReadPod(in, &num_bits) || !io::ReadVec(in, &buffer)) {
    return Status::Corruption("truncated bitmap");
  }
  return EwahBitmap::FromRaw(std::move(buffer), num_bits).ToBitmap();
}

void WriteNodeRef(std::ofstream& out, const NodeRef& n) {
  io::WritePod(out, n.base);
  io::WritePod(out, n.occurrence);
}

bool ReadNodeRef(std::ifstream& in, NodeRef* n) {
  return io::ReadPod(in, &n->base) && io::ReadPod(in, &n->occurrence);
}

}  // namespace

Status WriteEngine(const ColGraphEngine& engine, const std::string& path) {
  const MasterRelation& relation = engine.relation();
  if (!relation.sealed()) {
    return Status::InvalidArgument("can only persist a sealed engine");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);

  io::WritePod(out, kMagic);
  io::WritePod(out, kVersion);
  io::WritePod(out,
               static_cast<uint64_t>(engine.options().relation.partition_width));
  io::WritePod(out, static_cast<uint64_t>(engine.options().view_min_support));

  // Edge catalog: edges in id order (ids are dense, so position == id).
  const EdgeCatalog& catalog = engine.catalog();
  io::WritePod(out, static_cast<uint64_t>(catalog.size()));
  for (EdgeId id = 0; id < catalog.size(); ++id) {
    WriteNodeRef(out, catalog.edge(id).from);
    WriteNodeRef(out, catalog.edge(id).to);
  }

  // Base columns.
  io::WritePod(out, static_cast<uint64_t>(relation.num_records()));
  io::WritePod(out, static_cast<uint64_t>(relation.num_edge_columns()));
  for (EdgeId id = 0; id < relation.num_edge_columns(); ++id) {
    io::WriteMeasureColumn(out, relation.PeekMeasureColumn(id));
  }

  // Graph views: definition + bitmap column, in view-index order.
  const auto& graph_views = engine.views().graph_views();
  io::WritePod(out, static_cast<uint64_t>(graph_views.size()));
  for (const auto& [def, index] : graph_views) {
    io::WriteVec(out, def.edges);
    io::WritePod(out, static_cast<uint64_t>(index));
    WriteEwah(out, relation.PeekGraphView(index));
  }

  // Aggregate views: definition + (mp, bp) column pair.
  const auto& agg_views = engine.views().agg_views();
  io::WritePod(out, static_cast<uint64_t>(agg_views.size()));
  for (const auto& [def, index] : agg_views) {
    io::WritePod(out, static_cast<uint8_t>(def.fn));
    io::WriteVec(out, def.elements);
    io::WritePod(out, static_cast<uint64_t>(index));
    io::WriteMeasureColumn(out, relation.PeekAggregateView(index));
  }

  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<ColGraphEngine> ReadEngine(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);

  uint32_t magic = 0, version = 0;
  if (!io::ReadPod(in, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!io::ReadPod(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  EngineOptions options;
  uint64_t partition_width = 0, min_support = 0;
  if (!io::ReadPod(in, &partition_width) || !io::ReadPod(in, &min_support)) {
    return Status::Corruption("truncated options in " + path);
  }
  options.relation.partition_width = partition_width;
  options.view_min_support = min_support;

  uint64_t catalog_size = 0;
  if (!io::ReadPod(in, &catalog_size)) {
    return Status::Corruption("truncated catalog in " + path);
  }
  EdgeCatalog catalog;
  for (uint64_t i = 0; i < catalog_size; ++i) {
    Edge e;
    if (!ReadNodeRef(in, &e.from) || !ReadNodeRef(in, &e.to)) {
      return Status::Corruption("truncated catalog entry in " + path);
    }
    if (catalog.GetOrAssign(e) != i) {
      return Status::Corruption("catalog ids are not dense in " + path);
    }
  }

  uint64_t num_records = 0, num_columns = 0;
  if (!io::ReadPod(in, &num_records) || !io::ReadPod(in, &num_columns)) {
    return Status::Corruption("truncated relation header in " + path);
  }
  std::vector<MeasureColumn> columns;
  columns.reserve(num_columns);
  for (uint64_t i = 0; i < num_columns; ++i) {
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col, io::ReadMeasureColumn(in));
    columns.push_back(std::move(col));
  }
  COLGRAPH_ASSIGN_OR_RETURN(
      MasterRelation relation,
      MasterRelation::FromColumns(num_records, std::move(columns),
                                  options.relation));

  ViewCatalog views;
  uint64_t num_graph_views = 0;
  if (!io::ReadPod(in, &num_graph_views)) {
    return Status::Corruption("truncated graph-view section in " + path);
  }
  for (uint64_t i = 0; i < num_graph_views; ++i) {
    GraphViewDef def;
    uint64_t index = 0;
    if (!io::ReadVec(in, &def.edges) || !io::ReadPod(in, &index)) {
      return Status::Corruption("truncated graph view in " + path);
    }
    COLGRAPH_ASSIGN_OR_RETURN(Bitmap bits, ReadEwah(in));
    const size_t actual = relation.AddGraphView(std::move(bits));
    if (actual != index) {
      return Status::Corruption("graph-view indexes not dense in " + path);
    }
    views.AddGraphView(std::move(def), actual);
  }

  uint64_t num_agg_views = 0;
  if (!io::ReadPod(in, &num_agg_views)) {
    return Status::Corruption("truncated agg-view section in " + path);
  }
  for (uint64_t i = 0; i < num_agg_views; ++i) {
    AggViewDef def;
    uint8_t fn = 0;
    uint64_t index = 0;
    if (!io::ReadPod(in, &fn) || !io::ReadVec(in, &def.elements) ||
        !io::ReadPod(in, &index)) {
      return Status::Corruption("truncated aggregate view in " + path);
    }
    def.fn = static_cast<AggFn>(fn);
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col, io::ReadMeasureColumn(in));
    const size_t actual = relation.AddAggregateView(std::move(col));
    if (actual != index) {
      return Status::Corruption("agg-view indexes not dense in " + path);
    }
    views.AddAggView(std::move(def), actual);
  }

  return ColGraphEngine::FromParts(options, std::move(catalog),
                                   std::move(relation), std::move(views));
}

}  // namespace colgraph
