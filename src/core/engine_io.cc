#include "core/engine_io.h"

#include <algorithm>
#include <utility>

#include "columnstore/io_util.h"
#include "columnstore/persistence.h"
#include "util/failpoint.h"

namespace colgraph {

namespace {

constexpr uint32_t kMagic = 0x4347454E;  // "CGEN"
// v4 moves base-column and view payloads into page-aligned extents behind
// an extent directory (the mmap layout, DESIGN.md §14); v1-v3 files still
// load.
constexpr uint32_t kVersion = 4;

void WriteNodeRef(io::Writer& out, const NodeRef& n) {
  out.WritePod(n.base);
  out.WritePod(n.occurrence);
}

Status ReadNodeRef(io::Reader& in, NodeRef* n) {
  COLGRAPH_RETURN_NOT_OK(in.ReadPod(&n->base));
  return in.ReadPod(&n->occurrence);
}

// A materialized view definition must only name columns that exist, or
// query-time fetches would walk off the relation.
Status ValidateViewElements(const std::vector<EdgeId>& ids,
                            uint64_t num_columns, const std::string& path) {
  // A definition longer than the column universe cannot be valid, and
  // rejecting it up front keeps the per-element loop below proportional
  // to real data, not to a corrupt length claim (ReadVec already bounds
  // the allocation by the section/extent size).
  if (ids.size() > num_columns) {
    return Status::Corruption("view definition larger than the column "
                              "universe in " + path);
  }
  for (const EdgeId id : ids) {
    if (id >= num_columns) {
      return Status::Corruption("view references unknown column in " + path);
    }
  }
  return Status::OK();
}

// Parsed view definitions from the v4 def sections, decoded before the
// extents they point into.
struct GraphViewEntry {
  GraphViewDef def;
  uint64_t index = 0;
};
struct AggViewEntry {
  AggViewDef def;
  uint64_t index = 0;
};

}  // namespace

Status WriteEngine(const ColGraphEngine& engine, const std::string& path) {
  return internal::WriteEngineAtVersion(engine, path, kVersion);
}

namespace internal {

Status WriteEngineAtVersion(const ColGraphEngine& engine,
                            const std::string& path, uint32_t version) {
  const MasterRelation& relation = engine.relation();
  if (!relation.sealed()) {
    return Status::InvalidArgument("can only persist a sealed engine");
  }
  io::Writer out(path, kMagic, version);

  // Options + edge catalog: edges in id order (ids are dense, so position
  // == id).
  out.BeginSection();
  out.WritePod(
      static_cast<uint64_t>(engine.options().relation.partition_width));
  out.WritePod(static_cast<uint64_t>(engine.options().view_min_support));
  const EdgeCatalog& catalog = engine.catalog();
  out.WritePod(static_cast<uint64_t>(catalog.size()));
  for (EdgeId id = 0; id < catalog.size(); ++id) {
    WriteNodeRef(out, catalog.edge(id).from);
    WriteNodeRef(out, catalog.edge(id).to);
  }
  out.EndSection();
  COLGRAPH_FAILPOINT("persist:after_header");

  const auto& graph_views = engine.views().graph_views();
  const auto& agg_views = engine.views().agg_views();

  if (version < 4) {
    // Sequential layout: columns and views inline in their sections.
    out.BeginSection();
    out.WritePod(static_cast<uint64_t>(relation.num_records()));
    out.WritePod(static_cast<uint64_t>(relation.num_edge_columns()));
    for (EdgeId id = 0; id < relation.num_edge_columns(); ++id) {
      out.WriteMeasureColumn(relation.PeekMeasureColumn(id));
    }
    out.EndSection();

    out.BeginSection();
    out.WritePod(static_cast<uint64_t>(graph_views.size()));
    for (const auto& [def, index] : graph_views) {
      out.WriteVec(def.edges);
      out.WritePod(static_cast<uint64_t>(index));
      out.WriteBitmap(relation.PeekGraphViewColumn(index));
    }
    out.EndSection();

    out.BeginSection();
    out.WritePod(static_cast<uint64_t>(agg_views.size()));
    for (const auto& [def, index] : agg_views) {
      out.WritePod(static_cast<uint8_t>(def.fn));
      out.WriteVec(def.elements);
      out.WritePod(static_cast<uint64_t>(index));
      out.WriteMeasureColumn(relation.PeekAggregateView(index));
    }
    out.EndSection();
    return out.Commit();
  }

  // v4: definitions stay in checksummed sections; the bulky column and
  // view payloads move to page-aligned extents. Extent order: base
  // columns, then graph-view bitmaps, then agg-view columns — the same
  // order the defs are written in.
  out.BeginSection();
  out.WritePod(static_cast<uint64_t>(relation.num_records()));
  out.WritePod(static_cast<uint64_t>(relation.num_edge_columns()));
  out.EndSection();

  out.BeginSection();
  out.WritePod(static_cast<uint64_t>(graph_views.size()));
  for (const auto& [def, index] : graph_views) {
    out.WriteVec(def.edges);
    out.WritePod(static_cast<uint64_t>(index));
  }
  out.EndSection();

  out.BeginSection();
  out.WritePod(static_cast<uint64_t>(agg_views.size()));
  for (const auto& [def, index] : agg_views) {
    out.WritePod(static_cast<uint8_t>(def.fn));
    out.WriteVec(def.elements);
    out.WritePod(static_cast<uint64_t>(index));
  }
  out.EndSection();

  std::vector<std::vector<char>> payloads;
  payloads.reserve(relation.num_edge_columns() + graph_views.size() +
                   agg_views.size());
  for (EdgeId id = 0; id < relation.num_edge_columns(); ++id) {
    io::Writer enc(version);
    enc.WriteMeasureColumn(relation.PeekMeasureColumn(id));
    payloads.push_back(enc.TakePayload());
  }
  for (const auto& [def, index] : graph_views) {
    io::Writer enc(version);
    enc.WriteBitmap(relation.PeekGraphViewColumn(index));
    payloads.push_back(enc.TakePayload());
  }
  for (const auto& [def, index] : agg_views) {
    io::Writer enc(version);
    enc.WriteMeasureColumn(relation.PeekAggregateView(index));
    payloads.push_back(enc.TakePayload());
  }
  WriteExtentsV4(&out, payloads);
  return out.Commit();
}

}  // namespace internal

namespace {

// Shared v1-v3 sequential tail: everything after the options+catalog
// section.
StatusOr<ColGraphEngine> ReadEngineSequential(io::Reader& in,
                                              const std::string& path,
                                              EngineOptions options,
                                              EdgeCatalog catalog) {
  COLGRAPH_RETURN_NOT_OK(in.BeginSection("base columns"));
  uint64_t num_records = 0, num_columns = 0;
  if (!in.ReadPod(&num_records).ok() || !in.ReadPod(&num_columns).ok()) {
    return Status::Corruption("truncated relation header in " + path);
  }
  COLGRAPH_RETURN_NOT_OK(io::ValidateRecordCount(num_records, path));
  std::vector<MeasureColumn> columns;
  columns.reserve(static_cast<size_t>(
      std::min<uint64_t>(num_columns, in.remaining() / 24 + 1)));
  for (uint64_t i = 0; i < num_columns; ++i) {
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col,
                              in.ReadMeasureColumn(num_records));
    columns.push_back(std::move(col));
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("base columns"));
  COLGRAPH_ASSIGN_OR_RETURN(
      MasterRelation relation,
      MasterRelation::FromColumns(static_cast<size_t>(num_records),
                                  std::move(columns), options.relation));

  ViewCatalog views;
  COLGRAPH_RETURN_NOT_OK(in.BeginSection("graph views"));
  uint64_t num_graph_views = 0;
  if (!in.ReadPod(&num_graph_views).ok()) {
    return Status::Corruption("truncated graph-view section in " + path);
  }
  if (num_graph_views > in.remaining() / 24) {
    return Status::Corruption("implausible graph-view count in " + path);
  }
  for (uint64_t i = 0; i < num_graph_views; ++i) {
    GraphViewDef def;
    uint64_t index = 0;
    if (!in.ReadVec(&def.edges).ok() || !in.ReadPod(&index).ok()) {
      return Status::Corruption("truncated graph view in " + path);
    }
    COLGRAPH_RETURN_NOT_OK(
        ValidateViewElements(def.edges, num_columns, path));
    COLGRAPH_ASSIGN_OR_RETURN(Bitmap bits, in.ReadBitmap(num_records));
    const size_t actual = relation.AddGraphView(std::move(bits));
    if (actual != index) {
      return Status::Corruption("graph-view indexes not dense in " + path);
    }
    views.AddGraphView(std::move(def), actual);
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("graph views"));

  COLGRAPH_RETURN_NOT_OK(in.BeginSection("aggregate views"));
  uint64_t num_agg_views = 0;
  if (!in.ReadPod(&num_agg_views).ok()) {
    return Status::Corruption("truncated agg-view section in " + path);
  }
  if (num_agg_views > in.remaining() / 25) {
    return Status::Corruption("implausible agg-view count in " + path);
  }
  for (uint64_t i = 0; i < num_agg_views; ++i) {
    AggViewDef def;
    uint8_t fn = 0;
    uint64_t index = 0;
    if (!in.ReadPod(&fn).ok() || !in.ReadVec(&def.elements).ok() ||
        !in.ReadPod(&index).ok()) {
      return Status::Corruption("truncated aggregate view in " + path);
    }
    if (fn > static_cast<uint8_t>(AggFn::kAvg)) {
      return Status::Corruption("unknown aggregate function in " + path);
    }
    def.fn = static_cast<AggFn>(fn);
    COLGRAPH_RETURN_NOT_OK(
        ValidateViewElements(def.elements, num_columns, path));
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col,
                              in.ReadMeasureColumn(num_records));
    const size_t actual = relation.AddAggregateView(std::move(col));
    if (actual != index) {
      return Status::Corruption("agg-view indexes not dense in " + path);
    }
    views.AddAggView(std::move(def), actual);
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("aggregate views"));
  COLGRAPH_RETURN_NOT_OK(in.ExpectEnd());

  return ColGraphEngine::FromParts(options, std::move(catalog),
                                   std::move(relation), std::move(views));
}

// v4 tail: def sections first, then the extent directory, then per-extent
// decoding. Each extent must be consumed exactly (trailing bytes in an
// extent are corruption, same as a section size mismatch).
StatusOr<ColGraphEngine> ReadEngineV4(io::Reader& in, const std::string& path,
                                      EngineOptions options,
                                      EdgeCatalog catalog) {
  COLGRAPH_RETURN_NOT_OK(in.BeginSection("relation header"));
  uint64_t num_records = 0, num_columns = 0;
  if (!in.ReadPod(&num_records).ok() || !in.ReadPod(&num_columns).ok()) {
    return Status::Corruption("truncated relation header in " + path);
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("relation header"));
  COLGRAPH_RETURN_NOT_OK(io::ValidateRecordCount(num_records, path));

  COLGRAPH_RETURN_NOT_OK(in.BeginSection("graph view defs"));
  uint64_t num_graph_views = 0;
  if (!in.ReadPod(&num_graph_views).ok()) {
    return Status::Corruption("truncated graph-view section in " + path);
  }
  // Each def costs >= 16 bytes (u64 edge count + u64 index).
  if (num_graph_views > in.remaining() / 16) {
    return Status::Corruption("implausible graph-view count in " + path);
  }
  std::vector<GraphViewEntry> graph_defs(
      static_cast<size_t>(num_graph_views));
  for (GraphViewEntry& entry : graph_defs) {
    if (!in.ReadVec(&entry.def.edges).ok() || !in.ReadPod(&entry.index).ok()) {
      return Status::Corruption("truncated graph view in " + path);
    }
    COLGRAPH_RETURN_NOT_OK(
        ValidateViewElements(entry.def.edges, num_columns, path));
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("graph view defs"));

  COLGRAPH_RETURN_NOT_OK(in.BeginSection("aggregate view defs"));
  uint64_t num_agg_views = 0;
  if (!in.ReadPod(&num_agg_views).ok()) {
    return Status::Corruption("truncated agg-view section in " + path);
  }
  // Each def costs >= 17 bytes (u8 fn + u64 element count + u64 index).
  if (num_agg_views > in.remaining() / 17) {
    return Status::Corruption("implausible agg-view count in " + path);
  }
  std::vector<AggViewEntry> agg_defs(static_cast<size_t>(num_agg_views));
  for (AggViewEntry& entry : agg_defs) {
    uint8_t fn = 0;
    if (!in.ReadPod(&fn).ok() || !in.ReadVec(&entry.def.elements).ok() ||
        !in.ReadPod(&entry.index).ok()) {
      return Status::Corruption("truncated aggregate view in " + path);
    }
    if (fn > static_cast<uint8_t>(AggFn::kAvg)) {
      return Status::Corruption("unknown aggregate function in " + path);
    }
    entry.def.fn = static_cast<AggFn>(fn);
    COLGRAPH_RETURN_NOT_OK(
        ValidateViewElements(entry.def.elements, num_columns, path));
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("aggregate view defs"));

  const uint64_t total_extents =
      num_columns + num_graph_views + num_agg_views;
  std::vector<internal::V4Extent> extents;
  COLGRAPH_ASSIGN_OR_RETURN(
      extents, internal::ReadExtentDirectoryV4(&in, total_extents, path));

  size_t next = 0;
  auto extent_reader = [&]() -> StatusOr<io::Reader> {
    const internal::V4Extent& e = extents[next++];
    return in.AtExtent(e.offset, e.len);
  };

  std::vector<MeasureColumn> columns;
  columns.reserve(static_cast<size_t>(num_columns));
  for (uint64_t i = 0; i < num_columns; ++i) {
    COLGRAPH_ASSIGN_OR_RETURN(io::Reader sub, extent_reader());
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col,
                              sub.ReadMeasureColumn(num_records));
    if (sub.remaining() != 0) {
      return Status::Corruption("trailing bytes in column extent in " + path);
    }
    columns.push_back(std::move(col));
  }
  COLGRAPH_ASSIGN_OR_RETURN(
      MasterRelation relation,
      MasterRelation::FromColumns(static_cast<size_t>(num_records),
                                  std::move(columns), options.relation));

  ViewCatalog views;
  for (GraphViewEntry& entry : graph_defs) {
    COLGRAPH_ASSIGN_OR_RETURN(io::Reader sub, extent_reader());
    COLGRAPH_ASSIGN_OR_RETURN(Bitmap bits, sub.ReadBitmap(num_records));
    if (sub.remaining() != 0) {
      return Status::Corruption("trailing bytes in view extent in " + path);
    }
    const size_t actual = relation.AddGraphView(std::move(bits));
    if (actual != entry.index) {
      return Status::Corruption("graph-view indexes not dense in " + path);
    }
    views.AddGraphView(std::move(entry.def), actual);
  }
  for (AggViewEntry& entry : agg_defs) {
    COLGRAPH_ASSIGN_OR_RETURN(io::Reader sub, extent_reader());
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col,
                              sub.ReadMeasureColumn(num_records));
    if (sub.remaining() != 0) {
      return Status::Corruption("trailing bytes in view extent in " + path);
    }
    const size_t actual = relation.AddAggregateView(std::move(col));
    if (actual != entry.index) {
      return Status::Corruption("agg-view indexes not dense in " + path);
    }
    views.AddAggView(std::move(entry.def), actual);
  }

  return ColGraphEngine::FromParts(options, std::move(catalog),
                                   std::move(relation), std::move(views));
}

}  // namespace

StatusOr<ColGraphEngine> ReadEngine(const std::string& path) {
  io::RemoveStaleTemp(path);
  COLGRAPH_ASSIGN_OR_RETURN(io::Reader in,
                            io::Reader::OpenMapped(path, kMagic));

  COLGRAPH_RETURN_NOT_OK(in.BeginSection("options+catalog"));
  EngineOptions options;
  uint64_t partition_width = 0, min_support = 0;
  if (!in.ReadPod(&partition_width).ok() || !in.ReadPod(&min_support).ok()) {
    return Status::Corruption("truncated options in " + path);
  }
  options.relation.partition_width = static_cast<size_t>(partition_width);
  options.view_min_support = static_cast<size_t>(min_support);

  uint64_t catalog_size = 0;
  if (!in.ReadPod(&catalog_size).ok()) {
    return Status::Corruption("truncated catalog in " + path);
  }
  // Each catalog entry is 16 bytes on disk; a larger claim cannot be real
  // and must not drive the loop below.
  if (catalog_size > in.remaining() / 16) {
    return Status::Corruption("implausible catalog size in " + path);
  }
  EdgeCatalog catalog;
  for (uint64_t i = 0; i < catalog_size; ++i) {
    Edge e;
    if (!ReadNodeRef(in, &e.from).ok() || !ReadNodeRef(in, &e.to).ok()) {
      return Status::Corruption("truncated catalog entry in " + path);
    }
    if (catalog.GetOrAssign(e) != i) {
      return Status::Corruption("catalog ids are not dense in " + path);
    }
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("options+catalog"));

  if (in.version() >= 4) {
    return ReadEngineV4(in, path, std::move(options), std::move(catalog));
  }
  return ReadEngineSequential(in, path, std::move(options),
                              std::move(catalog));
}

}  // namespace colgraph
