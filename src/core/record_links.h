// Linked records and record metadata (Section 3.1): "a collection of
// graph records may refer to the same logical unit, as in the case where
// an order is broken into multiple sub-orders ... handled easily via
// metadata information, for instance unique record-ids that join these
// sub-orders. The same logic allows us to handle multigraphs" — a parallel
// delivery becomes several records linked into one group.
//
// RecordLinkIndex tracks group membership and expands answer sets from
// records to whole logical units; the metadata map carries free-form
// per-record attributes (order type, customer, ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bitmap/bitmap.h"
#include "graph/graph.h"
#include "util/status.h"

namespace colgraph {

using GroupId = uint64_t;

/// \brief Bidirectional record <-> group index plus per-record metadata.
class RecordLinkIndex {
 public:
  /// Links a record into a group (a record belongs to at most one group;
  /// re-linking to a different group is rejected).
  [[nodiscard]] Status Link(RecordId record, GroupId group);

  /// The record's group, or nullopt for unlinked records.
  std::optional<GroupId> GroupOf(RecordId record) const;

  /// Records of a group (ascending; empty for unknown groups).
  std::vector<RecordId> Records(GroupId group) const;

  size_t num_groups() const { return groups_.size(); }

  /// Expands an answer set to whole logical units: any group with at least
  /// one matching record contributes all its records. `domain` is the
  /// relation's record count (sizes the result).
  Bitmap ExpandToGroups(const Bitmap& matches) const;

  /// Restricts an answer set to records whose *entire group* matches —
  /// the AND-semantics dual of ExpandToGroups (e.g. "orders all of whose
  /// sub-orders used the leased route").
  Bitmap RestrictToFullGroups(const Bitmap& matches) const;

  // --- Metadata. ---

  void SetMeta(RecordId record, const std::string& key,
               const std::string& value);
  /// Returns the value, or nullopt.
  std::optional<std::string> GetMeta(RecordId record,
                                     const std::string& key) const;
  /// Bitmap of records where key == value (a metadata filter to AND with
  /// structural matches). `domain` sizes the bitmap.
  Bitmap FilterMeta(const std::string& key, const std::string& value,
                    size_t domain) const;

 private:
  std::unordered_map<RecordId, GroupId> group_of_;
  std::unordered_map<GroupId, std::vector<RecordId>> groups_;
  std::unordered_map<RecordId,
                     std::unordered_map<std::string, std::string>>
      metadata_;
};

}  // namespace colgraph
