// ColGraphEngine: the public entry point of the library. Owns the edge
// catalog, the master relation, and the view catalog, and wires together
// ingest, view selection/materialization, and query execution — the whole
// pipeline of the paper behind one API.
//
// Typical use:
//   ColGraphEngine engine;
//   engine.AddWalk({...node ids...}, measures);   // repeat per record
//   engine.Seal();
//   engine.SelectAndMaterializeGraphViews(workload, /*budget=*/10);
//   auto result = engine.RunGraphQuery(query);
#pragma once

#include <memory>
#include <vector>

#include "columnstore/master_relation.h"
#include "graph/catalog.h"
#include "graph/flatten.h"
#include "graph/graph.h"
#include "obs/query_log.h"
#include "query/engine.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "views/view_defs.h"

namespace colgraph {

/// How graph-view candidates are generated (Section 5.2).
enum class CandidateGenerator : uint8_t {
  /// Exact: closure of the query edge sets under intersection (the closed
  /// itemsets), then the monotonicity filter. Default.
  kIntersectionClosure,
  /// Scalable variant: Apriori frequent-itemset mining with min support,
  /// then the supersede filter. Useful when query overlap makes the exact
  /// closure too large.
  kApriori,
};

struct EngineOptions {
  MasterRelationOptions relation;
  /// Candidate-generation minimum support for graph-view selection.
  /// (Apriori requires >= 2; lower values are clamped for that generator.)
  size_t view_min_support = 1;
  CandidateGenerator candidate_generator =
      CandidateGenerator::kIntersectionClosure;
  /// Worker threads for batch query evaluation, view materialization, and
  /// candidate support counting. <= 1 runs everything serially (no pool is
  /// created). Results are bit-identical for every value — parallelism
  /// only changes the wall clock (DESIGN.md §8).
  size_t num_threads = 1;
  /// Durable query-log capture (DESIGN.md §10). When query_log.path is
  /// non-empty the engine appends every executed query to that file for
  /// later replay (tools/colgraph_replay) and workload-driven view advice.
  /// If the file cannot be opened the engine still constructs — capture is
  /// disabled with one warning on stderr (an observability failure must
  /// not take the database down). obs::SetQueryLogEnabled(false) is the
  /// process-wide kill switch.
  obs::QueryLogOptions query_log;
};

/// \brief Facade over catalog + relation + views + query engine.
class ColGraphEngine {
 public:
  explicit ColGraphEngine(EngineOptions options = {});

  // Copying duplicates all engine state and spawns a *fresh* worker pool of
  // the same size (pools hold threads, not data, so they are never shared
  // between engine instances) — this keeps the trace loader's staged-copy
  // commit working for threaded engines. Moves transfer the pool.
  // (SharedCopy() is the cheap alternative when the copy will not mutate
  // the relation in place — snapshot publishing, DESIGN.md §14.)
  ColGraphEngine(const ColGraphEngine& other);
  ColGraphEngine& operator=(const ColGraphEngine& other);
  ColGraphEngine(ColGraphEngine&&) = default;
  ColGraphEngine& operator=(ColGraphEngine&&) = default;
  ~ColGraphEngine() = default;

  /// O(catalog + views) copy that *shares* the immutable relation and tail
  /// datasets instead of duplicating them — the incremental-ingest publish
  /// path (append a tail, publish) no longer copies the world. The shared
  /// relation is copy-on-write: the first in-place mutation through either
  /// engine clones it, so the two engines can never observe each other's
  /// writes. Not concurrency-safe with respect to other *mutators* of this
  /// engine (the daemon serializes writers; see DESIGN.md §12).
  ColGraphEngine SharedCopy() const;

  // --- Ingest (before Seal). ---

  /// Adds one graph record; elements are resolved (and the universe grown)
  /// through the owned catalog. Records with cycles must be flattened by
  /// the caller (AddWalk does this automatically for traces).
  [[nodiscard]] StatusOr<RecordId> AddRecord(const GraphRecord& record);

  /// Adds a trace record: a walk over base nodes with one measure per hop.
  /// The walk is cycle-flattened (Section 6.2) before shredding, so
  /// `measures.size()` must equal `walk.size() - 1`.
  [[nodiscard]] StatusOr<RecordId> AddWalk(const std::vector<NodeId>& walk,
                             const std::vector<double>& measures);

  /// Pre-registers the edges of a base network so the universe (and column
  /// order) is fixed before ingest.
  void RegisterUniverse(const std::vector<Edge>& edges);

  /// Freezes the relation; queries and materialization require this.
  [[nodiscard]] Status Seal();

  // --- Incremental ingest (the applications generate records
  // --- continuously; Section 6.1's schema likewise "expands on demand").

  /// Re-opens a sealed engine for more AddRecord/AddWalk calls. Queries
  /// are unavailable until FinishAppend(). Rejected while tail datasets
  /// are attached — in-place growth would shift their global id bases;
  /// Compact() first.
  [[nodiscard]] Status BeginAppend();
  /// Reseals the relation and refreshes every materialized view so query
  /// rewriting stays sound over the grown record set.
  [[nodiscard]] Status FinishAppend();

  // --- Tail datasets (out-of-core incremental ingest, DESIGN.md §14). ---

  /// Shreds `records` through this engine's catalog (growing it) into a
  /// fresh *sealed* relation — a tail dataset — leaving the primary
  /// relation untouched. Pair with AttachDataset(); the cheap-ingest path.
  [[nodiscard]] StatusOr<MasterRelation> BuildTailRelation(
      const std::vector<GraphRecord>& records);

  /// Appends a sealed, immutable dataset behind the primary relation. Its
  /// records take the next total_records() global ids; queries OR its
  /// matches in and route fetches/folds to it. Both the primary and the
  /// tail must be sealed.
  [[nodiscard]] Status AttachDataset(
      std::shared_ptr<const MasterRelation> tail);

  /// Merges the primary and every attached tail into one relation (records
  /// keep their global ids) and re-materializes every registered view over
  /// the merged record set. No-op without tails.
  [[nodiscard]] Status Compact();

  const std::vector<std::shared_ptr<const MasterRelation>>& tails() const {
    return tails_;
  }
  /// Primary records plus every attached tail's records — the global
  /// record-id domain queries run over.
  size_t total_records() const;

  // --- Views (after Seal). ---

  /// Runs the full Section 5.2 pipeline for graph views: candidate
  /// generation (intersection closure + monotonicity filter + min support)
  /// and greedy extended-set-cover selection, then materializes at most
  /// `budget` views. Returns the number of views materialized.
  [[nodiscard]] StatusOr<size_t> SelectAndMaterializeGraphViews(
      const std::vector<GraphQuery>& workload, size_t budget);

  /// Same for aggregate graph views (Section 5.4), for function `fn`.
  [[nodiscard]] StatusOr<size_t> SelectAndMaterializeAggViews(
      const std::vector<GraphQuery>& workload, AggFn fn, size_t budget);

  /// Materializes one explicit graph view / aggregate view.
  [[nodiscard]] StatusOr<size_t> MaterializeView(const GraphViewDef& def);
  [[nodiscard]] StatusOr<size_t> MaterializeView(const AggViewDef& def);

  // --- Queries (after Seal). ---

  Bitmap Match(const GraphQuery& query, const QueryOptions& options = {}) const;
  [[nodiscard]] StatusOr<MeasureTable> RunGraphQuery(const GraphQuery& query,
                                       const QueryOptions& options = {}) const;
  [[nodiscard]] StatusOr<PathAggResult> RunAggregateQuery(
      const GraphQuery& query, AggFn fn,
      const QueryOptions& options = {}) const;

  /// Batch evaluation across the engine's worker pool (serial when
  /// options().num_threads <= 1); slot i holds the result of queries[i],
  /// bit-identical to looping RunGraphQuery.
  [[nodiscard]] StatusOr<std::vector<MeasureTable>> EvaluateBatch(
      const std::vector<GraphQuery>& queries,
      const QueryOptions& options = {}) const {
    return query_engine().EvaluateBatch(queries, options, pool_.get());
  }
  /// Batch path aggregation; slot i holds RunAggregateQuery(queries[i], fn).
  [[nodiscard]] StatusOr<std::vector<PathAggResult>> EvaluatePathAggBatch(
      const std::vector<GraphQuery>& queries, AggFn fn,
      const QueryOptions& options = {}) const {
    return query_engine().EvaluatePathAggBatch(queries, fn, options,
                                               pool_.get());
  }

  /// Aggregation along one explicit (possibly open-ended) path.
  [[nodiscard]] StatusOr<PathAggResult> AggregateAlongPath(
      const Path& path, AggFn fn, const QueryOptions& options = {}) const {
    return query_engine().AggregateAlongPath(path, fn, options);
  }

  // --- Introspection. ---

  /// EXPLAIN for a graph query: the rewriter's view choices, residual
  /// atomic edges, and estimated vs. actual bitmap cardinalities
  /// (obs/explain.h has text/JSON renderers).
  obs::ExplainResult Explain(const GraphQuery& query,
                             const QueryOptions& options = {}) const {
    return query_engine().Explain(query, options);
  }

  /// EXPLAIN for a path-aggregation query: the aggregate match plan
  /// (bp bitmaps included) plus the per-path view segmentation.
  obs::ExplainResult ExplainAggregate(const GraphQuery& query, AggFn fn,
                                      const QueryOptions& options = {}) const {
    return query_engine().ExplainAggregate(query, fn, options);
  }

  /// One JSON document combining the process-wide metrics registry
  /// (counters, gauges, per-phase latency histograms) with this engine's
  /// FetchStats and shape (records, columns, views). This is what the
  /// bench harnesses write to --metrics-out.
  std::string DumpMetricsJson() const;

  /// Reassembles an engine from persisted parts (see core/engine_io.h).
  static ColGraphEngine FromParts(EngineOptions options, EdgeCatalog catalog,
                                  MasterRelation relation, ViewCatalog views);

  const EdgeCatalog& catalog() const { return catalog_; }
  EdgeCatalog& mutable_catalog() { return catalog_; }
  const MasterRelation& relation() const { return *relation_; }
  /// Mutable relation access for external materialization drivers (the
  /// benchmark harnesses sweep view budgets against one ingested relation).
  /// Forces copy-on-write when the relation is shared (see SharedCopy).
  MasterRelation& mutable_relation() { return OwnedRelation(); }
  const ViewCatalog& views() const { return views_; }
  const EngineOptions& options() const { return options_; }
  /// A fresh evaluator bound to this engine's state. Cheap (five
  /// pointers); constructed on demand so the engine stays movable.
  QueryEngine query_engine() const {
    return QueryEngine(relation_.get(), &catalog_, &views_, query_log_.get(),
                       segments_.empty() ? nullptr : &segments_);
  }

  /// The engine's query log; nullptr when capture is not configured.
  /// Exposed so external evaluation drivers (the bench harnesses build
  /// their own QueryEngine against trimmed view catalogs) can keep
  /// capturing into the same file.
  obs::QueryLog* query_log() const { return query_log_.get(); }

  /// Flushes the query log, writes its footer, and fsyncs — after this the
  /// log file is complete and readable. Returns the first error capture
  /// hit, OK when no log is configured. Idempotent; queries executed after
  /// the close are no longer recorded.
  [[nodiscard]] Status CloseQueryLog() {
    if (query_log_ == nullptr) return Status::OK();
    return query_log_->Close();
  }
  FetchStats& stats() const { return relation_->stats(); }
  /// Records in the *primary* relation; total_records() adds the tails.
  size_t num_records() const { return relation_->num_records(); }
  /// The engine's worker pool; nullptr when options().num_threads <= 1.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  /// Tag dispatch for the SharedCopy constructor.
  struct ShareTag {};
  ColGraphEngine(const ColGraphEngine& other, ShareTag);

  /// Copy-on-write funnel: every in-place relation mutator goes through
  /// here, cloning the relation first if a SharedCopy still references it.
  MasterRelation& OwnedRelation();
  /// Recomputes segments_ (tail base offsets) after relation_/tails_
  /// change.
  void RebuildSegments();

  EngineOptions options_;
  EdgeCatalog catalog_;
  /// The primary relation. shared_ptr so SharedCopy can publish snapshots
  /// without duplicating columns; never null; mutations go through
  /// OwnedRelation() (copy-on-write).
  std::shared_ptr<MasterRelation> relation_;
  /// Immutable tail datasets behind the primary (DESIGN.md §14), in
  /// ingest order. Shared freely between engine copies.
  std::vector<std::shared_ptr<const MasterRelation>> tails_;
  /// Derived: one RelationSegment per tail with its global id base.
  std::vector<RelationSegment> segments_;
  ViewCatalog views_;
  /// Workers shared by every parallel section of this engine (batch
  /// queries, materialization, candidate counting). unique_ptr keeps the
  /// engine movable; created once at construction, never rebuilt.
  std::unique_ptr<ThreadPool> pool_;
  /// Query-log capture; null unless options_.query_log.path is set. Shared
  /// (not duplicated) by engine copies: the log is an append-only,
  /// thread-safe sink, and the trace loader's staged-copy commit must keep
  /// appending to the same file, not truncate a second one.
  std::shared_ptr<obs::QueryLog> query_log_;
  /// Record count at the last BeginAppend (delta view maintenance).
  size_t append_watermark_ = 0;
};

}  // namespace colgraph
