// Whole-engine persistence: saves and restores the edge catalog, the
// master relation (base columns), and every materialized view — the full
// state needed to shut an engine down and answer the same workload after a
// restart without re-ingesting or re-materializing.
//
// Writes use snapshot format v4 (checksummed sections + footer, column
// and view payloads in page-aligned extents, written to `<path>.tmp` and
// atomically renamed — see io_util.h and DESIGN.md §14); reads accept
// v1-v4. Corrupt or truncated files of any version load as
// Status::Corruption, never as a crash.
#pragma once

#include <cstdint>
#include <string>

#include "core/engine.h"
#include "util/status.h"

namespace colgraph {

/// Writes a sealed engine's complete state to `path`.
[[nodiscard]] Status WriteEngine(const ColGraphEngine& engine, const std::string& path);

/// Restores an engine previously written by WriteEngine. The result is
/// sealed, views registered, ready for queries. Sweeps a stale
/// `<path>.tmp` left by a crashed write before opening.
[[nodiscard]] StatusOr<ColGraphEngine> ReadEngine(const std::string& path);

namespace internal {
/// Writes the engine in an explicit snapshot format version (2, 3, or 4)
/// — compat-fixture support for tests.
Status WriteEngineAtVersion(const ColGraphEngine& engine,
                            const std::string& path, uint32_t version);
}  // namespace internal

}  // namespace colgraph
