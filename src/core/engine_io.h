// Whole-engine persistence: saves and restores the edge catalog, the
// master relation (base columns), and every materialized view — the full
// state needed to shut an engine down and answer the same workload after a
// restart without re-ingesting or re-materializing.
//
// Writes use snapshot format v2 (checksummed sections + footer, written to
// `<path>.tmp` and atomically renamed — see io_util.h); reads accept both
// v2 and the legacy unchecksummed v1 layout. Corrupt or truncated files of
// either version load as Status::Corruption, never as a crash.
#pragma once

#include <string>

#include "core/engine.h"
#include "util/status.h"

namespace colgraph {

/// Writes a sealed engine's complete state to `path`.
[[nodiscard]] Status WriteEngine(const ColGraphEngine& engine, const std::string& path);

/// Restores an engine previously written by WriteEngine. The result is
/// sealed, views registered, ready for queries.
[[nodiscard]] StatusOr<ColGraphEngine> ReadEngine(const std::string& path);

}  // namespace colgraph
