#include "core/replay.h"

#include <memory>

#include "query/engine.h"
#include "util/thread_pool.h"

namespace colgraph {

namespace {

// A maximal run of consecutive log records sharing (kind, fn) — replayed
// as one batch, preserving log order overall.
struct Run {
  size_t begin = 0;
  size_t end = 0;
  obs::QueryLogKind kind = obs::QueryLogKind::kMatch;
  AggFn fn = AggFn::kSum;
};

void RecordOutcome(const ReplayReport::Mismatch& mismatch, bool matches,
                   ReplayReport* report) {
  if (matches) return;
  ++report->cardinality_mismatches;
  if (report->mismatches.size() < ReplayReport::kMaxReportedMismatches) {
    report->mismatches.push_back(mismatch);
  }
}

}  // namespace

StatusOr<ReplayReport> ReplayQueryLog(
    const ColGraphEngine& engine,
    const std::vector<obs::QueryLogRecord>& records,
    const ReplayOptions& options) {
  ReplayReport report;

  // Bind the evaluator without the engine's query log: replay must read a
  // workload, not append a second copy of it.
  const QueryEngine qe(&engine.relation(), &engine.catalog(), &engine.views());
  QueryOptions query_options;
  query_options.use_views = options.use_views;
  CancellationToken deadline;
  if (options.timeout_ms > 0) {
    deadline.SetTimeout(options.timeout_ms);
    query_options.cancel = &deadline;
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }

  std::vector<Run> runs;
  for (size_t i = 0; i < records.size(); ++i) {
    if (!runs.empty() && runs.back().kind == records[i].kind &&
        (records[i].kind == obs::QueryLogKind::kMatch ||
         runs.back().fn == records[i].fn)) {
      runs.back().end = i + 1;
      continue;
    }
    runs.push_back(Run{i, i + 1, records[i].kind, records[i].fn});
  }

  for (const Run& run : runs) {
    std::vector<GraphQuery> queries;
    queries.reserve(run.end - run.begin);
    for (size_t i = run.begin; i < run.end; ++i) {
      queries.push_back(records[i].ToQuery());
    }

    if (run.kind == obs::QueryLogKind::kMatch) {
      COLGRAPH_ASSIGN_OR_RETURN(
          const std::vector<MeasureTable> results,
          qe.EvaluateBatch(queries, query_options, pool.get()));
      for (size_t i = 0; i < results.size(); ++i) {
        const size_t index = run.begin + i;
        const uint64_t replayed = results[i].num_rows();
        RecordOutcome({index, records[index].result_cardinality, replayed},
                      replayed == records[index].result_cardinality, &report);
      }
      report.match_queries += results.size();
    } else {
      COLGRAPH_ASSIGN_OR_RETURN(
          const std::vector<PathAggResult> results,
          qe.EvaluatePathAggBatch(queries, run.fn, query_options, pool.get()));
      for (size_t i = 0; i < results.size(); ++i) {
        const size_t index = run.begin + i;
        const uint64_t replayed = results[i].records.size();
        RecordOutcome({index, records[index].result_cardinality, replayed},
                      replayed == records[index].result_cardinality, &report);
      }
      report.path_agg_queries += results.size();
    }
    report.queries_replayed += run.end - run.begin;
  }
  return report;
}

}  // namespace colgraph
