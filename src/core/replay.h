// Workload replay (DESIGN.md §10): re-executes a captured query log
// against an engine and checks each query's result cardinality against
// the one recorded at capture time. The driver is tools/colgraph_replay;
// tests use it for the capture → replay round trip.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "obs/query_log.h"
#include "util/status.h"

namespace colgraph {

struct ReplayOptions {
  /// Worker threads for batch replay; <= 1 replays serially. Results are
  /// bit-identical either way (DESIGN.md §8).
  size_t num_threads = 1;
  /// Rewrite replayed queries against the engine's materialized views.
  /// Turning this off replays the baseline plans; cardinalities must not
  /// change either way (views are semantically transparent).
  bool use_views = true;
  /// Wall-clock budget for the whole replay, in milliseconds; 0 = no
  /// limit. Wired to the cooperative-cancellation support
  /// (QueryOptions::cancel), so a pathological query in a captured log
  /// cannot hang a replay: once the budget fires the replay aborts with
  /// Status::DeadlineExceeded.
  uint64_t timeout_ms = 0;
};

/// \brief Outcome of replaying one log.
struct ReplayReport {
  uint64_t queries_replayed = 0;
  uint64_t match_queries = 0;
  uint64_t path_agg_queries = 0;
  /// Queries whose replayed result cardinality differed from the logged
  /// one — data drift between capture and replay, or a broken log.
  uint64_t cardinality_mismatches = 0;

  struct Mismatch {
    size_t record_index = 0;  ///< position in the log
    uint64_t logged = 0;
    uint64_t replayed = 0;
  };
  /// First mismatches, capped (kMaxReportedMismatches) for reporting.
  std::vector<Mismatch> mismatches;

  static constexpr size_t kMaxReportedMismatches = 16;
};

/// \brief Replays `records` (a decoded query log, in order) against
/// `engine`. Consecutive same-kind queries are evaluated as one batch so
/// --threads exercises the same EvaluateBatch path the live workload used.
/// Returns an error only on evaluation failure; cardinality mismatches
/// are reported, not fatal (the caller decides the exit code).
[[nodiscard]] StatusOr<ReplayReport> ReplayQueryLog(
    const ColGraphEngine& engine,
    const std::vector<obs::QueryLogRecord>& records,
    const ReplayOptions& options = {});

}  // namespace colgraph
