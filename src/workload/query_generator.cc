#include "workload/query_generator.h"

#include <algorithm>
#include <unordered_set>

namespace colgraph {

QueryGenerator::QueryGenerator(
    const std::vector<std::vector<NodeRef>>* trunk_pool,
    const DirectedGraph* universe, uint64_t seed)
    : trunk_pool_(trunk_pool), universe_(universe), rng_(seed) {}

GraphQuery QueryGenerator::UniformPathQuery(const QueryGenOptions& options) {
  // Rejection-sample a trunk long enough for the requested subpath.
  const size_t want = rng_.Uniform(options.min_edges, options.max_edges);
  for (int attempt = 0; attempt < 256; ++attempt) {
    const auto& trunk = (*trunk_pool_)[rng_.Uniform(0, trunk_pool_->size() - 1)];
    if (trunk.size() < 2) continue;
    const size_t max_len = trunk.size() - 1;  // edges available
    const size_t len = std::min(want, max_len);
    if (len < options.min_edges && max_len >= options.min_edges) continue;
    const size_t start = rng_.Uniform(0, trunk.size() - 1 - len);
    std::vector<NodeRef> nodes(trunk.begin() + static_cast<long>(start),
                               trunk.begin() + static_cast<long>(start + len + 1));
    return GraphQuery::FromPath(nodes);
  }
  // Degenerate fallback: the longest available trunk as-is.
  const auto& trunk = trunk_pool_->front();
  return GraphQuery::FromPath(trunk);
}

std::vector<GraphQuery> QueryGenerator::UniformWorkload(
    size_t n, const QueryGenOptions& options) {
  std::vector<GraphQuery> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) workload.push_back(UniformPathQuery(options));
  return workload;
}

std::vector<GraphQuery> QueryGenerator::ZipfWorkload(
    size_t n, size_t pool_size, double theta, const QueryGenOptions& options) {
  std::vector<GraphQuery> pool = UniformWorkload(pool_size, options);
  ZipfSampler zipf(pool.size(), theta, rng_.Uniform(0, ~uint64_t{0} >> 1));
  std::vector<GraphQuery> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) workload.push_back(pool[zipf.Sample()]);
  return workload;
}

GraphQuery QueryGenerator::StructuralQuery(size_t num_edges) {
  // Start only where a first hop exists (the universe subgraph has sinks).
  std::vector<NodeRef> nodes;
  for (const NodeRef& n : universe_->nodes()) {
    if (universe_->OutDegree(n) > 0) nodes.push_back(n);
  }
  DirectedGraph g;
  std::unordered_set<NodeRef, NodeRefHash> visited;
  std::vector<NodeRef> visited_order;
  auto visit = [&](NodeRef n) {
    if (visited.insert(n).second) visited_order.push_back(n);
  };
  NodeRef here = nodes[rng_.Uniform(0, nodes.size() - 1)];
  visit(here);
  while (g.num_edges() < num_edges) {
    std::vector<NodeRef> candidates;
    for (const NodeRef& n : universe_->OutNeighbors(here)) {
      if (!visited.count(n)) candidates.push_back(n);
    }
    if (candidates.empty()) {
      NodeRef branch{};
      bool found = false;
      std::vector<size_t> order(visited_order.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng_.Shuffle(&order);
      for (size_t idx : order) {
        for (const NodeRef& n : universe_->OutNeighbors(visited_order[idx])) {
          if (!visited.count(n)) {
            branch = visited_order[idx];
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) break;  // universe exhausted
      here = branch;
      continue;
    }
    const NodeRef next = candidates[rng_.Uniform(0, candidates.size() - 1)];
    g.AddEdge(here, next);
    visit(next);
    here = next;
  }
  return GraphQuery(std::move(g));
}

std::vector<GraphQuery> QueryGenerator::StructuralWorkload(size_t n,
                                                           size_t num_edges) {
  std::vector<GraphQuery> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) workload.push_back(StructuralQuery(num_edges));
  return workload;
}

}  // namespace colgraph
