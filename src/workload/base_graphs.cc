#include "workload/base_graphs.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/random.h"

namespace colgraph {

DirectedGraph MakeRoadNetwork(size_t width, size_t height) {
  DirectedGraph g;
  auto node = [width](size_t x, size_t y) {
    return NodeRef{static_cast<NodeId>(y * width + x), 0};
  };
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        g.AddEdge(node(x, y), node(x + 1, y));
        g.AddEdge(node(x + 1, y), node(x, y));
      }
      if (y + 1 < height) {
        g.AddEdge(node(x, y), node(x, y + 1));
        g.AddEdge(node(x, y + 1), node(x, y));
      }
    }
  }
  return g;
}

DirectedGraph MakePowerLawNetwork(size_t num_nodes, size_t edges_per_node,
                                  uint64_t seed) {
  DirectedGraph g;
  Rng rng(seed);
  // Endpoint pool: nodes appear once per incident edge, so sampling from
  // the pool is degree-proportional (preferential attachment).
  std::vector<NodeId> endpoint_pool;
  // Seed clique among the first few nodes.
  const size_t seed_nodes = std::max<size_t>(edges_per_node + 1, 2);
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = 0; v < seed_nodes; ++v) {
      if (u == v) continue;
      g.AddEdge(NodeRef{u, 0}, NodeRef{v, 0});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (NodeId u = static_cast<NodeId>(seed_nodes); u < num_nodes; ++u) {
    std::unordered_set<NodeId> chosen;
    while (chosen.size() < edges_per_node && chosen.size() < u) {
      const NodeId target =
          endpoint_pool[rng.Uniform(0, endpoint_pool.size() - 1)];
      if (target == u) continue;
      chosen.insert(target);
    }
    for (NodeId v : chosen) {
      // p2p links are symmetric: connections carry traffic both ways.
      g.AddEdge(NodeRef{u, 0}, NodeRef{v, 0});
      g.AddEdge(NodeRef{v, 0}, NodeRef{u, 0});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  return g;
}

StatusOr<DirectedGraph> SelectEdgeUniverse(const DirectedGraph& base,
                                           size_t num_edges, uint64_t seed) {
  if (base.num_edges() < num_edges) {
    return Status::InvalidArgument(
        "base network has only " + std::to_string(base.num_edges()) +
        " edges; cannot select a universe of " + std::to_string(num_edges));
  }
  Rng rng(seed);
  const auto& nodes = base.nodes();
  DirectedGraph universe;
  // Randomized DFS edge collection from a random start node (depth-first
  // keeps the sub-universe path-rich even on hub-dominated power-law
  // graphs); restarts from a fresh random node if the component is
  // exhausted early.
  std::unordered_set<NodeRef, NodeRefHash> enqueued;
  std::deque<NodeRef> frontier;
  auto push_random_start = [&]() {
    for (int attempts = 0; attempts < 64; ++attempts) {
      const NodeRef start = nodes[rng.Uniform(0, nodes.size() - 1)];
      if (enqueued.insert(start).second) {
        frontier.push_back(start);
        return true;
      }
    }
    return false;
  };
  if (!push_random_start()) {
    return Status::Internal("failed to pick a start node");
  }
  while (universe.num_edges() < num_edges) {
    if (frontier.empty()) {
      if (!push_random_start()) break;
      continue;
    }
    const NodeRef here = frontier.back();
    frontier.pop_back();
    std::vector<NodeRef> neighbors = base.OutNeighbors(here);
    rng.Shuffle(&neighbors);
    for (const NodeRef& next : neighbors) {
      if (universe.num_edges() >= num_edges) break;
      universe.AddEdge(here, next);
      if (enqueued.insert(next).second) frontier.push_back(next);
    }
  }
  if (universe.num_edges() < num_edges) {
    return Status::Internal("could not grow the universe to the target size");
  }
  return universe;
}

}  // namespace colgraph
