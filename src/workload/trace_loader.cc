#include "workload/trace_loader.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "columnstore/io_util.h"
#include "util/failpoint.h"

namespace colgraph {

StatusOr<std::vector<WalkTrace>> ParseTraces(std::istream& in) {
  std::vector<WalkTrace> traces;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.size() > kMaxTraceLineBytes) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     " exceeds " +
                                     std::to_string(kMaxTraceLineBytes) +
                                     " bytes");
    }
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);

    const auto bar = line.find('|');
    std::istringstream nodes_in(
        bar == std::string::npos ? line : line.substr(0, bar));

    WalkTrace trace;
    uint64_t node = 0;
    while (nodes_in >> node) {
      trace.walk.push_back(static_cast<NodeId>(node));
      if (trace.walk.size() > kMaxTraceWalkNodes) {
        return Status::InvalidArgument(
            "walk exceeds " + std::to_string(kMaxTraceWalkNodes) +
            " nodes on line " + std::to_string(line_number));
      }
    }
    if (!nodes_in.eof()) {
      return Status::InvalidArgument("malformed node id on line " +
                                     std::to_string(line_number));
    }
    if (trace.walk.empty()) continue;  // blank / comment-only line
    if (trace.walk.size() < 2) {
      return Status::InvalidArgument("walk needs at least two nodes on line " +
                                     std::to_string(line_number));
    }

    if (bar != std::string::npos) {
      std::istringstream measures_in(line.substr(bar + 1));
      double value = 0;
      while (measures_in >> value) {
        if (!std::isfinite(value)) {
          return Status::InvalidArgument("non-finite measure on line " +
                                         std::to_string(line_number));
        }
        trace.measures.push_back(value);
      }
      if (!measures_in.eof()) {
        return Status::InvalidArgument("malformed measure on line " +
                                       std::to_string(line_number));
      }
      if (trace.measures.size() != trace.walk.size() - 1) {
        return Status::InvalidArgument(
            "expected " + std::to_string(trace.walk.size() - 1) +
            " measures on line " + std::to_string(line_number) + ", got " +
            std::to_string(trace.measures.size()));
      }
    } else {
      trace.measures.assign(trace.walk.size() - 1, 1.0);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

StatusOr<std::vector<WalkTrace>> LoadTraceFile(const std::string& path) {
  COLGRAPH_ASSIGN_OR_RETURN(auto in, io::OpenTextForRead(path));
  return ParseTraces(in);
}

StatusOr<size_t> IngestTraceFile(ColGraphEngine* engine,
                                 const std::string& path) {
  COLGRAPH_ASSIGN_OR_RETURN(std::vector<WalkTrace> traces,
                            LoadTraceFile(path));
  // All-or-nothing: apply every walk to a staged copy first, so a failure
  // mid-file (a rejected walk, an injected fault) cannot leave the live
  // engine with half the records or a partially grown edge catalog.
  ColGraphEngine staged = *engine;
  for (const WalkTrace& t : traces) {
    COLGRAPH_FAILPOINT("trace:add_walk");
    COLGRAPH_RETURN_NOT_OK(staged.AddWalk(t.walk, t.measures).status());
  }
  COLGRAPH_FAILPOINT("trace:before_commit");
  *engine = std::move(staged);
  return traces.size();
}

}  // namespace colgraph
