#include "workload/trace_loader.h"

#include <fstream>
#include <sstream>

namespace colgraph {

StatusOr<std::vector<WalkTrace>> ParseTraces(std::istream& in) {
  std::vector<WalkTrace> traces;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);

    const auto bar = line.find('|');
    std::istringstream nodes_in(
        bar == std::string::npos ? line : line.substr(0, bar));

    WalkTrace trace;
    uint64_t node = 0;
    while (nodes_in >> node) {
      trace.walk.push_back(static_cast<NodeId>(node));
    }
    if (!nodes_in.eof()) {
      return Status::InvalidArgument("malformed node id on line " +
                                     std::to_string(line_number));
    }
    if (trace.walk.empty()) continue;  // blank / comment-only line
    if (trace.walk.size() < 2) {
      return Status::InvalidArgument("walk needs at least two nodes on line " +
                                     std::to_string(line_number));
    }

    if (bar != std::string::npos) {
      std::istringstream measures_in(line.substr(bar + 1));
      double value = 0;
      while (measures_in >> value) trace.measures.push_back(value);
      if (!measures_in.eof()) {
        return Status::InvalidArgument("malformed measure on line " +
                                       std::to_string(line_number));
      }
      if (trace.measures.size() != trace.walk.size() - 1) {
        return Status::InvalidArgument(
            "expected " + std::to_string(trace.walk.size() - 1) +
            " measures on line " + std::to_string(line_number) + ", got " +
            std::to_string(trace.measures.size()));
      }
    } else {
      trace.measures.assign(trace.walk.size() - 1, 1.0);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

StatusOr<std::vector<WalkTrace>> LoadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open trace file: " + path);
  return ParseTraces(in);
}

StatusOr<size_t> IngestTraceFile(ColGraphEngine* engine,
                                 const std::string& path) {
  COLGRAPH_ASSIGN_OR_RETURN(std::vector<WalkTrace> traces,
                            LoadTraceFile(path));
  for (const WalkTrace& t : traces) {
    COLGRAPH_RETURN_NOT_OK(engine->AddWalk(t.walk, t.measures).status());
  }
  return traces.size();
}

}  // namespace colgraph
