// Synthetic base networks standing in for the paper's datasets (the
// download links are long dead and the environment is offline):
//   NY  — the New York road network   -> a 2-D grid road network
//   GNU — the Gnutella p2p snapshot   -> a preferential-attachment graph
// Records are random walks over a fixed sub-universe of these networks,
// exactly as the paper synthesizes millions of records from each base
// graph (Section 7.1, Table 2).
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace colgraph {

/// \brief Builds a width x height grid road network: every cell is an
/// intersection, adjacent intersections are connected by road segments in
/// both directions (two directed edges).
DirectedGraph MakeRoadNetwork(size_t width, size_t height);

/// \brief Builds a directed preferential-attachment (Barabási–Albert
/// style) network of `num_nodes` nodes, each new node attaching
/// `edges_per_node` out-edges to degree-biased targets — the heavy-tailed
/// degree profile of a p2p overlay like Gnutella.
DirectedGraph MakePowerLawNetwork(size_t num_nodes, size_t edges_per_node,
                                  uint64_t seed);

/// \brief Restricts a base network to a connected sub-universe with
/// exactly `num_edges` distinct edges (the paper's "distinct number of
/// edge ids", 1000 by default; up to 100K in the sensitivity tests).
///
/// Grown by a randomized BFS over the base graph from a random start, so
/// walks inside the sub-universe stay inside it.
StatusOr<DirectedGraph> SelectEdgeUniverse(const DirectedGraph& base,
                                           size_t num_edges, uint64_t seed);

}  // namespace colgraph
