// Query-workload synthesis (Section 7.1): query graphs are drawn "from the
// set of paths resulting from the random walk processes", either uniformly
// or Zipf-distributed (skew increases structural sharing among queries,
// Figure 8). Structural sweeps (Figures 3b/3c) additionally need query
// graphs of a controlled size that are not tied to any record.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace colgraph {

struct QueryGenOptions {
  size_t min_edges = 3;
  size_t max_edges = 12;
};

/// \brief Generates query workloads.
class QueryGenerator {
 public:
  /// \param trunk_pool paths taken by actual records (from
  ///        WalkRecordGenerator::Next), so sampled queries hit data
  /// \param universe   the edge universe (for structural queries)
  QueryGenerator(const std::vector<std::vector<NodeRef>>* trunk_pool,
                 const DirectedGraph* universe, uint64_t seed);

  /// One path query: a uniformly random subpath (of the requested length)
  /// of a uniformly random record trunk.
  GraphQuery UniformPathQuery(const QueryGenOptions& options);

  /// `n` uniform path queries.
  std::vector<GraphQuery> UniformWorkload(size_t n,
                                          const QueryGenOptions& options);

  /// `n` Zipf-distributed path queries: a pool of `pool_size` distinct
  /// path queries is drawn first, then sampled with skew `theta`
  /// (duplicates model hot queries).
  std::vector<GraphQuery> ZipfWorkload(size_t n, size_t pool_size,
                                       double theta,
                                       const QueryGenOptions& options);

  /// A structural query of exactly `num_edges` edges: a branching
  /// self-avoiding walk over the universe (same shape as records), not
  /// tied to any record — selectivity falls naturally with size (Fig 3b).
  GraphQuery StructuralQuery(size_t num_edges);

  std::vector<GraphQuery> StructuralWorkload(size_t n, size_t num_edges);

 private:
  const std::vector<std::vector<NodeRef>>* trunk_pool_;
  const DirectedGraph* universe_;
  Rng rng_;
};

}  // namespace colgraph
