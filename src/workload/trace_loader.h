// Text trace loader: ingests walk records from the simple line format
//
//   <node> <node> ... <node> [ | <measure> <measure> ... ]
//
// one record per line; '#' starts a comment; a walk of n nodes takes n-1
// measures (one per hop). Lines without the '|' section get measure 1.0
// per hop (pure structural traces, e.g. click streams). This is the
// ingestion path a deployment would feed from its RFID/workflow logs.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

namespace colgraph {

struct WalkTrace {
  std::vector<NodeId> walk;
  std::vector<double> measures;  // one per hop
};

/// Ingest limits: a garbage or hostile trace file must not balloon memory,
/// so lines and walks are capped. Real RFID/workflow traces sit orders of
/// magnitude below both.
inline constexpr size_t kMaxTraceLineBytes = size_t{1} << 20;  // 1 MiB
inline constexpr size_t kMaxTraceWalkNodes = size_t{1} << 16;  // 65536 hops

/// Parses every record in the stream. Fails with a line-annotated
/// InvalidArgument on malformed input: garbage tokens, measure-count
/// mismatches, non-finite measures (NaN / ±inf), over-long lines, and
/// walks above kMaxTraceWalkNodes are all rejected.
StatusOr<std::vector<WalkTrace>> ParseTraces(std::istream& in);

/// Loads a trace file from disk.
StatusOr<std::vector<WalkTrace>> LoadTraceFile(const std::string& path);

/// Parses `path` and ingests every record into `engine` (which must be
/// unsealed). Returns the number of records added. All-or-nothing: the
/// records are staged and committed only after every walk has been
/// validated and applied — on any failure `engine` (records, catalog,
/// universe) is left exactly as it was. Failpoints: "trace:open",
/// "trace:add_walk", "trace:before_commit".
StatusOr<size_t> IngestTraceFile(ColGraphEngine* engine,
                                 const std::string& path);

}  // namespace colgraph
