// Text trace loader: ingests walk records from the simple line format
//
//   <node> <node> ... <node> [ | <measure> <measure> ... ]
//
// one record per line; '#' starts a comment; a walk of n nodes takes n-1
// measures (one per hop). Lines without the '|' section get measure 1.0
// per hop (pure structural traces, e.g. click streams). This is the
// ingestion path a deployment would feed from its RFID/workflow logs.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

namespace colgraph {

struct WalkTrace {
  std::vector<NodeId> walk;
  std::vector<double> measures;  // one per hop
};

/// Parses every record in the stream. Fails with a line-annotated message
/// on malformed input.
StatusOr<std::vector<WalkTrace>> ParseTraces(std::istream& in);

/// Loads a trace file from disk.
StatusOr<std::vector<WalkTrace>> LoadTraceFile(const std::string& path);

/// Parses `path` and ingests every record into `engine` (which must be
/// unsealed). Returns the number of records added.
StatusOr<size_t> IngestTraceFile(ColGraphEngine* engine,
                                 const std::string& path);

}  // namespace colgraph
