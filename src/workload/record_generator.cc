#include "workload/record_generator.h"

#include <algorithm>
#include <unordered_set>

namespace colgraph {

WalkRecordGenerator::WalkRecordGenerator(const DirectedGraph* universe,
                                         RecordGenOptions options,
                                         uint64_t seed)
    : universe_(universe), options_(options), rng_(seed) {
  // Walks must start somewhere they can take a first step: a universe
  // subgraph has sink nodes (edges cut by the BFS selection).
  for (const NodeRef& n : universe->nodes()) {
    if (universe->OutDegree(n) > 0) starts_.push_back(n);
  }
}

GraphRecord WalkRecordGenerator::Next(std::vector<NodeRef>* trunk) {
  // Universe subgraphs can contain small pockets that strand a walk below
  // min_edges; retry from fresh starts and keep the largest attempt.
  GraphRecord best;
  std::vector<NodeRef> best_trunk;
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<NodeRef> attempt_trunk;
    GraphRecord candidate = GenerateOnce(&attempt_trunk);
    if (candidate.elements.size() >= best.elements.size()) {
      best = std::move(candidate);
      best_trunk = std::move(attempt_trunk);
    }
    if (best.elements.size() >= options_.min_edges) break;
  }
  best.id = next_id_++;
  if (trunk != nullptr) *trunk = std::move(best_trunk);
  return best;
}

GraphRecord WalkRecordGenerator::GenerateOnce(std::vector<NodeRef>* trunk) {
  const auto& nodes = universe_->nodes();
  size_t target = 0;
  for (size_t d = 0; d < std::max<size_t>(1, options_.size_draws); ++d) {
    target = std::max(target,
                      rng_.Uniform(options_.min_edges, options_.max_edges));
  }

  GraphRecord record;

  std::unordered_set<NodeRef, NodeRefHash> visited;
  // Visited nodes that may still have an unvisited out-neighbor. Stuck
  // walks branch from a random pool entry; exhausted entries are evicted
  // lazily (swap-remove), so every node enters and leaves the pool at most
  // once — amortized O(degree) per node instead of a rescan of the whole
  // visited set per stuck event.
  std::vector<NodeRef> open_pool;
  // The record grows as a tree rooted at the start; parent/depth let us
  // extract the *trunk* — the longest root-to-leaf path — afterwards.
  // (Self-avoiding walks die after one hop near the leaves of a power-law
  // universe, so the deepest tree path is the robust notion of trunk.)
  std::unordered_map<NodeRef, NodeRef, NodeRefHash> parent;
  std::unordered_map<NodeRef, size_t, NodeRefHash> depth;

  auto add_edge = [&](NodeRef from, NodeRef to) {
    record.elements.push_back(Edge{from, to});
    record.measures.push_back(
        rng_.UniformReal(options_.measure_lo, options_.measure_hi));
    parent[to] = from;
    depth[to] = depth[from] + 1;
  };
  auto visit = [&](NodeRef n) {
    if (visited.insert(n).second) {
      if (universe_->OutDegree(n) > 0) open_pool.push_back(n);
    }
  };
  auto unvisited_neighbor = [&](NodeRef n, NodeRef* out) {
    // Reservoir-sample one unvisited out-neighbor uniformly.
    size_t seen = 0;
    for (const NodeRef& m : universe_->OutNeighbors(n)) {
      if (visited.count(m)) continue;
      ++seen;
      if (rng_.Uniform(1, seen) == 1) *out = m;
    }
    return seen > 0;
  };

  (void)nodes;
  NodeRef here = starts_[rng_.Uniform(0, starts_.size() - 1)];
  const NodeRef root = here;
  visit(here);
  depth[here] = 0;
  while (record.elements.size() < target) {
    NodeRef next{};
    if (!unvisited_neighbor(here, &next)) {
      // Stuck: branch from a random still-open visited node.
      bool found = false;
      while (!open_pool.empty()) {
        const size_t idx = rng_.Uniform(0, open_pool.size() - 1);
        if (unvisited_neighbor(open_pool[idx], &next)) {
          here = open_pool[idx];
          found = true;
          break;
        }
        std::swap(open_pool[idx], open_pool.back());
        open_pool.pop_back();
      }
      if (!found) break;  // universe exhausted; accept a shorter record
    }
    add_edge(here, next);
    visit(next);
    here = next;
  }

  if (trunk != nullptr) {
    // Deepest node, then walk the parent chain back to the root.
    NodeRef deepest = root;
    for (const auto& [node, d] : depth) {
      if (d > depth[deepest]) deepest = node;
    }
    trunk->clear();
    for (NodeRef n = deepest;; n = parent.at(n)) {
      trunk->push_back(n);
      if (depth[n] == 0) break;
    }
    std::reverse(trunk->begin(), trunk->end());
  }
  return record;
}

}  // namespace colgraph
