// Graph-record synthesis (Section 7.1): records are random walks over the
// selected edge universe, annotated with random real measures. The walks
// are self-avoiding with branching restarts, so every record is a DAG with
// distinct edges (no flattening needed) whose trunk is a genuine path —
// the population the paper draws its query paths from.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace colgraph {

struct RecordGenOptions {
  /// Record size bounds in edges (Table 2: NY 35..100, GNU 45..100).
  size_t min_edges = 35;
  size_t max_edges = 100;
  /// Measure value range (uniform reals).
  double measure_lo = 0.0;
  double measure_hi = 100.0;
  /// Size-distribution skew: the target length is the max of this many
  /// uniform draws. 1 = uniform (mean 67.5 for 35..100); 3 skews toward
  /// larger records (mean ~84, matching the paper's NY average of 85).
  size_t size_draws = 1;
};

/// \brief Generates graph records by branching self-avoiding walks over a
/// fixed universe graph.
class WalkRecordGenerator {
 public:
  /// `universe` must outlive the generator.
  WalkRecordGenerator(const DirectedGraph* universe, RecordGenOptions options,
                      uint64_t seed);

  /// Produces the next record. When `trunk` is non-null it receives the
  /// record's trunk path (the maximal self-avoiding walk the record grew
  /// from), which the query generators sample subpaths of.
  GraphRecord Next(std::vector<NodeRef>* trunk = nullptr);

 private:
  /// One walk attempt; Next() retries when a pocket strands it too short.
  GraphRecord GenerateOnce(std::vector<NodeRef>* trunk);

  const DirectedGraph* universe_;
  RecordGenOptions options_;
  Rng rng_;
  RecordId next_id_ = 0;
  std::vector<NodeRef> starts_;  // nodes with out-degree > 0
};

}  // namespace colgraph
