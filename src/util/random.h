// Deterministic pseudo-random utilities used by workload generators and
// tests. All generators are seeded explicitly so every experiment is
// reproducible run-to-run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace colgraph {

/// \brief Seedable RNG wrapper with the sampling helpers the workload
/// generators need (uniform ints/reals, Bernoulli, shuffles).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    std::uniform_int_distribution<uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Zipf(s, n) sampler over {0, ..., n-1} (rank 0 is the most
/// frequent). Uses an inverse-CDF table; construction is O(n), sampling is
/// O(log n). Used to generate skewed query workloads (Figure 8).
class ZipfSampler {
 public:
  /// \param n      domain size (must be >= 1)
  /// \param theta  skew parameter; 0 degenerates to uniform
  /// \param seed   RNG seed
  ZipfSampler(size_t n, double theta, uint64_t seed);

  /// Draw one sample in [0, n).
  size_t Sample();

  size_t domain_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::mt19937_64 engine_;
};

}  // namespace colgraph
