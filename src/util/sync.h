// Annotated synchronization primitives (DESIGN.md §11) — the only place in
// src/ allowed to touch std::mutex / std::condition_variable (repo lint
// rule [no-raw-mutex]). Every lock in the library is a colgraph::Mutex so
// that
//
//   1. *Clang Thread Safety Analysis* can prove lock discipline at compile
//      time: shared state is COLGRAPH_GUARDED_BY its Mutex, cross-function
//      lock contracts are spelled with COLGRAPH_REQUIRES / COLGRAPH_ACQUIRE
//      / COLGRAPH_RELEASE in signatures, and the COLGRAPH_STRICT preset
//      promotes -Wthread-safety to an error on Clang. On other compilers
//      the annotation macros expand to nothing.
//   2. *Deadlock ordering is checkable at runtime* in debug builds: a Mutex
//      may be constructed with a rank, and acquiring a ranked Mutex while
//      holding one of equal or higher rank is a COLGRAPH_DCHECK failure —
//      the canonical lock-order-inversion bug fails fast on the first
//      out-of-order acquisition instead of deadlocking once in production.
//      Double-acquire and unlock-without-lock are DCHECKed for every Mutex,
//      ranked or not. All of this compiles to nothing in NDEBUG builds.
//
// The analysis is only as good as the annotations: when adding a class with
// shared state, declare the Mutex last among the members it guards (so the
// guarded fields can name it), mark every shared field COLGRAPH_GUARDED_BY,
// and annotate private helpers that expect the lock held with
// COLGRAPH_REQUIRES(mu_) rather than re-locking. See DESIGN.md §11 for a
// worked example and tests/negcompile/ for the misuses the analysis must
// reject.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "util/check.h"

// Clang Thread Safety Analysis attributes. Expand to nothing on compilers
// without the analysis so the annotations cost nothing off-Clang.
#if defined(__clang__)
#define COLGRAPH_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define COLGRAPH_THREAD_ANNOTATION__(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define COLGRAPH_CAPABILITY(x) COLGRAPH_THREAD_ANNOTATION__(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define COLGRAPH_SCOPED_CAPABILITY \
  COLGRAPH_THREAD_ANNOTATION__(scoped_lockable)
/// Data member readable/writable only while holding the given capability.
#define COLGRAPH_GUARDED_BY(x) COLGRAPH_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the given capability.
#define COLGRAPH_PT_GUARDED_BY(x) \
  COLGRAPH_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Static acquisition-order hints between mutexes.
#define COLGRAPH_ACQUIRED_BEFORE(...) \
  COLGRAPH_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define COLGRAPH_ACQUIRED_AFTER(...) \
  COLGRAPH_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
/// The function must be called with the capability held (and does not
/// release it) — the cross-function lock contract, e.g. FlushLocked().
#define COLGRAPH_REQUIRES(...) \
  COLGRAPH_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define COLGRAPH_REQUIRES_SHARED(...) \
  COLGRAPH_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
/// The function acquires / releases the capability.
#define COLGRAPH_ACQUIRE(...) \
  COLGRAPH_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define COLGRAPH_RELEASE(...) \
  COLGRAPH_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// The function acquires the capability when it returns the given value.
#define COLGRAPH_TRY_ACQUIRE(...) \
  COLGRAPH_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// The function must be called *without* the capability held (it acquires
/// the lock itself; calling it while holding is a self-deadlock).
#define COLGRAPH_EXCLUDES(...) \
  COLGRAPH_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held; informs the analysis.
#define COLGRAPH_ASSERT_CAPABILITY(x) \
  COLGRAPH_THREAD_ANNOTATION__(assert_capability(x))
/// The function returns a reference to the given capability.
#define COLGRAPH_RETURN_CAPABILITY(x) \
  COLGRAPH_THREAD_ANNOTATION__(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Use only where the
/// discipline is intentionally violated (tests of the runtime DCHECKs) or
/// provably safe in a way the analysis cannot see; leave a comment saying
/// which.
#define COLGRAPH_NO_THREAD_SAFETY_ANALYSIS \
  COLGRAPH_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace colgraph {

class CondVar;

namespace sync_internal {

// Per-thread stack of held Mutexes (debug builds only). Bounded: the
// library never holds more than two locks at once; 16 leaves headroom for
// tests.
inline constexpr size_t kMaxHeldLocks = 16;

struct HeldLocks {
  const void* mutex[kMaxHeldLocks] = {};
  uint32_t rank[kMaxHeldLocks] = {};
  size_t count = 0;
};

inline HeldLocks& ThreadHeldLocks() {
  thread_local HeldLocks held;
  return held;
}

}  // namespace sync_internal

/// \brief Exclusive mutex with thread-safety annotations and (debug-only)
/// rank-ordered deadlock checking.
///
/// Ranks: a Mutex constructed with a rank participates in a global
/// acquisition order — a thread may only acquire a ranked Mutex whose rank
/// is strictly greater than every ranked Mutex it already holds (so two
/// same-rank mutexes must never be held together). Unranked mutexes (the
/// default) skip the ordering check but still get double-acquire and
/// unlock-without-lock DCHECKs.
class COLGRAPH_CAPABILITY("mutex") Mutex {
 public:
  /// Sentinel rank: excluded from ordering checks.
  static constexpr uint32_t kNoRank = UINT32_MAX;

  Mutex() = default;
  explicit Mutex(uint32_t rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() COLGRAPH_ACQUIRE() {
    DebugCheckAcquire(/*blocking=*/true);
    mu_.lock();
    DebugPushHeld();
  }

  /// Non-blocking acquire; true means the lock is now held. Exempt from the
  /// rank-order DCHECK (a failed try_lock cannot deadlock), but
  /// double-acquire is still checked (try_lock on a held std::mutex is UB).
  [[nodiscard]] bool TryLock() COLGRAPH_TRY_ACQUIRE(true) {
    DebugCheckAcquire(/*blocking=*/false);
    if (!mu_.try_lock()) return false;
    DebugPushHeld();
    return true;
  }

  void Unlock() COLGRAPH_RELEASE() {
    DebugPopHeld();
    mu_.unlock();
  }

  /// DCHECKs that the calling thread holds this Mutex (debug builds), and
  /// tells the analysis to assume it from here on — for functions reached
  /// only with the lock held through a path the analysis cannot follow.
  void AssertHeld() const COLGRAPH_ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    const sync_internal::HeldLocks& held = sync_internal::ThreadHeldLocks();
    bool found = false;
    for (size_t i = 0; i < held.count; ++i) {
      if (held.mutex[i] == this) found = true;
    }
    COLGRAPH_DCHECK(found)
        << "Mutex::AssertHeld: mutex not held by this thread";
#endif
  }

  uint32_t rank() const { return rank_; }

 private:
  friend class CondVar;

  void DebugCheckAcquire(bool blocking) {
#ifndef NDEBUG
    const sync_internal::HeldLocks& held = sync_internal::ThreadHeldLocks();
    for (size_t i = 0; i < held.count; ++i) {
      COLGRAPH_DCHECK(held.mutex[i] != this)
          << "Mutex double-acquire: this mutex is already held by the "
             "calling thread";
      if (blocking && rank_ != kNoRank && held.rank[i] != kNoRank) {
        COLGRAPH_DCHECK(held.rank[i] < rank_)
            << "lock rank ordering violated: acquiring a Mutex of rank "
            << rank_ << " while holding one of rank " << held.rank[i]
            << " (ranked locks must be acquired in strictly increasing "
               "rank order)";
      }
    }
#else
    (void)blocking;
#endif
  }

  void DebugPushHeld() {
#ifndef NDEBUG
    sync_internal::HeldLocks& held = sync_internal::ThreadHeldLocks();
    COLGRAPH_DCHECK(held.count < sync_internal::kMaxHeldLocks)
        << "too many locks held by one thread";
    held.mutex[held.count] = this;
    held.rank[held.count] = rank_;
    ++held.count;
#endif
  }

  void DebugPopHeld() {
#ifndef NDEBUG
    sync_internal::HeldLocks& held = sync_internal::ThreadHeldLocks();
    // Search from the top: locks release in LIFO order in practice, but
    // out-of-order release is legal.
    for (size_t i = held.count; i > 0; --i) {
      if (held.mutex[i - 1] == this) {
        for (size_t j = i - 1; j + 1 < held.count; ++j) {
          held.mutex[j] = held.mutex[j + 1];
          held.rank[j] = held.rank[j + 1];
        }
        --held.count;
        return;
      }
    }
    COLGRAPH_DCHECK(false)
        << "Mutex::Unlock: mutex not held by the calling thread";
#endif
  }

  std::mutex mu_;
  const uint32_t rank_ = kNoRank;
};

/// \brief RAII lock: acquires in the constructor, releases in the
/// destructor. The one sanctioned way to hold a Mutex for a scope.
class COLGRAPH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COLGRAPH_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() COLGRAPH_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with Mutex. Wait() must be called with
/// the Mutex held (spelled in the signature, so the analysis enforces it);
/// the wait releases the lock while blocked and reacquires before
/// returning, like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups are possible — callers loop on
  /// their predicate (or use the predicate overload).
  void Wait(Mutex& mu) COLGRAPH_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the caller's MutexLock remains the
    // owner. The debug held-stack keeps listing `mu` during the wait: the
    // waiting thread still logically holds it on return, and other
    // threads' acquisitions are tracked on their own stacks.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `pred()` holds. `pred` runs with the Mutex held; if it
  /// reads COLGRAPH_GUARDED_BY state, hand-roll the loop with the plain
  /// Wait() instead (the analysis cannot see through the callable) or
  /// annotate the lambda COLGRAPH_NO_THREAD_SAFETY_ANALYSIS.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) COLGRAPH_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Blocks until notified or `ms` milliseconds elapse, whichever comes
  /// first. Returns true when woken by a notification, false on timeout.
  /// Subject to spurious wakeups like Wait() — callers re-check their
  /// predicate either way. The sanctioned periodic-background-work wait
  /// (e.g. the metrics exporter): interruptible by NotifyAll on shutdown,
  /// no polling loop.
  bool WaitForMs(Mutex& mu, uint64_t ms) COLGRAPH_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(native, std::chrono::milliseconds(ms));
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace colgraph
