#include "util/status.h"

namespace colgraph {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(state_->code);
  if (!state_->message.empty()) {
    result += ": ";
    result += state_->message;
  }
  return result;
}

}  // namespace colgraph
