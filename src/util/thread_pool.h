// Fixed-size worker pool with a blocking, error-propagating ParallelFor —
// the single concurrency primitive of the codebase (the repo lint bans raw
// std::thread everywhere else in src/). Design goals, in order:
//
//   1. *Determinism*: parallel sections write into pre-sized, index-addressed
//      output slots and never append, so results are bit-identical to serial
//      execution regardless of the worker count. A pool constructed with 0
//      workers ("serial mode") runs everything inline on the calling thread
//      in ascending chunk order — inject it in tests to get a deterministic
//      schedule through the exact same code path.
//   2. *Error propagation*: ParallelFor returns the Status of the failing
//      chunk with the lowest index (deterministic across thread counts);
//      exceptions escaping a task are captured and converted to
//      Status::Internal. An error never deadlocks the pool: the remaining
//      chunks still run, the call always returns, and outputs are only
//      meaningful when the returned Status is OK.
//   3. *No oversubscription*: the calling thread participates in chunk
//      execution, so a ParallelFor makes progress even when every worker is
//      busy with other callers' chunks. Nested ParallelFor on the same pool
//      is rejected with a DCHECK (and degrades to inline serial execution in
//      NDEBUG builds rather than risking a queue deadlock).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/sync.h"

namespace colgraph {

/// \brief Fixed-size thread pool. Construct once, share freely: Schedule and
/// ParallelFor are thread-safe and may be called concurrently from any
/// number of threads.
class ThreadPool {
 public:
  /// A chunk task: processes the half-open index range [begin, end).
  using ChunkFn = std::function<Status(size_t begin, size_t end)>;

  /// Spawns `num_threads` workers; 0 creates a *serial* pool that executes
  /// everything inline on the calling thread (deterministic order).
  explicit ThreadPool(size_t num_threads);

  /// Drains every scheduled task, then joins the workers. Tasks scheduled
  /// before destruction are guaranteed to run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }
  /// True for a 0-worker pool: all execution is inline and deterministic.
  bool serial() const { return workers_.empty(); }

  /// Runs `fn` over [begin, end) in chunks of `grain` indices, blocking
  /// until every chunk finished (or was drained after an error). `grain` of
  /// 0 picks a chunk size that yields ~4 chunks per executor. Returns OK,
  /// or the error of the lowest-indexed failing chunk.
  ///
  /// Must not be called from inside a task of the same pool (DCHECK; inline
  /// serial fallback in NDEBUG builds).
  [[nodiscard]] Status ParallelFor(size_t begin, size_t end, size_t grain,
                                   const ChunkFn& fn);

  /// Enqueues one fire-and-forget task (runs inline on a serial pool).
  void Schedule(std::function<void()> task);

  /// Worker count matching the machine (>= 1).
  static size_t DefaultThreadCount();

 private:
  struct ParallelForJob;

  void WorkerLoop();
  /// Claims and runs chunks of `job` until none remain.
  static void RunChunks(ParallelForJob* job);
  /// Runs one chunk, converting escaping exceptions to Status.
  static Status RunOneChunk(const ChunkFn& fn, size_t begin, size_t end);

  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ COLGRAPH_GUARDED_BY(mu_);
  bool stopping_ COLGRAPH_GUARDED_BY(mu_) = false;
  // Written only by the constructor, before any worker or caller can race.
  std::vector<std::thread> workers_;
};

/// Pool-optional helper used by the engine layers: a null pool means serial
/// inline execution (identical chunking, error and exception semantics via a
/// shared code path). This is the injectable "serial mode" every parallel
/// call site supports.
[[nodiscard]] Status ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                                 size_t grain, const ThreadPool::ChunkFn& fn);

}  // namespace colgraph
