// Cooperative cancellation for long-running work (DESIGN.md §12): a
// CancellationToken combines an optional absolute deadline with a manual
// cancel flag. The owner of the work (a serving request handler, a bench
// harness with --timeout-ms) creates the token; the evaluation loops it is
// threaded through (QueryOptions::cancel) poll Check() at natural
// boundaries and abandon the work with Status::DeadlineExceeded /
// Status::Cancelled when it fires.
//
// Polling, not preemption: a token never interrupts anything by itself.
// The contract is that every loop whose per-iteration cost is bounded
// checks the token at least once per iteration (batch evaluation checks
// per query; the aggregate fold checks every few thousand records), so the
// worst-case overshoot past a deadline is one iteration, not one query.
//
// Thread-safe: Cancel() and Check() are relaxed atomic operations — a
// token may be shared by every chunk of a ParallelFor and cancelled from
// any thread (including a thread outside the pool). Relaxed ordering is
// sufficient: the flag carries no data dependency, and an iteration that
// misses the very latest store just runs one extra iteration.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace colgraph {

/// \brief Deadline + manual-cancel flag, polled cooperatively.
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Steady-clock microseconds since an arbitrary epoch — same clock family
  /// as obs::NowMicros, usable only for within-process comparisons.
  static uint64_t SteadyNowMicros() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Arms the deadline `timeout_ms` from now; 0 disarms it. May be called
  /// before handing the token to workers (not concurrently with Check).
  void SetTimeout(uint64_t timeout_ms) {
    deadline_us_.store(
        timeout_ms == 0 ? 0 : SteadyNowMicros() + timeout_ms * 1000,
        std::memory_order_relaxed);
  }

  /// Arms an absolute deadline on the SteadyNowMicros clock; 0 disarms.
  void SetDeadlineMicros(uint64_t deadline_us) {
    deadline_us_.store(deadline_us, std::memory_order_relaxed);
  }

  /// Requests cancellation; every subsequent Check() fails. Idempotent,
  /// callable from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when the token has fired (manual cancel or expired deadline).
  bool Expired() const {
    if (cancelled()) return true;
    const uint64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    return deadline != 0 && SteadyNowMicros() >= deadline;
  }

  /// OK while live; Status::Cancelled after Cancel(), DeadlineExceeded
  /// once the deadline passes. The polling call sites propagate this
  /// Status unchanged, so the caller-facing error names the real reason.
  [[nodiscard]] Status Check() const {
    if (cancelled()) return Status::Cancelled("work cancelled");
    const uint64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    if (deadline != 0 && SteadyNowMicros() >= deadline) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  // 0 = no deadline. Stored as an atomic so SetTimeout from the arming
  // thread and Check from workers need no lock.
  std::atomic<uint64_t> deadline_us_{0};
};

/// Null-tolerant poll: the idiom for call sites where the token is an
/// optional QueryOptions field.
[[nodiscard]] inline Status CheckCancellation(const CancellationToken* token) {
  return token == nullptr ? Status::OK() : token->Check();
}

}  // namespace colgraph
