#include "util/stopwatch.h"

// Header-only for now; this TU anchors the target in the build so the
// module shows up in compile_commands.json and keeps a home for future
// non-inline helpers.
