// Wall-clock timing helpers used by the benchmark harnesses to report the
// per-phase breakdowns the paper's figures show (e.g. "fetch measures" vs
// "rest of query" in Figures 6 and 7).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace colgraph {

/// \brief Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates time across multiple timed sections, one per phase
/// label; used to produce the stacked-bar breakdowns of Figures 6-7.
class PhaseTimer {
 public:
  void Add(double seconds) { total_seconds_ += seconds; }
  double total_seconds() const { return total_seconds_; }
  void Reset() { total_seconds_ = 0.0; }

 private:
  double total_seconds_ = 0.0;
};

/// RAII guard that adds the scope's duration to a PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer* timer) : timer_(timer) {}
  ~ScopedPhase() { timer_->Add(watch_.ElapsedSeconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
  Stopwatch watch_;
};

}  // namespace colgraph
