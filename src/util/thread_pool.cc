#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>

#include "util/check.h"
#include "util/failpoint.h"

namespace colgraph {

namespace {

constexpr size_t kNoError = std::numeric_limits<size_t>::max();

// The pool whose chunk this thread is currently executing (nullptr outside
// any ParallelFor). Used to reject nested ParallelFor on the same pool,
// which would block a worker on work only that same worker could run.
thread_local const ThreadPool* tls_active_pool = nullptr;

}  // namespace

// Shared state of one ParallelFor call. Heap-allocated and shared with the
// queued runner tasks: a runner that dequeues after every chunk was already
// claimed (the caller drained them itself) must still find the job alive.
struct ThreadPool::ParallelForJob {
  // Configuration: written once by ParallelFor before the runners are
  // scheduled (the queue handoff publishes them), read-only afterwards.
  const ThreadPool* pool = nullptr;
  const ChunkFn* fn = nullptr;
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;

  std::atomic<size_t> next_chunk{0};

  Mutex mu;
  CondVar done_cv;
  size_t completed COLGRAPH_GUARDED_BY(mu) = 0;  // chunks finished
  // Lowest failing chunk and its Status.
  size_t error_chunk COLGRAPH_GUARDED_BY(mu) = kNoError;
  Status error COLGRAPH_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (serial()) {
    task();
    return;
  }
  {
    const MutexLock lock(mu_);
    COLGRAPH_DCHECK(!stopping_) << "Schedule on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

Status ThreadPool::RunOneChunk(const ChunkFn& fn, size_t begin, size_t end) {
  // Fault injection for the concurrency tests: an armed "thread_pool:task"
  // point fails one chunk without touching caller code.
  Status injected = failpoint::Inject("thread_pool:task");
  if (!injected.ok()) return injected;
  try {
    return fn(begin, end);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor task threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ParallelFor task threw a non-standard exception");
  }
}

void ThreadPool::RunChunks(ParallelForJob* job) {
  const ThreadPool* saved = tls_active_pool;
  tls_active_pool = job->pool;
  for (;;) {
    const size_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) break;
    const size_t chunk_begin = job->begin + c * job->grain;
    const size_t chunk_end = std::min(job->end, chunk_begin + job->grain);
    const Status st = RunOneChunk(*job->fn, chunk_begin, chunk_end);
    {
      const MutexLock lock(job->mu);
      if (!st.ok() && c < job->error_chunk) {
        job->error_chunk = c;
        job->error = st;
      }
      if (++job->completed == job->num_chunks) job->done_cv.NotifyAll();
    }
  }
  tls_active_pool = saved;
}

Status ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                               const ChunkFn& fn) {
  if (begin >= end) return Status::OK();
  const size_t range = end - begin;
  if (grain == 0) {
    // Auto grain: ~4 chunks per executor balances stealing granularity
    // against per-chunk bookkeeping.
    grain = std::max<size_t>(1, range / (4 * (workers_.size() + 1)));
  }
  const size_t num_chunks = (range + grain - 1) / grain;

  const bool nested = tls_active_pool == this;
  COLGRAPH_DCHECK(!nested)
      << "nested ParallelFor on the same ThreadPool: a blocked worker "
         "cannot run its own dependency; restructure to a single flat "
         "ParallelFor (falls back to inline serial execution in NDEBUG)";
  if (serial() || nested || num_chunks == 1) {
    // Inline serial path: ascending chunk order, short-circuits at the
    // first error (which is therefore the lowest-indexed failing chunk,
    // matching the parallel path's error selection exactly).
    const ThreadPool* saved = tls_active_pool;
    tls_active_pool = this;
    Status st = Status::OK();
    for (size_t c = 0; c < num_chunks && st.ok(); ++c) {
      const size_t chunk_begin = begin + c * grain;
      st = RunOneChunk(fn, chunk_begin, std::min(end, chunk_begin + grain));
    }
    tls_active_pool = saved;
    return st;
  }

  auto job = std::make_shared<ParallelForJob>();
  job->pool = this;
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;

  // The caller claims chunks too, so only num_chunks - 1 helpers can ever
  // be useful. Runners hold the job alive; a runner that starts after the
  // caller drained every chunk claims nothing and exits.
  const size_t runners = std::min(workers_.size(), num_chunks - 1);
  for (size_t i = 0; i < runners; ++i) {
    Schedule([job] { RunChunks(job.get()); });
  }
  RunChunks(job.get());

  const MutexLock lock(job->mu);
  while (job->completed != job->num_chunks) job->done_cv.Wait(job->mu);
  return job->error_chunk == kNoError ? Status::OK() : job->error;
}

Status ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                   const ThreadPool::ChunkFn& fn) {
  if (pool != nullptr) return pool->ParallelFor(begin, end, grain, fn);
  // Serial mode: a worker-less pool funnels through the exact same chunking,
  // failpoint, and exception-capture path, just inline and in order.
  ThreadPool inline_pool(0);
  return inline_pool.ParallelFor(begin, end, grain, fn);
}

}  // namespace colgraph
