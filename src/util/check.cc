#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace colgraph {
namespace internal {

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << file << ":" << line << " Check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  const std::string message = stream_.str();
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace colgraph
