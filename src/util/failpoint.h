// Named fault-injection points ("failpoints") for crash and failure
// testing, in the spirit of RocksDB's SyncPoint / FreeBSD's fail(9).
//
// A site in library code declares a point by name:
//
//   COLGRAPH_FAILPOINT("persist:before_rename");   // early-returns a Status
//
// or queries the armed action when it needs custom behaviour (short
// writes, crash simulation):
//
//   uint64_t arg = 0;
//   if (failpoint::Hit("io:short_write", &arg) == failpoint::Action::kShortWrite)
//     ...
//
// Tests arm points programmatically (failpoint::Arm) or through the
// COLGRAPH_FAILPOINTS environment variable, e.g.
//
//   COLGRAPH_FAILPOINTS="persist:before_rename=crash;io:short_write=short:100@2"
//
// where `@N` lets the first N hits pass before firing and `short:B` keeps
// only the first B bytes of a write. Every armed point fires exactly once,
// then disarms itself (re-arm for repeated failures).
//
// Sites compile to no-ops unless the build defines
// COLGRAPH_FAILPOINTS_ENABLED (CMake option COLGRAPH_FAILPOINTS, on by
// default outside Release builds), so production Release binaries carry no
// injection branches. Tests that need injection should skip when
// `failpoint::kEnabled` is false.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace colgraph::failpoint {

enum class Action : uint8_t {
  kOff = 0,     ///< not armed (or not yet due): proceed normally
  kError,       ///< site returns Status::IOError
  kCrash,       ///< site abandons the operation mid-way, skipping cleanup
  kShortWrite,  ///< write site persists only the first `arg` bytes
};

struct Spec {
  Action action = Action::kOff;
  uint32_t skip = 0;  ///< number of hits to let pass before firing
  uint64_t arg = 0;   ///< kShortWrite: byte count to keep
};

#ifdef COLGRAPH_FAILPOINTS_ENABLED

inline constexpr bool kEnabled = true;

/// Arms (or re-arms) the named point. Thread-safe.
void Arm(const std::string& name, Spec spec);
/// Disarms one point / every point.
void Disarm(const std::string& name);
void DisarmAll();
/// Number of currently armed points.
size_t ArmedCount();

/// Evaluates the point: returns the armed action (consuming the one-shot
/// arming) or kOff. `arg` receives Spec::arg when non-null and the point
/// fires. The first call in a process also arms from COLGRAPH_FAILPOINTS.
Action Hit(const char* name, uint64_t* arg = nullptr);

/// Status form of Hit(): kError/kCrash fire as Status::IOError naming the
/// point, anything else is OK. What COLGRAPH_FAILPOINT() expands to.
Status Inject(const char* name);

/// Arms points from a "name=action[:arg][@skip];..." spec string; actions
/// are `error`, `crash` and `short:<bytes>`.
Status ArmFromSpecString(const std::string& spec);
/// Arms from the COLGRAPH_FAILPOINTS environment variable (no-op when the
/// variable is unset).
Status ArmFromEnv();

#else  // !COLGRAPH_FAILPOINTS_ENABLED

inline constexpr bool kEnabled = false;

inline void Arm(const std::string&, Spec) {}
inline void Disarm(const std::string&) {}
inline void DisarmAll() {}
inline size_t ArmedCount() { return 0; }
inline Action Hit(const char*, uint64_t* = nullptr) { return Action::kOff; }
inline Status Inject(const char*) { return Status::OK(); }
inline Status ArmFromSpecString(const std::string&) { return Status::OK(); }
inline Status ArmFromEnv() { return Status::OK(); }

#endif  // COLGRAPH_FAILPOINTS_ENABLED

}  // namespace colgraph::failpoint

// Declares an injection point inside a Status-returning function: when the
// point is armed as `error` or `crash` the enclosing function returns the
// injected Status::IOError. Compiles to nothing when failpoints are off.
#define COLGRAPH_FAILPOINT(name)                                     \
  do {                                                               \
    ::colgraph::Status _fp_st = ::colgraph::failpoint::Inject(name); \
    if (!_fp_st.ok()) return _fp_st;                                 \
  } while (0)
