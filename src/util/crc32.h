// CRC-32C (Castagnoli polynomial, the variant used by iSCSI, ext4 and
// LevelDB/RocksDB block trailers). Snapshot sections and whole files are
// checksummed with it so a flipped bit or short write surfaces as
// Status::Corruption at load time instead of silently poisoning a relation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace colgraph {

/// Computes the CRC-32C of `data[0, len)`. Pass a previous result as
/// `seed` to extend a running checksum over multiple buffers:
///
///   uint32_t c = Crc32c(a, na);
///   c = Crc32c(b, nb, c);   // == Crc32c(concat(a, b))
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace colgraph
