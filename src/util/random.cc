#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace colgraph {

ZipfSampler::ZipfSampler(size_t n, double theta, uint64_t seed)
    : engine_(seed) {
  COLGRAPH_CHECK_GE(n, size_t{1});
  cdf_.resize(n);
  double norm = 0.0;
  for (size_t i = 0; i < n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = norm;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= norm;
}

size_t ZipfSampler::Sample() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  double u = dist(engine_);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace colgraph
