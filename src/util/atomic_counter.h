// Relaxed atomic event counter. The FetchStats accounting in the master
// relation is bumped from read paths that PR 3 made concurrent; plain
// uint64_t increments there were the codebase's one documented data race.
// A RelaxedCounter makes those increments atomic while keeping the
// call sites (`++c`, `c += n`, comparisons, printing) source-compatible.
//
// Memory ordering: all operations are std::memory_order_relaxed. The
// counters are *statistics* — monotone event tallies that no control flow
// depends on — so only atomicity (no torn or lost increments) matters, not
// inter-thread ordering. Readers that want a consistent total simply read
// after joining / completing the parallel section, where the ParallelFor
// completion handshake (mutex + condition variable) already provides the
// necessary happens-before edge.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>

namespace colgraph {

/// \brief uint64_t event counter with atomic relaxed increments and
/// value-semantics (copyable, so stats structs stay assignable/resettable).
/// Copies snapshot the value; copying concurrently with increments yields
/// some valid point-in-time value.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  // NOLINTNEXTLINE(google-explicit-constructor) drop-in for uint64_t fields
  RelaxedCounter(uint64_t value) : value_(value) {}

  RelaxedCounter(const RelaxedCounter& other) : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
    return *this;
  }

  uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  // NOLINTNEXTLINE(google-explicit-constructor) reads stay plain uint64_t
  operator uint64_t() const { return load(); }

  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) {
    return value_.fetch_add(1, std::memory_order_relaxed);
  }
  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> value_{0};
};

inline std::ostream& operator<<(std::ostream& os, const RelaxedCounter& c) {
  return os << c.load();
}

}  // namespace colgraph
