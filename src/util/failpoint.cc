#include "util/failpoint.h"

#ifdef COLGRAPH_FAILPOINTS_ENABLED

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "util/sync.h"

namespace colgraph::failpoint {

namespace {

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Spec> points COLGRAPH_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during shutdown
  return *r;
}

void ArmFromEnvOnce() {
  static const bool armed = [] {
    const Status st = ArmFromEnv();
    if (!st.ok()) {
      std::fprintf(stderr, "colgraph: ignoring COLGRAPH_FAILPOINTS: %s\n",
                   st.ToString().c_str());
    }
    return true;
  }();
  (void)armed;
}

Status ParseOneSpec(const std::string& token) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint spec needs name=action: " +
                                   token);
  }
  const std::string name = token.substr(0, eq);
  std::string action = token.substr(eq + 1);

  Spec spec;
  const size_t at = action.rfind('@');
  if (at != std::string::npos) {
    const std::string skip = action.substr(at + 1);
    char* end = nullptr;
    const unsigned long v = std::strtoul(skip.c_str(), &end, 10);
    if (skip.empty() || (end != nullptr && *end != '\0')) {
      return Status::InvalidArgument("bad @skip count in failpoint spec: " +
                                     token);
    }
    spec.skip = static_cast<uint32_t>(v);
    action.resize(at);
  }
  if (action == "error") {
    spec.action = Action::kError;
  } else if (action == "crash") {
    spec.action = Action::kCrash;
  } else if (action.rfind("short:", 0) == 0) {
    const std::string bytes = action.substr(6);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(bytes.c_str(), &end, 10);
    if (bytes.empty() || (end != nullptr && *end != '\0')) {
      return Status::InvalidArgument("bad short:<bytes> in failpoint spec: " +
                                     token);
    }
    spec.action = Action::kShortWrite;
    spec.arg = v;
  } else {
    return Status::InvalidArgument("unknown failpoint action: " + token);
  }
  Arm(name, spec);
  return Status::OK();
}

}  // namespace

void Arm(const std::string& name, Spec spec) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  r.points[name] = spec;
}

void Disarm(const std::string& name) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  r.points.erase(name);
}

void DisarmAll() {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  r.points.clear();
}

size_t ArmedCount() {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  return r.points.size();
}

Action Hit(const char* name, uint64_t* arg) {
  ArmFromEnvOnce();
  Registry& r = registry();
  const MutexLock lock(r.mu);
  const auto it = r.points.find(name);
  if (it == r.points.end()) return Action::kOff;
  if (it->second.skip > 0) {
    --it->second.skip;
    return Action::kOff;
  }
  const Spec spec = it->second;
  r.points.erase(it);  // one-shot: fires once, then disarms
  if (arg != nullptr) *arg = spec.arg;
  return spec.action;
}

Status Inject(const char* name) {
  switch (Hit(name)) {
    case Action::kError:
    case Action::kCrash:
      return Status::IOError(std::string("failpoint '") + name +
                             "' injected failure");
    case Action::kOff:
    case Action::kShortWrite:
      return Status::OK();
  }
  return Status::OK();
}

Status ArmFromSpecString(const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(start, end - start);
    if (!token.empty()) COLGRAPH_RETURN_NOT_OK(ParseOneSpec(token));
    start = end + 1;
  }
  return Status::OK();
}

Status ArmFromEnv() {
  const char* env = std::getenv("COLGRAPH_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  return ArmFromSpecString(env);
}

}  // namespace colgraph::failpoint

#endif  // COLGRAPH_FAILPOINTS_ENABLED
