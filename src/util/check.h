// CHECK / DCHECK invariant macros, in the style of Arrow and glog: a failed
// check prints file:line, the failed condition, and any streamed message to
// stderr, then aborts. COLGRAPH_CHECK* are always on (use them for cheap
// structural invariants at API boundaries); COLGRAPH_DCHECK* compile to
// nothing in NDEBUG builds (use them on hot paths, e.g. per-bit bounds
// checks).
//
// This header deliberately does not include util/status.h: COLGRAPH_CHECK_OK
// is duck-typed over anything with ok() and ToString(), so status.h can
// include this header for its own internal checks without a cycle.
#pragma once

#include <sstream>
#include <string>

namespace colgraph {
namespace internal {

// Collects the streamed message for a failed check and aborts when the
// statement ends. Instances only ever exist on a failure path.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  // Prints "<file>:<line> Check failed: <condition> <message>" and aborts.
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows a streamed message in compiled-out DCHECK statements without
// evaluating the operands.
class NullMessage {
 public:
  template <typename T>
  NullMessage& operator<<(const T&) {
    return *this;
  }
};

// "CODE: message" detail for either a Status or a StatusOr<T>.
template <typename T>
std::string StatusDetail(const T& v) {
  if constexpr (requires { v.status(); }) {
    return v.status().ToString();
  } else {
    return v.ToString();
  }
}

}  // namespace internal
}  // namespace colgraph

// Aborts with file:line and the condition text unless `condition` holds.
// Additional context can be streamed: COLGRAPH_CHECK(a < b) << "a=" << a;
#define COLGRAPH_CHECK(condition)                                         \
  while (!(condition))                                                    \
  ::colgraph::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()

// Binary comparison checks; these print the condition text, and operands can
// be streamed by the caller for context.
#define COLGRAPH_CHECK_EQ(a, b) COLGRAPH_CHECK((a) == (b))
#define COLGRAPH_CHECK_NE(a, b) COLGRAPH_CHECK((a) != (b))
#define COLGRAPH_CHECK_LT(a, b) COLGRAPH_CHECK((a) < (b))
#define COLGRAPH_CHECK_LE(a, b) COLGRAPH_CHECK((a) <= (b))
#define COLGRAPH_CHECK_GT(a, b) COLGRAPH_CHECK((a) > (b))
#define COLGRAPH_CHECK_GE(a, b) COLGRAPH_CHECK((a) >= (b))

// Aborts (with the status message) when a Status or StatusOr expression is
// not OK. The expression is evaluated exactly once.
#define COLGRAPH_CHECK_OK(expr)                                              \
  do {                                                                       \
    auto&& _colgraph_check_ok_st = (expr);                                   \
    while (!_colgraph_check_ok_st.ok())                                      \
      ::colgraph::internal::FatalMessage(__FILE__, __LINE__, #expr ".ok()")  \
              .stream()                                                      \
          << ::colgraph::internal::StatusDetail(_colgraph_check_ok_st);      \
  } while (0)

#ifdef NDEBUG
// `false && (condition)` keeps the operands odr-used (no -Wunused warnings
// for check-only variables) while the whole statement folds away.
#define COLGRAPH_DCHECK(condition) \
  while (false && (condition)) ::colgraph::internal::NullMessage()
#define COLGRAPH_DCHECK_OK(expr) \
  do {                           \
  } while (0)
#else
#define COLGRAPH_DCHECK(condition) COLGRAPH_CHECK(condition)
#define COLGRAPH_DCHECK_OK(expr) COLGRAPH_CHECK_OK(expr)
#endif

#define COLGRAPH_DCHECK_EQ(a, b) COLGRAPH_DCHECK((a) == (b))
#define COLGRAPH_DCHECK_NE(a, b) COLGRAPH_DCHECK((a) != (b))
#define COLGRAPH_DCHECK_LT(a, b) COLGRAPH_DCHECK((a) < (b))
#define COLGRAPH_DCHECK_LE(a, b) COLGRAPH_DCHECK((a) <= (b))
#define COLGRAPH_DCHECK_GT(a, b) COLGRAPH_DCHECK((a) > (b))
#define COLGRAPH_DCHECK_GE(a, b) COLGRAPH_DCHECK((a) >= (b))
