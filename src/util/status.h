// Status / StatusOr error-handling primitives, in the style of Arrow and
// RocksDB: fallible operations return a Status (or StatusOr<T>) instead of
// throwing. Internal invariant violations use assert/CHECK-style macros.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace colgraph {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kCorruption,
  kNotSupported,
  kInternal,
  // Serving-layer codes (DESIGN.md §12). DeadlineExceeded and Cancelled are
  // raised by cooperative cancellation (util/cancellation.h) inside query
  // evaluation; ResourceExhausted and Unavailable are admission-control and
  // drain responses from the colgraphd daemon.
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
};

/// \brief Result of a fallible operation.
///
/// A Status is cheap to copy in the OK case (no allocation); error states
/// carry a code and a message. Use the factory functions
/// (Status::InvalidArgument(...) etc.) to construct errors.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Human-readable "CODE: message" string, "OK" for success.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  // Shared so Status stays copyable and cheap; error states are immutable.
  std::shared_ptr<const State> state_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT implicit
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    COLGRAPH_DCHECK(ok()) << status().ToString();
    return *value_;
  }
  const T& value() const& {
    COLGRAPH_DCHECK(ok()) << status().ToString();
    return *value_;
  }
  T&& value() && {
    COLGRAPH_DCHECK(ok()) << status().ToString();
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `alternative` when in the error state.
  T value_or(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Propagate a non-OK Status to the caller.
#define COLGRAPH_RETURN_NOT_OK(expr)        \
  do {                                      \
    ::colgraph::Status _st = (expr);        \
    if (!_st.ok()) return _st;              \
  } while (0)

// Evaluate a StatusOr expression, propagate the error or bind the value.
#define COLGRAPH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define COLGRAPH_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  COLGRAPH_ASSIGN_OR_RETURN_IMPL(                                              \
      COLGRAPH_CONCAT_(_status_or_, __LINE__), lhs, rexpr)

#define COLGRAPH_CONCAT_INNER_(a, b) a##b
#define COLGRAPH_CONCAT_(a, b) COLGRAPH_CONCAT_INNER_(a, b)

}  // namespace colgraph
