// RDF triple-store baseline ("Rdf Store" in Figures 3-4): each record
// element becomes a triple (subject = recid, predicate = edge-id,
// object = measure), indexed in the SPO and PSO orders a native RDF engine
// maintains. A graph query is the basic graph pattern
//   ?rec e1 ?m1 . ?rec e2 ?m2 . ...
// evaluated with sorted merge joins over the PSO posting lists (the
// RDF-3X-style plan), followed by SPO lookups for the measures.
#pragma once

#include <map>
#include <vector>

#include "baselines/store_interface.h"
#include "graph/catalog.h"

namespace colgraph {

class RdfStore : public GraphStoreInterface {
 public:
  Status AddRecord(const GraphRecord& record) override;
  Status Seal() override;
  StatusOr<MeasureTable> RunGraphQuery(const GraphQuery& query) override;
  size_t DiskBytes() const override;
  std::string name() const override { return "Rdf Store"; }

  size_t num_records() const { return num_records_; }
  size_t num_triples() const { return spo_.size(); }

 private:
  struct Triple {
    RecordId subject;
    EdgeId predicate;
    double object;
  };

  EdgeCatalog catalog_;
  size_t num_records_ = 0;
  // SPO: sorted by (subject, predicate) — measure lookups.
  std::vector<Triple> spo_;
  // PSO: predicate -> sorted subject posting list with objects.
  std::map<EdgeId, std::vector<std::pair<RecordId, double>>> pso_;
  bool sealed_ = false;
};

}  // namespace colgraph
