#include "baselines/rdf_store.h"

#include <algorithm>
#include <limits>

namespace colgraph {

Status RdfStore::AddRecord(const GraphRecord& record) {
  if (sealed_) return Status::InvalidArgument("rdf store already sealed");
  if (record.elements.size() != record.measures.size()) {
    return Status::InvalidArgument("elements/measures size mismatch");
  }
  const RecordId rid = num_records_;
  for (size_t i = 0; i < record.elements.size(); ++i) {
    const EdgeId predicate = catalog_.GetOrAssign(record.elements[i]);
    spo_.push_back(Triple{rid, predicate, record.measures[i]});
    pso_[predicate].emplace_back(rid, record.measures[i]);
  }
  ++num_records_;
  return Status::OK();
}

Status RdfStore::Seal() {
  // Ingest arrives in subject order, so SPO needs only a per-subject
  // predicate sort; PSO posting lists are already subject-sorted.
  std::sort(spo_.begin(), spo_.end(), [](const Triple& a, const Triple& b) {
    return a.subject != b.subject ? a.subject < b.subject
                                  : a.predicate < b.predicate;
  });
  sealed_ = true;
  return Status::OK();
}

StatusOr<MeasureTable> RdfStore::RunGraphQuery(const GraphQuery& query) {
  if (!sealed_) return Status::InvalidArgument("seal the store first");

  std::vector<EdgeId> predicates;
  bool satisfiable = true;
  for (const Edge& e : query.graph().edges()) {
    const auto id = catalog_.Lookup(e);
    if (!id.has_value()) {
      if (!e.IsNode()) satisfiable = false;
      continue;
    }
    predicates.push_back(*id);
  }
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());

  MeasureTable table;
  table.edges = predicates;
  table.columns.resize(predicates.size());
  if (!satisfiable || predicates.empty()) return table;

  // Merge-join the PSO posting lists pairwise on subject, smallest first.
  std::vector<const std::vector<std::pair<RecordId, double>>*> postings;
  for (EdgeId p : predicates) {
    auto it = pso_.find(p);
    if (it == pso_.end()) return table;
    postings.push_back(&it->second);
  }
  std::sort(postings.begin(), postings.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });

  std::vector<RecordId> result;
  result.reserve(postings[0]->size());
  for (const auto& [rid, measure] : *postings[0]) {
    (void)measure;
    result.push_back(rid);
  }
  for (size_t i = 1; i < postings.size() && !result.empty(); ++i) {
    std::vector<RecordId> next;
    next.reserve(std::min(result.size(), postings[i]->size()));
    auto left = result.begin();
    auto right = postings[i]->begin();
    while (left != result.end() && right != postings[i]->end()) {
      if (*left < right->first) {
        ++left;
      } else if (right->first < *left) {
        ++right;
      } else {
        next.push_back(*left);
        ++left;
        ++right;
      }
    }
    result = std::move(next);
  }
  table.records = std::move(result);

  // Measure fetch via SPO: binary search each (subject, predicate) pair.
  constexpr double kNull = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < predicates.size(); ++i) {
    auto& col = table.columns[i];
    col.reserve(table.records.size());
    for (RecordId rid : table.records) {
      const Triple probe{rid, predicates[i], 0.0};
      auto it = std::lower_bound(
          spo_.begin(), spo_.end(), probe,
          [](const Triple& a, const Triple& b) {
            return a.subject != b.subject ? a.subject < b.subject
                                          : a.predicate < b.predicate;
          });
      col.push_back(it != spo_.end() && it->subject == rid &&
                            it->predicate == predicates[i]
                        ? it->object
                        : kNull);
    }
  }
  return table;
}

size_t RdfStore::DiskBytes() const {
  // Two full index orders over the triples (RDF engines commonly keep
  // several permutations; we model SPO + PSO).
  size_t bytes = spo_.size() * sizeof(Triple);
  for (const auto& [p, postings] : pso_) {
    (void)p;
    bytes += postings.size() * sizeof(std::pair<RecordId, double>) + 16;
  }
  return bytes;
}

}  // namespace colgraph
