// Row-oriented RDBMS baseline ("Row Store" in Figures 3-4): graph records
// are shredded into a heap table of (recid, edge-id, measure) triplet rows
// clustered by recid, with a secondary B-tree-style index on edge-id. A
// k-edge graph query runs as a (k-1)-way self-join on recid, executed as
// successive hash joins — the plan a commercial row store picks for
//   SELECT ... FROM R e1 JOIN R e2 USING (recid) JOIN ... ;
// measure fetch reads each matching record's full row range (row stores
// cannot skip unrequested columns within a row cluster).
#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/store_interface.h"
#include "graph/catalog.h"

namespace colgraph {

class RowStore : public GraphStoreInterface {
 public:
  Status AddRecord(const GraphRecord& record) override;
  Status Seal() override;
  StatusOr<MeasureTable> RunGraphQuery(const GraphQuery& query) override;
  size_t DiskBytes() const override;
  std::string name() const override { return "Row Store"; }

  size_t num_records() const { return row_ranges_.size(); }

 private:
  struct TripletRow {
    RecordId recid;
    EdgeId edge;
    double measure;
  };

  EdgeCatalog catalog_;
  std::vector<TripletRow> heap_;  // clustered by recid (insertion order)
  // Secondary index: edge-id -> sorted list of recids (leaf level of a
  // B-tree on edge_id; recids ascend because ingest is in recid order).
  std::unordered_map<EdgeId, std::vector<RecordId>> edge_index_;
  // recid -> [begin, end) row positions in the heap.
  std::vector<std::pair<size_t, size_t>> row_ranges_;
  bool sealed_ = false;
};

}  // namespace colgraph
