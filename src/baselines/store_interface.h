// Common interface over the alternative storage systems the paper compares
// against (Section 7.2): a row-oriented RDBMS, a native graph database in
// the style of Neo4j, and an RDF triple store. Each is implemented from
// scratch with the evaluation strategy characteristic of its class, so the
// benchmarks reproduce the *algorithmic* gaps (joins / traversals vs.
// bitmap ANDs), which is where the paper's orders of magnitude come from.
#pragma once

#include <string>

#include "graph/graph.h"
#include "query/engine.h"
#include "util/status.h"

namespace colgraph {

/// \brief Storage-system abstraction used by the comparison benches.
class GraphStoreInterface {
 public:
  virtual ~GraphStoreInterface() = default;

  /// Ingests one graph record (bulk phase; record ids arrive densely).
  virtual Status AddRecord(const GraphRecord& record) = 0;

  /// Finishes ingest; builds indexes.
  virtual Status Seal() = 0;

  /// Evaluates a graph query: finds every record containing the query
  /// subgraph and fetches the query elements' measures for each. The
  /// result shape matches the column store's RunGraphQuery so the benches
  /// can cross-validate answers across systems.
  virtual StatusOr<MeasureTable> RunGraphQuery(const GraphQuery& query) = 0;

  /// Estimated on-disk footprint in bytes (Figure 4).
  virtual size_t DiskBytes() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace colgraph
