#include "baselines/graph_db.h"

#include <algorithm>
#include <limits>

#include "graph/catalog.h"

namespace colgraph {

Status GraphDb::AddRecord(const GraphRecord& record) {
  if (sealed_) return Status::InvalidArgument("graph db already sealed");
  if (record.elements.size() != record.measures.size()) {
    return Status::InvalidArgument("elements/measures size mismatch");
  }
  const RecordId rid = records_.size();
  StoredRecord stored;
  for (size_t i = 0; i < record.elements.size(); ++i) {
    const Edge& e = record.elements[i];
    catalog_.GetOrAssign(e);
    if (e.IsNode()) {
      NodeObject& node = stored.nodes[e.from];
      node.measure = record.measures[i];
      node.has_measure = true;
    } else {
      stored.nodes[e.from].out.push_back(
          RelationshipObject{e.to, record.measures[i]});
      stored.nodes.try_emplace(e.to);  // ensure target node object exists
    }
  }
  for (const auto& [node, obj] : stored.nodes) {
    (void)obj;
    node_index_[node].push_back(rid);
  }
  records_.push_back(std::move(stored));
  return Status::OK();
}

Status GraphDb::Seal() {
  sealed_ = true;
  return Status::OK();
}

StatusOr<MeasureTable> GraphDb::RunGraphQuery(const GraphQuery& query) {
  if (!sealed_) return Status::InvalidArgument("seal the store first");

  MeasureTable table;
  std::vector<Edge> elements = query.graph().edges();
  for (const Edge& e : elements) {
    const auto id = catalog_.Lookup(e);
    table.edges.push_back(id.has_value() ? *id : kInvalidEdgeId);
  }
  table.columns.resize(elements.size());
  if (elements.empty()) return table;

  // Anchor on the query node contained in the fewest records.
  const std::vector<RecordId>* candidates = nullptr;
  for (const NodeRef& n : query.graph().nodes()) {
    auto it = node_index_.find(n);
    if (it == node_index_.end()) return table;  // node never stored
    if (candidates == nullptr || it->second.size() < candidates->size()) {
      candidates = &it->second;
    }
  }
  if (candidates == nullptr) return table;

  constexpr double kNull = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> row(elements.size(), kNull);
  for (RecordId rid : *candidates) {
    const StoredRecord& rec = records_[rid];
    // Traverse: every query element must exist in this record's adjacency.
    bool matched = true;
    for (size_t i = 0; i < elements.size() && matched; ++i) {
      const Edge& e = elements[i];
      auto node_it = rec.nodes.find(e.from);
      if (node_it == rec.nodes.end()) {
        matched = false;
        break;
      }
      if (e.IsNode()) {
        if (!node_it->second.has_measure) {
          row[i] = kNull;  // node present without a measure: unconstrained
        } else {
          row[i] = node_it->second.measure;
        }
        continue;
      }
      // Walk the relationship chain looking for the target node.
      const auto& out = node_it->second.out;
      auto rel_it =
          std::find_if(out.begin(), out.end(),
                       [&](const RelationshipObject& r) { return r.to == e.to; });
      if (rel_it == out.end()) {
        matched = false;
      } else {
        row[i] = rel_it->measure;
      }
    }
    if (!matched) continue;
    table.records.push_back(rid);
    for (size_t i = 0; i < elements.size(); ++i) {
      table.columns[i].push_back(row[i]);
      row[i] = kNull;
    }
  }
  return table;
}

size_t GraphDb::DiskBytes() const {
  // Neo4j-style object overheads: ~15B per node record, ~34B per
  // relationship record, ~41B per property block (one property per
  // element here), plus the label index.
  constexpr size_t kNodeRecord = 15;
  constexpr size_t kRelationshipRecord = 34;
  constexpr size_t kPropertyBlock = 41;
  size_t bytes = 0;
  for (const StoredRecord& rec : records_) {
    bytes += rec.nodes.size() * kNodeRecord;
    for (const auto& [node, obj] : rec.nodes) {
      (void)node;
      bytes += obj.out.size() * (kRelationshipRecord + kPropertyBlock);
      if (obj.has_measure) bytes += kPropertyBlock;
    }
  }
  for (const auto& [node, recs] : node_index_) {
    (void)node;
    bytes += recs.size() * sizeof(RecordId) + 16;
  }
  return bytes;
}

}  // namespace colgraph
