// Native graph-database baseline ("Neo4j Store" in Figures 3-5): every
// record is stored as a property graph — node and relationship objects
// with per-node adjacency and a measure property per element — plus a
// global label index from node id to the records containing it. Query
// evaluation is traversal-based: candidate records come from the index on
// the query's most selective node, and each candidate is verified by
// traversing its adjacency for every query edge. This mirrors how a native
// engine matches a pattern whose nodes are all bound to known identities.
#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/store_interface.h"
#include "graph/catalog.h"

namespace colgraph {

class GraphDb : public GraphStoreInterface {
 public:
  Status AddRecord(const GraphRecord& record) override;
  Status Seal() override;
  StatusOr<MeasureTable> RunGraphQuery(const GraphQuery& query) override;
  size_t DiskBytes() const override;
  std::string name() const override { return "Neo4j Store"; }

  size_t num_records() const { return records_.size(); }

 private:
  struct RelationshipObject {
    NodeRef to;
    double measure;
  };
  struct NodeObject {
    std::vector<RelationshipObject> out;  // adjacency chain
    double measure = 0.0;
    bool has_measure = false;
  };
  struct StoredRecord {
    std::unordered_map<NodeRef, NodeObject, NodeRefHash> nodes;
  };

  EdgeCatalog catalog_;  // shared naming scheme, used only for result shape
  std::vector<StoredRecord> records_;
  // Label index: node -> records that contain it (ascending record ids).
  std::unordered_map<NodeRef, std::vector<RecordId>, NodeRefHash> node_index_;
  bool sealed_ = false;
};

}  // namespace colgraph
