#include "baselines/row_store.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace colgraph {

Status RowStore::AddRecord(const GraphRecord& record) {
  if (sealed_) return Status::InvalidArgument("row store already sealed");
  if (record.elements.size() != record.measures.size()) {
    return Status::InvalidArgument("elements/measures size mismatch");
  }
  const RecordId rid = row_ranges_.size();
  const size_t begin = heap_.size();
  for (size_t i = 0; i < record.elements.size(); ++i) {
    const EdgeId edge = catalog_.GetOrAssign(record.elements[i]);
    heap_.push_back(TripletRow{rid, edge, record.measures[i]});
    edge_index_[edge].push_back(rid);
  }
  row_ranges_.emplace_back(begin, heap_.size());
  return Status::OK();
}

Status RowStore::Seal() {
  sealed_ = true;
  return Status::OK();
}

StatusOr<MeasureTable> RowStore::RunGraphQuery(const GraphQuery& query) {
  if (!sealed_) return Status::InvalidArgument("seal the store first");

  // Resolve query elements; an edge the store has never seen matches
  // nothing (same semantics as the column store).
  std::vector<EdgeId> edges;
  bool satisfiable = true;
  for (const Edge& e : query.graph().edges()) {
    const auto id = catalog_.Lookup(e);
    if (!id.has_value()) {
      if (!e.IsNode()) satisfiable = false;
      continue;
    }
    edges.push_back(*id);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  MeasureTable table;
  table.edges = edges;
  table.columns.resize(edges.size());
  if (!satisfiable || edges.empty()) return table;

  // Join pipeline: successive hash joins over the per-edge recid lists,
  // smallest list first (the standard join-order heuristic). Each step
  // materializes the intermediate result, as a row executor does.
  std::vector<const std::vector<RecordId>*> postings;
  postings.reserve(edges.size());
  for (EdgeId e : edges) {
    auto it = edge_index_.find(e);
    if (it == edge_index_.end()) return table;  // edge known but unused
    postings.push_back(&it->second);
  }
  std::sort(postings.begin(), postings.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });

  std::vector<RecordId> result = *postings[0];
  for (size_t i = 1; i < postings.size() && !result.empty(); ++i) {
    std::unordered_set<RecordId> build(result.begin(), result.end());
    std::vector<RecordId> next;
    next.reserve(std::min(result.size(), postings[i]->size()));
    for (RecordId r : *postings[i]) {
      if (build.count(r)) next.push_back(r);
    }
    result = std::move(next);
  }
  std::sort(result.begin(), result.end());
  table.records = std::move(result);

  // Measure fetch: scan each matching record's full row cluster (a row
  // store reads whole rows) and pick out the requested edges.
  std::unordered_map<EdgeId, size_t> slot;
  for (size_t i = 0; i < edges.size(); ++i) slot[edges[i]] = i;
  constexpr double kNull = std::numeric_limits<double>::quiet_NaN();
  for (auto& col : table.columns) {
    col.assign(table.records.size(), kNull);
  }
  for (size_t row = 0; row < table.records.size(); ++row) {
    const auto [begin, end] = row_ranges_[table.records[row]];
    for (size_t pos = begin; pos < end; ++pos) {
      const TripletRow& triplet = heap_[pos];
      auto it = slot.find(triplet.edge);
      if (it != slot.end()) table.columns[it->second][row] = triplet.measure;
    }
  }
  return table;
}

size_t RowStore::DiskBytes() const {
  // Heap rows (24B payload + row header, typical ~27B/row in a commercial
  // row store) + the secondary index leaves.
  size_t bytes = heap_.size() * (sizeof(TripletRow) + 4);
  for (const auto& [edge, postings] : edge_index_) {
    (void)edge;
    bytes += postings.size() * sizeof(RecordId) + 16;
  }
  return bytes;
}

}  // namespace colgraph
