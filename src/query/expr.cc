#include "query/expr.h"

namespace colgraph {

Bitmap QueryExpr::Evaluate(const QueryEngine& engine,
                           const QueryOptions& options) const {
  switch (op_) {
    case Op::kLeaf:
      return engine.Match(query_, options);
    case Op::kAnd: {
      // Evaluate the left side first; an empty set short-circuits.
      Bitmap lhs = lhs_->Evaluate(engine, options);
      if (lhs.None()) return lhs;
      lhs.And(rhs_->Evaluate(engine, options));
      return lhs;
    }
    case Op::kOr: {
      Bitmap lhs = lhs_->Evaluate(engine, options);
      lhs.Or(rhs_->Evaluate(engine, options));
      return lhs;
    }
    case Op::kAndNot: {
      Bitmap lhs = lhs_->Evaluate(engine, options);
      if (lhs.None()) return lhs;
      lhs.AndNot(rhs_->Evaluate(engine, options));
      return lhs;
    }
  }
  return Bitmap();
}

size_t QueryExpr::NumLeaves() const {
  if (op_ == Op::kLeaf) return 1;
  return lhs_->NumLeaves() + rhs_->NumLeaves();
}

}  // namespace colgraph
