// Batch (inter-query) parallel evaluation: the paper's workloads are
// thousands of independent small-graph queries over one sealed relation —
// embarrassingly parallel across queries. Each query is evaluated by the
// unchanged serial code path into its own pre-sized output slot, so the
// batch result is bit-identical to a serial loop for any thread count.
#include "query/engine.h"
#include "util/thread_pool.h"

namespace colgraph {

namespace {

// Queries vary widely in cost (selectivity short-circuits, view rewrites),
// so chunks stay small to keep the claim-based schedule balanced.
constexpr size_t kQueryGrain = 1;

}  // namespace

StatusOr<std::vector<MeasureTable>> QueryEngine::EvaluateBatch(
    const std::vector<GraphQuery>& queries, const QueryOptions& options,
    ThreadPool* pool) const {
  std::vector<MeasureTable> results(queries.size());
  COLGRAPH_RETURN_NOT_OK(colgraph::ParallelFor(
      pool, 0, queries.size(), kQueryGrain,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          COLGRAPH_ASSIGN_OR_RETURN(results[i],
                                    RunGraphQuery(queries[i], options));
        }
        return Status::OK();
      }));
  return results;
}

StatusOr<std::vector<PathAggResult>> QueryEngine::EvaluatePathAggBatch(
    const std::vector<GraphQuery>& queries, AggFn fn,
    const QueryOptions& options, ThreadPool* pool) const {
  std::vector<PathAggResult> results(queries.size());
  COLGRAPH_RETURN_NOT_OK(colgraph::ParallelFor(
      pool, 0, queries.size(), kQueryGrain,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          COLGRAPH_ASSIGN_OR_RETURN(results[i],
                                    RunAggregateQuery(queries[i], fn, options));
        }
        return Status::OK();
      }));
  return results;
}

}  // namespace colgraph
