// Batch (inter-query) parallel evaluation: the paper's workloads are
// thousands of independent small-graph queries over one sealed relation —
// embarrassingly parallel across queries. Each query is evaluated by the
// unchanged serial code path into its own pre-sized output slot, so the
// batch result is bit-identical to a serial loop for any thread count.
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "util/thread_pool.h"

namespace colgraph {

namespace {

// Queries vary widely in cost (selectivity short-circuits, view rewrites),
// so chunks stay small to keep the claim-based schedule balanced.
constexpr size_t kQueryGrain = 1;

// Batch-level accounting: how many batches ran, how many queries they
// fanned out, and the batch wall time (per-query phase time lands in the
// query.phase.* histograms recorded by the per-query code path).
void CountBatch(size_t num_queries) {
  static obs::Counter& batches =
      obs::MetricsRegistry::Global().GetCounter("query.batch.count");
  static obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("query.batch.queries");
  if (!obs::MetricsEnabled()) return;
  batches.Increment();
  queries.Add(num_queries);
}

obs::LatencyHistogram& BatchHistogram() {
  static obs::LatencyHistogram& hist =
      obs::MetricsRegistry::Global().GetHistogram("query.batch.total_us");
  return hist;
}

}  // namespace

StatusOr<std::vector<MeasureTable>> QueryEngine::EvaluateBatch(
    const std::vector<GraphQuery>& queries, const QueryOptions& options,
    ThreadPool* pool) const {
  CountBatch(queries.size());
  const obs::Span batch_span(&BatchHistogram(), nullptr, "batch");
  std::vector<MeasureTable> results(queries.size());
  COLGRAPH_RETURN_NOT_OK(colgraph::ParallelFor(
      pool, 0, queries.size(), kQueryGrain,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          // Poll between queries too: a fired token stops the batch from
          // even starting the remaining queries of this chunk (the
          // per-query phase checks only bound overshoot inside one query).
          COLGRAPH_RETURN_NOT_OK(CheckCancellation(options.cancel));
          COLGRAPH_ASSIGN_OR_RETURN(results[i],
                                    RunGraphQuery(queries[i], options));
        }
        return Status::OK();
      }));
  // A completed batch is a natural durability point for the query log:
  // push the buffered records to the file so a later crash loses at most
  // the in-flight batch. Log failures never fail queries (the log poisons
  // itself and reports at Close).
  if (log_ != nullptr && obs::QueryLogEnabled()) (void)log_->Flush();
  return results;
}

StatusOr<std::vector<PathAggResult>> QueryEngine::EvaluatePathAggBatch(
    const std::vector<GraphQuery>& queries, AggFn fn,
    const QueryOptions& options, ThreadPool* pool) const {
  CountBatch(queries.size());
  const obs::Span batch_span(&BatchHistogram(), nullptr, "batch");
  std::vector<PathAggResult> results(queries.size());
  COLGRAPH_RETURN_NOT_OK(colgraph::ParallelFor(
      pool, 0, queries.size(), kQueryGrain,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          COLGRAPH_RETURN_NOT_OK(CheckCancellation(options.cancel));
          COLGRAPH_ASSIGN_OR_RETURN(results[i],
                                    RunAggregateQuery(queries[i], fn, options));
        }
        return Status::OK();
      }));
  if (log_ != nullptr && obs::QueryLogEnabled()) (void)log_->Flush();
  return results;
}

}  // namespace colgraph
