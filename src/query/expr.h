// Boolean query algebra over graph queries (Section 3.2): composite
// conditions like [Gq1 AND Gq2], [Gq1 OR Gq2], [Gq1 AND NOT Gq2] —
// e.g. "orders delivered through region-2 hubs but not via hub F" —
// evaluated as boolean combinations of the per-query match bitmaps.
#pragma once

#include <memory>
#include <vector>

#include "query/engine.h"
#include "util/status.h"

namespace colgraph {

/// \brief An expression tree over graph queries.
///
/// Leaves are graph queries; inner nodes combine answer *sets* with
/// AND / OR / AND-NOT. Built via the static factories:
///
///   auto e = QueryExpr::AndNot(QueryExpr::Or(QueryExpr::Leaf(q1),
///                                            QueryExpr::Leaf(q2)),
///                              QueryExpr::Leaf(q3));
///   Bitmap answer = e->Evaluate(engine);
class QueryExpr {
 public:
  enum class Op : uint8_t { kLeaf, kAnd, kOr, kAndNot };

  static std::shared_ptr<QueryExpr> Leaf(GraphQuery query) {
    auto e = std::make_shared<QueryExpr>();
    e->op_ = Op::kLeaf;
    e->query_ = std::move(query);
    return e;
  }
  static std::shared_ptr<QueryExpr> And(std::shared_ptr<QueryExpr> lhs,
                                        std::shared_ptr<QueryExpr> rhs) {
    return MakeBinary(Op::kAnd, std::move(lhs), std::move(rhs));
  }
  static std::shared_ptr<QueryExpr> Or(std::shared_ptr<QueryExpr> lhs,
                                       std::shared_ptr<QueryExpr> rhs) {
    return MakeBinary(Op::kOr, std::move(lhs), std::move(rhs));
  }
  /// [lhs AND NOT rhs] = [lhs] - [rhs].
  static std::shared_ptr<QueryExpr> AndNot(std::shared_ptr<QueryExpr> lhs,
                                           std::shared_ptr<QueryExpr> rhs) {
    return MakeBinary(Op::kAndNot, std::move(lhs), std::move(rhs));
  }

  Op op() const { return op_; }
  const GraphQuery& query() const { return query_; }

  /// Evaluates the expression to the bitmap of matching record ids.
  /// Leaf matches go through the engine (and thus use materialized views).
  Bitmap Evaluate(const QueryEngine& engine,
                  const QueryOptions& options = {}) const;

  /// Number of leaf queries in the expression.
  size_t NumLeaves() const;

 private:
  static std::shared_ptr<QueryExpr> MakeBinary(Op op,
                                               std::shared_ptr<QueryExpr> lhs,
                                               std::shared_ptr<QueryExpr> rhs) {
    auto e = std::make_shared<QueryExpr>();
    e->op_ = op;
    e->lhs_ = std::move(lhs);
    e->rhs_ = std::move(rhs);
    return e;
  }

  Op op_ = Op::kLeaf;
  GraphQuery query_;
  std::shared_ptr<QueryExpr> lhs_;
  std::shared_ptr<QueryExpr> rhs_;
};

}  // namespace colgraph
