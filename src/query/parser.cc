#include "query/parser.h"

#include <cctype>
#include <limits>
#include <vector>

namespace colgraph {

namespace {

// <cctype> classifiers take an int that must be EOF or representable as
// unsigned char; passing a raw (signed) char from arbitrary input is UB
// for bytes >= 0x80. These wrappers make every byte value safe.
bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }
bool IsAlpha(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0; }
char ToUpper(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

// Parenthesized terms recurse (ParseTerm -> ParseExpr -> ParseTerm); a cap
// turns pathological nesting into a clean error instead of stack overflow.
constexpr size_t kMaxParenDepth = 64;
// Binary operators build a left-deep QueryExpr tree whose destructor
// recurses once per node; a cap keeps that bounded for adversarial input.
constexpr size_t kMaxOperators = 4096;

struct Token {
  enum class Kind : uint8_t {
    kNumber,   // integer, value in `number`, primes in `primes`
    kKeyword,  // AND OR NOT SUM MIN MAX AVG COUNT
    kLBracket,
    kRBracket,
    kLParen,
    kRParen,
    kComma,
    kPlus,
    kEnd,
  };
  Kind kind = Kind::kEnd;
  uint64_t number = 0;
  uint32_t primes = 0;
  std::string keyword;
  size_t position = 0;
};

class Lexer {
 public:
  // Lexing the first token can itself fail; the constructor records that
  // status and Parse() surfaces it before consuming any tokens.
  explicit Lexer(const std::string& text)
      : text_(text), init_status_(Advance()) {}

  const Status& init_status() const { return init_status_; }

  const Token& current() const { return current_; }

  Status Advance() {
    while (pos_ < text_.size() && IsSpace(text_[pos_])) ++pos_;
    current_ = Token{};
    current_.position = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = Token::Kind::kEnd;
      return Status::OK();
    }
    const char c = text_[pos_];
    switch (c) {
      case '[':
        current_.kind = Token::Kind::kLBracket;
        ++pos_;
        return Status::OK();
      case ']':
        current_.kind = Token::Kind::kRBracket;
        ++pos_;
        return Status::OK();
      case '(':
        current_.kind = Token::Kind::kLParen;
        ++pos_;
        return Status::OK();
      case ')':
        current_.kind = Token::Kind::kRParen;
        ++pos_;
        return Status::OK();
      case ',':
        current_.kind = Token::Kind::kComma;
        ++pos_;
        return Status::OK();
      case '+':
        current_.kind = Token::Kind::kPlus;
        ++pos_;
        return Status::OK();
      default:
        break;
    }
    if (IsDigit(c)) {
      current_.kind = Token::Kind::kNumber;
      uint64_t value = 0;
      while (pos_ < text_.size() && IsDigit(text_[pos_])) {
        const uint64_t digit = static_cast<uint64_t>(text_[pos_] - '0');
        if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
          return Error("number too large");
        }
        value = value * 10 + digit;
        ++pos_;
      }
      current_.number = value;
      while (pos_ < text_.size() && text_[pos_] == '\'') {
        ++current_.primes;
        ++pos_;
      }
      return Status::OK();
    }
    if (IsAlpha(c)) {
      current_.kind = Token::Kind::kKeyword;
      while (pos_ < text_.size() && IsAlpha(text_[pos_])) {
        current_.keyword += ToUpper(text_[pos_]);
        ++pos_;
      }
      return Status::OK();
    }
    return Error("unexpected character '" + std::string(1, c) + "'");
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at position " +
                                   std::to_string(current_.position));
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
  Status init_status_;  // Must be declared after the fields Advance() uses.
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  StatusOr<ParsedQuery> Parse() {
    COLGRAPH_RETURN_NOT_OK(lexer_.init_status());
    ParsedQuery result;
    const Token& t = lexer_.current();
    if (t.kind == Token::Kind::kKeyword) {
      AggFn fn;
      if (t.keyword == "SUM") {
        fn = AggFn::kSum;
      } else if (t.keyword == "MIN") {
        fn = AggFn::kMin;
      } else if (t.keyword == "MAX") {
        fn = AggFn::kMax;
      } else if (t.keyword == "AVG") {
        fn = AggFn::kAvg;
      } else if (t.keyword == "COUNT") {
        fn = AggFn::kCount;
      } else {
        return lexer_.Error("unknown keyword '" + t.keyword + "'");
      }
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      COLGRAPH_ASSIGN_OR_RETURN(GraphQuery graph, ParseGraph());
      COLGRAPH_RETURN_NOT_OK(ExpectEnd());
      result.kind = ParsedQuery::Kind::kAggregate;
      result.query = std::move(graph);
      result.fn = fn;
      return result;
    }
    COLGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> expr, ParseExpr());
    COLGRAPH_RETURN_NOT_OK(ExpectEnd());
    result.kind = ParsedQuery::Kind::kMatch;
    result.expr = std::move(expr);
    return result;
  }

 private:
  Status ExpectEnd() {
    if (lexer_.current().kind != Token::Kind::kEnd) {
      return lexer_.Error("trailing input after query");
    }
    return Status::OK();
  }

  StatusOr<std::shared_ptr<QueryExpr>> ParseExpr() {
    COLGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> lhs, ParseTerm());
    while (lexer_.current().kind == Token::Kind::kKeyword) {
      const std::string op = lexer_.current().keyword;
      if (op != "AND" && op != "OR") break;
      if (++num_operators_ > kMaxOperators) {
        return lexer_.Error("query too complex (operator limit)");
      }
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      bool negate = false;
      if (op == "AND" && lexer_.current().kind == Token::Kind::kKeyword &&
          lexer_.current().keyword == "NOT") {
        negate = true;
        COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      }
      COLGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> rhs, ParseTerm());
      if (op == "OR") {
        lhs = QueryExpr::Or(std::move(lhs), std::move(rhs));
      } else if (negate) {
        lhs = QueryExpr::AndNot(std::move(lhs), std::move(rhs));
      } else {
        lhs = QueryExpr::And(std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  StatusOr<std::shared_ptr<QueryExpr>> ParseTerm() {
    if (lexer_.current().kind == Token::Kind::kLParen) {
      if (paren_depth_ >= kMaxParenDepth) {
        return lexer_.Error("query nesting too deep");
      }
      ++paren_depth_;
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      COLGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> inner, ParseExpr());
      --paren_depth_;
      if (lexer_.current().kind != Token::Kind::kRParen) {
        return lexer_.Error("expected ')'");
      }
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      return inner;
    }
    COLGRAPH_ASSIGN_OR_RETURN(GraphQuery graph, ParseGraph());
    return QueryExpr::Leaf(std::move(graph));
  }

  StatusOr<GraphQuery> ParseGraph() {
    DirectedGraph g;
    while (true) {
      COLGRAPH_ASSIGN_OR_RETURN(std::vector<NodeRef> nodes, ParsePath());
      if (nodes.size() == 1) g.AddNode(nodes[0]);
      for (size_t i = 0; i + 1 < nodes.size(); ++i) {
        g.AddEdge(nodes[i], nodes[i + 1]);
      }
      if (lexer_.current().kind != Token::Kind::kPlus) break;
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
    }
    return GraphQuery(std::move(g));
  }

  StatusOr<std::vector<NodeRef>> ParsePath() {
    if (lexer_.current().kind != Token::Kind::kLBracket) {
      return lexer_.Error("expected '[' to start a path");
    }
    COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
    std::vector<NodeRef> nodes;
    while (true) {
      if (lexer_.current().kind != Token::Kind::kNumber) {
        return lexer_.Error("expected a node id");
      }
      if (lexer_.current().number >
          std::numeric_limits<NodeId>::max()) {
        return lexer_.Error("node id out of range");
      }
      nodes.push_back(NodeRef{static_cast<NodeId>(lexer_.current().number),
                              lexer_.current().primes});
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      if (lexer_.current().kind == Token::Kind::kComma) {
        COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
        continue;
      }
      break;
    }
    if (lexer_.current().kind != Token::Kind::kRBracket) {
      return lexer_.Error("expected ']' to close the path");
    }
    COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
    if (nodes.empty()) return lexer_.Error("empty path");
    return nodes;
  }

  Lexer lexer_;
  size_t paren_depth_ = 0;
  size_t num_operators_ = 0;
};

}  // namespace

StatusOr<ParsedQuery> ParseQuery(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace colgraph
