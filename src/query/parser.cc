#include "query/parser.h"

#include <cctype>
#include <vector>

namespace colgraph {

namespace {

struct Token {
  enum class Kind : uint8_t {
    kNumber,   // integer, value in `number`, primes in `primes`
    kKeyword,  // AND OR NOT SUM MIN MAX AVG COUNT
    kLBracket,
    kRBracket,
    kLParen,
    kRParen,
    kComma,
    kPlus,
    kEnd,
  };
  Kind kind = Kind::kEnd;
  uint64_t number = 0;
  uint32_t primes = 0;
  std::string keyword;
  size_t position = 0;
};

class Lexer {
 public:
  // Lexing the first token can itself fail; the constructor records that
  // status and Parse() surfaces it before consuming any tokens.
  explicit Lexer(const std::string& text)
      : text_(text), init_status_(Advance()) {}

  const Status& init_status() const { return init_status_; }

  const Token& current() const { return current_; }

  Status Advance() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
    current_ = Token{};
    current_.position = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = Token::Kind::kEnd;
      return Status::OK();
    }
    const char c = text_[pos_];
    switch (c) {
      case '[':
        current_.kind = Token::Kind::kLBracket;
        ++pos_;
        return Status::OK();
      case ']':
        current_.kind = Token::Kind::kRBracket;
        ++pos_;
        return Status::OK();
      case '(':
        current_.kind = Token::Kind::kLParen;
        ++pos_;
        return Status::OK();
      case ')':
        current_.kind = Token::Kind::kRParen;
        ++pos_;
        return Status::OK();
      case ',':
        current_.kind = Token::Kind::kComma;
        ++pos_;
        return Status::OK();
      case '+':
        current_.kind = Token::Kind::kPlus;
        ++pos_;
        return Status::OK();
      default:
        break;
    }
    if (std::isdigit(c)) {
      current_.kind = Token::Kind::kNumber;
      uint64_t value = 0;
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) {
        value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
        ++pos_;
      }
      current_.number = value;
      while (pos_ < text_.size() && text_[pos_] == '\'') {
        ++current_.primes;
        ++pos_;
      }
      return Status::OK();
    }
    if (std::isalpha(c)) {
      current_.kind = Token::Kind::kKeyword;
      while (pos_ < text_.size() && std::isalpha(text_[pos_])) {
        current_.keyword += static_cast<char>(std::toupper(text_[pos_]));
        ++pos_;
      }
      return Status::OK();
    }
    return Error("unexpected character '" + std::string(1, c) + "'");
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at position " +
                                   std::to_string(current_.position));
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
  Status init_status_;  // Must be declared after the fields Advance() uses.
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  StatusOr<ParsedQuery> Parse() {
    COLGRAPH_RETURN_NOT_OK(lexer_.init_status());
    ParsedQuery result;
    const Token& t = lexer_.current();
    if (t.kind == Token::Kind::kKeyword) {
      AggFn fn;
      if (t.keyword == "SUM") {
        fn = AggFn::kSum;
      } else if (t.keyword == "MIN") {
        fn = AggFn::kMin;
      } else if (t.keyword == "MAX") {
        fn = AggFn::kMax;
      } else if (t.keyword == "AVG") {
        fn = AggFn::kAvg;
      } else if (t.keyword == "COUNT") {
        fn = AggFn::kCount;
      } else {
        return lexer_.Error("unknown keyword '" + t.keyword + "'");
      }
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      COLGRAPH_ASSIGN_OR_RETURN(GraphQuery graph, ParseGraph());
      COLGRAPH_RETURN_NOT_OK(ExpectEnd());
      result.kind = ParsedQuery::Kind::kAggregate;
      result.query = std::move(graph);
      result.fn = fn;
      return result;
    }
    COLGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> expr, ParseExpr());
    COLGRAPH_RETURN_NOT_OK(ExpectEnd());
    result.kind = ParsedQuery::Kind::kMatch;
    result.expr = std::move(expr);
    return result;
  }

 private:
  Status ExpectEnd() {
    if (lexer_.current().kind != Token::Kind::kEnd) {
      return lexer_.Error("trailing input after query");
    }
    return Status::OK();
  }

  StatusOr<std::shared_ptr<QueryExpr>> ParseExpr() {
    COLGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> lhs, ParseTerm());
    while (lexer_.current().kind == Token::Kind::kKeyword) {
      const std::string op = lexer_.current().keyword;
      if (op != "AND" && op != "OR") break;
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      bool negate = false;
      if (op == "AND" && lexer_.current().kind == Token::Kind::kKeyword &&
          lexer_.current().keyword == "NOT") {
        negate = true;
        COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      }
      COLGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> rhs, ParseTerm());
      if (op == "OR") {
        lhs = QueryExpr::Or(std::move(lhs), std::move(rhs));
      } else if (negate) {
        lhs = QueryExpr::AndNot(std::move(lhs), std::move(rhs));
      } else {
        lhs = QueryExpr::And(std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  StatusOr<std::shared_ptr<QueryExpr>> ParseTerm() {
    if (lexer_.current().kind == Token::Kind::kLParen) {
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      COLGRAPH_ASSIGN_OR_RETURN(std::shared_ptr<QueryExpr> inner, ParseExpr());
      if (lexer_.current().kind != Token::Kind::kRParen) {
        return lexer_.Error("expected ')'");
      }
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      return inner;
    }
    COLGRAPH_ASSIGN_OR_RETURN(GraphQuery graph, ParseGraph());
    return QueryExpr::Leaf(std::move(graph));
  }

  StatusOr<GraphQuery> ParseGraph() {
    DirectedGraph g;
    while (true) {
      COLGRAPH_ASSIGN_OR_RETURN(std::vector<NodeRef> nodes, ParsePath());
      if (nodes.size() == 1) g.AddNode(nodes[0]);
      for (size_t i = 0; i + 1 < nodes.size(); ++i) {
        g.AddEdge(nodes[i], nodes[i + 1]);
      }
      if (lexer_.current().kind != Token::Kind::kPlus) break;
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
    }
    return GraphQuery(std::move(g));
  }

  StatusOr<std::vector<NodeRef>> ParsePath() {
    if (lexer_.current().kind != Token::Kind::kLBracket) {
      return lexer_.Error("expected '[' to start a path");
    }
    COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
    std::vector<NodeRef> nodes;
    while (true) {
      if (lexer_.current().kind != Token::Kind::kNumber) {
        return lexer_.Error("expected a node id");
      }
      nodes.push_back(NodeRef{static_cast<NodeId>(lexer_.current().number),
                              lexer_.current().primes});
      COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
      if (lexer_.current().kind == Token::Kind::kComma) {
        COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
        continue;
      }
      break;
    }
    if (lexer_.current().kind != Token::Kind::kRBracket) {
      return lexer_.Error("expected ']' to close the path");
    }
    COLGRAPH_RETURN_NOT_OK(lexer_.Advance());
    if (nodes.empty()) return lexer_.Error("empty path");
    return nodes;
  }

  Lexer lexer_;
};

}  // namespace

StatusOr<ParsedQuery> ParseQuery(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace colgraph
