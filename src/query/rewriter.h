// Query rewriting against materialized views (Section 5.3): a graph query
// is re-covered by the greedy set-cover algorithm over the available view
// bitmaps plus atomic edge bitmaps; a path-aggregation query additionally
// segments each maximal path into non-overlapping precomputed segments so
// each measure is counted exactly once.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "query/agg_fn.h"
#include "views/view_defs.h"

namespace colgraph {

/// \brief Source of one bitmap in a match plan.
struct BitmapSource {
  enum class Kind : uint8_t { kEdge, kGraphView, kAggViewBitmap };
  Kind kind = Kind::kEdge;
  /// EdgeId for kEdge; relation view index otherwise.
  size_t index = 0;
};

/// \brief Plan for the structural (bitmap-AND) part of a query: the bitmaps
/// whose conjunction equals bitmap(B_Gq). Cost = sources.size() fetched
/// bitmap columns.
struct MatchPlan {
  std::vector<BitmapSource> sources;
  size_t num_bitmaps() const { return sources.size(); }
};

/// \brief Builds the match plan for a query edge set.
///
/// \param query_edge_ids        the query's catalog-resolved element ids
/// \param views                 materialized views (may be null: no views)
/// \param consider_agg_bitmaps  also offer bp columns of aggregate views as
///                              covering bitmaps (useful for aggregate
///                              queries whose paths are materialized)
MatchPlan PlanMatch(const std::vector<EdgeId>& query_edge_ids,
                    const ViewCatalog* views, bool consider_agg_bitmaps);

/// \brief One plan source plus the query edges it constrains — the
/// information EXPLAIN needs that MatchPlan strips for the hot path.
struct AnnotatedSource {
  BitmapSource source;
  /// The view's edge set for a view source; the edge itself for kEdge.
  std::vector<EdgeId> covers;
};

/// \brief Match plan with per-source coverage annotations.
struct AnnotatedMatchPlan {
  std::vector<AnnotatedSource> sources;
};

/// PlanMatch with coverage annotations: same cover-set collection and the
/// same CoverQueryWithViews call, so the sources (and their order) are
/// identical to PlanMatch's — only the `covers` lists are added. Used by
/// QueryEngine::Explain.
AnnotatedMatchPlan PlanMatchAnnotated(const std::vector<EdgeId>& query_edge_ids,
                                      const ViewCatalog* views,
                                      bool consider_agg_bitmaps);

/// \brief One segment of a rewritten path: either a materialized aggregate
/// view replacing `num_elements` consecutive elements, or one atomic
/// element.
struct PathSegment {
  bool is_view = false;
  size_t agg_view_column = 0;  ///< relation aggregate-view index (is_view)
  EdgeId atom = 0;             ///< element id (!is_view)
  size_t num_elements = 1;     ///< elements covered (view length or 1)
};

/// \brief Non-overlapping segmentation of one maximal path.
struct PathPlan {
  std::vector<PathSegment> segments;
  size_t num_measure_columns() const { return segments.size(); }
};

/// \brief Greedy left-to-right longest-match segmentation of a path's
/// element sequence by the aggregate views compatible with `fn`.
///
/// Views never overlap in the plan, so distributive folding of segment
/// aggregates equals the aggregate over the raw elements.
PathPlan PlanPathAggregation(const std::vector<EdgeId>& path_elements,
                             AggFn fn, const ViewCatalog* views);

}  // namespace colgraph
