// A small text query language for graph queries, used by the CLI shell
// and handy in tests. Grammar (paths use the paper's bracket notation):
//
//   query     := agg_query | match_expr
//   agg_query := ('SUM'|'MIN'|'MAX'|'AVG'|'COUNT') graph
//   match_expr:= term (('AND' 'NOT'? | 'OR') term)*      (left-assoc)
//   term      := graph | '(' match_expr ')'
//   graph     := path ('+' path)*        -- '+' unions paths into one
//                                           query graph (shared match)
//   path      := '[' node (',' node)+ ']'
//   node      := integer primes*         -- primes select the occurrence
//                                           after cycle flattening: 4''
//
// Examples:
//   [1,2,3] AND NOT [3,4]          records with path 1->2->3 avoiding 3->4
//   SUM [1,2,3,4]                  path aggregation along 1->2->3->4
//   [1,2]+[5,6]                    records containing both edges
#pragma once

#include <memory>
#include <string>

#include "query/agg_fn.h"
#include "query/expr.h"
#include "util/status.h"

namespace colgraph {

struct ParsedQuery {
  enum class Kind : uint8_t { kMatch, kAggregate };
  Kind kind = Kind::kMatch;
  /// Set for kMatch: the boolean expression to evaluate.
  std::shared_ptr<QueryExpr> expr;
  /// Set for kAggregate: the query graph and function.
  GraphQuery query;
  AggFn fn = AggFn::kSum;
};

/// Parses one query; returns InvalidArgument with a position-annotated
/// message on syntax errors.
[[nodiscard]] StatusOr<ParsedQuery> ParseQuery(const std::string& text);

}  // namespace colgraph
