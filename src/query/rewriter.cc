#include "query/rewriter.h"

#include <algorithm>
#include <map>

#include "views/set_cover.h"

namespace colgraph {

namespace {

// Shared between PlanMatch and PlanMatchAnnotated so both resolve the
// identical cover problem: a sorted/deduplicated query edge set plus the
// usable view bitmaps (graph views, optionally the bp bitmaps of aggregate
// views — both are just bitmap columns over the same records).
struct CoverProblem {
  std::vector<EdgeId> sorted_edges;
  std::vector<GraphViewDef> cover_sets;
  std::vector<BitmapSource> cover_sources;
  bool has_views = false;
};

CoverProblem CollectCoverProblem(const std::vector<EdgeId>& query_edge_ids,
                                 const ViewCatalog* views,
                                 bool consider_agg_bitmaps) {
  CoverProblem problem;
  problem.sorted_edges = query_edge_ids;
  std::sort(problem.sorted_edges.begin(), problem.sorted_edges.end());
  problem.sorted_edges.erase(
      std::unique(problem.sorted_edges.begin(), problem.sorted_edges.end()),
      problem.sorted_edges.end());
  // Fast path: with no materialized views the plan is one bitmap per edge;
  // skip the set-cover machinery entirely.
  if (views == nullptr ||
      (views->num_graph_views() == 0 &&
       (!consider_agg_bitmaps || views->num_agg_views() == 0))) {
    return problem;
  }
  problem.has_views = true;
  for (const auto& [def, column] : views->graph_views()) {
    problem.cover_sets.push_back(def);
    problem.cover_sources.push_back(
        BitmapSource{BitmapSource::Kind::kGraphView, column});
  }
  if (consider_agg_bitmaps) {
    for (const auto& [def, column] : views->agg_views()) {
      problem.cover_sets.push_back(GraphViewDef::Make(def.elements));
      problem.cover_sources.push_back(
          BitmapSource{BitmapSource::Kind::kAggViewBitmap, column});
    }
  }
  return problem;
}

}  // namespace

MatchPlan PlanMatch(const std::vector<EdgeId>& query_edge_ids,
                    const ViewCatalog* views, bool consider_agg_bitmaps) {
  const CoverProblem problem =
      CollectCoverProblem(query_edge_ids, views, consider_agg_bitmaps);
  MatchPlan plan;
  if (!problem.has_views) {
    plan.sources.reserve(problem.sorted_edges.size());
    for (EdgeId e : problem.sorted_edges) {
      plan.sources.push_back(BitmapSource{BitmapSource::Kind::kEdge, e});
    }
    return plan;
  }
  const QueryCover cover =
      CoverQueryWithViews(problem.sorted_edges, problem.cover_sets);
  for (size_t v : cover.view_indexes) {
    plan.sources.push_back(problem.cover_sources[v]);
  }
  for (EdgeId e : cover.residual_edges) {
    plan.sources.push_back(BitmapSource{BitmapSource::Kind::kEdge, e});
  }
  return plan;
}

AnnotatedMatchPlan PlanMatchAnnotated(const std::vector<EdgeId>& query_edge_ids,
                                      const ViewCatalog* views,
                                      bool consider_agg_bitmaps) {
  const CoverProblem problem =
      CollectCoverProblem(query_edge_ids, views, consider_agg_bitmaps);
  AnnotatedMatchPlan plan;
  if (!problem.has_views) {
    plan.sources.reserve(problem.sorted_edges.size());
    for (EdgeId e : problem.sorted_edges) {
      plan.sources.push_back(AnnotatedSource{
          BitmapSource{BitmapSource::Kind::kEdge, e}, {e}});
    }
    return plan;
  }
  const QueryCover cover =
      CoverQueryWithViews(problem.sorted_edges, problem.cover_sets);
  for (size_t v : cover.view_indexes) {
    plan.sources.push_back(AnnotatedSource{problem.cover_sources[v],
                                           problem.cover_sets[v].edges});
  }
  for (EdgeId e : cover.residual_edges) {
    plan.sources.push_back(
        AnnotatedSource{BitmapSource{BitmapSource::Kind::kEdge, e}, {e}});
  }
  return plan;
}

PathPlan PlanPathAggregation(const std::vector<EdgeId>& path_elements,
                             AggFn fn, const ViewCatalog* views) {
  // Index compatible views by their first element, longest first, so the
  // left-to-right scan can take the longest match at each position.
  std::map<EdgeId, std::vector<std::pair<const AggViewDef*, size_t>>> by_first;
  if (views != nullptr) {
    for (const auto& [def, column] : views->agg_views()) {
      if (def.fn != fn) continue;
      if (def.elements.empty()) continue;
      by_first[def.elements.front()].emplace_back(&def, column);
    }
    for (auto& [first, list] : by_first) {
      (void)first;
      std::sort(list.begin(), list.end(),
                [](const auto& a, const auto& b) {
                  return a.first->elements.size() > b.first->elements.size();
                });
    }
  }

  PathPlan plan;
  size_t i = 0;
  while (i < path_elements.size()) {
    const PathSegment* matched = nullptr;
    PathSegment candidate;
    auto it = by_first.find(path_elements[i]);
    if (it != by_first.end()) {
      for (const auto& [def, column] : it->second) {
        const size_t len = def->elements.size();
        if (i + len > path_elements.size()) continue;
        if (std::equal(def->elements.begin(), def->elements.end(),
                       path_elements.begin() + static_cast<long>(i))) {
          candidate.is_view = true;
          candidate.agg_view_column = column;
          candidate.num_elements = len;
          matched = &candidate;
          break;  // longest-first order: first hit is the longest
        }
      }
    }
    if (matched != nullptr) {
      plan.segments.push_back(candidate);
      i += candidate.num_elements;
    } else {
      PathSegment atom;
      atom.is_view = false;
      atom.atom = path_elements[i];
      atom.num_elements = 1;
      plan.segments.push_back(atom);
      ++i;
    }
  }
  return plan;
}

}  // namespace colgraph
