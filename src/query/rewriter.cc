#include "query/rewriter.h"

#include <algorithm>
#include <map>

#include "views/set_cover.h"

namespace colgraph {

MatchPlan PlanMatch(const std::vector<EdgeId>& query_edge_ids,
                    const ViewCatalog* views, bool consider_agg_bitmaps) {
  std::vector<EdgeId> sorted = query_edge_ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  MatchPlan plan;
  // Fast path: with no materialized views the plan is one bitmap per edge;
  // skip the set-cover machinery entirely.
  if (views == nullptr ||
      (views->num_graph_views() == 0 &&
       (!consider_agg_bitmaps || views->num_agg_views() == 0))) {
    plan.sources.reserve(sorted.size());
    for (EdgeId e : sorted) {
      plan.sources.push_back(BitmapSource{BitmapSource::Kind::kEdge, e});
    }
    return plan;
  }
  // Collect usable view bitmaps: graph views, optionally the bp bitmaps of
  // aggregate views (both are just bitmap columns over the same records).
  std::vector<GraphViewDef> cover_sets;
  std::vector<BitmapSource> cover_sources;
  if (views != nullptr) {
    for (const auto& [def, column] : views->graph_views()) {
      cover_sets.push_back(def);
      cover_sources.push_back(
          BitmapSource{BitmapSource::Kind::kGraphView, column});
    }
    if (consider_agg_bitmaps) {
      for (const auto& [def, column] : views->agg_views()) {
        cover_sets.push_back(GraphViewDef::Make(def.elements));
        cover_sources.push_back(
            BitmapSource{BitmapSource::Kind::kAggViewBitmap, column});
      }
    }
  }

  const QueryCover cover = CoverQueryWithViews(sorted, cover_sets);
  for (size_t v : cover.view_indexes) plan.sources.push_back(cover_sources[v]);
  for (EdgeId e : cover.residual_edges) {
    plan.sources.push_back(BitmapSource{BitmapSource::Kind::kEdge, e});
  }
  return plan;
}

PathPlan PlanPathAggregation(const std::vector<EdgeId>& path_elements,
                             AggFn fn, const ViewCatalog* views) {
  // Index compatible views by their first element, longest first, so the
  // left-to-right scan can take the longest match at each position.
  std::map<EdgeId, std::vector<std::pair<const AggViewDef*, size_t>>> by_first;
  if (views != nullptr) {
    for (const auto& [def, column] : views->agg_views()) {
      if (def.fn != fn) continue;
      if (def.elements.empty()) continue;
      by_first[def.elements.front()].emplace_back(&def, column);
    }
    for (auto& [first, list] : by_first) {
      (void)first;
      std::sort(list.begin(), list.end(),
                [](const auto& a, const auto& b) {
                  return a.first->elements.size() > b.first->elements.size();
                });
    }
  }

  PathPlan plan;
  size_t i = 0;
  while (i < path_elements.size()) {
    const PathSegment* matched = nullptr;
    PathSegment candidate;
    auto it = by_first.find(path_elements[i]);
    if (it != by_first.end()) {
      for (const auto& [def, column] : it->second) {
        const size_t len = def->elements.size();
        if (i + len > path_elements.size()) continue;
        if (std::equal(def->elements.begin(), def->elements.end(),
                       path_elements.begin() + static_cast<long>(i))) {
          candidate.is_view = true;
          candidate.agg_view_column = column;
          candidate.num_elements = len;
          matched = &candidate;
          break;  // longest-first order: first hit is the longest
        }
      }
    }
    if (matched != nullptr) {
      plan.segments.push_back(candidate);
      i += candidate.num_elements;
    } else {
      PathSegment atom;
      atom.is_view = false;
      atom.atom = path_elements[i];
      atom.num_elements = 1;
      plan.segments.push_back(atom);
      ++i;
    }
  }
  return plan;
}

}  // namespace colgraph
