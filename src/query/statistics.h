// Post-aggregation statistics: the paper's analytical queries "further
// consolidate the computed aggregates in order to compute higher level
// statistics, such as the average delivery time and the standard
// deviation" (Section 3.4). These helpers fold the flat per-record values
// a path aggregation returns into such summaries.
//
// Concurrency audit (PR 3): unlike the FetchStats counters in
// columnstore/master_relation.h, everything here is a pure function over
// caller-owned inputs — no shared mutable state, nothing to make atomic.
// Concurrent calls are trivially safe.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/check.h"

namespace colgraph {

/// \brief Summary statistics of one value series.
struct Summary {
  size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  ///< population standard deviation
  double sum = 0;
};

/// Computes the summary in a single pass (Welford's method for variance).
inline Summary Summarize(const std::vector<double>& values) {
  Summary s;
  double m2 = 0;
  for (double v : values) {
    ++s.count;
    s.sum += v;
    if (s.count == 1) {
      s.min = s.max = v;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    const double delta = v - s.mean;
    s.mean += delta / static_cast<double>(s.count);
    m2 += delta * (v - s.mean);
  }
  if (s.count > 0) s.stddev = std::sqrt(m2 / static_cast<double>(s.count));
  return s;
}

/// Groups per-record aggregates by a record attribute and summarizes each
/// group — the paper's "average delivery time and standard deviation ...
/// based on the order type" consolidation (Section 3.4). `key_of` maps a
/// record id to its group key (e.g. a RecordLinkIndex metadata lookup);
/// records without a key land under "" unless `skip_missing` is set.
template <typename KeyFn>
std::map<std::string, Summary> GroupBySummaries(
    const std::vector<RecordId>& records, const std::vector<double>& values,
    KeyFn&& key_of, bool skip_missing = false) {
  // records[i] and values[i] must be parallel arrays; silently truncating
  // to the shorter one (the old std::min behavior) would turn a caller bug
  // into wrong summaries.
  COLGRAPH_CHECK_EQ(records.size(), values.size())
      << "GroupBySummaries: records/values must be parallel arrays";
  std::map<std::string, std::vector<double>> groups;
  const size_t n = records.size();
  for (size_t i = 0; i < n; ++i) {
    const std::optional<std::string> key = key_of(records[i]);
    if (!key.has_value() && skip_missing) continue;
    groups[key.value_or("")].push_back(values[i]);
  }
  std::map<std::string, Summary> result;
  for (const auto& [key, series] : groups) result[key] = Summarize(series);
  return result;
}

/// Fixed-width histogram over [lo, hi]; values outside clamp to the edge
/// buckets. Useful for delay/size distributions in monitoring dashboards.
/// NaN values are skipped (std::clamp passes NaN through and the size_t
/// cast of a NaN is undefined behavior) and reported via `nan_count` when
/// provided; a NULL measure must not silently land in a bucket.
inline std::vector<size_t> Histogram(const std::vector<double>& values,
                                     double lo, double hi, size_t buckets,
                                     size_t* nan_count = nullptr) {
  size_t nans = 0;
  for (double v : values) {
    if (std::isnan(v)) ++nans;
  }
  if (nan_count != nullptr) *nan_count = nans;
  std::vector<size_t> counts(buckets, 0);
  if (buckets == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (double v : values) {
    if (std::isnan(v)) continue;
    double offset = (v - lo) / width;
    const size_t bucket = static_cast<size_t>(
        std::clamp(offset, 0.0, static_cast<double>(buckets - 1)));
    ++counts[bucket];
  }
  return counts;
}

}  // namespace colgraph
