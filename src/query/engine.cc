#include "query/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <optional>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace colgraph {

QueryEngine::ResolvedQuery QueryEngine::Resolve(const GraphQuery& query) const {
  ResolvedQuery resolved;
  const DirectedGraph& g = query.graph();
  for (const Edge& e : g.edges()) {
    const auto id = catalog_->Lookup(e);
    if (!id.has_value()) {
      if (e.IsNode()) continue;  // node without a measure column: unconstrained
      resolved.satisfiable = false;  // edge never seen: no record matches
      continue;
    }
    resolved.ids.push_back(*id);
  }
  // Isolated nodes constrain the result when they carry a measure column.
  for (const NodeRef& n : g.nodes()) {
    if (g.OutDegree(n) == 0 && g.InDegree(n) == 0) {
      const auto id = catalog_->Lookup(Edge{n, n});
      if (id.has_value()) resolved.ids.push_back(*id);
    }
  }
  std::sort(resolved.ids.begin(), resolved.ids.end());
  resolved.ids.erase(std::unique(resolved.ids.begin(), resolved.ids.end()),
                     resolved.ids.end());
  return resolved;
}

size_t QueryEngine::SourceCardinality(const BitmapSource& source) const {
  switch (source.kind) {
    case BitmapSource::Kind::kEdge:
      return relation_->EdgeBitmapCardinality(
          static_cast<EdgeId>(source.index));
    case BitmapSource::Kind::kGraphView:
      return relation_->GraphViewCardinality(source.index);
    case BitmapSource::Kind::kAggViewBitmap:
      return relation_->AggViewCardinality(source.index);
  }
  return 0;
}

const Bitmap& QueryEngine::FetchSource(const BitmapSource& source) const {
  switch (source.kind) {
    case BitmapSource::Kind::kEdge:
      return relation_->FetchEdgeBitmap(static_cast<EdgeId>(source.index));
    case BitmapSource::Kind::kGraphView:
      return relation_->FetchGraphView(source.index);
    case BitmapSource::Kind::kAggViewBitmap:
      return relation_->FetchAggregateViewBitmap(source.index);
  }
  // Unreachable; keeps -Wreturn-type happy.
  return relation_->FetchEdgeBitmap(0);
}

const HybridBitmap* QueryEngine::PeekSourceHybrid(
    const BitmapSource& source) const {
  switch (source.kind) {
    case BitmapSource::Kind::kEdge:
      return relation_->PeekEdgeBitmapHybrid(
          static_cast<EdgeId>(source.index));
    case BitmapSource::Kind::kGraphView:
      return relation_->PeekGraphViewHybrid(source.index);
    case BitmapSource::Kind::kAggViewBitmap:
      return relation_->PeekAggViewBitmapHybrid(source.index);
  }
  return nullptr;
}

QueryEngine::SourceRef QueryEngine::FetchSourceRef(
    const BitmapSource& source) const {
  SourceRef ref;
  ref.plain = &FetchSource(source);
  ref.hybrid = PeekSourceHybrid(source);
  return ref;
}

size_t QueryEngine::TotalRecords() const {
  size_t total = relation_->num_records();
  if (tails_ != nullptr) {
    for (const RelationSegment& seg : *tails_) {
      total += seg.relation->num_records();
    }
  }
  return total;
}

Bitmap QueryEngine::MatchIdsInTail(const MasterRelation& tail,
                                   const std::vector<EdgeId>& ids) const {
  // An edge the tail has no column for was never recorded in it, so the
  // conjunction is empty. (The unconstrained ids.empty() case is handled
  // by MatchIds before segments come into play.)
  for (const EdgeId id : ids) {
    if (id >= tail.num_edge_columns()) return Bitmap(tail.num_records());
  }
  Bitmap result = tail.FetchEdgeBitmap(ids.front());
  for (size_t i = 1; i < ids.size() && !result.None(); ++i) {
    result.And(tail.FetchEdgeBitmap(ids[i]));
  }
  return result;
}

Bitmap QueryEngine::MatchIds(const std::vector<EdgeId>& ids,
                             const QueryOptions& options,
                             bool consider_agg_bitmaps,
                             MatchPlan* plan_out) const {
  if (plan_out != nullptr) plan_out->sources.clear();
  if (ids.empty()) {
    // An unconstrained query matches everything — tail records included.
    Bitmap all(TotalRecords());
    all.Fill();
    return all;
  }
  // Incremental ingest can grow the catalog past the primary's columns
  // (a tail introduced the edge); the primary then cannot contain the
  // query and contributes an empty conjunct. Only reachable with tails:
  // in single-relation mode the catalog and relation grow in lockstep.
  if (HasTails() &&
      std::any_of(ids.begin(), ids.end(), [&](EdgeId id) {
        return id >= relation_->num_edge_columns();
      })) {
    Bitmap full(TotalRecords());
    for (const RelationSegment& seg : *tails_) {
      full.OrAt(MatchIdsInTail(*seg.relation, ids), seg.base);
    }
    return full;
  }
  MatchPlan plan;
  {
    const obs::Span span(obs::QueryPhase::kRewrite, options.trace);
    plan = PlanMatch(ids, options.use_views ? views_ : nullptr,
                     consider_agg_bitmaps);
    if (options.order_by_selectivity) {
      // AND the most selective bitmaps first so the running conjunction
      // empties (and short-circuits) as early as possible. Cardinalities
      // come from the sealed columns' rank directories — free statistics.
      std::sort(plan.sources.begin(), plan.sources.end(),
                [&](const BitmapSource& a, const BitmapSource& b) {
                  return SourceCardinality(a) < SourceCardinality(b);
                });
    }
    if (plan_out != nullptr) *plan_out = plan;
  }
  const obs::Span span(obs::QueryPhase::kBitmapAnd, options.trace);
  // The running conjunction stays in the hybrid (compressed) domain as long
  // as every operand so far has a hybrid sidecar — container-level ANDs
  // touch only the compressed payloads. The first plain operand (or the
  // final result) materializes it into words once; from there hybrid
  // operands apply in place via AndInto's word kernels.
  const SourceRef front = FetchSourceRef(plan.sources.front());
  std::optional<HybridBitmap> running;
  Bitmap result;
  if (front.hybrid != nullptr) {
    running = *front.hybrid;
  } else {
    result = *front.plain;
  }
  for (size_t i = 1; i < plan.sources.size(); ++i) {
    // Short-circuit: once the conjunction is empty no further bitmap can
    // add records, so stop fetching. This is why column-store query time
    // *drops* as query graphs grow (Figure 3b): bigger queries are more
    // selective and the AND pipeline exits early.
    if (running.has_value() ? running->None() : result.None()) break;
    const SourceRef ref = FetchSourceRef(plan.sources[i]);
    if (running.has_value()) {
      if (ref.hybrid != nullptr) {
        running = HybridBitmap::And(*running, *ref.hybrid);
      } else {
        result = running->ToBitmap();
        running.reset();
        result.And(*ref.plain);
      }
    } else if (ref.hybrid != nullptr) {
      ref.hybrid->AndInto(&result);
    } else {
      result.And(*ref.plain);
    }
  }
  if (running.has_value()) result = running->ToBitmap();
  if (!HasTails()) return result;

  // Multi-dataset OR (DESIGN.md §14): the global answer is the union of
  // the per-dataset answers, each blitted at its segment's base offset.
  Bitmap full(TotalRecords());
  full.OrAt(result, 0);
  for (const RelationSegment& seg : *tails_) {
    full.OrAt(MatchIdsInTail(*seg.relation, ids), seg.base);
  }
  return full;
}

Bitmap QueryEngine::Match(const GraphQuery& query,
                          const QueryOptions& options) const {
  const ResolvedQuery resolved = Resolve(query);
  if (!resolved.satisfiable) return Bitmap(TotalRecords());
  return MatchIds(resolved.ids, options, /*consider_agg_bitmaps=*/false);
}

Bitmap QueryEngine::AndSets(const Bitmap& a, const Bitmap& b) {
  Bitmap r = a;
  r.And(b);
  return r;
}

Bitmap QueryEngine::OrSets(const Bitmap& a, const Bitmap& b) {
  Bitmap r = a;
  r.Or(b);
  return r;
}

Bitmap QueryEngine::AndNotSets(const Bitmap& a, const Bitmap& b) {
  Bitmap r = a;
  r.AndNot(b);
  return r;
}

MeasureTable QueryEngine::FetchMeasures(const Bitmap& matches,
                                        const std::vector<EdgeId>& edges) const {
  const obs::Span span(obs::QueryPhase::kFetch, nullptr);
  MeasureTable table;
  table.edges = edges;
  matches.AppendSetBits(&table.records);
  table.columns.resize(edges.size());
  // Zero matching rows: no measure column needs to be read at all — the
  // other face of "larger queries are cheaper" (Figure 3b).
  if (table.records.empty()) return table;

  if (HasTails()) {
    // Multi-dataset fetch (DESIGN.md §14): each row is filled from the
    // segment that owns its global record id. The match list is sorted and
    // segments are contiguous id ranges, so the routing is one monotone
    // sweep. The partition merge-join modeling below applies to a single
    // store; tails are small unpartitioned appendices, so each touched
    // segment counts as one partition visit.
    constexpr double kTailNull = std::numeric_limits<double>::quiet_NaN();
    struct Segment {
      const MasterRelation* rel;
      size_t base;
      size_t num;
    };
    std::vector<Segment> segments;
    segments.push_back({relation_, 0, relation_->num_records()});
    for (const RelationSegment& t : *tails_) {
      segments.push_back({t.relation, t.base, t.relation->num_records()});
    }
    for (auto& column : table.columns) {
      column.assign(table.records.size(), kTailNull);
    }
    FetchStats& stats = relation_->stats();
    size_t row = 0;
    for (const Segment& seg : segments) {
      const size_t first = row;
      while (row < table.records.size() &&
             table.records[row] < seg.base + seg.num) {
        ++row;
      }
      if (row == first) continue;
      ++stats.partitions_touched;
      for (size_t i = 0; i < edges.size(); ++i) {
        // A column the segment never grew stays NULL for its records.
        if (edges[i] >= seg.rel->num_edge_columns()) continue;
        const MeasureColumn& col = seg.rel->FetchMeasureColumn(edges[i]);
        for (size_t r = first; r < row; ++r) {
          const auto v = col.Get(table.records[r] - seg.base);
          if (v.has_value()) table.columns[i][r] = *v;
        }
        stats.values_fetched += row - first;
      }
    }
    return table;
  }

  // Group requested columns by vertical partition (Section 6.1).
  std::map<size_t, std::vector<size_t>> by_partition;  // partition -> idx
  for (size_t i = 0; i < edges.size(); ++i) {
    by_partition[relation_->PartitionOf(edges[i])].push_back(i);
  }
  FetchStats& stats = relation_->stats();
  stats.partitions_touched += by_partition.size();

  constexpr double kNull = std::numeric_limits<double>::quiet_NaN();

  if (by_partition.size() <= 1) {
    // Single sub-relation: gather straight into the result columns.
    for (size_t i = 0; i < edges.size(); ++i) {
      const MeasureColumn& col = relation_->FetchMeasureColumn(edges[i]);
      auto& out = table.columns[i];
      out.reserve(table.records.size());
      for (RecordId r : table.records) {
        const auto v = col.Get(r);
        out.push_back(v.has_value() ? *v : kNull);
      }
      stats.values_fetched += table.records.size();
    }
    return table;
  }

  // Multiple sub-relations: each partition assembles its own
  // (recid, values...) rows; the partials are then merge-joined on recid.
  // Both sides are sorted by recid, so each join is a linear merge — but
  // the extra materialization and merging is real work that grows with the
  // partition count, reproducing the degradation of Figure 5.
  struct Partial {
    std::vector<RecordId> records;
    std::vector<size_t> column_slots;            // indexes into table.columns
    std::vector<std::vector<double>> columns;    // aligned with column_slots
  };
  std::vector<Partial> partials;
  partials.reserve(by_partition.size());
  for (const auto& [partition, slots] : by_partition) {
    (void)partition;
    Partial part;
    part.records = table.records;
    part.column_slots = slots;
    part.columns.resize(slots.size());
    for (size_t s = 0; s < slots.size(); ++s) {
      const MeasureColumn& col =
          relation_->FetchMeasureColumn(edges[slots[s]]);
      auto& out = part.columns[s];
      out.reserve(part.records.size());
      for (RecordId r : part.records) {
        const auto v = col.Get(r);
        out.push_back(v.has_value() ? *v : kNull);
      }
      stats.values_fetched += part.records.size();
    }
    partials.push_back(std::move(part));
  }
  // Merge join: all partials share the match list, so the join key
  // sequences are identical; copy each partial's columns into place.
  for (size_t p = 1; p < partials.size(); ++p) {
    ++stats.partition_joins;
  }
  for (Partial& part : partials) {
    for (size_t s = 0; s < part.column_slots.size(); ++s) {
      table.columns[part.column_slots[s]] = std::move(part.columns[s]);
    }
  }
  return table;
}

StatusOr<MeasureTable> QueryEngine::RunGraphQueryImpl(
    const GraphQuery& query, const QueryOptions& options,
    MatchPlan* plan_out) const {
  static obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("query.graph.count");
  static obs::LatencyHistogram& total =
      obs::MetricsRegistry::Global().GetHistogram("query.graph.total_us");
  if (obs::MetricsEnabled()) queries.Increment();
  const obs::Span total_span(&total, nullptr, "query");

  // Cooperative cancellation: poll at the phase boundaries (the match can
  // fetch many bitmaps, the fetch many columns) so a fired deadline
  // abandons the query between phases instead of after the fact.
  COLGRAPH_RETURN_NOT_OK(CheckCancellation(options.cancel));

  ResolvedQuery resolved;
  {
    const obs::Span span(obs::QueryPhase::kResolve, options.trace);
    resolved = Resolve(query);
  }
  if (!resolved.satisfiable) {
    MeasureTable empty;
    empty.edges = resolved.ids;
    empty.columns.resize(resolved.ids.size());
    return empty;
  }
  const Bitmap matches =
      MatchIds(resolved.ids, options, /*consider_agg_bitmaps=*/false, plan_out);
  COLGRAPH_RETURN_NOT_OK(CheckCancellation(options.cancel));
  // FetchMeasures records the fetch-phase histogram itself (it is a public
  // entry point too); the trace-only span here attributes the same
  // interval to this query's trace without double-counting the histogram.
  const obs::Span fetch_span(nullptr, options.trace,
                             obs::PhaseName(obs::QueryPhase::kFetch));
  return FetchMeasures(matches, resolved.ids);
}

void QueryEngine::AppendLogRecord(bool is_path_agg, AggFn fn,
                                  const GraphQuery& query,
                                  const MatchPlan& plan,
                                  const std::vector<uint32_t>& path_views,
                                  const obs::Trace& trace, uint64_t start_us,
                                  uint64_t result_cardinality) const {
  obs::QueryLogRecord rec;
  rec.kind =
      is_path_agg ? obs::QueryLogKind::kPathAgg : obs::QueryLogKind::kMatch;
  rec.fn = is_path_agg ? fn : AggFn::kSum;

  const DirectedGraph& g = query.graph();
  rec.edges = g.edges();
  for (const NodeRef& n : g.nodes()) {
    if (g.OutDegree(n) == 0 && g.InDegree(n) == 0) {
      rec.isolated_nodes.push_back(n);
    }
  }

  for (const BitmapSource& s : plan.sources) {
    if (s.kind == BitmapSource::Kind::kGraphView) {
      rec.graph_view_indexes.push_back(static_cast<uint32_t>(s.index));
    } else if (s.kind == BitmapSource::Kind::kAggViewBitmap) {
      rec.agg_view_indexes.push_back(static_cast<uint32_t>(s.index));
    }
  }
  // Aggregate views chosen by the path segmentation, on top of any bp
  // bitmaps the match plan ANDed (deduplicated, order-normalized).
  rec.agg_view_indexes.insert(rec.agg_view_indexes.end(), path_views.begin(),
                              path_views.end());
  std::sort(rec.agg_view_indexes.begin(), rec.agg_view_indexes.end());
  rec.agg_view_indexes.erase(std::unique(rec.agg_view_indexes.begin(),
                                         rec.agg_view_indexes.end()),
                             rec.agg_view_indexes.end());

  for (const obs::TraceEvent& ev : trace.events()) {
    for (size_t p = 0; p < obs::kNumQueryPhases; ++p) {
      if (std::strcmp(ev.name,
                      obs::PhaseName(static_cast<obs::QueryPhase>(p))) == 0) {
        rec.phase_us[p] += ev.duration_us;
        break;
      }
    }
  }
  rec.total_us = obs::NowMicros() - start_us;
  rec.result_cardinality = result_cardinality;
  log_->Append(rec);
}

StatusOr<MeasureTable> QueryEngine::RunGraphQuery(
    const GraphQuery& query, const QueryOptions& options) const {
  if (log_ == nullptr || !obs::QueryLogEnabled()) {
    return RunGraphQueryImpl(query, options, nullptr);
  }
  // Capture path: run with a private trace so this query's phase timings
  // are attributable even inside a batch sharing one caller trace; the
  // events are forwarded to the caller's trace afterwards.
  const uint64_t start_us = obs::NowMicros();
  obs::Trace log_trace;
  QueryOptions opts = options;
  opts.trace = &log_trace;
  MatchPlan plan;
  StatusOr<MeasureTable> result = RunGraphQueryImpl(query, opts, &plan);
  if (options.trace != nullptr) {
    for (const obs::TraceEvent& ev : log_trace.events()) {
      options.trace->Add(ev.name, start_us + ev.start_us, ev.duration_us);
    }
  }
  if (result.ok()) {
    AppendLogRecord(/*is_path_agg=*/false, AggFn::kSum, query, plan, {},
                    log_trace, start_us, result.value().num_rows());
  }
  return result;
}

obs::ExplainResult QueryEngine::Explain(const GraphQuery& query,
                                        const QueryOptions& options) const {
  obs::ExplainResult result;
  const ResolvedQuery resolved = Resolve(query);
  result.query_edges = resolved.ids;
  result.satisfiable = resolved.satisfiable;
  if (!resolved.satisfiable) return result;
  ExplainMatchInto(resolved.ids, options, /*consider_agg_bitmaps=*/false,
                   &result);
  return result;
}

obs::ExplainResult QueryEngine::ExplainAggregate(
    const GraphQuery& query, AggFn fn, const QueryOptions& options) const {
  obs::ExplainResult result;
  result.is_aggregate = true;
  const ResolvedQuery resolved = Resolve(query);
  result.query_edges = resolved.ids;
  result.satisfiable = resolved.satisfiable;
  if (!resolved.satisfiable) return result;
  // Same match plan RunAggregateQuery builds: aggregate-view bp bitmaps
  // are offered as covering bitmaps too.
  ExplainMatchInto(resolved.ids, options, /*consider_agg_bitmaps=*/true,
                   &result);

  // Path segmentation, mirroring RunAggregateQueryImpl. A cyclic query is
  // rejected by evaluation; EXPLAIN just reports zero paths for it.
  if (!query.graph().IsAcyclic()) return result;
  StatusOr<std::vector<Path>> paths = MaximalPaths(query.graph());
  if (!paths.ok()) return result;
  result.num_paths = paths.value().size();
  const ViewCatalog* views = options.use_views ? views_ : nullptr;
  for (const Path& path : paths.value()) {
    std::vector<EdgeId> elements;
    for (const Edge& e : path.Elements()) {
      const auto id = catalog_->Lookup(e);
      if (id.has_value()) elements.push_back(*id);
    }
    const PathPlan plan = PlanPathAggregation(elements, fn, views);
    for (const PathSegment& seg : plan.segments) {
      if (seg.is_view) {
        result.agg_view_indexes.push_back(seg.agg_view_column);
        result.path_elements_from_views += seg.num_elements;
      } else {
        ++result.path_elements_atomic;
      }
    }
  }
  // One list for both roles an aggregate view plays (bp bitmap in the
  // match, column in the fold) — same semantics as a query-log record.
  std::sort(result.agg_view_indexes.begin(), result.agg_view_indexes.end());
  result.agg_view_indexes.erase(
      std::unique(result.agg_view_indexes.begin(),
                  result.agg_view_indexes.end()),
      result.agg_view_indexes.end());
  return result;
}

void QueryEngine::ExplainMatchInto(const std::vector<EdgeId>& ids,
                                   const QueryOptions& options,
                                   bool consider_agg_bitmaps,
                                   obs::ExplainResult* result) const {
  const ViewCatalog* views = options.use_views ? views_ : nullptr;
  result->used_views =
      views != nullptr &&
      (views->num_graph_views() > 0 || views->num_agg_views() > 0);
  if (ids.empty()) {
    // Unconstrained query: matches everything, no bitmaps to AND.
    result->matched_records = TotalRecords();
    return;
  }
  // EXPLAIN annotates the primary store's plan. An edge only tail
  // datasets know makes that plan an empty conjunct — report it as such
  // instead of indexing columns the primary does not have.
  if (HasTails() &&
      std::any_of(ids.begin(), ids.end(), [&](EdgeId id) {
        return id >= relation_->num_edge_columns();
      })) {
    result->matched_records = 0;
    return;
  }

  AnnotatedMatchPlan plan = PlanMatchAnnotated(ids, views,
                                               consider_agg_bitmaps);
  if (options.order_by_selectivity) {
    // Mirror MatchIds' execution order exactly (stable sort is not needed
    // there either: SourceCardinality is a strict weak order over the same
    // values, and equal-cardinality ties keep plan order via std::sort's
    // determinism on identical input).
    std::sort(plan.sources.begin(), plan.sources.end(),
              [&](const AnnotatedSource& a, const AnnotatedSource& b) {
                return SourceCardinality(a.source) <
                       SourceCardinality(b.source);
              });
  }

  Bitmap running;
  bool first = true;
  for (const AnnotatedSource& annotated : plan.sources) {
    obs::ExplainSource out;
    out.source = annotated.source;
    out.covers = annotated.covers;
    out.estimated_cardinality = SourceCardinality(annotated.source);
    out.hybrid = PeekSourceHybrid(annotated.source) != nullptr;
    if (first) {
      running = FetchSource(annotated.source);
      first = false;
    } else if (!running.None()) {
      running.And(FetchSource(annotated.source));
    }
    out.cumulative_cardinality = running.Count();
    if (annotated.source.kind == BitmapSource::Kind::kEdge) {
      result->residual_edges.push_back(static_cast<EdgeId>(
          annotated.source.index));
    } else if (annotated.source.kind == BitmapSource::Kind::kGraphView) {
      result->graph_view_indexes.push_back(annotated.source.index);
    } else if (annotated.source.kind == BitmapSource::Kind::kAggViewBitmap) {
      result->agg_view_indexes.push_back(annotated.source.index);
    }
    result->sources.push_back(std::move(out));
  }
  std::sort(result->residual_edges.begin(), result->residual_edges.end());
  result->matched_records = running.Count();
}

}  // namespace colgraph
