// Aggregate functions for path aggregation (Section 3.4). SUM/COUNT/MIN/MAX
// are distributive: the aggregate of a path equals the combination of the
// aggregates of its segments, which is exactly what lets aggregate graph
// views (Section 5.1.2) substitute a precomputed segment value for the
// segment's individual measures. AVG is algebraic: it is answered from the
// distributive pair (SUM, COUNT).
#pragma once

#include <algorithm>
#include <limits>
#include <string>

namespace colgraph {

enum class AggFn : uint8_t {
  kSum = 0,
  kCount,
  kMin,
  kMax,
  kAvg,  ///< algebraic; materialized as SUM and COUNT sub-aggregates
};

inline const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

/// \brief Running accumulator for a distributive function.
///
/// Identity-initialised; Add() folds one measure, Merge() folds a segment
/// aggregate (the view fast path). For kAvg use two accumulators (kSum and
/// kCount) and divide at the end.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggFn fn) : fn_(fn) { Reset(); }

  void Reset() {
    count_ = 0;
    switch (fn_) {
      case AggFn::kSum:
      case AggFn::kCount:
      case AggFn::kAvg:
        value_ = 0.0;
        break;
      case AggFn::kMin:
        value_ = std::numeric_limits<double>::infinity();
        break;
      case AggFn::kMax:
        value_ = -std::numeric_limits<double>::infinity();
        break;
    }
  }

  /// Folds one raw measure.
  void Add(double measure) {
    ++count_;
    switch (fn_) {
      case AggFn::kSum:
      case AggFn::kAvg:
        value_ += measure;
        break;
      case AggFn::kCount:
        value_ += 1.0;
        break;
      case AggFn::kMin:
        value_ = std::min(value_, measure);
        break;
      case AggFn::kMax:
        value_ = std::max(value_, measure);
        break;
    }
  }

  /// Folds a precomputed segment aggregate covering `elements` measures.
  void Merge(double segment_value, size_t elements) {
    count_ += elements;
    switch (fn_) {
      case AggFn::kSum:
      case AggFn::kCount:
        value_ += segment_value;
        break;
      case AggFn::kAvg:
        value_ += segment_value;  // segment stores the SUM sub-aggregate
        break;
      case AggFn::kMin:
        value_ = std::min(value_, segment_value);
        break;
      case AggFn::kMax:
        value_ = std::max(value_, segment_value);
        break;
    }
  }

  /// Final result; AVG divides the summed sub-aggregate by the count.
  double Result() const {
    if (fn_ == AggFn::kAvg) {
      return count_ == 0 ? 0.0 : value_ / static_cast<double>(count_);
    }
    return value_;
  }

  size_t count() const { return count_; }

 private:
  AggFn fn_;
  double value_ = 0.0;
  size_t count_ = 0;
};

}  // namespace colgraph
