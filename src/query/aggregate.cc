// Path-aggregation execution (Section 3.4): F_Gq retrieves the records
// matching Gq and folds F along every maximal path of the query, per
// record. With views (Section 5.1.2) each path is first segmented into
// materialized aggregate-view segments plus atomic elements; the fold then
// touches one column per segment instead of one per element.
#include "query/engine.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace colgraph {

namespace {

// The aggregate fold visits every (path, record) pair; the token is polled
// every kCancelCheckStride records so a fired deadline abandons the fold
// within a bounded number of accumulator steps while keeping the poll off
// the per-record hot path.
constexpr size_t kCancelCheckStride = 4096;

}  // namespace

std::vector<QueryEngine::TailFold> QueryEngine::TailFoldColumns(
    const std::vector<EdgeId>& elements) const {
  std::vector<TailFold> out;
  if (!HasTails()) return out;
  out.reserve(tails_->size());
  for (const RelationSegment& seg : *tails_) {
    TailFold fold;
    fold.base = seg.base;
    fold.num = seg.relation->num_records();
    fold.columns.reserve(elements.size());
    for (const EdgeId e : elements) {
      fold.columns.push_back(e < seg.relation->num_edge_columns()
                                 ? &seg.relation->FetchMeasureColumn(e)
                                 : nullptr);
    }
    out.push_back(std::move(fold));
  }
  return out;
}

bool QueryEngine::FoldTail(const std::vector<TailFold>& tails, AggFn fn,
                           RecordId r, double* out) const {
  for (const TailFold& t : tails) {
    if (r < t.base || r >= t.base + t.num) continue;
    // Tail records fold atomically, element by element in path order —
    // views cover the primary store only (DESIGN.md §14).
    AggAccumulator acc(fn);
    for (const MeasureColumn* col : t.columns) {
      if (col == nullptr) continue;
      const auto v = col->Get(r - t.base);
      if (v.has_value()) acc.Add(*v);
    }
    relation_->stats().values_fetched += t.columns.size();
    *out = acc.Result();
    return true;
  }
  return false;
}

StatusOr<PathAggResult> QueryEngine::AggregateAlongPath(
    const Path& path, AggFn fn, const QueryOptions& options) const {
  PathAggResult result;
  result.paths.push_back(path);

  // Resolve the path's measurable elements. A structural edge the catalog
  // has never seen makes the path unsatisfiable; node measures that were
  // never recorded have no column and simply do not constrain or
  // contribute (their columns were dropped from the schema, Section 4.1).
  std::vector<EdgeId> elements;
  for (const Edge& e : path.Elements()) {
    const auto id = catalog_->Lookup(e);
    if (!id.has_value()) {
      if (!e.IsNode()) {
        result.values.emplace_back();
        return result;  // unsatisfiable: no record ever had this edge
      }
      continue;
    }
    elements.push_back(*id);
  }

  const Bitmap matches =
      MatchIds(elements, options, /*consider_agg_bitmaps=*/true);
  matches.AppendSetBits(&result.records);

  const ViewCatalog* views = options.use_views ? views_ : nullptr;
  const PathPlan plan = PlanPathAggregation(elements, fn, views);

  // An element only tail datasets know means no primary record matches the
  // path (the primary has no column for it), so the primary's segment
  // columns are never consulted — and must not be fetched out of range.
  const bool primary_covers_path =
      !HasTails() ||
      std::all_of(elements.begin(), elements.end(), [&](EdgeId e) {
        return e < relation_->num_edge_columns();
      });
  std::vector<std::pair<const MeasureColumn*, size_t>> segment_columns;
  if (primary_covers_path) {
    segment_columns.reserve(plan.segments.size());
    for (const PathSegment& seg : plan.segments) {
      const MeasureColumn& col =
          seg.is_view ? relation_->FetchAggregateView(seg.agg_view_column)
                      : relation_->FetchMeasureColumn(seg.atom);
      segment_columns.emplace_back(&col, seg.is_view ? seg.num_elements : 0);
    }
  }
  const std::vector<TailFold> tail_folds = TailFoldColumns(elements);

  const obs::Span agg_span(obs::QueryPhase::kAggregate, options.trace);
  std::vector<double> values;
  values.reserve(result.records.size());
  size_t folded = 0;
  for (RecordId r : result.records) {
    if (++folded % kCancelCheckStride == 0) {
      COLGRAPH_RETURN_NOT_OK(CheckCancellation(options.cancel));
    }
    double tail_value = 0;
    if (FoldTail(tail_folds, fn, r, &tail_value)) {
      values.push_back(tail_value);
      continue;
    }
    AggAccumulator acc(fn);
    for (const auto& [col, view_elements] : segment_columns) {
      const auto v = col->Get(r);
      if (!v.has_value()) continue;
      if (view_elements > 0) {
        acc.Merge(*v, view_elements);
      } else {
        acc.Add(*v);
      }
    }
    relation_->stats().values_fetched += segment_columns.size();
    values.push_back(acc.Result());
  }
  result.values.push_back(std::move(values));
  return result;
}

StatusOr<PathAggResult> QueryEngine::RunAggregateQuery(
    const GraphQuery& query, AggFn fn, const QueryOptions& options) const {
  if (log_ == nullptr || !obs::QueryLogEnabled()) {
    return RunAggregateQueryImpl(query, fn, options, nullptr, nullptr);
  }
  // Capture path — see RunGraphQuery for the private-trace rationale.
  const uint64_t start_us = obs::NowMicros();
  obs::Trace log_trace;
  QueryOptions opts = options;
  opts.trace = &log_trace;
  MatchPlan plan;
  std::vector<uint32_t> path_views;
  StatusOr<PathAggResult> result =
      RunAggregateQueryImpl(query, fn, opts, &plan, &path_views);
  if (options.trace != nullptr) {
    for (const obs::TraceEvent& ev : log_trace.events()) {
      options.trace->Add(ev.name, start_us + ev.start_us, ev.duration_us);
    }
  }
  if (result.ok()) {
    AppendLogRecord(/*is_path_agg=*/true, fn, query, plan, path_views,
                    log_trace, start_us, result.value().records.size());
  }
  return result;
}

StatusOr<PathAggResult> QueryEngine::RunAggregateQueryImpl(
    const GraphQuery& query, AggFn fn, const QueryOptions& options,
    MatchPlan* plan_out, std::vector<uint32_t>* path_views_out) const {
  if (!query.graph().IsAcyclic()) {
    return Status::InvalidArgument(
        "path aggregation requires a DAG query; flatten cycles first "
        "(Section 6.2)");
  }

  static obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("query.agg.count");
  static obs::LatencyHistogram& total =
      obs::MetricsRegistry::Global().GetHistogram("query.agg.total_us");
  if (obs::MetricsEnabled()) queries.Increment();
  const obs::Span total_span(&total, nullptr, "query");

  COLGRAPH_RETURN_NOT_OK(CheckCancellation(options.cancel));

  PathAggResult result;
  ResolvedQuery resolved;
  {
    const obs::Span span(obs::QueryPhase::kResolve, options.trace);
    resolved = Resolve(query);
  }
  if (!resolved.satisfiable) return result;

  // Structural match. Aggregate-view bitmaps are offered as covering
  // bitmaps too: for an aggregate query whose paths are materialized, bp
  // both filters and pays for itself.
  const Bitmap matches =
      MatchIds(resolved.ids, options, /*consider_agg_bitmaps=*/true, plan_out);
  matches.AppendSetBits(&result.records);

  COLGRAPH_ASSIGN_OR_RETURN(result.paths, MaximalPaths(query.graph()));

  const ViewCatalog* views = options.use_views ? views_ : nullptr;
  const AggFn stored_fn = fn;  // plans match on the query's function

  const obs::Span agg_span(obs::QueryPhase::kAggregate, options.trace);
  size_t folded = 0;
  for (const Path& path : result.paths) {
    COLGRAPH_RETURN_NOT_OK(CheckCancellation(options.cancel));
    // Catalog-resolvable elements of the path, in path order. Elements
    // without a column (e.g. nodes with no recorded measure) contribute
    // nothing to the aggregate.
    std::vector<EdgeId> elements;
    for (const Edge& e : path.Elements()) {
      const auto id = catalog_->Lookup(e);
      if (id.has_value()) elements.push_back(*id);
    }

    const PathPlan plan = PlanPathAggregation(elements, stored_fn, views);

    // Resolve the plan's columns once; accounting counts one measure-column
    // fetch per segment — the cost reduction the views exist to provide.
    // Skipped when an element exists only in tail datasets: no primary
    // record can match the query then, so the primary columns (which do
    // not extend that far) are never consulted.
    struct SegmentColumn {
      const MeasureColumn* column;
      bool is_view;
      size_t num_elements;
    };
    const bool primary_covers_path =
        !HasTails() ||
        std::all_of(elements.begin(), elements.end(), [&](EdgeId e) {
          return e < relation_->num_edge_columns();
        });
    std::vector<SegmentColumn> segment_columns;
    if (primary_covers_path) {
      segment_columns.reserve(plan.segments.size());
      for (const PathSegment& seg : plan.segments) {
        const MeasureColumn& col =
            seg.is_view ? relation_->FetchAggregateView(seg.agg_view_column)
                        : relation_->FetchMeasureColumn(seg.atom);
        segment_columns.push_back({&col, seg.is_view, seg.num_elements});
        if (seg.is_view && path_views_out != nullptr) {
          path_views_out->push_back(
              static_cast<uint32_t>(seg.agg_view_column));
        }
      }
      if (!plan.segments.empty()) ++relation_->stats().partitions_touched;
    }
    const std::vector<TailFold> tail_folds = TailFoldColumns(elements);

    std::vector<double> values;
    values.reserve(result.records.size());
    for (RecordId r : result.records) {
      if (++folded % kCancelCheckStride == 0) {
        COLGRAPH_RETURN_NOT_OK(CheckCancellation(options.cancel));
      }
      double tail_value = 0;
      if (FoldTail(tail_folds, fn, r, &tail_value)) {
        values.push_back(tail_value);
        continue;
      }
      AggAccumulator acc(fn);
      for (const SegmentColumn& seg : segment_columns) {
        const auto v = seg.column->Get(r);
        if (!v.has_value()) continue;  // record lacks this optional element
        if (seg.is_view) {
          acc.Merge(*v, seg.num_elements);
        } else {
          acc.Add(*v);
        }
      }
      relation_->stats().values_fetched += segment_columns.size();
      values.push_back(acc.Result());
    }
    result.values.push_back(std::move(values));
  }
  return result;
}

}  // namespace colgraph
