// Query evaluation over the master relation (Sections 4.2, 5.3): graph
// queries reduce to bitmap conjunctions plus measure fetches; path
// aggregation folds an aggregate function along each maximal path of the
// query, reusing materialized aggregate views where possible.
#pragma once

#include <vector>

#include "bitmap/bitmap.h"
#include "columnstore/master_relation.h"
#include "graph/catalog.h"
#include "graph/graph.h"
#include "graph/path.h"
#include "obs/explain.h"
#include "query/agg_fn.h"
#include "query/rewriter.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "views/view_defs.h"

namespace colgraph {

namespace obs {
class Trace;
class QueryLog;
}  // namespace obs

/// \brief Column-major result of a measure fetch: `columns[i][r]` is the
/// measure of `edges[i]` for the r-th matching record (NaN when NULL).
struct MeasureTable {
  std::vector<RecordId> records;
  std::vector<EdgeId> edges;
  std::vector<std::vector<double>> columns;

  size_t num_rows() const { return records.size(); }
  size_t num_values() const { return num_rows() * columns.size(); }
};

/// \brief Result of a path-aggregation query F_Gq: one aggregate per
/// (maximal path, matching record) pair; `values[p][r]` aligns with
/// `paths[p]` and `records[r]`.
struct PathAggResult {
  std::vector<Path> paths;
  std::vector<RecordId> records;
  std::vector<std::vector<double>> values;
};

struct QueryOptions {
  /// Rewrite queries against materialized views (Section 5.3). When false
  /// the evaluation is oblivious to views: one bitmap per query edge, one
  /// measure column per element — the paper's baseline plan.
  bool use_views = true;
  /// AND the most selective bitmaps first (cardinalities are free from the
  /// sealed columns), maximizing early short-circuit on empty results.
  bool order_by_selectivity = true;
  /// Optional span collector: when set, every evaluation phase (resolve,
  /// rewrite, bitmap-AND, fetch, aggregate) appends a timed event. The
  /// Trace is thread-safe, so one may be shared by a whole EvaluateBatch.
  /// Phase histograms in obs::MetricsRegistry::Global() are fed whether or
  /// not a trace is attached (gated by obs::MetricsEnabled()).
  obs::Trace* trace = nullptr;
  /// Cooperative cancellation (DESIGN.md §12): when set, the evaluation
  /// loops poll the token at phase boundaries, per batch query, and every
  /// few thousand records of an aggregate fold, abandoning the query with
  /// Status::DeadlineExceeded / Status::Cancelled once it fires. The token
  /// must outlive the call; null means "never cancelled" (zero overhead).
  const CancellationToken* cancel = nullptr;
};

class ThreadPool;

/// \brief One extra store of records behind a query: an immutable tail
/// dataset (DESIGN.md §14) whose record 0 sits at global record id `base`.
/// The primary relation always occupies [0, primary.num_records()); tails
/// stack behind it in ingest order.
struct RelationSegment {
  const MasterRelation* relation = nullptr;
  size_t base = 0;
};

/// \brief Evaluator bound to one relation + catalogs, plus optional tail
/// datasets (incremental ingest, DESIGN.md §14).
///
/// Thread-safe: all query entry points are const reads over the sealed
/// relation(s) and catalogs, and the shared FetchStats counters are relaxed
/// atomics, so any number of threads may evaluate queries concurrently
/// (TSan-verified by tests/concurrency_test.cc). Materializing or
/// replacing *views* concurrently with queries that use those views is the
/// one excluded combination — see DESIGN.md §8 for the contract.
class QueryEngine {
 public:
  /// `query_log` (optional) captures every executed query — structure,
  /// chosen views, per-phase timings, result cardinality — for replay and
  /// workload-driven view advice (DESIGN.md §10). The log outlives the
  /// evaluator; hooks are skipped when obs::QueryLogEnabled() is off.
  ///
  /// `tails` (optional) appends immutable tail datasets behind the primary
  /// relation: matches become the OR of the per-dataset matches (each
  /// blitted at its segment base), fetches and aggregate folds route every
  /// global record id to the segment that owns it. Views cover the primary
  /// only — tail records are always evaluated from their atomic columns.
  /// nullptr or empty reproduces single-relation behavior bit for bit.
  QueryEngine(const MasterRelation* relation, const EdgeCatalog* catalog,
              const ViewCatalog* views, obs::QueryLog* query_log = nullptr,
              const std::vector<RelationSegment>* tails = nullptr)
      : relation_(relation),
        catalog_(catalog),
        views_(views),
        log_(query_log),
        tails_(tails) {}

  /// Resolves the query's structural elements to edge-column ids.
  ///
  /// A structural *edge* absent from the catalog makes the query
  /// unsatisfiable (no record ever contained it) — flagged via `satisfiable`.
  /// An isolated *node* without a measure column is unconstrained and
  /// skipped (its column was dropped from the schema, Section 4.1).
  struct ResolvedQuery {
    std::vector<EdgeId> ids;
    bool satisfiable = true;
  };
  ResolvedQuery Resolve(const GraphQuery& query) const;

  /// Records containing the query subgraph (bitmap over record ids).
  Bitmap Match(const GraphQuery& query, const QueryOptions& options = {}) const;

  /// Match via an explicit element-id set. `plan_out` (optional) receives
  /// the executed plan — sources in AND order, after the selectivity sort —
  /// so callers (the query-log hooks) can record the rewriter's choices
  /// without re-planning.
  Bitmap MatchIds(const std::vector<EdgeId>& ids, const QueryOptions& options,
                  bool consider_agg_bitmaps,
                  MatchPlan* plan_out = nullptr) const;

  // Logical combinators over answer sets (Section 3.2):
  // [Gq1 AND Gq2] = intersection, [Gq1 OR Gq2] = union,
  // [Gq1 AND NOT Gq2] = difference.
  static Bitmap AndSets(const Bitmap& a, const Bitmap& b);
  static Bitmap OrSets(const Bitmap& a, const Bitmap& b);
  static Bitmap AndNotSets(const Bitmap& a, const Bitmap& b);

  /// Fetches the measures of `edges` for every record in `matches`,
  /// honoring vertical partitioning: when the columns span p partitions,
  /// the per-partition column groups are assembled separately and
  /// merge-joined on recid (p-1 joins), reproducing the Figure 5 effect.
  MeasureTable FetchMeasures(const Bitmap& matches,
                             const std::vector<EdgeId>& edges) const;

  /// Full graph query: match then fetch all of the query's measures.
  [[nodiscard]] StatusOr<MeasureTable> RunGraphQuery(const GraphQuery& query,
                                       const QueryOptions& options = {}) const;

  /// Path-aggregation query F_Gq (Section 3.4). The query graph must be a
  /// DAG (flatten cyclic queries first).
  [[nodiscard]] StatusOr<PathAggResult> RunAggregateQuery(
      const GraphQuery& query, AggFn fn,
      const QueryOptions& options = {}) const;

  // --- Batch evaluation (inter-query parallelism). ---
  //
  // A workload of independent queries fans out across `pool` (nullptr or a
  // serial pool = inline, deterministic order). Results land in pre-sized,
  // index-addressed slots — never appended — so the output is bit-identical
  // to serial evaluation for every thread count. The first failing query
  // (lowest index) aborts the batch with its Status.

  /// Evaluates `queries[i]` into slot i of the result, one RunGraphQuery
  /// per query, in parallel across `pool`.
  [[nodiscard]] StatusOr<std::vector<MeasureTable>> EvaluateBatch(
      const std::vector<GraphQuery>& queries, const QueryOptions& options = {},
      ThreadPool* pool = nullptr) const;

  /// Evaluates `queries[i]` into slot i, one RunAggregateQuery(fn) per
  /// query, in parallel across `pool`.
  [[nodiscard]] StatusOr<std::vector<PathAggResult>> EvaluatePathAggBatch(
      const std::vector<GraphQuery>& queries, AggFn fn,
      const QueryOptions& options = {}, ThreadPool* pool = nullptr) const;

  /// EXPLAIN for a graph query: the rewriter's decisions (views chosen,
  /// residual atomic edges) plus estimated vs. actual bitmap
  /// cardinalities, without fetching any measures. The sources are exactly
  /// the plan MatchIds would AND, in the same order (including the
  /// selectivity sort). Reads the plan's bitmaps to compute the running
  /// conjunction, so it counts against FetchStats like a Match would.
  obs::ExplainResult Explain(const GraphQuery& query,
                             const QueryOptions& options = {}) const;

  /// EXPLAIN for a path-aggregation query: the match plan RunAggregateQuery
  /// would AND (aggregate-view bp bitmaps included, so the sources and
  /// their estimated/actual cardinalities match the kAggViewBitmap
  /// behavior) plus the path segmentation — which maximal paths fold over
  /// materialized aggregate-view columns vs. atomic measure columns. A
  /// cyclic query (which evaluation rejects) reports zero paths.
  obs::ExplainResult ExplainAggregate(const GraphQuery& query, AggFn fn,
                                      const QueryOptions& options = {}) const;

  /// Aggregates F along one explicit path, honoring open ends
  /// (Section 3.3): e.g. (D,E,G) folds the edges and E's own measure but
  /// excludes the endpoint measures of D and G. Matches are the records
  /// containing every element of the path.
  [[nodiscard]] StatusOr<PathAggResult> AggregateAlongPath(
      const Path& path, AggFn fn, const QueryOptions& options = {}) const;

  const MasterRelation& relation() const { return *relation_; }

 private:
  bool HasTails() const { return tails_ != nullptr && !tails_->empty(); }
  /// Global record-id domain: primary records plus every tail's records.
  size_t TotalRecords() const;
  /// Tail-local match: plain per-edge bitmap AND over one tail dataset
  /// (no views, no hybrid pipeline — tails are small appendices). An edge
  /// id the tail has no column for matches nothing in it.
  Bitmap MatchIdsInTail(const MasterRelation& tail,
                        const std::vector<EdgeId>& ids) const;

  /// One tail's fold inputs for a path: `columns[i]` is the tail's column
  /// for the path's i-th measurable element (nullptr when the tail never
  /// saw that element).
  struct TailFold {
    size_t base = 0;
    size_t num = 0;
    std::vector<const MeasureColumn*> columns;
  };
  std::vector<TailFold> TailFoldColumns(
      const std::vector<EdgeId>& elements) const;
  /// If global record `r` lives in a tail, folds `fn` over the tail's
  /// atomic element columns into *out and returns true; false means `r`
  /// belongs to the primary relation.
  bool FoldTail(const std::vector<TailFold>& tails, AggFn fn, RecordId r,
                double* out) const;

  const Bitmap& FetchSource(const BitmapSource& source) const;
  /// A fetched source under both encodings: `plain` is always valid;
  /// `hybrid` is the column's seal-time hybrid sidecar or nullptr. One
  /// FetchSourceRef counts exactly one bitmap fetch (the hybrid peek is
  /// accounting-free), so FetchStats are identical whichever encoding the
  /// AND loop consumes.
  struct SourceRef {
    const Bitmap* plain = nullptr;
    const HybridBitmap* hybrid = nullptr;
  };
  SourceRef FetchSourceRef(const BitmapSource& source) const;
  /// The source's hybrid sidecar (nullptr when plain-encoded); no
  /// accounting.
  const HybridBitmap* PeekSourceHybrid(const BitmapSource& source) const;
  /// Set-bit count of a plan source, without counting as a fetch.
  size_t SourceCardinality(const BitmapSource& source) const;

  /// Shared EXPLAIN core: fills `result` with the annotated match plan for
  /// resolved edge ids (sources in AND order, per-step estimated vs.
  /// actual cardinalities, residual edges, chosen view indexes).
  void ExplainMatchInto(const std::vector<EdgeId>& ids,
                        const QueryOptions& options,
                        bool consider_agg_bitmaps,
                        obs::ExplainResult* result) const;

  // Un-logged evaluation bodies; the public entry points wrap them with
  // the query-log capture when a log is attached.
  [[nodiscard]] StatusOr<MeasureTable> RunGraphQueryImpl(
      const GraphQuery& query, const QueryOptions& options,
      MatchPlan* plan_out) const;
  [[nodiscard]] StatusOr<PathAggResult> RunAggregateQueryImpl(
      const GraphQuery& query, AggFn fn, const QueryOptions& options,
      MatchPlan* plan_out, std::vector<uint32_t>* path_views_out) const;
  // Builds and appends one log record from an executed query's facts.
  void AppendLogRecord(bool is_path_agg, AggFn fn, const GraphQuery& query,
                       const MatchPlan& plan,
                       const std::vector<uint32_t>& path_views,
                       const obs::Trace& trace, uint64_t start_us,
                       uint64_t result_cardinality) const;

  const MasterRelation* relation_;
  const EdgeCatalog* catalog_;
  const ViewCatalog* views_;  // may be null (no views materialized)
  obs::QueryLog* log_;        // may be null (no capture configured)
  /// Tail datasets behind the primary; null/empty = single-relation mode.
  const std::vector<RelationSegment>* tails_;
};

}  // namespace colgraph
