// The master relation R(recid, m1..mn, b1..bn, bv.., mp.., bp..) of
// Section 4.1/5.1.3, with the automatic vertical partitioning of
// Section 6.1 (sub-relations of at most `partition_width` measure columns,
// linked by recid).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bitmap/bitmap.h"
#include "columnstore/column.h"
#include "graph/graph.h"
#include "util/atomic_counter.h"
#include "util/status.h"

namespace colgraph {

/// \brief Column-fetch accounting, the store's analogue of the paper's I/O
/// cost model ("cost of a query is proportional to the number of bitmaps
/// fetched"). Benches report these next to wall-clock times.
///
/// The counters are relaxed atomics (util/atomic_counter.h) so concurrent
/// query evaluation over one sealed relation is free of data races; totals
/// are exact because every increment is atomic, and reading them after the
/// parallel section completes is ordered by the pool's completion
/// handshake. Reset() is not atomic as a whole — call it only while no
/// reader is running.
struct FetchStats {
  RelaxedCounter bitmap_columns_fetched;
  RelaxedCounter measure_columns_fetched;
  RelaxedCounter values_fetched;
  RelaxedCounter partitions_touched;
  RelaxedCounter partition_joins;  ///< cross-partition recid merges performed

  void Reset() { *this = FetchStats(); }
};

struct MasterRelationOptions {
  /// Maximum number of measure columns per vertical sub-relation. Queries
  /// whose measure columns span p partitions pay p-1 recid joins (Fig. 5).
  size_t partition_width = 1000;
  /// When true (default), columns at or below the hybrid density threshold
  /// (BitmapColumn::kHybridDensityDivisor) get a roaring-style HybridBitmap
  /// encoding at seal time, which the query engine's AND loop consumes.
  /// False pins every column to the plain/EWAH path (ablation, and the
  /// byte-identical-results determinism check).
  bool hybrid_bitmaps = true;
};

/// \brief Columnar storage for a collection of shredded graph records.
///
/// Ingest protocol: AddRecord() repeatedly (record ids are assigned densely
/// in arrival order), then Seal() exactly once; all reads require a sealed
/// relation. Views are added after sealing via AddGraphView /
/// AddAggregateView.
class MasterRelation {
 public:
  explicit MasterRelation(MasterRelationOptions options = {})
      : options_(options) {}

  /// Appends one shredded record: (edge-id, measure) pairs. Edge ids beyond
  /// the current universe grow the relation. Duplicate edge ids within one
  /// record are rejected.
  [[nodiscard]] StatusOr<RecordId> AddRecord(
      const std::vector<std::pair<EdgeId, double>>& elements);

  /// Freezes the relation: sizes every presence bitmap to the final record
  /// count and builds rank directories.
  [[nodiscard]] Status Seal();
  /// Re-opens a sealed relation for incremental ingest (new records and, if
  /// needed, new columns). Materialized views become stale: the caller
  /// must refresh them after the next Seal() (ColGraphEngine::FinishAppend
  /// does). Queries are rejected until resealed.
  [[nodiscard]] Status Unseal();
  bool sealed() const { return sealed_; }

  size_t num_records() const { return num_records_; }
  /// Number of distinct edge ids (measure/bitmap column pairs).
  size_t num_edge_columns() const { return columns_.size(); }

  /// Grows the universe to at least `n` edge columns (pre-sizing from a
  /// catalog avoids growth during ingest).
  void EnsureColumns(size_t n);

  // --- Reads (sealed relation only). Accessors count fetches. ---

  /// The bitmap column b_i of an edge.
  const Bitmap& FetchEdgeBitmap(EdgeId id) const;
  /// The measure column m_i of an edge.
  const MeasureColumn& FetchMeasureColumn(EdgeId id) const;
  /// Structure-only access that bypasses fetch accounting (used by
  /// materialization, which the paper performs offline "in a single pass").
  const MeasureColumn& PeekMeasureColumn(EdgeId id) const;

  // --- Views (Section 5). ---

  /// Adds a graph-view bitmap column bv; returns its view index.
  size_t AddGraphView(Bitmap bits);
  /// Replaces a view column in place (view refresh after incremental
  /// ingest).
  void ReplaceGraphView(size_t view_index, Bitmap bits);
  void ReplaceAggregateView(size_t view_index, MeasureColumn column);
  const Bitmap& FetchGraphView(size_t view_index) const;
  size_t num_graph_views() const { return graph_views_.size(); }

  /// Reconstructs a sealed relation from stored columns (persistence path).
  static StatusOr<MasterRelation> FromColumns(size_t num_records,
                                              std::vector<MeasureColumn> cols,
                                              MasterRelationOptions options);

  /// Adds an aggregate graph view (mp, bp); returns its view index.
  size_t AddAggregateView(MeasureColumn column);
  const MeasureColumn& FetchAggregateView(size_t view_index) const;
  /// The bitmap half bp of an aggregate view, fetched alone (counted as a
  /// bitmap-column fetch; mp and bp are physically separate columns).
  const Bitmap& FetchAggregateViewBitmap(size_t view_index) const;
  size_t num_aggregate_views() const { return agg_views_.size(); }

  /// Accounting-free view access (persistence / maintenance paths).
  const Bitmap& PeekGraphView(size_t view_index) const {
    return graph_views_[view_index].bits();
  }
  const BitmapColumn& PeekGraphViewColumn(size_t view_index) const {
    return graph_views_[view_index];
  }
  const MeasureColumn& PeekAggregateView(size_t view_index) const {
    return agg_views_[view_index];
  }

  // --- Hybrid encodings (seal-time per-column choice). ---
  //
  // Nullptr when the column is plain-encoded. These do not count as
  // fetches: the engine fetches a source once through the Fetch* accessors
  // above and then peeks the hybrid sidecar of the same column, so fetch
  // accounting is identical whichever encoding the AND loop consumes.
  const HybridBitmap* PeekEdgeBitmapHybrid(EdgeId id) const {
    return columns_[id].presence().hybrid();
  }
  const HybridBitmap* PeekGraphViewHybrid(size_t view_index) const {
    return graph_views_[view_index].hybrid();
  }
  const HybridBitmap* PeekAggViewBitmapHybrid(size_t view_index) const {
    return agg_views_[view_index].presence().hybrid();
  }

  /// O(1) cardinality statistics (cached at seal time) — the planner's
  /// selectivity estimates.
  size_t EdgeBitmapCardinality(EdgeId id) const {
    return columns_[id].presence().Count();
  }
  size_t GraphViewCardinality(size_t view_index) const {
    return graph_views_[view_index].Count();
  }
  size_t AggViewCardinality(size_t view_index) const {
    return agg_views_[view_index].presence().Count();
  }

  // --- Partitioning (Section 6.1). ---

  size_t partition_width() const { return options_.partition_width; }
  size_t PartitionOf(EdgeId id) const { return id / options_.partition_width; }
  /// Number of vertical sub-relations currently needed by the universe.
  size_t num_partitions() const {
    return columns_.empty()
               ? 1
               : (columns_.size() + options_.partition_width - 1) /
                     options_.partition_width;
  }
  /// Distinct partitions spanned by a set of measure columns.
  size_t CountPartitions(const std::vector<EdgeId>& ids) const;

  // --- Accounting & footprint. ---

  FetchStats& stats() const { return stats_; }

  /// In-memory footprint of all columns (bytes).
  size_t MemoryBytes() const;
  /// Estimated on-disk footprint: EWAH-compressed bitmaps + packed values.
  /// This is what Figure 4 plots: independent of record density, since
  /// NULLs occupy no space.
  size_t DiskBytes() const;

 private:
  MasterRelationOptions options_;
  size_t num_records_ = 0;
  bool sealed_ = false;
  std::vector<MeasureColumn> columns_;  // indexed by EdgeId
  std::vector<BitmapColumn> graph_views_;
  std::vector<MeasureColumn> agg_views_;
  mutable FetchStats stats_;
};

}  // namespace colgraph
