#include "columnstore/persistence.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "columnstore/io_util.h"

namespace colgraph {

namespace {
constexpr uint32_t kMagic = 0x4347524C;  // "CGRL"
constexpr uint32_t kVersion = 1;
}  // namespace

Status WriteRelation(const MasterRelation& relation, const std::string& path) {
  if (!relation.sealed()) {
    return Status::InvalidArgument("can only persist a sealed relation");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);

  io::WritePod(out, kMagic);
  io::WritePod(out, kVersion);
  io::WritePod(out, static_cast<uint64_t>(relation.num_records()));
  io::WritePod(out, static_cast<uint64_t>(relation.num_edge_columns()));
  for (EdgeId id = 0; id < relation.num_edge_columns(); ++id) {
    io::WriteMeasureColumn(out, relation.PeekMeasureColumn(id));
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<MasterRelation> ReadRelation(const std::string& path,
                                      MasterRelationOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);

  uint32_t magic = 0, version = 0;
  if (!io::ReadPod(in, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!io::ReadPod(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  uint64_t num_records = 0, num_columns = 0;
  if (!io::ReadPod(in, &num_records) || !io::ReadPod(in, &num_columns)) {
    return Status::Corruption("truncated header in " + path);
  }
  std::vector<MeasureColumn> columns;
  columns.reserve(num_columns);
  for (uint64_t i = 0; i < num_columns; ++i) {
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col, io::ReadMeasureColumn(in));
    columns.push_back(std::move(col));
  }
  return MasterRelation::FromColumns(num_records, std::move(columns), options);
}

}  // namespace colgraph
