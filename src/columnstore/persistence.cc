#include "columnstore/persistence.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "columnstore/io_util.h"
#include "columnstore/mem_map.h"
#include "util/failpoint.h"

namespace colgraph {

namespace {
constexpr uint32_t kMagic = 0x4347524C;  // "CGRL"
// v4 moves column payloads into page-aligned extents behind an extent
// directory (the mmap layout, DESIGN.md §14); v1-v3 files still load.
constexpr uint32_t kVersion = 4;
// Extent directory section: u64 count + {u64 offset, u64 len} per column,
// inside a standard section frame.
constexpr size_t kExtentEntryBytes = 16;
constexpr size_t kSectionFrameBytes = 12;  // u64 len + u32 crc

}  // namespace

Status WriteRelation(const MasterRelation& relation, const std::string& path) {
  return internal::WriteRelationAtVersion(relation, path, kVersion);
}

StatusOr<MasterRelation> ReadRelation(const std::string& path,
                                      MasterRelationOptions options) {
  io::RemoveStaleTemp(path);
  COLGRAPH_ASSIGN_OR_RETURN(io::Reader in,
                            io::Reader::OpenMapped(path, kMagic));
  return internal::ReadRelationFrom(std::move(in), path, std::move(options));
}

StatusOr<MasterRelation> DecodeRelation(std::vector<char> data,
                                        const std::string& what,
                                        MasterRelationOptions options) {
  COLGRAPH_ASSIGN_OR_RETURN(
      io::Reader in, io::Reader::FromBytes(std::move(data), what, kMagic));
  return internal::ReadRelationFrom(std::move(in), what, std::move(options));
}

namespace internal {

void WriteExtentsV4(io::Writer* out,
                    const std::vector<std::vector<char>>& payloads) {
  const size_t dir_bytes = kSectionFrameBytes + sizeof(uint64_t) +
                           payloads.size() * kExtentEntryBytes;
  uint64_t cursor = out->bytes_buffered() + dir_bytes;
  std::vector<V4Extent> extents(payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    extents[i].offset = io::RoundUpToPage(cursor);
    extents[i].len = payloads[i].size();
    cursor = extents[i].offset + extents[i].len;
  }
  out->BeginSection();
  out->WritePod(static_cast<uint64_t>(payloads.size()));
  for (const V4Extent& e : extents) {
    out->WritePod(e.offset);
    out->WritePod(e.len);
  }
  out->EndSection();
  for (size_t i = 0; i < payloads.size(); ++i) {
    out->PadTo(static_cast<size_t>(extents[i].offset));
    out->AppendRaw(payloads[i].data(), payloads[i].size());
  }
}

StatusOr<std::vector<V4Extent>> ReadExtentDirectoryV4(
    io::Reader* in, uint64_t expected_count, const std::string& path) {
  COLGRAPH_RETURN_NOT_OK(in->BeginSection("extent directory"));
  uint64_t count = 0;
  COLGRAPH_RETURN_NOT_OK(in->ReadPod(&count));
  if (count != expected_count) {
    return Status::Corruption(
        "extent directory count does not match the header in " + path);
  }
  if (count > in->remaining() / kExtentEntryBytes) {
    return Status::Corruption("extent directory larger than its section in " +
                              path);
  }
  std::vector<V4Extent> extents(static_cast<size_t>(count));
  for (V4Extent& e : extents) {
    COLGRAPH_RETURN_NOT_OK(in->ReadPod(&e.offset));
    COLGRAPH_RETURN_NOT_OK(in->ReadPod(&e.len));
  }
  COLGRAPH_RETURN_NOT_OK(in->EndSection("extent directory"));

  // Extents must live after the directory, ascend without overlap, and
  // stay inside the checksummed body.
  uint64_t prev_end = in->position();
  for (const V4Extent& e : extents) {
    if (e.offset < prev_end || e.offset > in->body_size() ||
        e.len > in->body_size() - e.offset) {
      return Status::Corruption("extent directory out of bounds in " + path);
    }
    prev_end = e.offset + e.len;
  }
  return extents;
}

Status WriteRelationAtVersion(const MasterRelation& relation,
                              const std::string& path, uint32_t version) {
  if (!relation.sealed()) {
    return Status::InvalidArgument("can only persist a sealed relation");
  }
  io::Writer out(path, kMagic, version);

  out.BeginSection();
  out.WritePod(static_cast<uint64_t>(relation.num_records()));
  out.WritePod(static_cast<uint64_t>(relation.num_edge_columns()));
  out.EndSection();
  COLGRAPH_FAILPOINT("persist:after_header");

  if (version < 4) {
    // Sequential layout: every column in one checksummed section.
    out.BeginSection();
    for (EdgeId id = 0; id < relation.num_edge_columns(); ++id) {
      out.WriteMeasureColumn(relation.PeekMeasureColumn(id));
    }
    out.EndSection();
    return out.Commit();
  }

  // v4: pre-encode each column, then lay the payloads out as page-aligned
  // extents behind a directory so readers can decode columns lazily.
  std::vector<std::vector<char>> payloads;
  payloads.reserve(relation.num_edge_columns());
  for (EdgeId id = 0; id < relation.num_edge_columns(); ++id) {
    io::Writer enc(version);
    enc.WriteMeasureColumn(relation.PeekMeasureColumn(id));
    payloads.push_back(enc.TakePayload());
  }
  WriteExtentsV4(&out, payloads);
  return out.Commit();
}

Status WriteRelationPayloadsV4(uint64_t num_records,
                               const std::vector<std::vector<char>>& payloads,
                               const std::string& path) {
  COLGRAPH_RETURN_NOT_OK(io::ValidateRecordCount(num_records, path));
  io::Writer out(path, kMagic, 4);
  out.BeginSection();
  out.WritePod(num_records);
  out.WritePod(static_cast<uint64_t>(payloads.size()));
  out.EndSection();
  COLGRAPH_FAILPOINT("persist:after_header");
  WriteExtentsV4(&out, payloads);
  return out.Commit();
}

StatusOr<RelationLayoutV4> ReadRelationLayoutV4(io::Reader* in,
                                                const std::string& path) {
  RelationLayoutV4 layout;
  uint64_t num_columns = 0;
  COLGRAPH_RETURN_NOT_OK(in->BeginSection("relation header"));
  if (!in->ReadPod(&layout.num_records).ok() ||
      !in->ReadPod(&num_columns).ok()) {
    return Status::Corruption("truncated header in " + path);
  }
  COLGRAPH_RETURN_NOT_OK(in->EndSection("relation header"));
  COLGRAPH_RETURN_NOT_OK(io::ValidateRecordCount(layout.num_records, path));
  COLGRAPH_ASSIGN_OR_RETURN(layout.extents,
                            ReadExtentDirectoryV4(in, num_columns, path));
  return layout;
}

StatusOr<MasterRelation> ReadRelationFrom(io::Reader in,
                                          const std::string& path,
                                          MasterRelationOptions options) {
  if (in.version() >= 4) {
    RelationLayoutV4 layout;
    COLGRAPH_ASSIGN_OR_RETURN(layout, ReadRelationLayoutV4(&in, path));
    std::vector<MeasureColumn> columns;
    columns.reserve(layout.extents.size());
    for (const V4Extent& e : layout.extents) {
      COLGRAPH_ASSIGN_OR_RETURN(io::Reader sub, in.AtExtent(e.offset, e.len));
      COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col,
                                sub.ReadMeasureColumn(layout.num_records));
      if (sub.remaining() != 0) {
        return Status::Corruption("trailing bytes in column extent in " +
                                  path);
      }
      columns.push_back(std::move(col));
    }
    return MasterRelation::FromColumns(static_cast<size_t>(layout.num_records),
                                       std::move(columns), options);
  }

  uint64_t num_records = 0, num_columns = 0;
  COLGRAPH_RETURN_NOT_OK(in.BeginSection("relation header"));
  if (!in.ReadPod(&num_records).ok() || !in.ReadPod(&num_columns).ok()) {
    return Status::Corruption("truncated header in " + path);
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("relation header"));
  COLGRAPH_RETURN_NOT_OK(io::ValidateRecordCount(num_records, path));

  COLGRAPH_RETURN_NOT_OK(in.BeginSection("columns"));
  std::vector<MeasureColumn> columns;
  // Each column costs >= 24 bytes on disk; don't let a corrupt count
  // reserve unbounded memory.
  columns.reserve(static_cast<size_t>(
      std::min<uint64_t>(num_columns, in.remaining() / 24 + 1)));
  for (uint64_t i = 0; i < num_columns; ++i) {
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col,
                              in.ReadMeasureColumn(num_records));
    columns.push_back(std::move(col));
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("columns"));
  COLGRAPH_RETURN_NOT_OK(in.ExpectEnd());

  return MasterRelation::FromColumns(static_cast<size_t>(num_records),
                                     std::move(columns), options);
}

}  // namespace internal

}  // namespace colgraph
