#include "columnstore/persistence.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "columnstore/io_util.h"
#include "util/failpoint.h"

namespace colgraph {

namespace {
constexpr uint32_t kMagic = 0x4347524C;  // "CGRL"
// v3 adds tagged bitmap encodings (EWAH / hybrid); v1 (pre-checksum) and
// v2 (untagged EWAH) files still load.
constexpr uint32_t kVersion = 3;
}  // namespace

Status WriteRelation(const MasterRelation& relation, const std::string& path) {
  if (!relation.sealed()) {
    return Status::InvalidArgument("can only persist a sealed relation");
  }
  io::Writer out(path, kMagic, kVersion);

  out.BeginSection();
  out.WritePod(static_cast<uint64_t>(relation.num_records()));
  out.WritePod(static_cast<uint64_t>(relation.num_edge_columns()));
  out.EndSection();
  COLGRAPH_FAILPOINT("persist:after_header");

  out.BeginSection();
  for (EdgeId id = 0; id < relation.num_edge_columns(); ++id) {
    out.WriteMeasureColumn(relation.PeekMeasureColumn(id));
  }
  out.EndSection();

  return out.Commit();
}

StatusOr<MasterRelation> ReadRelation(const std::string& path,
                                      MasterRelationOptions options) {
  COLGRAPH_ASSIGN_OR_RETURN(io::Reader in, io::Reader::Open(path, kMagic));
  return internal::ReadRelationFrom(std::move(in), path, std::move(options));
}

StatusOr<MasterRelation> DecodeRelation(std::vector<char> data,
                                        const std::string& what,
                                        MasterRelationOptions options) {
  COLGRAPH_ASSIGN_OR_RETURN(
      io::Reader in, io::Reader::FromBytes(std::move(data), what, kMagic));
  return internal::ReadRelationFrom(std::move(in), what, std::move(options));
}

namespace internal {

StatusOr<MasterRelation> ReadRelationFrom(io::Reader in,
                                          const std::string& path,
                                          MasterRelationOptions options) {
  uint64_t num_records = 0, num_columns = 0;
  COLGRAPH_RETURN_NOT_OK(in.BeginSection("relation header"));
  if (!in.ReadPod(&num_records).ok() || !in.ReadPod(&num_columns).ok()) {
    return Status::Corruption("truncated header in " + path);
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("relation header"));
  if (num_records > io::kMaxSnapshotRecords) {
    return Status::Corruption("implausible record count in " + path);
  }

  COLGRAPH_RETURN_NOT_OK(in.BeginSection("columns"));
  std::vector<MeasureColumn> columns;
  // Each column costs >= 24 bytes on disk; don't let a corrupt count
  // reserve unbounded memory.
  columns.reserve(static_cast<size_t>(
      std::min<uint64_t>(num_columns, in.remaining() / 24 + 1)));
  for (uint64_t i = 0; i < num_columns; ++i) {
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col,
                              in.ReadMeasureColumn(num_records));
    columns.push_back(std::move(col));
  }
  COLGRAPH_RETURN_NOT_OK(in.EndSection("columns"));
  COLGRAPH_RETURN_NOT_OK(in.ExpectEnd());

  return MasterRelation::FromColumns(static_cast<size_t>(num_records),
                                     std::move(columns), options);
}

}  // namespace internal

}  // namespace colgraph
