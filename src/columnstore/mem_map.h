// Read-only memory-mapped file access for the out-of-core snapshot path
// (DESIGN.md §14). A sealed v4 dataset file is mapped once at open; the
// whole-file CRC check then touches every page sequentially, so a file
// that passes validation can be read through the mapping without further
// I/O error handling — immutable files cannot SIGBUS after that pass (the
// store never truncates or rewrites a published dataset in place, and
// unlink(2) does not invalidate existing mappings).
//
// This is the only translation unit allowed to call raw mmap/munmap (repo
// lint [no-raw-mmap]); everything else goes through MemMap or io::Reader.
#pragma once

#include <cstddef>
#include <string>

#include "util/status.h"

namespace colgraph::io {

/// \brief RAII owner of a read-only, private file mapping.
///
/// Move-only; the mapping is released on destruction. A zero-length file
/// maps to {data() == nullptr, size() == 0}, which every consumer treats
/// as an empty byte range.
class MemMap {
 public:
  /// Maps `path` read-only. Failpoint: "io:mmap" (forces the error path).
  static StatusOr<MemMap> Open(const std::string& path);

  MemMap(MemMap&& other) noexcept : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  MemMap& operator=(MemMap&& other) noexcept;
  MemMap(const MemMap&) = delete;
  MemMap& operator=(const MemMap&) = delete;
  ~MemMap();

  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MemMap() = default;

  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// The VM page size, as required for the v4 column-extent alignment.
size_t PageSize();

/// Rounds `n` up to the next multiple of PageSize().
size_t RoundUpToPage(size_t n);

}  // namespace colgraph::io
