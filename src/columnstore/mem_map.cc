#include "columnstore/mem_map.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace colgraph::io {

namespace {

// Storage telemetry (DESIGN.md §15): how many bytes of sealed column data
// the process reads through mappings, cumulatively and right now. The
// gauge decrements on unmap so it tracks live address-space usage.
obs::Counter& MapsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("io.mmap_maps");
  return c;
}
obs::Counter& BytesMappedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("io.mmap_bytes_mapped");
  return c;
}
obs::Gauge& ActiveBytesGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("io.mmap_active_bytes");
  return g;
}

}  // namespace

StatusOr<MemMap> MemMap::Open(const std::string& path) {
  COLGRAPH_FAILPOINT("io:mmap");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open for mmap: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat for mmap: " + path);
  }
  MemMap map;
  map.size_ = static_cast<size_t>(st.st_size);
  if (map.size_ == 0) {
    // mmap(2) rejects zero-length mappings; an empty file is simply an
    // empty byte range (which the snapshot readers then reject as a
    // truncated preamble).
    ::close(fd);
    return map;
  }
  void* addr = ::mmap(nullptr, map.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  // The descriptor is not needed once the mapping exists; the kernel keeps
  // the file pinned through the mapping itself.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path);
  }
  map.data_ = static_cast<const char*>(addr);
  MapsCounter().Increment();
  BytesMappedCounter().Add(map.size_);
  ActiveBytesGauge().Add(static_cast<int64_t>(map.size_));
  return map;
}

MemMap& MemMap::operator=(MemMap&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
      ActiveBytesGauge().Add(-static_cast<int64_t>(size_));
    }
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MemMap::~MemMap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
    ActiveBytesGauge().Add(-static_cast<int64_t>(size_));
  }
}

size_t PageSize() {
  const long page = ::sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<size_t>(page) : 4096;
}

size_t RoundUpToPage(size_t n) {
  const size_t page = PageSize();
  return (n + page - 1) / page * page;
}

}  // namespace colgraph::io
