// Human-readable rendering of the master relation in the layout of the
// paper's Table 1: one row per record; measure columns m_i, bitmap columns
// b_i, then view columns (bv / mp / bp). Intended for small relations
// (examples, tests, debugging) — output is O(records x columns).
#pragma once

#include <string>

#include "columnstore/master_relation.h"

namespace colgraph {

struct DumpOptions {
  /// Maximum records to render (rows beyond this are elided).
  size_t max_records = 20;
  /// Maximum edge columns to render.
  size_t max_columns = 16;
  /// Include the b_i bitmap columns.
  bool show_bitmaps = true;
  /// Include view columns (bv / mp / bp).
  bool show_views = true;
};

/// Renders the relation as a fixed-width text table (Table 1 style).
std::string DumpRelation(const MasterRelation& relation,
                         const DumpOptions& options = {});

}  // namespace colgraph
