#include "columnstore/column.h"

#include "util/check.h"

namespace colgraph {

void BitmapColumn::Seal() {
  const auto& words = bits_.words();
  rank_.resize(words.size());
  uint32_t cum = 0;
  for (size_t i = 0; i < words.size(); ++i) {
    rank_[i] = cum;
    cum += static_cast<uint32_t>(__builtin_popcountll(words[i]));
  }
  count_ = cum;
  sealed_ = true;
}

void BitmapColumn::ChooseEncoding(bool hybrid_enabled) {
  COLGRAPH_DCHECK(sealed_);
  if (hybrid_enabled && count_ * kHybridDensityDivisor <= bits_.size()) {
    hybrid_ = std::make_shared<const HybridBitmap>(
        HybridBitmap::FromBitmap(bits_));
  } else {
    hybrid_.reset();
  }
}

size_t BitmapColumn::Rank(size_t pos) const {
  COLGRAPH_DCHECK(sealed_);
  COLGRAPH_DCHECK_LE(pos, bits_.size());
  const size_t word = pos / Bitmap::kWordBits;
  const size_t bit = pos % Bitmap::kWordBits;
  if (word >= bits_.words().size()) return rank_.empty() ? 0 : Count();
  size_t r = rank_[word];
  if (bit != 0) {
    const uint64_t mask = (uint64_t{1} << bit) - 1;
    r += static_cast<size_t>(__builtin_popcountll(bits_.words()[word] & mask));
  }
  return r;
}

Status MeasureColumn::Append(size_t record, double value) {
  if (!pending_records_.empty() && record <= pending_records_.back()) {
    return Status::InvalidArgument(
        "MeasureColumn::Append requires strictly increasing record ids");
  }
  if (record < min_next_record_) {
    return Status::InvalidArgument(
        "append into the already-sealed record range");
  }
  if (presence_.sealed()) {
    return Status::InvalidArgument("cannot append to a sealed column");
  }
  pending_records_.push_back(record);
  values_.push_back(value);
  return Status::OK();
}

StatusOr<MeasureColumn> MeasureColumn::FromParts(Bitmap presence,
                                                 std::vector<double> values) {
  if (presence.Count() != values.size()) {
    return Status::Corruption(
        "presence cardinality does not match packed value count");
  }
  MeasureColumn col;
  col.values_ = std::move(values);
  col.presence_ = BitmapColumn(std::move(presence));
  return col;
}

void MeasureColumn::Seal(size_t num_records) {
  presence_.Resize(num_records);
  for (uint64_t r : pending_records_) presence_.Set(r);
  pending_records_.clear();
  pending_records_.shrink_to_fit();
  presence_.Seal();
}

void MeasureColumn::Unseal() {
  min_next_record_ = presence_.size();
  presence_.Unseal();
}

std::optional<double> MeasureColumn::Get(size_t record) const {
  if (!presence_.Test(record)) return std::nullopt;
  return values_[presence_.Rank(record)];
}

}  // namespace colgraph
