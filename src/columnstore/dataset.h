// Immutable dataset storage for incremental ingest (DESIGN.md §14).
//
// The store models the collection as an ordered list of sealed, immutable
// datasets: the primary relation (dataset 0, the only one carrying
// materialized views) plus small tail datasets, one per ingest. Record
// ids are global — each dataset owns the dense id range starting at the
// cumulative record count of its predecessors — so a collection split
// across datasets is indistinguishable, record for record, from the same
// collection ingested into a single relation. Background compaction
// merges the datasets back into one (seal → merge → retire); queries keep
// running against the published snapshot throughout.
//
// On disk a DatasetStore is a directory:
//
//   MANIFEST            io::Writer image (magic "CGMF"): next id + live ids
//   ds-000042.cgds      v4 relation image per live dataset
//   compact.lock        ExclusiveFile held only while a compaction runs
//
// Every mutation publishes by writing the new dataset file first and then
// atomically rewriting MANIFEST; a crash at any point leaves a manifest
// that references only complete, durable files. Open() sweeps the debris
// a crash can leave: stale `*.tmp`, dataset files the manifest does not
// reference, and an orphaned compact.lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "columnstore/io_util.h"
#include "columnstore/master_relation.h"
#include "columnstore/persistence.h"
#include "util/status.h"

namespace colgraph {

/// \brief Lazy per-column access to a v4 relation image through an mmap.
///
/// Open() maps and validates the file (whole-file CRC + extent
/// directory); ReadColumn() then decodes a single column extent on
/// demand. Compaction streams its inputs through this, so merging N
/// datasets holds one column per input in memory, not N whole relations.
class MappedRelationFile {
 public:
  /// Maps and validates `path`, which must be a v4 relation image (older
  /// versions have no extent directory to address columns by).
  static StatusOr<MappedRelationFile> Open(const std::string& path);

  uint64_t num_records() const { return layout_.num_records; }
  size_t num_columns() const { return layout_.extents.size(); }

  /// Decodes column `i` from its extent. Requires i < num_columns().
  StatusOr<MeasureColumn> ReadColumn(size_t i) const;

 private:
  MappedRelationFile(io::Reader in, internal::RelationLayoutV4 layout)
      : reader_(std::move(in)), layout_(std::move(layout)) {}

  io::Reader reader_;
  internal::RelationLayoutV4 layout_;
};

/// \brief A directory of immutable sealed dataset files plus the MANIFEST
/// that names the live ones, in ingest order.
///
/// Single-writer: one process (the daemon) owns the directory; concurrent
/// Seal/Compact calls within that process must be externally serialized
/// (Daemon does so under its writer mutex). Readers are unaffected by any
/// mutation — they hold mappings of sealed files, which unlink(2) cannot
/// invalidate.
struct DatasetStoreOptions {
  MasterRelationOptions relation;
  /// CompactAll() is a no-op until at least this many datasets exist.
  size_t min_datasets_to_compact = 2;
};

class DatasetStore {
 public:
  using Options = DatasetStoreOptions;

  /// Opens (creating if needed) the store at `dir`, loads the manifest,
  /// and sweeps crash debris: stale `*.tmp`, unreferenced `*.cgds`, and a
  /// leftover compact.lock.
  static StatusOr<DatasetStore> Open(const std::string& dir,
                                     Options options = {});

  const std::string& dir() const { return dir_; }
  size_t num_datasets() const { return names_.size(); }
  const std::vector<std::string>& dataset_names() const { return names_; }
  std::string PathFor(const std::string& name) const {
    return dir_ + "/" + name;
  }

  /// Seals `relation` as the next dataset: writes its v4 file, then
  /// atomically publishes it by rewriting the manifest. Returns the new
  /// dataset's name. A crash between the two steps leaves an unreferenced
  /// file for the next Open() to sweep — never a torn manifest.
  StatusOr<std::string> Seal(const MasterRelation& relation);

  /// Loads every live dataset (mapped read), in manifest order.
  StatusOr<std::vector<MasterRelation>> LoadAll() const;

  /// Merges all live datasets into one new dataset file under the
  /// compact.lock ExclusiveFile, then publishes it via a manifest rewrite
  /// and unlinks the retired inputs. Column-streaming: decodes one column
  /// per input at a time. No-op below min_datasets_to_compact. Returns
  /// Unavailable while another compaction holds the lock. A crash mid-
  /// merge (failpoint "compact:crash") leaves the manifest — and thus
  /// every published dataset — untouched.
  Status CompactAll();

 private:
  DatasetStore() = default;

  std::string ManifestPath() const { return dir_ + "/MANIFEST"; }
  std::string LockPath() const { return dir_ + "/compact.lock"; }
  Status WriteManifest(const std::vector<uint64_t>& ids,
                       uint64_t next_id) const;

  std::string dir_;
  Options options_;
  uint64_t next_id_ = 0;
  std::vector<uint64_t> ids_;        // live dataset ids, ingest order
  std::vector<std::string> names_;   // derived file names, same order
};

}  // namespace colgraph
