// Binary persistence for the master relation. The on-disk layout mirrors
// the in-memory one: per column a compressed presence bitmap followed by
// the packed (NULL-suppressed) values, so file size tracks the
// DiskBytes() accounting used by the space experiments (Figure 4).
//
// Writes use snapshot format v4 (checksummed sections + footer + one
// page-aligned raw extent per column, written to `<path>.tmp` and
// atomically renamed — see io_util.h and DESIGN.md §14); reads accept
// v1–v4. The extent layout is what lets sealed dataset files be read
// through an mmap with per-column lazy decoding (dataset.h) — alignment
// costs up to one page of zero padding per column, a deliberate trade the
// ≤1000-column partitioning rule keeps bounded. Corrupt or truncated
// files of any version load as Status::Corruption, never as a crash.
#pragma once

#include <string>
#include <vector>

#include "columnstore/io_util.h"
#include "columnstore/master_relation.h"
#include "util/status.h"

namespace colgraph {

/// Writes a sealed relation (records only, not views) to `path`.
[[nodiscard]] Status WriteRelation(const MasterRelation& relation, const std::string& path);

/// Reads a relation previously written by WriteRelation. The result is
/// sealed and ready for queries. Sweeps a stale `<path>.tmp` left by a
/// crashed write before opening.
[[nodiscard]] StatusOr<MasterRelation> ReadRelation(const std::string& path,
                                      MasterRelationOptions options = {});

/// In-memory variant of ReadRelation: decodes a snapshot image (v1–v4)
/// from `data` without touching the filesystem; `what` names the buffer in
/// error messages. Same validation as ReadRelation — this is the entry
/// point the snapshot fuzz harness drives.
[[nodiscard]] StatusOr<MasterRelation> DecodeRelation(
    std::vector<char> data, const std::string& what,
    MasterRelationOptions options = {});

namespace internal {

/// Shared tail of ReadRelation/DecodeRelation: parses a validated Reader.
StatusOr<MasterRelation> ReadRelationFrom(io::Reader in,
                                          const std::string& path,
                                          MasterRelationOptions options);

/// Writes the relation in an explicit snapshot format version (2, 3, or
/// 4) — compat-fixture support for tests and the fuzz corpus generator.
Status WriteRelationAtVersion(const MasterRelation& relation,
                              const std::string& path, uint32_t version);

/// One column extent of a v4 relation image: absolute file offset plus
/// exact payload length (padding between extents belongs to neither).
struct V4Extent {
  uint64_t offset = 0;
  uint64_t len = 0;
};

/// Emits the v4 extent-directory section followed by the page-aligned raw
/// extents for `payloads`. Offsets are computed against the writer's
/// current buffer position, so this must be the last content before
/// Commit(). Shared by the relation and engine snapshot writers.
void WriteExtentsV4(io::Writer* out,
                    const std::vector<std::vector<char>>& payloads);

/// Parses the v4 extent-directory section (whose count must equal
/// `expected_count`) and validates every entry: after the directory,
/// ascending, non-overlapping, inside the checksummed body.
StatusOr<std::vector<V4Extent>> ReadExtentDirectoryV4(
    io::Reader* in, uint64_t expected_count, const std::string& path);

/// Writes a v4 relation image from pre-encoded column payloads (one per
/// column, WriteMeasureColumn encoding). The column-streaming compaction
/// path uses this so merged columns can be encoded and dropped one at a
/// time instead of materializing a whole merged MasterRelation.
Status WriteRelationPayloadsV4(uint64_t num_records,
                               const std::vector<std::vector<char>>& payloads,
                               const std::string& path);

/// The parsed v4 relation header + extent directory. Produced by
/// ReadRelationLayoutV4 once the Reader's open-time validation passed.
struct RelationLayoutV4 {
  uint64_t num_records = 0;
  std::vector<V4Extent> extents;  // one per column, ascending offsets
};

/// Parses the two v4 header sections from `in` (which must be positioned
/// at the first section of a version-4 relation image) and validates the
/// extent directory: entries must be in-bounds, non-overlapping, and
/// ascending. Shared by the eager reader and the lazy per-column path in
/// dataset.cc.
StatusOr<RelationLayoutV4> ReadRelationLayoutV4(io::Reader* in,
                                                const std::string& path);

}  // namespace internal

}  // namespace colgraph
