// Binary persistence for the master relation. The on-disk layout mirrors
// the in-memory one: per column an EWAH-compressed presence bitmap followed
// by the packed (NULL-suppressed) values, so file size matches the
// DiskBytes() accounting used by the space experiments (Figure 4).
//
// Writes use snapshot format v2 (checksummed sections + footer, written to
// `<path>.tmp` and atomically renamed — see io_util.h); reads accept both
// v2 and the legacy unchecksummed v1 layout. Corrupt or truncated files of
// either version load as Status::Corruption, never as a crash.
#pragma once

#include <string>
#include <vector>

#include "columnstore/io_util.h"
#include "columnstore/master_relation.h"
#include "util/status.h"

namespace colgraph {

/// Writes a sealed relation (records only, not views) to `path`.
[[nodiscard]] Status WriteRelation(const MasterRelation& relation, const std::string& path);

/// Reads a relation previously written by WriteRelation. The result is
/// sealed and ready for queries.
[[nodiscard]] StatusOr<MasterRelation> ReadRelation(const std::string& path,
                                      MasterRelationOptions options = {});

/// In-memory variant of ReadRelation: decodes a snapshot image (v1 or v2)
/// from `data` without touching the filesystem; `what` names the buffer in
/// error messages. Same validation as ReadRelation — this is the entry
/// point the snapshot fuzz harness drives.
[[nodiscard]] StatusOr<MasterRelation> DecodeRelation(
    std::vector<char> data, const std::string& what,
    MasterRelationOptions options = {});

namespace internal {
/// Shared tail of ReadRelation/DecodeRelation: parses a validated Reader.
StatusOr<MasterRelation> ReadRelationFrom(io::Reader in,
                                          const std::string& path,
                                          MasterRelationOptions options);
}  // namespace internal

}  // namespace colgraph
