// Internal binary-stream helpers shared by the relation and engine
// persistence codecs. POD values are written in host byte order (the files
// are machine-local artifacts, like a database directory, not an exchange
// format).
//
// Snapshot format v2+ (see DESIGN.md "Durability & failure model"):
//
//   [u32 codec magic][u32 version]
//   section*:  [u64 payload_len][u32 crc32c(payload)][payload]
//   footer:    [u32 crc32c(file[0, len))][u64 len][u32 footer magic]
//
// v3 adds tagged bitmap encodings inside sections; v4 (DESIGN.md §14)
// additionally places column payloads in page-aligned raw extents between
// the last section and the footer, located by an extent directory section,
// so sealed dataset files can be read through an mmap without
// deserializing columns that a query never touches. The extents sit
// inside the footer-checksummed body, so the open-time whole-file CRC
// still validates every byte (and, on the mapped path, faults in every
// page once — which is why post-open reads cannot SIGBUS).
//
// Writer buffers the whole snapshot, then commits it atomically: the bytes
// go to `<path>.tmp`, are fsync'd, and the tmp is rename(2)'d over the
// final path, so a crash at any point leaves the previous snapshot intact.
// Reader loads the file once (or maps it via OpenMapped), verifies the
// footer and every section CRC, and bounds every read by the bytes
// actually present — a corrupt length prefix surfaces as
// Status::Corruption, never as a multi-GB resize or an out-of-bounds
// read. Version-1 files (no sections, no footer) still load through the
// same call sequence: the section calls become no-ops and only the
// per-read bounds checks apply.
//
// All snapshot file I/O in the library must go through these helpers (the
// repo lint bans raw std::ifstream/std::ofstream elsewhere in src/).
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bitmap/ewah_bitmap.h"
#include "bitmap/hybrid_bitmap.h"
#include "columnstore/column.h"
#include "columnstore/mem_map.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace colgraph::io {

/// Sanity cap on record / bit counts claimed by a snapshot header. A count
/// above this (an 8 GiB bitmap per column) is treated as corruption rather
/// than attempted as an allocation.
inline constexpr uint64_t kMaxSnapshotRecords = uint64_t{1} << 33;

/// Shared validation of the record count claimed by a snapshot header, so
/// the relation and engine readers cannot drift on the sanity cap. The
/// boundary is inclusive: exactly kMaxSnapshotRecords is accepted, one
/// more is Corruption. `label` names the file in the error message.
[[nodiscard]] inline Status ValidateRecordCount(uint64_t num_records,
                                                const std::string& label) {
  if (num_records > kMaxSnapshotRecords) {
    return Status::Corruption("implausible record count in " + label);
  }
  return Status::OK();
}

/// Best-effort sweep of the orphaned `<path>.tmp` that a crash between
/// Writer::Commit()'s tmp write and its rename leaves behind. Call on the
/// open/read path (single-writer discipline makes this safe: nobody can be
/// mid-Commit on `path` while its owner is opening it).
void RemoveStaleTemp(const std::string& path);

/// \brief Buffered, checksummed, crash-atomic snapshot writer.
///
/// Usage: construct with the final path, bracket logical groups of values
/// in BeginSection()/EndSection(), then Commit() once. Nothing touches the
/// filesystem until Commit().
class Writer {
 public:
  Writer(std::string path, uint32_t magic, uint32_t version);

  /// Payload-mode writer: encodes values into an in-memory buffer with no
  /// preamble, sections, or footer. Used to pre-encode v4 column extents
  /// (the payload is later appended verbatim with AppendRaw). Commit() is
  /// forbidden; fetch the bytes with TakePayload().
  explicit Writer(uint32_t version) : version_(version), payload_only_(true) {}

  /// Opens / closes a checksummed section. Sections must not nest.
  void BeginSection();
  void EndSection();

  template <typename T>
  void WritePod(const T& value) {
    Append(&value, sizeof(T));
  }

  template <typename T>
  void WriteVec(const std::vector<T>& v) {
    WritePod(static_cast<uint64_t>(v.size()));
    Append(v.data(), v.size() * sizeof(T));
  }

  /// EWAH-compresses and writes a bitmap: [u64 num_bits][buffer vec].
  void WriteEwah(const Bitmap& bits);

  /// Writes a bitmap column in its sealed encoding. On v3+ snapshots the
  /// stream is tagged: [u8 tag][u64 num_bits][buffer vec] with tag 0 =
  /// EWAH, tag 1 = hybrid containers (the column's seal-time choice). On
  /// v2 and older it degrades to the untagged WriteEwah layout so legacy
  /// fixtures can still be produced.
  void WriteBitmap(const BitmapColumn& col);

  /// Writes a sealed measure column: compressed presence + packed values.
  void WriteMeasureColumn(const MeasureColumn& col);

  /// Bytes buffered so far (preamble + sections written). The v4 writers
  /// use this to compute extent offsets before emitting the directory.
  size_t bytes_buffered() const { return body_.size(); }

  /// Zero-pads the buffer up to absolute offset `target` (>= current
  /// size). Must not be called inside a section — padding is part of the
  /// whole-file CRC but no section's.
  void PadTo(size_t target);

  /// Appends `n` raw bytes outside any section (a v4 column extent).
  void AppendRaw(const void* data, size_t n);

  /// Payload-mode only: returns the encoded bytes. The writer is spent.
  std::vector<char> TakePayload();

  uint32_t version() const { return version_; }

  /// Appends the footer and atomically publishes the snapshot:
  /// write to `<path>.tmp`, fsync, rename over `path`, fsync the parent
  /// directory. On failure the previous snapshot at `path` is untouched.
  /// Failpoints: "io:open_write", "io:short_write", "io:fsync",
  /// "persist:before_rename" (crash: leaves the .tmp behind, skips rename).
  [[nodiscard]] Status Commit();

 private:
  void Append(const void* data, size_t n) {
    if (n == 0) return;
    const size_t old = body_.size();
    body_.resize(old + n);
    std::memcpy(body_.data() + old, data, n);
  }

  std::string path_;
  std::vector<char> body_;
  size_t section_header_pos_ = 0;
  uint32_t version_ = 0;
  bool in_section_ = false;
  bool committed_ = false;
  bool payload_only_ = false;
};

/// \brief Bounds-checked, checksum-verified snapshot reader.
///
/// Open() loads the whole file, validates the codec magic and — for v2
/// files — the footer and whole-file CRC before any parsing. Every Read*
/// is bounded by the current section (v2) or the file (v1); running out of
/// bytes is Status::Corruption, never UB.
class Reader {
 public:
  /// Failpoint: "io:open_read".
  static StatusOr<Reader> Open(const std::string& path, uint32_t magic);

  /// mmap-backed variant of Open(): maps the file read-only instead of
  /// copying it into memory, then runs the identical validation (the
  /// whole-file CRC pass faults in every page once, so later reads through
  /// the mapping cannot SIGBUS for an immutable file). Falls back to the
  /// copying Open() when the mapping itself fails — the caller never
  /// needs to care which storage backs the reader. Sub-readers from
  /// AtExtent() share the mapping, so decoding a column keeps the file
  /// mapped only as long as some reader is alive.
  /// Failpoints: "io:open_read", "io:mmap" (forces the fallback).
  static StatusOr<Reader> OpenMapped(const std::string& path, uint32_t magic);

  /// In-memory variant of Open(): validates and reads `data` as a snapshot
  /// without touching the filesystem. `label` stands in for the path in
  /// error messages. This is the entry point the fuzz harnesses drive —
  /// identical validation to Open() (which delegates here), zero I/O.
  static StatusOr<Reader> FromBytes(std::vector<char> data, std::string label,
                                    uint32_t magic);

  /// A bounds-checked sub-reader over `[offset, offset + len)` of the
  /// checksummed body — the access path for v4 column extents. The
  /// sub-reader shares this reader's storage (copying it is cheap), reads
  /// without section framing (the extent bytes are covered by the
  /// whole-file CRC validated at open), and fails with Corruption when the
  /// range falls outside the body.
  StatusOr<Reader> AtExtent(uint64_t offset, uint64_t len) const;

  /// 1 for legacy pre-checksum files, 2 for checksummed sections, 3 for
  /// checksummed sections with tagged bitmap encodings (EWAH or hybrid),
  /// 4 for sections + page-aligned column extents (the mmap layout).
  uint32_t version() const { return version_; }
  /// Bytes left in the current window (section for v2, file for v1).
  uint64_t remaining() const { return limit_ - pos_; }
  /// Absolute offset of the read cursor (extent-directory validation).
  uint64_t position() const { return pos_; }
  /// One past the last checksummed body byte (the footer starts here).
  uint64_t body_size() const { return body_end_; }

  /// Enters the next section: validates its header and payload CRC.
  /// No-ops on v1 files. `what` names the section in error messages.
  [[nodiscard]] Status BeginSection(const char* what);
  /// Leaves a section; the payload must be fully consumed (v2 only).
  [[nodiscard]] Status EndSection(const char* what);
  /// Verifies no trailing sections/bytes remain (v2 only).
  [[nodiscard]] Status ExpectEnd();

  template <typename T>
  [[nodiscard]] Status ReadPod(T* value) {
    if (sizeof(T) > limit_ - pos_) {
      return Corrupt("unexpected end of data");
    }
    std::memcpy(value, base_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  template <typename T>
  [[nodiscard]] Status ReadVec(std::vector<T>* v) {
    uint64_t n = 0;
    COLGRAPH_RETURN_NOT_OK(ReadPod(&n));
    // Bound by the bytes actually present: a corrupt length prefix must
    // fail cleanly instead of triggering a multi-GB resize.
    if (n > (limit_ - pos_) / sizeof(T)) {
      return Corrupt("vector length exceeds remaining data");
    }
    v->resize(static_cast<size_t>(n));
    const size_t bytes = static_cast<size_t>(n) * sizeof(T);
    // n == 0 leaves v->data() null; memcpy's arguments are nonnull even
    // for zero sizes (found by fuzz_snapshot under UBSan).
    if (bytes != 0) {
      std::memcpy(v->data(), base_ + pos_, bytes);
    }
    pos_ += bytes;
    return Status::OK();
  }

  /// Reads a bitmap written by WriteEwah; its decoded length must equal
  /// `expected_bits` and the compressed stream must validate.
  StatusOr<Bitmap> ReadEwah(uint64_t expected_bits);

  /// Reads a bitmap written by WriteBitmap: tagged (EWAH or hybrid) on v3+
  /// snapshots, plain WriteEwah layout on v2 and older. Both decoders run
  /// their full FromRawChecked validation.
  StatusOr<Bitmap> ReadBitmap(uint64_t expected_bits);

  /// Reads a column written by WriteMeasureColumn; the presence bitmap
  /// must span exactly `expected_bits` records.
  StatusOr<MeasureColumn> ReadMeasureColumn(uint64_t expected_bits);

 private:
  Reader() = default;

  /// Validates preamble, footer, and whole-file CRC over [base_, size_).
  /// Shared by the owned and mapped open paths.
  [[nodiscard]] Status Validate(uint32_t magic);

  Status Corrupt(const std::string& what) const {
    return Status::Corruption(what + " in " + path_);
  }

  std::string path_;
  // Storage: exactly one of `owned_` / `map_` is set; `base_`/`size_`
  // point into it. shared_ptr so AtExtent() sub-readers (and copies) keep
  // the backing bytes alive without duplicating them.
  std::shared_ptr<const std::vector<char>> owned_;
  std::shared_ptr<const MemMap> map_;
  const char* base_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  size_t limit_ = 0;     // end of the current read window
  size_t body_end_ = 0;  // end of the checksummed body (v2+) / file (v1)
  uint32_t version_ = 0;
  bool sectioned_ = false;
};

/// Opens a text file for line-based reading (trace ingest) through the
/// instrumented path. Failpoint: "trace:open".
StatusOr<std::ifstream> OpenTextForRead(const std::string& path);

/// Loads a whole file into memory. The read is size-bounded by the file's
/// actual length (never by an untrusted header), so corrupt inputs cannot
/// trigger oversized allocations here. Failpoint: "io:open_read".
StatusOr<std::vector<char>> ReadFileBytes(const std::string& path);

/// Atomically replaces `path` with `n` bytes: write to `<path>.tmp`,
/// fsync, rename(2) over the final path, fsync the parent directory —
/// the Writer::Commit discipline for callers that bring their own bytes
/// (the metrics exporter's snapshot files). A reader never observes a
/// partial file; on failure the previous contents of `path` are untouched
/// and the .tmp is removed. Failpoints: "io:open_write", "io:short_write",
/// "io:fsync", "persist:before_rename" (shared with Writer::Commit).
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                     const void* data, size_t n);

/// \brief Append-only streaming file, for logs that grow while the process
/// runs (the query log) — the one durability shape the snapshot Writer's
/// write-tmp-then-rename discipline cannot provide. The caller does its own
/// framing and checksumming (obs/query_log.h); this class owns the raw
/// descriptor so all file I/O stays inside io_util (repo lint
/// [raw-stream]). Failpoints: "io:open_append", "io:short_write" (shared
/// with Writer::Commit), "io:fsync".
class AppendFile {
 public:
  /// Creates (or truncates) `path` for appending.
  static StatusOr<AppendFile> Create(const std::string& path);

  AppendFile(AppendFile&& other) noexcept : f_(other.f_), path_(std::move(other.path_)) {
    other.f_ = nullptr;
  }
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  /// Closes without syncing (call SyncAndClose for durability + a Status).
  ~AppendFile();

  /// Appends `n` bytes. A short write (disk full, injected fault) closes
  /// the file and returns IOError — the log is torn and the caller must
  /// stop appending.
  [[nodiscard]] Status Append(const void* data, size_t n);

  /// Flushes user-space buffers and fsyncs, then closes. Idempotent.
  [[nodiscard]] Status SyncAndClose();

  bool is_open() const { return f_ != nullptr; }

 private:
  AppendFile() = default;

  std::FILE* f_ = nullptr;
  std::string path_;
};

/// \brief Advisory exclusive lock file (O_CREAT|O_EXCL), guarding
/// single-writer operations like dataset compaction. Acquire() fails with
/// Status::Unavailable when another holder exists; the file is unlinked on
/// Release()/destruction. A crashed holder leaves the file behind —
/// BreakStale() removes it, and is only safe where single-writer
/// discipline rules out a live holder (e.g. DatasetStore::Open).
class ExclusiveFile {
 public:
  static StatusOr<ExclusiveFile> Acquire(const std::string& path);

  /// Removes a leftover lock file unconditionally.
  static void BreakStale(const std::string& path);

  ExclusiveFile(ExclusiveFile&& other) noexcept
      : held_(other.held_), path_(std::move(other.path_)) {
    other.held_ = false;
  }
  ExclusiveFile& operator=(ExclusiveFile&& other) noexcept;
  ExclusiveFile(const ExclusiveFile&) = delete;
  ExclusiveFile& operator=(const ExclusiveFile&) = delete;
  ~ExclusiveFile() { Release(); }

  /// Unlinks the lock file. Idempotent.
  void Release();

 private:
  ExclusiveFile() = default;

  bool held_ = false;
  std::string path_;
};

}  // namespace colgraph::io
