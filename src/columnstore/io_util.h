// Internal binary-stream helpers shared by the relation and engine
// persistence codecs. POD values are written in host byte order (the files
// are machine-local artifacts, like a database directory, not an exchange
// format).
#pragma once

#include <cstdint>
#include <fstream>
#include <vector>

#include "bitmap/ewah_bitmap.h"
#include "columnstore/column.h"
#include "util/status.h"

namespace colgraph::io {

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVec(std::ofstream& out, const std::vector<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadVec(std::ifstream& in, std::vector<T>* v) {
  uint64_t n = 0;
  if (!ReadPod(in, &n)) return false;
  v->resize(n);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(in);
}

/// Writes a sealed measure column: EWAH-compressed presence + packed values.
inline void WriteMeasureColumn(std::ofstream& out, const MeasureColumn& col) {
  const EwahBitmap compressed = EwahBitmap::FromBitmap(col.presence().bits());
  WritePod(out, static_cast<uint64_t>(compressed.size_bits()));
  WriteVec(out, compressed.buffer());
  std::vector<double> values;
  values.reserve(col.num_values());
  col.presence().bits().ForEachSetBit([&](size_t r) {
    values.push_back(col.ValueAtRank(col.presence().Rank(r)));
  });
  WriteVec(out, values);
}

/// Reads a measure column written by WriteMeasureColumn.
inline StatusOr<MeasureColumn> ReadMeasureColumn(std::ifstream& in) {
  uint64_t num_bits = 0;
  if (!ReadPod(in, &num_bits)) {
    return Status::Corruption("truncated column header");
  }
  std::vector<uint64_t> buffer;
  std::vector<double> values;
  if (!ReadVec(in, &buffer) || !ReadVec(in, &values)) {
    return Status::Corruption("truncated column body");
  }
  Bitmap presence = EwahBitmap::FromRaw(std::move(buffer), num_bits).ToBitmap();
  return MeasureColumn::FromParts(std::move(presence), std::move(values));
}

}  // namespace colgraph::io
