// Column primitives of the master relation (Section 4): a bitmap column
// b_i marks the records containing edge e_i; a measure column m_i stores
// the edge's measure for exactly those records. Measures are stored
// NULL-suppressed (packed values + presence bitmap + rank directory), which
// is what gives the column store its density-independent footprint
// (Figure 4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bitmap/bitmap.h"
#include "bitmap/hybrid_bitmap.h"
#include "util/status.h"

namespace colgraph {

/// \brief A bitmap column with O(1) rank support.
///
/// Rank(r) = number of set bits strictly before position r; it is the index
/// of record r's value in the packed value array of the owning measure
/// column. The rank directory is built by Seal() after bulk ingest.
class BitmapColumn {
 public:
  BitmapColumn() = default;
  explicit BitmapColumn(size_t num_records) : bits_(num_records) {}
  explicit BitmapColumn(Bitmap bits) : bits_(std::move(bits)) { Seal(); }

  const Bitmap& bits() const { return bits_; }
  Bitmap& mutable_bits() { return bits_; }

  void Resize(size_t num_records) { bits_.Resize(num_records); }
  void Set(size_t record) { bits_.Set(record); }
  bool Test(size_t record) const { return bits_.Test(record); }

  /// Builds the rank directory; must be called after the last mutation.
  void Seal();
  /// Re-enables mutation (incremental ingest); Seal() again afterwards.
  /// Drops any hybrid encoding — ChooseEncoding() again after resealing.
  void Unseal() {
    sealed_ = false;
    hybrid_.reset();
  }
  bool sealed() const { return sealed_; }

  /// Density threshold for the hybrid encoding: a sealed column whose
  /// cardinality is at most size/256 (<= 1/256 of records set) gets a
  /// hybrid-container sidecar; denser columns stay word-parallel. The
  /// sidecar exists purely to accelerate the engine's conjunction loop
  /// (the plain words are kept either way), so the cutoff sits where
  /// container-at-a-time AND beats word-at-a-time AND: measured break-even
  /// is ~1/250 density on equal-density 4-way ANDs (bench_fig3c_density
  /// supplement — 0.9x at 1/250, 1.6x at 1/500, 2.7x at 1/1000), and
  /// cost-ordered mixed-density chains only shift it sparser-favorable.
  static constexpr size_t kHybridDensityDivisor = 256;

  /// Picks the column's compressed encoding from its density statistics.
  /// Requires sealed(). When `hybrid_enabled` and the column is at or
  /// below the density threshold, builds a HybridBitmap sidecar that the
  /// query engine's conjunction loop consumes; otherwise drops any
  /// existing one. Deterministic for given contents.
  void ChooseEncoding(bool hybrid_enabled);

  /// The hybrid encoding, or nullptr when the column is plain-encoded.
  const HybridBitmap* hybrid() const { return hybrid_.get(); }

  /// Number of set bits strictly before `pos`. Requires sealed().
  size_t Rank(size_t pos) const;

  /// Set-bit count; O(1) after Seal() (cached), O(words) before.
  size_t Count() const { return sealed_ ? count_ : bits_.Count(); }
  size_t size() const { return bits_.size(); }

  /// In-memory footprint (bits + rank directory).
  size_t MemoryBytes() const {
    return bits_.MemoryBytes() + rank_.size() * sizeof(uint32_t);
  }

 private:
  Bitmap bits_;
  std::vector<uint32_t> rank_;  // cumulative popcount before each word
  // Hybrid sidecar (shared_ptr keeps columns cheaply copyable); null for
  // plain-encoded columns.
  std::shared_ptr<const HybridBitmap> hybrid_;
  size_t count_ = 0;  // cached cardinality (valid when sealed)
  bool sealed_ = false;
};

/// \brief A NULL-suppressed measure column: packed non-NULL values plus the
/// presence bitmap. The presence bitmap doubles as the edge's bitmap index
/// b_i — physically one structure, logically two columns, exactly as in
/// Table 1 where b_i = NOT NULL(m_i).
class MeasureColumn {
 public:
  MeasureColumn() = default;

  /// Appends a value for `record`. Records must arrive in increasing order
  /// (bulk ingest); Seal() freezes the column.
  [[nodiscard]] Status Append(size_t record, double value);

  /// Reconstructs a sealed column from its stored parts: the presence
  /// bitmap and the packed values (one per set bit, in record order).
  static StatusOr<MeasureColumn> FromParts(Bitmap presence,
                                           std::vector<double> values);

  /// Resizes the presence domain to the final record count and builds rank.
  void Seal(size_t num_records);
  /// Re-opens a sealed column for appends of records with ids >= the
  /// current presence-domain size (incremental ingest, Section 6.1's
  /// "records are continuously generated"). Existing data is untouched.
  void Unseal();
  bool sealed() const { return presence_.sealed(); }

  /// Applies the seal-time encoding choice to the presence bitmap (see
  /// BitmapColumn::ChooseEncoding). Requires sealed().
  void ChooseEncoding(bool hybrid_enabled) {
    presence_.ChooseEncoding(hybrid_enabled);
  }

  /// Value of `record`, or nullopt when NULL. Requires sealed().
  std::optional<double> Get(size_t record) const;

  /// Packed value by rank (for scans that already know the rank).
  double ValueAtRank(size_t rank) const { return values_[rank]; }

  const BitmapColumn& presence() const { return presence_; }
  size_t num_values() const { return values_.size(); }

  size_t MemoryBytes() const {
    return presence_.MemoryBytes() + values_.size() * sizeof(double);
  }

 private:
  // During ingest, presence bits live in `pending_records_` until Seal
  // learns the final record count.
  std::vector<uint64_t> pending_records_;
  std::vector<double> values_;
  BitmapColumn presence_;
  // After Unseal(), appends must not collide with already-sealed records.
  uint64_t min_next_record_ = 0;
};

}  // namespace colgraph
