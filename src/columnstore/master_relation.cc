#include "columnstore/master_relation.h"

#include <unordered_set>

#include "bitmap/ewah_bitmap.h"
#include "util/check.h"

namespace colgraph {

StatusOr<RecordId> MasterRelation::AddRecord(
    const std::vector<std::pair<EdgeId, double>>& elements) {
  if (sealed_) {
    return Status::InvalidArgument("cannot add records to a sealed relation");
  }
  const RecordId rid = num_records_;
  // Validate before mutating any column so a failed insert has no effect.
  std::unordered_set<EdgeId> seen;
  for (const auto& [edge_id, value] : elements) {
    (void)value;
    if (!seen.insert(edge_id).second) {
      return Status::InvalidArgument("duplicate edge id " +
                                     std::to_string(edge_id) +
                                     " in record; flatten cycles first");
    }
  }
  for (const auto& [edge_id, value] : elements) {
    if (edge_id >= columns_.size()) EnsureColumns(edge_id + 1);
    COLGRAPH_RETURN_NOT_OK(columns_[edge_id].Append(rid, value));
  }
  ++num_records_;
  return rid;
}

Status MasterRelation::Seal() {
  if (sealed_) return Status::InvalidArgument("relation already sealed");
  for (auto& col : columns_) {
    col.Seal(num_records_);
    col.ChooseEncoding(options_.hybrid_bitmaps);
  }
  sealed_ = true;
  return Status::OK();
}

Status MasterRelation::Unseal() {
  if (!sealed_) return Status::InvalidArgument("relation is not sealed");
  for (auto& col : columns_) col.Unseal();
  sealed_ = false;
  return Status::OK();
}

void MasterRelation::EnsureColumns(size_t n) {
  COLGRAPH_CHECK(!sealed_);
  if (columns_.size() < n) columns_.resize(n);
}

const Bitmap& MasterRelation::FetchEdgeBitmap(EdgeId id) const {
  COLGRAPH_CHECK(sealed_);
  COLGRAPH_CHECK_LT(id, columns_.size());
  ++stats_.bitmap_columns_fetched;
  return columns_[id].presence().bits();
}

const MeasureColumn& MasterRelation::FetchMeasureColumn(EdgeId id) const {
  COLGRAPH_CHECK(sealed_);
  COLGRAPH_CHECK_LT(id, columns_.size());
  ++stats_.measure_columns_fetched;
  return columns_[id];
}

const MeasureColumn& MasterRelation::PeekMeasureColumn(EdgeId id) const {
  COLGRAPH_CHECK(sealed_);
  COLGRAPH_CHECK_LT(id, columns_.size());
  return columns_[id];
}

StatusOr<MasterRelation> MasterRelation::FromColumns(
    size_t num_records, std::vector<MeasureColumn> cols,
    MasterRelationOptions options) {
  MasterRelation rel(options);
  for (const auto& col : cols) {
    if (!col.sealed() || col.presence().size() != num_records) {
      return Status::Corruption("loaded column not sealed to record count");
    }
  }
  rel.columns_ = std::move(cols);
  rel.num_records_ = num_records;
  rel.sealed_ = true;
  // The encoding choice is deterministic from density, so re-deriving it
  // here reproduces exactly what the writer had at seal time.
  for (auto& col : rel.columns_) {
    col.ChooseEncoding(options.hybrid_bitmaps);
  }
  return rel;
}

size_t MasterRelation::AddGraphView(Bitmap bits) {
  COLGRAPH_CHECK(sealed_);
  COLGRAPH_CHECK_EQ(bits.size(), num_records_);
  graph_views_.emplace_back(std::move(bits));
  graph_views_.back().ChooseEncoding(options_.hybrid_bitmaps);
  return graph_views_.size() - 1;
}

void MasterRelation::ReplaceGraphView(size_t view_index, Bitmap bits) {
  COLGRAPH_CHECK_LT(view_index, graph_views_.size());
  COLGRAPH_CHECK_EQ(bits.size(), num_records_);
  graph_views_[view_index] = BitmapColumn(std::move(bits));
  graph_views_[view_index].ChooseEncoding(options_.hybrid_bitmaps);
}

void MasterRelation::ReplaceAggregateView(size_t view_index,
                                          MeasureColumn column) {
  COLGRAPH_CHECK_LT(view_index, agg_views_.size());
  COLGRAPH_CHECK(column.sealed());
  column.ChooseEncoding(options_.hybrid_bitmaps);
  agg_views_[view_index] = std::move(column);
}

const Bitmap& MasterRelation::FetchGraphView(size_t view_index) const {
  COLGRAPH_CHECK_LT(view_index, graph_views_.size());
  ++stats_.bitmap_columns_fetched;
  return graph_views_[view_index].bits();
}

size_t MasterRelation::AddAggregateView(MeasureColumn column) {
  COLGRAPH_CHECK(sealed_);
  COLGRAPH_CHECK(column.sealed());
  column.ChooseEncoding(options_.hybrid_bitmaps);
  agg_views_.push_back(std::move(column));
  return agg_views_.size() - 1;
}

const MeasureColumn& MasterRelation::FetchAggregateView(
    size_t view_index) const {
  COLGRAPH_CHECK_LT(view_index, agg_views_.size());
  ++stats_.measure_columns_fetched;
  return agg_views_[view_index];
}

const Bitmap& MasterRelation::FetchAggregateViewBitmap(
    size_t view_index) const {
  COLGRAPH_CHECK_LT(view_index, agg_views_.size());
  ++stats_.bitmap_columns_fetched;
  return agg_views_[view_index].presence().bits();
}

size_t MasterRelation::CountPartitions(const std::vector<EdgeId>& ids) const {
  std::unordered_set<size_t> partitions;
  for (EdgeId id : ids) partitions.insert(PartitionOf(id));
  return partitions.size();
}

size_t MasterRelation::MemoryBytes() const {
  size_t total = 0;
  for (const auto& col : columns_) total += col.MemoryBytes();
  for (const auto& view : graph_views_) total += view.MemoryBytes();
  for (const auto& view : agg_views_) total += view.MemoryBytes();
  return total;
}

size_t MasterRelation::DiskBytes() const {
  size_t total = 0;
  auto column_disk_bytes = [](const MeasureColumn& col) {
    return EwahBitmap::FromBitmap(col.presence().bits()).CompressedBytes() +
           col.num_values() * sizeof(double);
  };
  for (const auto& col : columns_) total += column_disk_bytes(col);
  for (const auto& view : graph_views_) {
    total += EwahBitmap::FromBitmap(view.bits()).CompressedBytes();
  }
  for (const auto& view : agg_views_) total += column_disk_bytes(view);
  return total;
}

}  // namespace colgraph
