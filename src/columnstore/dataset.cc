#include "columnstore/dataset.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"
#include "util/failpoint.h"

namespace colgraph {

namespace {

// Storage telemetry (DESIGN.md §15): seal and compaction are the two
// durable state transitions the store performs; each gets a latency
// histogram, and counters track throughput (datasets sealed, compactions
// run, bytes merged, inputs retired). The published-dataset gauge tracks
// how wide a LoadAll fan-out currently is.
obs::LatencyHistogram& SealHistogram() {
  static obs::LatencyHistogram& h =
      obs::MetricsRegistry::Global().GetHistogram("store.seal_us");
  return h;
}
obs::LatencyHistogram& CompactionHistogram() {
  static obs::LatencyHistogram& h =
      obs::MetricsRegistry::Global().GetHistogram("store.compaction_us");
  return h;
}
obs::Counter& SealedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.datasets_sealed");
  return c;
}
obs::Counter& CompactionsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.compactions");
  return c;
}
obs::Counter& CompactionBytesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.compaction_bytes");
  return c;
}
obs::Counter& RetiredCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.datasets_retired");
  return c;
}
obs::Gauge& DatasetsGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("store.datasets");
  return g;
}

constexpr uint32_t kManifestMagic = 0x43474D46;  // "CGMF"
constexpr uint32_t kManifestVersion = 2;
constexpr char kDatasetSuffix[] = ".cgds";

std::string DatasetName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ds-%06llu%s",
                static_cast<unsigned long long>(id), kDatasetSuffix);
  return buf;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

StatusOr<MappedRelationFile> MappedRelationFile::Open(const std::string& path) {
  // Same magic as ReadRelation: a dataset file IS a relation snapshot.
  COLGRAPH_ASSIGN_OR_RETURN(io::Reader in,
                            io::Reader::OpenMapped(path, 0x4347524C));
  if (in.version() < 4) {
    return Status::NotSupported(
        "per-column access needs a v4 relation image: " + path);
  }
  internal::RelationLayoutV4 layout;
  COLGRAPH_ASSIGN_OR_RETURN(layout, internal::ReadRelationLayoutV4(&in, path));
  return MappedRelationFile(std::move(in), std::move(layout));
}

StatusOr<MeasureColumn> MappedRelationFile::ReadColumn(size_t i) const {
  const internal::V4Extent& e = layout_.extents[i];
  COLGRAPH_ASSIGN_OR_RETURN(io::Reader sub, reader_.AtExtent(e.offset, e.len));
  COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col,
                            sub.ReadMeasureColumn(layout_.num_records));
  if (sub.remaining() != 0) {
    return Status::Corruption("trailing bytes in column extent");
  }
  return col;
}

StatusOr<DatasetStore> DatasetStore::Open(const std::string& dir,
                                          Options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create dataset directory: " + dir);
  }

  DatasetStore store;
  store.dir_ = dir;
  store.options_ = options;

  // Crash debris, pass 1: a compactor that died mid-merge leaves its lock
  // behind; we are the single opener, so no live holder can exist.
  io::ExclusiveFile::BreakStale(store.LockPath());
  io::RemoveStaleTemp(store.ManifestPath());

  if (std::filesystem::exists(store.ManifestPath())) {
    COLGRAPH_ASSIGN_OR_RETURN(
        io::Reader in, io::Reader::Open(store.ManifestPath(), kManifestMagic));
    COLGRAPH_RETURN_NOT_OK(in.BeginSection("manifest"));
    COLGRAPH_RETURN_NOT_OK(in.ReadPod(&store.next_id_));
    COLGRAPH_RETURN_NOT_OK(in.ReadVec(&store.ids_));
    COLGRAPH_RETURN_NOT_OK(in.EndSection("manifest"));
    COLGRAPH_RETURN_NOT_OK(in.ExpectEnd());
    std::unordered_set<uint64_t> seen;
    for (const uint64_t id : store.ids_) {
      if (id >= store.next_id_ || !seen.insert(id).second) {
        return Status::Corruption("manifest ids are not unique ascending: " +
                                  store.ManifestPath());
      }
    }
    for (const uint64_t id : store.ids_) {
      store.names_.push_back(DatasetName(id));
    }
  } else {
    COLGRAPH_RETURN_NOT_OK(store.WriteManifest({}, 0));
  }

  // Crash debris, pass 2: stale `.tmp` files from torn dataset writes and
  // sealed-but-never-published (or retired-but-unremoved) dataset files.
  const std::unordered_set<std::string> live(store.names_.begin(),
                                             store.names_.end());
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool stale_tmp = HasSuffix(name, ".tmp");
    const bool orphan_dataset =
        HasSuffix(name, kDatasetSuffix) && live.count(name) == 0;
    if (stale_tmp || orphan_dataset) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  DatasetsGauge().Set(static_cast<int64_t>(store.names_.size()));
  return store;
}

Status DatasetStore::WriteManifest(const std::vector<uint64_t>& ids,
                                   uint64_t next_id) const {
  io::Writer out(ManifestPath(), kManifestMagic, kManifestVersion);
  out.BeginSection();
  out.WritePod(next_id);
  out.WriteVec(ids);
  out.EndSection();
  return out.Commit();
}

StatusOr<std::string> DatasetStore::Seal(const MasterRelation& relation) {
  if (!relation.sealed()) {
    return Status::InvalidArgument("can only seal a sealed relation");
  }
  const obs::Span span(&SealHistogram(), nullptr, "store_seal");
  const uint64_t id = next_id_;
  const std::string name = DatasetName(id);
  COLGRAPH_RETURN_NOT_OK(WriteRelation(relation, PathFor(name)));
  // Publish: the manifest rewrite is the commit point. If it fails, the
  // already-durable dataset file is simply unreferenced — the next Open()
  // sweeps it — and the store's published state is unchanged.
  std::vector<uint64_t> ids = ids_;
  ids.push_back(id);
  const Status st = WriteManifest(ids, id + 1);
  if (!st.ok()) {
    std::remove(PathFor(name).c_str());
    return st;
  }
  ids_ = std::move(ids);
  names_.push_back(name);
  next_id_ = id + 1;
  SealedCounter().Increment();
  DatasetsGauge().Set(static_cast<int64_t>(names_.size()));
  return name;
}

StatusOr<std::vector<MasterRelation>> DatasetStore::LoadAll() const {
  std::vector<MasterRelation> out;
  out.reserve(names_.size());
  for (const std::string& name : names_) {
    COLGRAPH_ASSIGN_OR_RETURN(MasterRelation rel,
                              ReadRelation(PathFor(name), options_.relation));
    out.push_back(std::move(rel));
  }
  return out;
}

Status DatasetStore::CompactAll() {
  if (names_.size() < options_.min_datasets_to_compact) return Status::OK();
  COLGRAPH_ASSIGN_OR_RETURN(io::ExclusiveFile lock,
                            io::ExclusiveFile::Acquire(LockPath()));
  (void)lock;  // held for scope; released (unlinked) on every exit path
  // Times failed attempts too: an aborted merge still occupied the store's
  // single compaction slot for the duration.
  const obs::Span span(&CompactionHistogram(), nullptr, "store_compaction");

  std::vector<MappedRelationFile> inputs;
  inputs.reserve(names_.size());
  uint64_t total_records = 0;
  size_t num_columns = 0;
  for (const std::string& name : names_) {
    COLGRAPH_ASSIGN_OR_RETURN(MappedRelationFile file,
                              MappedRelationFile::Open(PathFor(name)));
    total_records += file.num_records();
    num_columns = std::max(num_columns, file.num_columns());
    inputs.push_back(std::move(file));
  }
  COLGRAPH_RETURN_NOT_OK(io::ValidateRecordCount(total_records, dir_));

  // Column-streaming merge: concatenate column c of every input (each
  // dataset's records sit at its cumulative base offset), encode, drop.
  // Peak memory is one merged column plus its encoded payload — the
  // inputs stay on disk behind their mappings.
  std::vector<std::vector<char>> payloads;
  payloads.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    // Simulated crash mid-merge: published datasets and the manifest are
    // untouched; the next Open() sweeps the lock (and any stray file).
    COLGRAPH_FAILPOINT("compact:crash");
    Bitmap presence(static_cast<size_t>(total_records));
    std::vector<double> values;
    size_t base = 0;
    for (const MappedRelationFile& input : inputs) {
      if (c < input.num_columns()) {
        COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn col, input.ReadColumn(c));
        presence.OrAt(col.presence().bits(), base);
        for (size_t rank = 0; rank < col.num_values(); ++rank) {
          values.push_back(col.ValueAtRank(rank));
        }
      }
      base += static_cast<size_t>(input.num_records());
    }
    MeasureColumn merged;
    COLGRAPH_ASSIGN_OR_RETURN(
        merged, MeasureColumn::FromParts(std::move(presence), std::move(values)));
    merged.ChooseEncoding(options_.relation.hybrid_bitmaps);
    io::Writer enc(4);
    enc.WriteMeasureColumn(merged);
    payloads.push_back(enc.TakePayload());
  }

  const uint64_t id = next_id_;
  const std::string name = DatasetName(id);
  COLGRAPH_RETURN_NOT_OK(
      internal::WriteRelationPayloadsV4(total_records, payloads, PathFor(name)));
  const Status st = WriteManifest({id}, id + 1);
  if (!st.ok()) {
    std::remove(PathFor(name).c_str());
    return st;
  }
  // Retire the merged inputs. Readers holding mappings of these files are
  // unaffected: unlink does not invalidate an existing mmap.
  for (const std::string& old : names_) {
    std::remove(PathFor(old).c_str());
  }
  CompactionsCounter().Increment();
  RetiredCounter().Add(names_.size());
  uint64_t merged_bytes = 0;
  for (const std::vector<char>& p : payloads) merged_bytes += p.size();
  CompactionBytesCounter().Add(merged_bytes);
  ids_ = {id};
  names_ = {name};
  next_id_ = id + 1;
  DatasetsGauge().Set(static_cast<int64_t>(names_.size()));
  return Status::OK();
}

}  // namespace colgraph
