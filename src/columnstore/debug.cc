#include "columnstore/debug.h"

#include <cstdio>
#include <vector>

namespace colgraph {

namespace {

std::string FormatValue(const std::optional<double>& v) {
  if (!v.has_value()) return "NULL";
  char buffer[32];
  // Render integers without a trailing ".0" (matches the paper's table).
  if (*v == static_cast<long long>(*v)) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(*v));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f", *v);
  }
  return buffer;
}

void AppendCell(std::string* out, const std::string& cell, size_t width) {
  *out += cell;
  for (size_t i = cell.size(); i < width; ++i) *out += ' ';
}

}  // namespace

std::string DumpRelation(const MasterRelation& relation,
                         const DumpOptions& options) {
  const size_t columns =
      std::min(options.max_columns, relation.num_edge_columns());
  const size_t records = std::min<size_t>(options.max_records,
                                          relation.num_records());
  constexpr size_t kWidth = 6;

  std::string out;
  // Header.
  AppendCell(&out, "rid", kWidth);
  for (size_t c = 0; c < columns; ++c) {
    AppendCell(&out, std::string("m") + std::to_string(c + 1), kWidth);
  }
  if (options.show_bitmaps) {
    for (size_t c = 0; c < columns; ++c) {
      AppendCell(&out, std::string("b") + std::to_string(c + 1), kWidth);
    }
  }
  if (options.show_views) {
    for (size_t v = 0; v < relation.num_graph_views(); ++v) {
      AppendCell(&out, std::string("bv") + std::to_string(v + 1), kWidth);
    }
    for (size_t v = 0; v < relation.num_aggregate_views(); ++v) {
      AppendCell(&out, std::string("mp") + std::to_string(v + 1), kWidth);
      AppendCell(&out, std::string("bp") + std::to_string(v + 1), kWidth);
    }
  }
  out += '\n';

  for (size_t r = 0; r < records; ++r) {
    AppendCell(&out, std::string("r") + std::to_string(r + 1), kWidth);
    for (size_t c = 0; c < columns; ++c) {
      AppendCell(&out,
                 FormatValue(
                     relation.PeekMeasureColumn(static_cast<EdgeId>(c)).Get(r)),
                 kWidth);
    }
    if (options.show_bitmaps) {
      for (size_t c = 0; c < columns; ++c) {
        AppendCell(&out,
                   relation.PeekMeasureColumn(static_cast<EdgeId>(c))
                           .presence()
                           .Test(r) ? "1"
                                                                    : "0",
                   kWidth);
      }
    }
    if (options.show_views) {
      for (size_t v = 0; v < relation.num_graph_views(); ++v) {
        AppendCell(&out, relation.PeekGraphView(v).Test(r) ? "1" : "0",
                   kWidth);
      }
      for (size_t v = 0; v < relation.num_aggregate_views(); ++v) {
        const MeasureColumn& mp = relation.PeekAggregateView(v);
        AppendCell(&out, FormatValue(mp.Get(r)), kWidth);
        AppendCell(&out, mp.presence().Test(r) ? "1" : "0", kWidth);
      }
    }
    out += '\n';
  }
  if (records < relation.num_records()) {
    out += "... (" + std::to_string(relation.num_records() - records) +
           " more records)\n";
  }
  if (columns < relation.num_edge_columns()) {
    out += "... (" + std::to_string(relation.num_edge_columns() - columns) +
           " more edge columns)\n";
  }
  return out;
}

}  // namespace colgraph
