#include "columnstore/io_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"
#include "util/check.h"

namespace colgraph::io {

namespace {

constexpr uint32_t kFooterMagic = 0x43474654;  // "CGFT"
constexpr size_t kSectionHeaderBytes = 12;     // u64 len + u32 crc
constexpr size_t kFooterBytes = 16;            // u32 crc + u64 len + u32 magic

// Durability of rename(2) requires the parent directory entry to reach
// disk too. Best-effort: a failure here cannot un-publish the snapshot.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Writer::Writer(std::string path, uint32_t magic, uint32_t version)
    : path_(std::move(path)), version_(version) {
  WritePod(magic);
  WritePod(version);
}

void Writer::BeginSection() {
  COLGRAPH_CHECK(!in_section_) << "sections must not nest";
  in_section_ = true;
  section_header_pos_ = body_.size();
  body_.resize(body_.size() + kSectionHeaderBytes);  // patched by EndSection
}

void Writer::EndSection() {
  COLGRAPH_CHECK(in_section_) << "EndSection without BeginSection";
  in_section_ = false;
  const size_t payload_pos = section_header_pos_ + kSectionHeaderBytes;
  const uint64_t len = body_.size() - payload_pos;
  const uint32_t crc = Crc32c(body_.data() + payload_pos, body_.size() - payload_pos);
  std::memcpy(body_.data() + section_header_pos_, &len, sizeof(len));
  std::memcpy(body_.data() + section_header_pos_ + sizeof(len), &crc,
              sizeof(crc));
}

void Writer::PadTo(size_t target) {
  COLGRAPH_CHECK(!in_section_) << "PadTo inside an open section";
  COLGRAPH_CHECK(target >= body_.size()) << "PadTo cannot move backwards";
  body_.resize(target);  // value-initialized: zero fill
}

void Writer::AppendRaw(const void* data, size_t n) {
  COLGRAPH_CHECK(!in_section_) << "AppendRaw inside an open section";
  Append(data, n);
}

std::vector<char> Writer::TakePayload() {
  COLGRAPH_CHECK(payload_only_) << "TakePayload on a file-backed writer";
  COLGRAPH_CHECK(!in_section_) << "TakePayload inside an open section";
  return std::move(body_);
}

void Writer::WriteEwah(const Bitmap& bits) {
  const EwahBitmap compressed = EwahBitmap::FromBitmap(bits);
  WritePod(static_cast<uint64_t>(compressed.size_bits()));
  WriteVec(compressed.buffer());
}

void Writer::WriteBitmap(const BitmapColumn& col) {
  if (version_ < 3) {
    WriteEwah(col.bits());
    return;
  }
  if (col.hybrid() != nullptr) {
    WritePod(uint8_t{1});
    WritePod(static_cast<uint64_t>(col.hybrid()->size_bits()));
    const std::vector<uint64_t> raw = col.hybrid()->ToRaw();
    WriteVec(raw);
  } else {
    WritePod(uint8_t{0});
    WriteEwah(col.bits());
  }
}

void Writer::WriteMeasureColumn(const MeasureColumn& col) {
  WriteBitmap(col.presence());
  std::vector<double> values;
  values.reserve(col.num_values());
  col.presence().bits().ForEachSetBit([&](size_t r) {
    values.push_back(col.ValueAtRank(col.presence().Rank(r)));
  });
  WriteVec(values);
}

Status Writer::Commit() {
  COLGRAPH_CHECK(!payload_only_) << "Commit on a payload-mode writer";
  COLGRAPH_CHECK(!in_section_) << "Commit inside an open section";
  COLGRAPH_CHECK(!committed_) << "Commit called twice";
  committed_ = true;

  // Footer: CRC of everything before it, the body length, and a marker
  // magic — together they detect truncation and bit rot in one check.
  const uint32_t body_crc = Crc32c(body_.data(), body_.size());
  const uint64_t body_len = body_.size();
  WritePod(body_crc);
  WritePod(body_len);
  WritePod(kFooterMagic);

  size_t write_bytes = body_.size();
  uint64_t short_arg = 0;
  if (failpoint::Hit("io:short_write", &short_arg) ==
      failpoint::Action::kShortWrite) {
    // Simulated lying filesystem: persist only a prefix but report success.
    write_bytes = std::min(write_bytes, static_cast<size_t>(short_arg));
  }

  const std::string tmp = path_ + ".tmp";
  COLGRAPH_FAILPOINT("io:open_write");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + tmp);
  }
  if (write_bytes > 0 &&
      std::fwrite(body_.data(), 1, write_bytes, f) != write_bytes) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError("write failed: " + tmp);
  }
  bool sync_ok = std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  if (failpoint::Hit("io:fsync") != failpoint::Action::kOff) sync_ok = false;
  if (std::fclose(f) != 0) sync_ok = false;
  if (!sync_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("flush/fsync failed: " + tmp);
  }

  if (failpoint::Hit("persist:before_rename") == failpoint::Action::kCrash) {
    // Simulated crash between the durable tmp write and the publish: the
    // .tmp stays behind and the previous snapshot at path_ is untouched,
    // exactly what a real crash would leave.
    return Status::IOError(
        "failpoint 'persist:before_rename' simulated crash");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("atomic rename failed: " + path_);
  }
  SyncParentDir(path_);
  return Status::OK();
}

StatusOr<std::vector<char>> ReadFileBytes(const std::string& path) {
  COLGRAPH_FAILPOINT("io:open_read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  long size = -1;
  if (std::fseek(f, 0, SEEK_END) == 0) size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat: " + path);
  }
  std::rewind(f);
  std::vector<char> data(static_cast<size_t>(size));
  if (size > 0 && std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    return Status::IOError("read failed: " + path);
  }
  std::fclose(f);
  return data;
}

Status WriteFileAtomic(const std::string& path, const void* data, size_t n) {
  size_t write_bytes = n;
  uint64_t short_arg = 0;
  if (failpoint::Hit("io:short_write", &short_arg) ==
      failpoint::Action::kShortWrite) {
    write_bytes = std::min(write_bytes, static_cast<size_t>(short_arg));
  }

  const std::string tmp = path + ".tmp";
  COLGRAPH_FAILPOINT("io:open_write");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + tmp);
  }
  if (write_bytes > 0 &&
      std::fwrite(data, 1, write_bytes, f) != write_bytes) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError("write failed: " + tmp);
  }
  // A short write that "succeeded" must still fail the commit: the tmp
  // holds a prefix, and renaming a prefix into place would tear the file.
  bool ok = write_bytes == n;
  if (std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) ok = false;
  if (failpoint::Hit("io:fsync") != failpoint::Action::kOff) ok = false;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("flush/fsync failed: " + tmp);
  }
  if (failpoint::Hit("persist:before_rename") == failpoint::Action::kCrash) {
    return Status::IOError(
        "failpoint 'persist:before_rename' simulated crash");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("atomic rename failed: " + path);
  }
  SyncParentDir(path);
  return Status::OK();
}

StatusOr<Reader> Reader::Open(const std::string& path, uint32_t magic) {
  std::vector<char> bytes;
  COLGRAPH_ASSIGN_OR_RETURN(bytes, ReadFileBytes(path));
  return FromBytes(std::move(bytes), path, magic);
}

StatusOr<Reader> Reader::OpenMapped(const std::string& path, uint32_t magic) {
  COLGRAPH_FAILPOINT("io:open_read");
  auto mapped = MemMap::Open(path);
  if (!mapped.ok()) {
    // The mapping can fail for environmental reasons (exhausted address
    // space, a filesystem without mmap support) that the copying path
    // survives; an absent file fails either way.
    return Open(path, magic);
  }
  Reader r;
  r.path_ = path;
  r.map_ = std::make_shared<MemMap>(std::move(mapped).value());
  r.base_ = r.map_->data();
  r.size_ = r.map_->size();
  {
    // The whole-file CRC pass doubles as the page prefault (header
    // comment): it is the open-time cost that makes mapped reads safe, so
    // its latency is a first-class storage metric (DESIGN.md §15).
    static obs::LatencyHistogram& prefault_us =
        obs::MetricsRegistry::Global().GetHistogram("io.crc_prefault_us");
    const obs::Span span(&prefault_us, nullptr, "crc_prefault");
    COLGRAPH_RETURN_NOT_OK(r.Validate(magic));
  }
  return r;
}

StatusOr<Reader> Reader::FromBytes(std::vector<char> data, std::string label,
                                   uint32_t magic) {
  Reader r;
  r.path_ = std::move(label);
  r.owned_ = std::make_shared<const std::vector<char>>(std::move(data));
  r.base_ = r.owned_->data();
  r.size_ = r.owned_->size();
  COLGRAPH_RETURN_NOT_OK(r.Validate(magic));
  return r;
}

Status Reader::Validate(uint32_t magic) {
  if (size_ < 2 * sizeof(uint32_t)) {
    return Corrupt("truncated preamble");
  }
  uint32_t got_magic = 0;
  std::memcpy(&got_magic, base_, sizeof(got_magic));
  std::memcpy(&version_, base_ + sizeof(got_magic), sizeof(version_));
  if (got_magic != magic) {
    return Corrupt("bad magic");
  }
  pos_ = 2 * sizeof(uint32_t);

  if (version_ == 1) {
    // Legacy format: no sections, no footer; reads are bounded by the
    // file size only.
    body_end_ = limit_ = size_;
    sectioned_ = false;
    return Status::OK();
  }
  if (version_ < 2 || version_ > 4) {
    return Corrupt("unsupported snapshot version " +
                   std::to_string(version_));
  }
  if (size_ < pos_ + kFooterBytes) {
    return Corrupt("truncated footer");
  }
  const size_t footer_pos = size_ - kFooterBytes;
  uint32_t file_crc = 0, footer_magic = 0;
  uint64_t body_len = 0;
  std::memcpy(&file_crc, base_ + footer_pos, sizeof(file_crc));
  std::memcpy(&body_len, base_ + footer_pos + 4, sizeof(body_len));
  std::memcpy(&footer_magic, base_ + footer_pos + 12, sizeof(footer_magic));
  if (footer_magic != kFooterMagic) {
    return Corrupt("bad footer magic (truncated or overwritten file)");
  }
  if (body_len != footer_pos) {
    return Corrupt("footer length does not match file size");
  }
  if (Crc32c(base_, footer_pos) != file_crc) {
    return Corrupt("whole-file checksum mismatch");
  }
  body_end_ = footer_pos;
  limit_ = pos_;  // nothing readable until BeginSection
  sectioned_ = true;
  return Status::OK();
}

StatusOr<Reader> Reader::AtExtent(uint64_t offset, uint64_t len) const {
  if (offset > body_end_ || len > body_end_ - offset) {
    return Corrupt("column extent out of bounds");
  }
  Reader sub = *this;  // shares the backing storage
  sub.pos_ = static_cast<size_t>(offset);
  sub.limit_ = sub.body_end_ = static_cast<size_t>(offset + len);
  // Extents carry no section framing; the bytes were already validated by
  // the whole-file CRC at open time.
  sub.sectioned_ = false;
  return sub;
}

Status Reader::BeginSection(const char* what) {
  if (!sectioned_) return Status::OK();
  COLGRAPH_DCHECK_EQ(pos_, limit_);
  if (body_end_ - pos_ < kSectionHeaderBytes) {
    return Corrupt(std::string("truncated section header for ") + what);
  }
  uint64_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, base_ + pos_, sizeof(len));
  std::memcpy(&crc, base_ + pos_ + sizeof(len), sizeof(crc));
  pos_ += kSectionHeaderBytes;
  if (len > body_end_ - pos_) {
    return Corrupt(std::string("section length for ") + what +
                   " exceeds file size");
  }
  if (Crc32c(base_ + pos_, static_cast<size_t>(len)) != crc) {
    return Corrupt(std::string("section checksum mismatch in ") + what);
  }
  limit_ = pos_ + static_cast<size_t>(len);
  return Status::OK();
}

Status Reader::EndSection(const char* what) {
  if (!sectioned_) return Status::OK();
  if (pos_ != limit_) {
    return Corrupt(std::string("section size mismatch in ") + what);
  }
  return Status::OK();
}

Status Reader::ExpectEnd() {
  if (!sectioned_) return Status::OK();
  if (pos_ != body_end_) {
    return Corrupt("trailing bytes after the final section");
  }
  return Status::OK();
}

StatusOr<Bitmap> Reader::ReadEwah(uint64_t expected_bits) {
  uint64_t num_bits = 0;
  COLGRAPH_RETURN_NOT_OK(ReadPod(&num_bits));
  if (num_bits != expected_bits) {
    return Corrupt("bitmap bit length does not match the record count");
  }
  std::vector<uint64_t> buffer;
  COLGRAPH_RETURN_NOT_OK(ReadVec(&buffer));
  COLGRAPH_ASSIGN_OR_RETURN(
      EwahBitmap compressed,
      EwahBitmap::FromRawChecked(std::move(buffer),
                                 static_cast<size_t>(num_bits)));
  return compressed.ToBitmap();
}

StatusOr<Bitmap> Reader::ReadBitmap(uint64_t expected_bits) {
  if (version_ < 3) return ReadEwah(expected_bits);
  uint8_t tag = 0;
  COLGRAPH_RETURN_NOT_OK(ReadPod(&tag));
  if (tag == 0) return ReadEwah(expected_bits);
  if (tag != 1) return Corrupt("unknown bitmap encoding tag");
  uint64_t num_bits = 0;
  COLGRAPH_RETURN_NOT_OK(ReadPod(&num_bits));
  if (num_bits != expected_bits) {
    return Corrupt("bitmap bit length does not match the record count");
  }
  std::vector<uint64_t> buffer;
  COLGRAPH_RETURN_NOT_OK(ReadVec(&buffer));
  COLGRAPH_ASSIGN_OR_RETURN(
      HybridBitmap compressed,
      HybridBitmap::FromRawChecked(buffer, static_cast<size_t>(num_bits)));
  return compressed.ToBitmap();
}

StatusOr<MeasureColumn> Reader::ReadMeasureColumn(uint64_t expected_bits) {
  COLGRAPH_ASSIGN_OR_RETURN(Bitmap presence, ReadBitmap(expected_bits));
  std::vector<double> values;
  COLGRAPH_RETURN_NOT_OK(ReadVec(&values));
  return MeasureColumn::FromParts(std::move(presence), std::move(values));
}

void RemoveStaleTemp(const std::string& path) {
  // Best-effort: ENOENT (the common case) and permission failures are
  // both fine to ignore — the sweep exists so a crashed Commit() cannot
  // leak `<path>.tmp` forever, not to guarantee its absence.
  std::remove((path + ".tmp").c_str());
}

StatusOr<ExclusiveFile> ExclusiveFile::Acquire(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Unavailable("exclusive lock held: " + path);
  }
  ::close(fd);
  ExclusiveFile lock;
  lock.held_ = true;
  lock.path_ = path;
  return lock;
}

void ExclusiveFile::BreakStale(const std::string& path) {
  std::remove(path.c_str());
}

ExclusiveFile& ExclusiveFile::operator=(ExclusiveFile&& other) noexcept {
  if (this != &other) {
    Release();
    held_ = other.held_;
    path_ = std::move(other.path_);
    other.held_ = false;
  }
  return *this;
}

void ExclusiveFile::Release() {
  if (held_) {
    std::remove(path_.c_str());
    held_ = false;
  }
}

StatusOr<std::ifstream> OpenTextForRead(const std::string& path) {
  COLGRAPH_FAILPOINT("trace:open");
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open trace file: " + path);
  }
  return in;
}

StatusOr<AppendFile> AppendFile::Create(const std::string& path) {
  COLGRAPH_FAILPOINT("io:open_append");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for append: " + path);
  }
  AppendFile out;
  out.f_ = f;
  out.path_ = path;
  return out;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (f_ != nullptr) std::fclose(f_);
    f_ = other.f_;
    path_ = std::move(other.path_);
    other.f_ = nullptr;
  }
  return *this;
}

AppendFile::~AppendFile() {
  if (f_ != nullptr) std::fclose(f_);
}

Status AppendFile::Append(const void* data, size_t n) {
  if (f_ == nullptr) {
    return Status::IOError("append to closed file: " + path_);
  }
  size_t write_bytes = n;
  uint64_t short_arg = 0;
  if (failpoint::Hit("io:short_write", &short_arg) ==
      failpoint::Action::kShortWrite) {
    write_bytes = std::min(write_bytes, static_cast<size_t>(short_arg));
  }
  const bool ok = std::fwrite(data, 1, write_bytes, f_) == write_bytes &&
                  write_bytes == n;
  if (!ok) {
    // A torn append leaves the tail of the log unparseable; close so the
    // caller cannot make it worse by appending past the tear.
    std::fclose(f_);
    f_ = nullptr;
    return Status::IOError("append failed: " + path_);
  }
  return Status::OK();
}

Status AppendFile::SyncAndClose() {
  if (f_ == nullptr) return Status::OK();
  bool ok = std::fflush(f_) == 0 && ::fsync(fileno(f_)) == 0;
  if (failpoint::Hit("io:fsync") != failpoint::Action::kOff) ok = false;
  if (std::fclose(f_) != 0) ok = false;
  f_ = nullptr;
  if (!ok) {
    return Status::IOError("flush/fsync failed: " + path_);
  }
  return Status::OK();
}

}  // namespace colgraph::io
