// Durable query-log capture (DESIGN.md §10): an append-only binary log of
// executed queries — structure, chosen views, per-phase timings, result
// cardinality — so a live workload can be replayed (tools/colgraph_replay)
// and mined for view advice (views/workload_advisor.h). The paper's view
// selection (§5.2–§5.4) is driven entirely by the observed workload; this
// log is how a deployment observes one.
//
// File format (all integers host byte order, like the snapshot codecs):
//
//   header:  [u32 magic "CGQL"][u32 version = 1]
//   frame*:  [u8 type][u64 payload_len][u32 crc32c(payload)][payload]
//            type 0 = query record, type 1 = footer
//   footer payload: [u32 footer magic "CGQF"][u64 record_count]
//
// The footer frame is mandatory and must be the file's last bytes: a log
// without it — any truncation, including one cut exactly at a frame
// boundary — reads as Status::Corruption, never as a silently shorter
// workload. Records are framed individually so the writer can stream
// appends; each frame's CRC-32C catches bit rot in place.
//
// Durability: appends are buffered in memory (the hot path pays a mutex +
// memcpy enqueue, no syscalls) and written out once the buffer exceeds
// QueryLogOptions::flush_bytes; Close() writes the footer and fsyncs. A
// crash before Close() loses only the un-Closed tail — by design the log
// is advisory observability data, not the database of record (contrast
// snapshot v2's write-tmp-then-rename in io_util.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnstore/io_util.h"
#include "graph/graph.h"
#include "obs/trace.h"
#include "query/agg_fn.h"
#include "util/status.h"
#include "util/sync.h"

namespace colgraph::obs {

namespace internal {
// Global kill switch mirroring g_metrics_enabled: gates the engine's log
// hooks without touching per-engine configuration. Relaxed: the flag gates
// observability, not correctness.
inline std::atomic<bool> g_query_log_enabled{true};
}  // namespace internal

/// True when query logging is on (the default). Engines with a configured
/// log skip the record hook entirely when off — same set-once-at-startup
/// contract as SetMetricsEnabled.
inline bool QueryLogEnabled() {
  return internal::g_query_log_enabled.load(std::memory_order_relaxed);
}
inline void SetQueryLogEnabled(bool on) {
  internal::g_query_log_enabled.store(on, std::memory_order_relaxed);
}

inline constexpr uint32_t kQueryLogMagic = 0x4C514743;   // "CGQL"
inline constexpr uint32_t kQueryLogFooterMagic = 0x46514743;  // "CGQF"
inline constexpr uint32_t kQueryLogVersion = 1;

/// What kind of query a log record captures.
enum class QueryLogKind : uint8_t { kMatch = 0, kPathAgg = 1 };

const char* QueryLogKindName(QueryLogKind kind);

/// \brief One executed query, as recorded in (or decoded from) the log.
///
/// The structural fields (`edges`, `isolated_nodes`) losslessly rebuild the
/// original GraphQuery via ToQuery(): true edges are re-added as edges and
/// degree-0 measured nodes as isolated nodes, so replay resolves the exact
/// element set the live query did. View indexes, timings, and cardinality
/// are the observed execution facts replay and bench_compare check against.
struct QueryLogRecord {
  QueryLogKind kind = QueryLogKind::kMatch;
  /// Aggregate function (kPathAgg only; ignored and stored as kSum for
  /// match queries).
  AggFn fn = AggFn::kSum;

  /// True edges of the query graph (no self-edges).
  std::vector<Edge> edges;
  /// Degree-0 nodes (measured nodes with no incident true edge).
  std::vector<NodeRef> isolated_nodes;

  /// Relation view indexes the rewriter chose (kGraphView sources).
  std::vector<uint32_t> graph_view_indexes;
  /// Relation aggregate-view indexes whose bp bitmaps the rewriter chose.
  std::vector<uint32_t> agg_view_indexes;

  /// Wall time spent in each QueryPhase, µs (zero for phases not run).
  uint64_t phase_us[kNumQueryPhases] = {};
  /// End-to-end wall time of the query, µs.
  uint64_t total_us = 0;
  /// Result cardinality: matching records (match) or aggregated groups
  /// (path-agg). Zero for unsatisfiable queries — those are logged too;
  /// the advisor must see misses to judge view support honestly.
  uint64_t result_cardinality = 0;

  /// Rebuilds the query graph this record was captured from.
  GraphQuery ToQuery() const;
};

/// \brief Per-engine query-log configuration (EngineOptions::query_log).
struct QueryLogOptions {
  /// Log file path; empty disables capture (the default).
  std::string path;
  /// Buffered bytes before the writer flushes to the file. The floor of 1
  /// effectively means "flush every record" — useful in tests.
  size_t flush_bytes = size_t{64} * 1024;
};

/// \brief Append-only query-log writer. Thread-safe: batch workers append
/// concurrently; each Append serializes its record and enqueues it under
/// one mutex.
///
/// Errors: Append is void (hot path) — the first failed file write poisons
/// the log (later appends drop, a one-line warning goes to stderr) and the
/// error is returned from Close(). Close() is idempotent and must be called
/// for the log to be readable at all (it writes the mandatory footer).
class QueryLog {
 public:
  /// Creates (truncating) the log file and writes the header.
  static StatusOr<std::unique_ptr<QueryLog>> Open(QueryLogOptions options);

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;
  /// Best-effort Close() (footer + fsync); errors only warn on stderr.
  ~QueryLog();

  /// Serializes and enqueues one record; flushes if the buffer is full.
  void Append(const QueryLogRecord& record);

  /// Writes any buffered frames to the file (no fsync, no footer).
  [[nodiscard]] Status Flush();

  /// Flushes, appends the footer frame, fsyncs, and closes. Idempotent;
  /// returns the first error the log hit, if any. After Close() further
  /// Appends drop silently.
  [[nodiscard]] Status Close();

  /// Records accepted so far (including buffered, unflushed ones).
  uint64_t records_appended() const;

  /// Records dropped after the log was poisoned by a write failure (disk
  /// full, injected fault): the buffered records discarded by the failing
  /// flush plus every record offered afterwards. Mirrored into the
  /// process-wide counter `query_log.dropped` so DumpMetricsJson surfaces
  /// the degradation (capture loss must be observable, never fatal).
  uint64_t records_dropped() const;

  const std::string& path() const { return options_.path; }

 private:
  explicit QueryLog(QueryLogOptions options, io::AppendFile file)
      : options_(std::move(options)), file_(std::move(file)) {}

  // Flushes buffer_ to file_; on failure poisons the log.
  void FlushLocked() COLGRAPH_REQUIRES(mu_);

  const QueryLogOptions options_;

  mutable Mutex mu_;
  io::AppendFile file_ COLGRAPH_GUARDED_BY(mu_);
  std::vector<char> buffer_ COLGRAPH_GUARDED_BY(mu_);
  uint64_t records_ COLGRAPH_GUARDED_BY(mu_) = 0;
  /// Records currently in buffer_ (lost if the next flush fails).
  uint64_t buffered_records_ COLGRAPH_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ COLGRAPH_GUARDED_BY(mu_) = 0;
  bool closed_ COLGRAPH_GUARDED_BY(mu_) = false;
  Status first_error_ COLGRAPH_GUARDED_BY(mu_) = Status::OK();
};

/// Serializes one record as a complete [type|len|crc|payload] frame,
/// appended to `out`. Exposed for the reader's tests.
void AppendRecordFrame(const QueryLogRecord& record, std::vector<char>* out);

}  // namespace colgraph::obs
