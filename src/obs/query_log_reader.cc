#include "obs/query_log_reader.h"

#include <cstring>

#include "columnstore/io_util.h"
#include "util/crc32.h"

namespace colgraph::obs {

namespace {

constexpr uint8_t kFrameRecord = 0;
constexpr uint8_t kFrameFooter = 1;
constexpr size_t kFrameHeaderBytes = 1 + 8 + 4;  // type + len + crc
constexpr size_t kFooterPayloadBytes = 4 + 8;    // magic + record count

// Bounds-checked cursor over one frame payload. Every read is clamped by
// the payload length, so a corrupt count fails cleanly instead of reading
// out of bounds or resizing to a bogus size.
class PayloadCursor {
 public:
  PayloadCursor(const char* data, size_t size, const std::string& what)
      : data_(data), size_(size), what_(what) {}

  template <typename T>
  [[nodiscard]] Status ReadPod(T* value) {
    if (sizeof(T) > size_ - pos_) {
      return Corrupt("record payload ends mid-field");
    }
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  // Reads [u32 count][count × ElementBytes-byte elements] via `decode`.
  template <typename Fn>
  [[nodiscard]] Status ReadCounted(size_t element_bytes, Fn decode) {
    uint32_t n = 0;
    COLGRAPH_RETURN_NOT_OK(ReadPod(&n));
    if (n > (size_ - pos_) / element_bytes) {
      return Corrupt("record element count exceeds payload size");
    }
    for (uint32_t i = 0; i < n; ++i) {
      COLGRAPH_RETURN_NOT_OK(decode(this));
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == size_; }

  Status Corrupt(const std::string& msg) const {
    return Status::Corruption(msg + " in " + what_);
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  const std::string& what_;
};

Status DecodeRecord(const char* data, size_t size, const std::string& what,
                    QueryLogRecord* out) {
  PayloadCursor c(data, size, what);
  uint8_t kind = 0, fn = 0;
  uint16_t pad = 0;
  COLGRAPH_RETURN_NOT_OK(c.ReadPod(&kind));
  COLGRAPH_RETURN_NOT_OK(c.ReadPod(&fn));
  COLGRAPH_RETURN_NOT_OK(c.ReadPod(&pad));
  if (kind > static_cast<uint8_t>(QueryLogKind::kPathAgg)) {
    return c.Corrupt("unknown query kind");
  }
  if (fn > static_cast<uint8_t>(AggFn::kAvg)) {
    return c.Corrupt("unknown aggregate function");
  }
  if (pad != 0) {
    return c.Corrupt("nonzero record padding");
  }
  out->kind = static_cast<QueryLogKind>(kind);
  out->fn = static_cast<AggFn>(fn);

  // The element lambdas live outside the COLGRAPH_RETURN_NOT_OK arguments:
  // the macro declares a local Status, and a nested use inside the argument
  // expression would shadow it (-Wshadow under COLGRAPH_STRICT).
  const auto read_edge = [out](PayloadCursor* cur) {
    Edge e;
    COLGRAPH_RETURN_NOT_OK(cur->ReadPod(&e.from.base));
    COLGRAPH_RETURN_NOT_OK(cur->ReadPod(&e.from.occurrence));
    COLGRAPH_RETURN_NOT_OK(cur->ReadPod(&e.to.base));
    COLGRAPH_RETURN_NOT_OK(cur->ReadPod(&e.to.occurrence));
    // Self-edges are legal here: query graphs carry them as node-measure
    // constraints, and capture stores g.edges() verbatim so ToQuery()
    // can rebuild the exact original query.
    out->edges.push_back(e);
    return Status::OK();
  };
  const auto read_node = [out](PayloadCursor* cur) {
    NodeRef n;
    COLGRAPH_RETURN_NOT_OK(cur->ReadPod(&n.base));
    COLGRAPH_RETURN_NOT_OK(cur->ReadPod(&n.occurrence));
    out->isolated_nodes.push_back(n);
    return Status::OK();
  };
  const auto read_graph_view = [out](PayloadCursor* cur) {
    uint32_t v = 0;
    COLGRAPH_RETURN_NOT_OK(cur->ReadPod(&v));
    out->graph_view_indexes.push_back(v);
    return Status::OK();
  };
  const auto read_agg_view = [out](PayloadCursor* cur) {
    uint32_t v = 0;
    COLGRAPH_RETURN_NOT_OK(cur->ReadPod(&v));
    out->agg_view_indexes.push_back(v);
    return Status::OK();
  };
  COLGRAPH_RETURN_NOT_OK(c.ReadCounted(4 * sizeof(uint32_t), read_edge));
  COLGRAPH_RETURN_NOT_OK(c.ReadCounted(2 * sizeof(uint32_t), read_node));
  COLGRAPH_RETURN_NOT_OK(c.ReadCounted(sizeof(uint32_t), read_graph_view));
  COLGRAPH_RETURN_NOT_OK(c.ReadCounted(sizeof(uint32_t), read_agg_view));

  for (size_t p = 0; p < kNumQueryPhases; ++p) {
    COLGRAPH_RETURN_NOT_OK(c.ReadPod(&out->phase_us[p]));
  }
  COLGRAPH_RETURN_NOT_OK(c.ReadPod(&out->total_us));
  COLGRAPH_RETURN_NOT_OK(c.ReadPod(&out->result_cardinality));
  if (!c.AtEnd()) {
    return c.Corrupt("trailing bytes inside a record payload");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<QueryLogRecord>> DecodeQueryLog(
    const std::vector<char>& data, const std::string& what) {
  const auto corrupt = [&what](const std::string& msg) {
    return Status::Corruption(msg + " in " + what);
  };

  size_t pos = 0;
  if (data.size() < 2 * sizeof(uint32_t)) {
    return corrupt("truncated query log preamble");
  }
  uint32_t magic = 0, version = 0;
  std::memcpy(&magic, data.data(), sizeof(magic));
  std::memcpy(&version, data.data() + sizeof(magic), sizeof(version));
  if (magic != kQueryLogMagic) {
    return corrupt("bad query log magic");
  }
  if (version != kQueryLogVersion) {
    return corrupt("unsupported query log version " + std::to_string(version));
  }
  pos = 2 * sizeof(uint32_t);

  std::vector<QueryLogRecord> records;
  bool saw_footer = false;
  uint64_t footer_count = 0;
  while (pos < data.size()) {
    if (saw_footer) {
      return corrupt("frame after the footer");
    }
    if (data.size() - pos < kFrameHeaderBytes) {
      return corrupt("truncated frame header");
    }
    uint8_t type = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&type, data.data() + pos, sizeof(type));
    std::memcpy(&len, data.data() + pos + 1, sizeof(len));
    std::memcpy(&crc, data.data() + pos + 9, sizeof(crc));
    pos += kFrameHeaderBytes;
    if (len > data.size() - pos) {
      return corrupt("frame length exceeds file size");
    }
    const char* payload = data.data() + pos;
    if (Crc32c(payload, static_cast<size_t>(len)) != crc) {
      return corrupt("frame checksum mismatch");
    }
    pos += static_cast<size_t>(len);

    switch (type) {
      case kFrameRecord: {
        QueryLogRecord record;
        COLGRAPH_RETURN_NOT_OK(
            DecodeRecord(payload, static_cast<size_t>(len), what, &record));
        records.push_back(std::move(record));
        break;
      }
      case kFrameFooter: {
        if (len != kFooterPayloadBytes) {
          return corrupt("footer payload has the wrong size");
        }
        uint32_t footer_magic = 0;
        std::memcpy(&footer_magic, payload, sizeof(footer_magic));
        std::memcpy(&footer_count, payload + 4, sizeof(footer_count));
        if (footer_magic != kQueryLogFooterMagic) {
          return corrupt("bad footer magic");
        }
        saw_footer = true;
        break;
      }
      default:
        return corrupt("unknown frame type");
    }
  }

  // The footer is mandatory and must account for every record: its absence
  // means the log was torn (crash before Close, or a truncation that
  // happened to land on a frame boundary).
  if (!saw_footer) {
    return corrupt("missing footer (log not closed, or truncated)");
  }
  if (footer_count != records.size()) {
    return corrupt("footer record count does not match the frames present");
  }
  return records;
}

StatusOr<std::vector<QueryLogRecord>> ReadQueryLog(const std::string& path) {
  COLGRAPH_ASSIGN_OR_RETURN(std::vector<char> data,
                            io::ReadFileBytes(path));
  return DecodeQueryLog(data, path);
}

}  // namespace colgraph::obs
