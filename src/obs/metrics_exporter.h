// Background metrics export (DESIGN.md §15): a single worker periodically
// snapshots the process-wide MetricsRegistry and writes one JSON document
// to `<dir>/metrics.json` via write-tmp + atomic rename, so an external
// collector (or `colgraph_client stats --watch` against a dead daemon) can
// read a consistent file at any moment — never a torn one. Each document
// carries a sequence number, the full metrics dump, and the per-interval
// counter deltas since the previous export (rates without the collector
// having to keep state).
//
// Failure policy: an export that cannot be written bumps
// `metrics_exporter.failures` and the loop keeps going — observability
// degradation must never affect serving (same stance as the query and
// slow-query logs). Stop() runs one final export so short-lived processes
// still leave a document behind.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace colgraph::obs {

struct MetricsExporterOptions {
  /// Directory for the exported document (created if absent).
  std::string dir;
  /// Milliseconds between exports.
  uint64_t period_ms = 1000;
  /// File name inside `dir`.
  std::string file_name = "metrics.json";
  /// Pre-rendered JSON to embed as the document's "metrics" value; when
  /// unset, MetricsRegistry::Global().ToJson() is used. The daemon passes
  /// its DumpMetricsJson so the export matches the STATS wire response.
  std::function<std::string()> source;
};

/// \brief Periodic registry-snapshot writer on its own single-thread pool.
class MetricsExporter {
 public:
  /// Validates the options, creates `dir`, performs one immediate export
  /// (so the file exists as soon as Start returns), and launches the
  /// periodic loop. The immediate export's write may fail (counted, not
  /// fatal); only configuration errors fail Start.
  static StatusOr<std::unique_ptr<MetricsExporter>> Start(
      MetricsExporterOptions options);

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;
  ~MetricsExporter();

  /// Stops the loop, joins the worker, and writes one final export.
  /// Idempotent.
  void Stop();

  /// Renders and atomically writes one document right now (also what the
  /// loop calls each period). Thread-safe. Failures bump
  /// `metrics_exporter.failures` and are returned.
  [[nodiscard]] Status ExportOnce();

  /// Full path of the exported document.
  std::string target_path() const;

  /// Documents successfully written / failed writes, process-wide counters
  /// ("metrics_exporter.exports" / "metrics_exporter.failures").
  uint64_t exports() const;
  uint64_t failures() const;

 private:
  explicit MetricsExporter(MetricsExporterOptions options);

  void Run();

  const MetricsExporterOptions options_;

  Mutex mu_;
  CondVar cv_;
  bool stop_ COLGRAPH_GUARDED_BY(mu_) = false;
  uint64_t seq_ COLGRAPH_GUARDED_BY(mu_) = 0;
  /// Counter values at the previous export, for delta reporting.
  std::map<std::string, uint64_t> last_counters_ COLGRAPH_GUARDED_BY(mu_);

  bool stopped_ = false;  ///< Stop() ran (main thread only)
  /// Single worker running Run(); destroyed (joined) by Stop(). Last
  /// member so the loop never sees partially constructed state.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace colgraph::obs
