// Validating reader for the query-log format defined in obs/query_log.h.
//
// Structural guarantees (torture-tested like the snapshot codecs): a log
// that was not cleanly Close()d — any byte truncation, a missing footer,
// trailing bytes, a record-count mismatch — is Status::Corruption, and
// every length prefix is bounded by the bytes actually present before any
// allocation or copy. A valid file decodes to the exact QueryLogRecord
// sequence that was appended.
#pragma once

#include <string>
#include <vector>

#include "obs/query_log.h"
#include "util/status.h"

namespace colgraph::obs {

/// Reads and validates a whole query log. Missing file → IOError;
/// structural damage → Corruption. Failpoint: "io:open_read".
StatusOr<std::vector<QueryLogRecord>> ReadQueryLog(const std::string& path);

/// Decodes a log already loaded into memory (torture tests mutate bytes
/// in place). `what` names the source in error messages.
StatusOr<std::vector<QueryLogRecord>> DecodeQueryLog(
    const std::vector<char>& data, const std::string& what);

}  // namespace colgraph::obs
