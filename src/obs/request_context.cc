#include "obs/request_context.h"

#include "obs/json_writer.h"
#include "util/check.h"

namespace colgraph::obs {

const char* ServerPhaseName(ServerPhase phase) {
  switch (phase) {
    case ServerPhase::kQueueWait:
      return "queue_wait";
    case ServerPhase::kAdmission:
      return "admission";
    case ServerPhase::kDecode:
      return "decode";
    case ServerPhase::kEvaluate:
      return "evaluate";
    case ServerPhase::kEncode:
      return "encode";
    case ServerPhase::kWrite:
      return "write";
  }
  return "unknown";
}

LatencyHistogram& ServerPhaseHistogram(ServerPhase phase) {
  // One stable histogram per phase, resolved once — same shape as
  // PhaseHistogram (trace.cc).
  static LatencyHistogram* histograms[kNumServerPhases] = {
      &MetricsRegistry::Global().GetHistogram("server.phase.queue_wait_us"),
      &MetricsRegistry::Global().GetHistogram("server.phase.admission_us"),
      &MetricsRegistry::Global().GetHistogram("server.phase.decode_us"),
      &MetricsRegistry::Global().GetHistogram("server.phase.evaluate_us"),
      &MetricsRegistry::Global().GetHistogram("server.phase.encode_us"),
      &MetricsRegistry::Global().GetHistogram("server.phase.write_us"),
  };
  const size_t index = static_cast<size_t>(phase);
  COLGRAPH_DCHECK_LT(index, kNumServerPhases);
  return *histograms[index];
}

std::string RequestContext::ToJson(uint64_t snapshot_epoch) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("request_id");
  w.Uint(request_id_);
  w.Key("snapshot_epoch");
  w.Uint(snapshot_epoch);
  w.Key("total_us");
  w.Uint(ElapsedUs());
  w.Key("events");
  w.BeginArray();
  for (const TraceEvent& e : trace_->events()) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    w.Key("start_us");
    w.Uint(e.start_us);
    w.Key("duration_us");
    w.Uint(e.duration_us);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void RecordQueueWait(RequestContext* ctx, uint64_t enqueued_us,
                     uint64_t dequeued_us) {
  const uint64_t wait =
      dequeued_us >= enqueued_us ? dequeued_us - enqueued_us : 0;
  if (MetricsEnabled()) {
    ServerPhaseHistogram(ServerPhase::kQueueWait).Record(wait);
  }
  if (ctx != nullptr) {
    // Queue wait precedes the request's MarkStart; Trace::Add clamps the
    // pre-origin start to 0, putting the wait at the head of the timeline.
    ctx->trace().Add(ServerPhaseName(ServerPhase::kQueueWait), enqueued_us,
                     wait);
  }
}

}  // namespace colgraph::obs
