#include "obs/trace.h"

#include "obs/json_writer.h"
#include "util/check.h"

namespace colgraph::obs {

const char* PhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kResolve:
      return "resolve";
    case QueryPhase::kRewrite:
      return "rewrite";
    case QueryPhase::kBitmapAnd:
      return "bitmap_and";
    case QueryPhase::kFetch:
      return "fetch";
    case QueryPhase::kAggregate:
      return "aggregate";
  }
  return "unknown";
}

LatencyHistogram& PhaseHistogram(QueryPhase phase) {
  // One stable histogram per phase, resolved once: function-local statics
  // make the registry lookup a one-time cost per process.
  static LatencyHistogram* histograms[kNumQueryPhases] = {
      &MetricsRegistry::Global().GetHistogram("query.phase.resolve_us"),
      &MetricsRegistry::Global().GetHistogram("query.phase.rewrite_us"),
      &MetricsRegistry::Global().GetHistogram("query.phase.bitmap_and_us"),
      &MetricsRegistry::Global().GetHistogram("query.phase.fetch_us"),
      &MetricsRegistry::Global().GetHistogram("query.phase.aggregate_us"),
  };
  const size_t index = static_cast<size_t>(phase);
  COLGRAPH_DCHECK_LT(index, kNumQueryPhases);
  return *histograms[index];
}

void Trace::Add(const char* name, uint64_t start_us, uint64_t duration_us) {
  const uint64_t relative =
      start_us >= origin_us_ ? start_us - origin_us_ : 0;
  const MutexLock lock(mu_);
  events_.push_back(TraceEvent{name, relative, duration_us});
}

std::vector<TraceEvent> Trace::events() const {
  const MutexLock lock(mu_);
  return events_;
}

std::string Trace::ToJson() const {
  const std::vector<TraceEvent> snapshot = events();
  JsonWriter w;
  w.BeginObject();
  w.Key("events");
  w.BeginArray();
  for (const TraceEvent& e : snapshot) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    w.Key("start_us");
    w.Uint(e.start_us);
    w.Key("duration_us");
    w.Uint(e.duration_us);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace colgraph::obs
