// Minimal JSON emission for the observability layer (metrics dumps, EXPLAIN
// renderers, bench --metrics-out files). Write-only by design: the repo has
// no JSON *parsing* needs, so this stays a ~100-line appender with correct
// string escaping and automatic comma placement instead of a dependency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace colgraph::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// \brief Appends JSON to an owned string: nested objects/arrays with
/// automatic commas. Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("count"); w.Int(3);
///   w.Key("rows"); w.BeginArray(); w.String("a"); w.EndArray();
///   w.EndObject();
///   w.str();  // {"count":3,"rows":["a"]}
class JsonWriter {
 public:
  void BeginObject() {
    Separate();
    out_ += '{';
    fresh_.push_back(true);
  }
  void EndObject() {
    out_ += '}';
    fresh_.pop_back();
  }
  void BeginArray() {
    Separate();
    out_ += '[';
    fresh_.push_back(true);
  }
  void EndArray() {
    out_ += ']';
    fresh_.pop_back();
  }

  /// Emits `"name":`; the next value call supplies the value.
  void Key(const std::string& name) {
    Separate();
    out_ += '"';
    out_ += JsonEscape(name);
    out_ += "\":";
    after_key_ = true;
  }

  void String(const std::string& value) {
    Separate();
    out_ += '"';
    out_ += JsonEscape(value);
    out_ += '"';
  }
  void Int(int64_t value) {
    Separate();
    out_ += std::to_string(value);
  }
  void Uint(uint64_t value) {
    Separate();
    out_ += std::to_string(value);
  }
  void Double(double value) {
    Separate();
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    out_ += buffer;
  }
  void Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
  }
  /// Splices pre-rendered JSON (e.g. a registry dump) in as one value.
  void Raw(const std::string& json) {
    Separate();
    out_ += json;
  }

  const std::string& str() const { return out_; }

 private:
  // Inserts the comma between container siblings. A value directly after
  // Key() never gets one; the first element of a container doesn't either.
  void Separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (fresh_.empty()) return;
    if (fresh_.back()) {
      fresh_.back() = false;
    } else {
      out_ += ',';
    }
  }

  std::string out_;
  std::vector<bool> fresh_;  // per open container: no element emitted yet
  bool after_key_ = false;
};

}  // namespace colgraph::obs
