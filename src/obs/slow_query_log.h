// Durable slow-query capture (DESIGN.md §15): an append-only binary log of
// the requests worth keeping — those over a latency threshold, plus an
// optional deterministic 1-in-N sample of everything else — each record
// carrying the full joined trace (server phases + engine phases) keyed by
// the wire-propagated request id. Where the query log (query_log.h)
// records every query's *structure* for replay, this log records selected
// requests' *time breakdown* for diagnosis; tools/colgraph_trace renders
// it.
//
// File format (all integers host byte order, frames as in query_log.h):
//
//   header:  [u32 magic "CGSQ"][u32 version = 1]
//   frame*:  [u8 type][u64 payload_len][u32 crc32c(payload)][payload]
//            type 0 = slow-query record, type 1 = footer
//   footer payload: [u32 footer magic "CGSF"][u64 record_count]
//
// Durability and degradation mirror QueryLog exactly: buffered appends, a
// mandatory footer written by Close(), and poison-on-write-failure with
// drops mirrored into the process-wide counter `slow_query_log.dropped` —
// a full disk degrades capture, never serving.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnstore/io_util.h"
#include "util/status.h"
#include "util/sync.h"

namespace colgraph::obs {

inline constexpr uint32_t kSlowQueryLogMagic = 0x51534743;        // "CGSQ"
inline constexpr uint32_t kSlowQueryLogFooterMagic = 0x46534743;  // "CGSF"
inline constexpr uint32_t kSlowQueryLogVersion = 1;

/// Query text beyond this many bytes is truncated at Append: the log
/// captures enough to identify the request, not to archive multi-MB
/// ingest bodies.
inline constexpr size_t kMaxSlowQueryTextBytes = 4096;

/// \brief One timed region inside a captured record. Mirrors TraceEvent
/// with an owned name (the record outlives the trace it came from).
struct SlowQuerySpan {
  std::string name;
  uint64_t start_us = 0;  ///< relative to the request start
  uint64_t duration_us = 0;
};

/// \brief One captured request, as recorded in (or decoded from) the log.
struct SlowQueryRecord {
  uint64_t request_id = 0;
  uint64_t snapshot_epoch = 0;
  uint64_t total_us = 0;
  uint32_t wire_code = 0;  ///< server::WireCode of the response
  uint8_t op = 0;          ///< server::RequestOp of the request
  /// True when the record was taken by the 1-in-N sampler rather than the
  /// latency threshold — samples are a workload cross-section, not
  /// outliers, and consumers must not mix the two populations.
  bool sampled = false;
  /// Request body, truncated to kMaxSlowQueryTextBytes.
  std::string query;
  /// The joined trace: server phases + engine phases, completion order.
  std::vector<SlowQuerySpan> spans;
};

/// \brief Capture policy + file configuration (DaemonOptions::slow_query_log).
struct SlowQueryLogOptions {
  /// Log file path; empty disables capture (the default).
  std::string path;
  /// Requests at or above this total latency are always captured.
  uint64_t threshold_us = 20 * 1000;
  /// Additionally capture every Nth request regardless of latency
  /// (deterministic counter, so tests and overhead are predictable);
  /// 0 disables sampling.
  uint64_t sample_every = 0;
  /// Buffered bytes before the writer flushes to the file; the floor of 1
  /// effectively means "flush every record" — useful in tests.
  size_t flush_bytes = size_t{64} * 1024;
};

/// \brief Append-only slow-query-log writer. Thread-safe: connection
/// workers decide and append concurrently.
class SlowQueryLog {
 public:
  /// Creates (truncating) the log file and writes the header.
  static StatusOr<std::unique_ptr<SlowQueryLog>> Open(
      SlowQueryLogOptions options);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;
  /// Best-effort Close() (footer + fsync); errors only warn on stderr.
  ~SlowQueryLog();

  /// The capture decision for a finished request: true when `total_us`
  /// meets the threshold or the deterministic sampler picks this request.
  /// `sampled_out` (may be null) reports which rule fired — threshold wins
  /// when both do. Counts every offered request, so call exactly once per
  /// request.
  bool AdmitForCapture(uint64_t total_us, bool* sampled_out);

  /// Serializes and enqueues one record (query text truncated to
  /// kMaxSlowQueryTextBytes); flushes if the buffer is full. Errors poison
  /// the log as in QueryLog::Append.
  void Append(const SlowQueryRecord& record);

  /// Flushes, appends the footer frame, fsyncs, and closes. Idempotent;
  /// returns the first error the log hit. After Close() Appends drop.
  [[nodiscard]] Status Close();

  uint64_t records_appended() const;
  /// Records dropped after a write failure poisoned the log; mirrored into
  /// the process-wide counter `slow_query_log.dropped`.
  uint64_t records_dropped() const;

  const std::string& path() const { return options_.path; }
  const SlowQueryLogOptions& options() const { return options_; }

 private:
  SlowQueryLog(SlowQueryLogOptions options, io::AppendFile file)
      : options_(std::move(options)), file_(std::move(file)) {}

  void FlushLocked() COLGRAPH_REQUIRES(mu_);

  const SlowQueryLogOptions options_;

  mutable Mutex mu_;
  io::AppendFile file_ COLGRAPH_GUARDED_BY(mu_);
  std::vector<char> buffer_ COLGRAPH_GUARDED_BY(mu_);
  uint64_t records_ COLGRAPH_GUARDED_BY(mu_) = 0;
  uint64_t buffered_records_ COLGRAPH_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ COLGRAPH_GUARDED_BY(mu_) = 0;
  uint64_t offered_ COLGRAPH_GUARDED_BY(mu_) = 0;  ///< sampler position
  bool closed_ COLGRAPH_GUARDED_BY(mu_) = false;
  Status first_error_ COLGRAPH_GUARDED_BY(mu_) = Status::OK();
};

/// Serializes one record as a complete [type|len|crc|payload] frame,
/// appended to `out`. Exposed for the reader's tests.
void AppendSlowQueryFrame(const SlowQueryRecord& record,
                          std::vector<char>* out);

/// Reads a closed slow-query log back: validates the header, every frame
/// CRC, and the mandatory footer (count match included). Any truncation —
/// even at a frame boundary — is Status::Corruption.
StatusOr<std::vector<SlowQueryRecord>> ReadSlowQueryLog(
    const std::string& path);

}  // namespace colgraph::obs
