#include "obs/query_log.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/crc32.h"

namespace colgraph::obs {

namespace {

/// Process-wide mirror of per-log drop counts: disk-full capture loss must
/// show up in DumpMetricsJson, not just in one QueryLog instance.
Counter& DroppedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("query_log.dropped");
  return c;
}

constexpr uint8_t kFrameRecord = 0;
constexpr uint8_t kFrameFooter = 1;

void AppendBytes(std::vector<char>* out, const void* data, size_t n) {
  if (n == 0) return;  // out->data() may still be null; memcpy is nonnull
  const size_t old = out->size();
  out->resize(old + n);
  std::memcpy(out->data() + old, data, n);
}

template <typename T>
void AppendPod(std::vector<char>* out, const T& value) {
  AppendBytes(out, &value, sizeof(T));
}

// Serializes the record payload (frame header excluded).
void AppendRecordPayload(const QueryLogRecord& r, std::vector<char>* out) {
  AppendPod(out, static_cast<uint8_t>(r.kind));
  AppendPod(out, static_cast<uint8_t>(r.fn));
  AppendPod(out, uint16_t{0});  // pad: keeps the u32 counts aligned

  AppendPod(out, static_cast<uint32_t>(r.edges.size()));
  for (const Edge& e : r.edges) {
    AppendPod(out, e.from.base);
    AppendPod(out, e.from.occurrence);
    AppendPod(out, e.to.base);
    AppendPod(out, e.to.occurrence);
  }
  AppendPod(out, static_cast<uint32_t>(r.isolated_nodes.size()));
  for (const NodeRef& n : r.isolated_nodes) {
    AppendPod(out, n.base);
    AppendPod(out, n.occurrence);
  }
  AppendPod(out, static_cast<uint32_t>(r.graph_view_indexes.size()));
  for (const uint32_t v : r.graph_view_indexes) AppendPod(out, v);
  AppendPod(out, static_cast<uint32_t>(r.agg_view_indexes.size()));
  for (const uint32_t v : r.agg_view_indexes) AppendPod(out, v);

  for (size_t p = 0; p < kNumQueryPhases; ++p) AppendPod(out, r.phase_us[p]);
  AppendPod(out, r.total_us);
  AppendPod(out, r.result_cardinality);
}

// Wraps `payload` in a [type|len|crc|payload] frame appended to `out`.
void AppendFrame(uint8_t type, const std::vector<char>& payload,
                 std::vector<char>* out) {
  AppendPod(out, type);
  AppendPod(out, static_cast<uint64_t>(payload.size()));
  AppendPod(out, Crc32c(payload.data(), payload.size()));
  AppendBytes(out, payload.data(), payload.size());
}

}  // namespace

const char* QueryLogKindName(QueryLogKind kind) {
  switch (kind) {
    case QueryLogKind::kMatch:
      return "match";
    case QueryLogKind::kPathAgg:
      return "path_agg";
  }
  return "unknown";
}

GraphQuery QueryLogRecord::ToQuery() const {
  DirectedGraph g;
  for (const Edge& e : edges) g.AddEdge(e);
  // Isolated measured nodes must come back as nodes, not self-edges: a
  // self-edge would put a cycle in the structure and break the aggregate
  // path's DAG requirement. Resolve() turns them back into Edge{n,n}
  // catalog lookups, exactly as it did for the live query.
  for (const NodeRef& n : isolated_nodes) g.AddNode(n);
  return GraphQuery(std::move(g));
}

void AppendRecordFrame(const QueryLogRecord& record, std::vector<char>* out) {
  std::vector<char> payload;
  AppendRecordPayload(record, &payload);
  AppendFrame(kFrameRecord, payload, out);
}

StatusOr<std::unique_ptr<QueryLog>> QueryLog::Open(QueryLogOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("query log path must not be empty");
  }
  COLGRAPH_ASSIGN_OR_RETURN(io::AppendFile file,
                            io::AppendFile::Create(options.path));
  std::unique_ptr<QueryLog> log(
      new QueryLog(std::move(options), std::move(file)));
  AppendPod(&log->buffer_, kQueryLogMagic);
  AppendPod(&log->buffer_, kQueryLogVersion);
  return log;
}

QueryLog::~QueryLog() {
  const Status s = Close();
  if (!s.ok()) {
    std::fprintf(stderr, "colgraph: query log close failed: %s\n",
                 s.ToString().c_str());
  }
}

void QueryLog::Append(const QueryLogRecord& record) {
  // Serialize outside the lock: the buffer enqueue is the only contended
  // part of the hot path.
  std::vector<char> frame;
  AppendRecordFrame(record, &frame);

  const MutexLock lock(mu_);
  if (closed_) return;
  if (!first_error_.ok()) {
    // Poisoned (disk full, torn write): the engine keeps serving; the
    // record is dropped and the loss is counted, not fatal.
    ++dropped_;
    DroppedCounter().Increment();
    return;
  }
  AppendBytes(&buffer_, frame.data(), frame.size());
  ++records_;
  ++buffered_records_;
  if (buffer_.size() >= options_.flush_bytes) FlushLocked();
}

void QueryLog::FlushLocked() {
  if (buffer_.empty() || !first_error_.ok()) return;
  const Status s = file_.Append(buffer_.data(), buffer_.size());
  buffer_.clear();
  if (!s.ok()) {
    first_error_ = s;
    // The buffered records went down with the failed write.
    dropped_ += buffered_records_;
    DroppedCounter().Add(buffered_records_);
    std::fprintf(stderr,
                 "colgraph: query log write failed, capture degraded to "
                 "dropping (%s)\n",
                 s.ToString().c_str());
  }
  buffered_records_ = 0;
}

Status QueryLog::Flush() {
  const MutexLock lock(mu_);
  FlushLocked();
  return first_error_;
}

Status QueryLog::Close() {
  const MutexLock lock(mu_);
  if (closed_) return first_error_;
  closed_ = true;
  if (first_error_.ok()) {
    std::vector<char> footer;
    AppendPod(&footer, kQueryLogFooterMagic);
    AppendPod(&footer, records_);
    AppendFrame(kFrameFooter, footer, &buffer_);
    FlushLocked();
  }
  const Status sync = file_.SyncAndClose();
  if (first_error_.ok()) first_error_ = sync;
  return first_error_;
}

uint64_t QueryLog::records_appended() const {
  const MutexLock lock(mu_);
  return records_;
}

uint64_t QueryLog::records_dropped() const {
  const MutexLock lock(mu_);
  return dropped_;
}

}  // namespace colgraph::obs
