#include "obs/explain.h"

#include <cstdio>

#include "obs/json_writer.h"

namespace colgraph::obs {

namespace {

std::string JoinIds(const std::vector<EdgeId>& ids) {
  std::string out = "[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids[i]);
  }
  out += "]";
  return out;
}

}  // namespace

const char* ExplainSource::KindName() const {
  switch (source.kind) {
    case BitmapSource::Kind::kEdge:
      return "edge";
    case BitmapSource::Kind::kGraphView:
      return "graph_view";
    case BitmapSource::Kind::kAggViewBitmap:
      return "agg_view_bitmap";
  }
  return "unknown";
}

std::string ExplainResult::ToText() const {
  std::string out;
  out += "query edges " + JoinIds(query_edges) + "\n";
  if (!satisfiable) {
    out += "  unsatisfiable: an edge was never ingested; 0 records match\n";
    return out;
  }
  char line[160];
  for (size_t i = 0; i < sources.size(); ++i) {
    const ExplainSource& s = sources[i];
    std::snprintf(line, sizeof(line),
                  "  %zu. %s #%zu covers %s  est=%zu  after-AND=%zu%s\n",
                  i + 1, s.KindName(), s.source.index,
                  JoinIds(s.covers).c_str(), s.estimated_cardinality,
                  s.cumulative_cardinality, s.hybrid ? "  enc=hybrid" : "");
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  views=%zu residual=%s matched=%zu records\n",
                graph_view_indexes.size(), JoinIds(residual_edges).c_str(),
                matched_records);
  out += line;
  if (is_aggregate) {
    std::string agg = "[";
    for (size_t i = 0; i < agg_view_indexes.size(); ++i) {
      if (i > 0) agg += ",";
      agg += std::to_string(agg_view_indexes[i]);
    }
    agg += "]";
    std::snprintf(line, sizeof(line),
                  "  aggregate: paths=%zu agg-views=%s elements "
                  "view-covered=%zu atomic=%zu\n",
                  num_paths, agg.c_str(), path_elements_from_views,
                  path_elements_atomic);
    out += line;
  }
  return out;
}

std::string ExplainResult::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("query_edges");
  w.BeginArray();
  for (EdgeId e : query_edges) w.Uint(e);
  w.EndArray();
  w.Key("satisfiable");
  w.Bool(satisfiable);
  w.Key("used_views");
  w.Bool(used_views);
  w.Key("sources");
  w.BeginArray();
  for (const ExplainSource& s : sources) {
    w.BeginObject();
    w.Key("kind");
    w.String(s.KindName());
    w.Key("index");
    w.Uint(s.source.index);
    w.Key("covers");
    w.BeginArray();
    for (EdgeId e : s.covers) w.Uint(e);
    w.EndArray();
    w.Key("estimated_cardinality");
    w.Uint(s.estimated_cardinality);
    w.Key("cumulative_cardinality");
    w.Uint(s.cumulative_cardinality);
    w.Key("hybrid");
    w.Bool(s.hybrid);
    w.EndObject();
  }
  w.EndArray();
  w.Key("residual_edges");
  w.BeginArray();
  for (EdgeId e : residual_edges) w.Uint(e);
  w.EndArray();
  w.Key("graph_view_indexes");
  w.BeginArray();
  for (size_t v : graph_view_indexes) w.Uint(v);
  w.EndArray();
  w.Key("matched_records");
  w.Uint(matched_records);
  if (is_aggregate) {
    w.Key("aggregate");
    w.BeginObject();
    w.Key("agg_view_indexes");
    w.BeginArray();
    for (size_t v : agg_view_indexes) w.Uint(v);
    w.EndArray();
    w.Key("num_paths");
    w.Uint(num_paths);
    w.Key("path_elements_from_views");
    w.Uint(path_elements_from_views);
    w.Key("path_elements_atomic");
    w.Uint(path_elements_atomic);
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

}  // namespace colgraph::obs
