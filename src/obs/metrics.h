// Process-wide metrics registry (DESIGN.md §9): named counters, gauges, and
// fixed-bucket latency histograms, all built on relaxed atomics so the
// PR-3 parallel query paths can record without locks. The registry exists
// to make the paper's quantitative claims observable at runtime — where a
// query spends its time (bitmap ANDs vs. fetch vs. aggregation) and how
// often the rewriter's views actually fire — and to feed the
// machine-readable BENCH_*.json files the experiment harnesses emit.
//
// Concurrency: metric *updates* (Counter::Add, Histogram::Record, ...) are
// relaxed atomic operations, safe from any thread. Metric *registration*
// (Get*) takes a mutex; call sites on hot paths should cache the returned
// reference (references are stable for the registry's lifetime — metrics
// are never deregistered). ToJson()/Reset() read/write each cell
// atomically but are not a consistent cross-metric snapshot; read after
// the parallel section completes for exact totals (same contract as
// FetchStats, DESIGN.md §8).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/atomic_counter.h"
#include "util/sync.h"

namespace colgraph::obs {

namespace internal {
// Global kill switch, checked by Span before any clock read. Relaxed: the
// flag gates statistics, not correctness.
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal

/// True when metric recording is on (the default). Span and the engine's
/// instrumentation points skip all clock reads and stores when off.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void SetMetricsEnabled(bool on) {
  internal::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// Whole seconds since the process started (anchored at static
/// initialization, steady clock). Reported by DumpMetricsJson as
/// `uptime_seconds` so a served metrics document says how long the daemon
/// has been up; lives in the obs layer because timing code is banned
/// elsewhere (lint rule [no-adhoc-timing]).
uint64_t ProcessUptimeSeconds();

/// \brief Monotone event counter (relaxed atomic increments).
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t delta) { value_ += delta; }
  uint64_t value() const { return value_.load(); }
  void Reset() { value_ = 0; }

 private:
  RelaxedCounter value_;
};

/// \brief Last-write-wins signed level (queue depths, pool sizes, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket latency histogram over microseconds.
///
/// Buckets are powers of two: bucket 0 counts [0,1) µs, bucket i counts
/// [2^(i-1), 2^i) µs, and the last bucket absorbs everything beyond
/// ~2^38 µs (~76 hours). Power-of-two bucketing keeps Record() at a
/// bit-scan plus one relaxed increment — cheap enough for per-query-phase
/// use — while still resolving the latency scales the figures care about
/// (sub-µs bitmap ANDs up to multi-second scans).
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Record(uint64_t micros);

  uint64_t count() const { return count_.load(); }
  uint64_t total_micros() const { return total_micros_.load(); }
  uint64_t max_micros() const {
    return max_micros_.load(std::memory_order_relaxed);
  }
  uint64_t bucket_count(size_t bucket) const {
    return buckets_[bucket].load();
  }
  /// Inclusive upper bound of `bucket` in microseconds.
  static uint64_t BucketUpperMicros(size_t bucket);

  /// Approximate quantile (q in [0,1]) from the bucket counts: the upper
  /// bound of the bucket containing the q-th recorded value, clamped to
  /// max_micros() so the estimate never exceeds a value actually observed
  /// (the raw bucket bound over-reports at bucket edges — a single 100 µs
  /// sample lives in the [64,128) bucket, whose bound is 127). 0 when
  /// empty.
  uint64_t ApproxQuantileMicros(double q) const;

  /// Renders this histogram as one JSON object:
  /// {"count":..,"total_us":..,"max_us":..,"p50_us":..,"p90_us":..,
  ///  "p99_us":..,"buckets":[{"le_us":..,"count":..},...]}.
  /// Each bucket carries its inclusive upper bound (`le_us`) alongside the
  /// count so external consumers don't have to re-derive the power-of-two
  /// layout; zero-count buckets are omitted.
  std::string ToJson() const;

  void Reset();

 private:
  RelaxedCounter buckets_[kNumBuckets];
  RelaxedCounter count_;
  RelaxedCounter total_micros_;
  std::atomic<uint64_t> max_micros_{0};
};

/// \brief Name → metric registry. One process-wide instance (Global());
/// tests may construct their own.
class MetricsRegistry {
 public:
  /// The process-wide registry every engine and bench records into.
  static MetricsRegistry& Global();

  /// Finds or creates the named metric. The returned reference is stable
  /// for the registry's lifetime — hot paths cache it (e.g. in a
  /// function-local static) instead of paying the map lookup per event.
  ///
  /// While metrics are disabled (SetMetricsEnabled(false)) lookups return
  /// a shared no-op instance without allocating or registering anything —
  /// a disabled process must not grow the registry. Consequence: the kill
  /// switch is set-once-at-startup; a call site that caches its reference
  /// while disabled keeps the no-op sink after re-enabling.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  LatencyHistogram& GetHistogram(const std::string& name);

  /// Registered metric counts (regression guard: disabled lookups must
  /// not register).
  size_t num_counters() const;
  size_t num_gauges() const;
  size_t num_histograms() const;

  /// Renders every registered metric as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,total_us,
  /// max_us,p50_us,p90_us,p99_us,buckets:[{le_us,count},...]}}}.
  /// Zero-count buckets are omitted.
  std::string ToJson() const;

  /// Point-in-time copy of every counter's value, keyed by name. Not a
  /// consistent cross-counter snapshot (same contract as ToJson); the
  /// metrics exporter diffs two snapshots to report per-interval deltas.
  std::map<std::string, uint64_t> SnapshotCounters() const;

  /// Zeroes every registered metric (registrations and references remain
  /// valid). For tests and bench warmup-discard; not thread-safe against
  /// concurrent recording (same contract as FetchStats::Reset).
  void Reset();

 private:
  mutable Mutex mu_;
  // node-based maps: values never move, so references stay valid. The maps
  // (registration) are guarded; the metric cells themselves are lock-free
  // relaxed atomics, updated through the escaped references.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      COLGRAPH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      COLGRAPH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      COLGRAPH_GUARDED_BY(mu_);
};

}  // namespace colgraph::obs
