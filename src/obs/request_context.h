// Request-scoped tracing for the serving path (DESIGN.md §15). A
// RequestContext travels with one request through the daemon: it carries
// the wire-propagated request id (or a daemon-assigned one when the client
// sent none), whether the client asked for a trace echo, and a Trace that
// collects both the server-phase spans recorded here and the engine's
// QueryPhase spans (threaded in via QueryOptions::trace) — so a single
// slow request is attributable end to end from one record.
//
// ServerPhase mirrors QueryPhase for the daemon's own pipeline: the time a
// connection sat in the accept queue, admission, frame decode, snapshot
// evaluation, response encode, and the socket write. Each phase feeds a
// process-wide histogram ("server.phase.<name>_us") exactly like
// PhaseHistogram, so the aggregate breakdown is visible without tracing a
// single request.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/trace.h"

namespace colgraph::obs {

/// The fixed phases of request service inside the daemon, in pipeline
/// order. Kept as an enum (not free-form strings) like QueryPhase, so the
/// per-phase histograms are stable, cacheable and cheap.
enum class ServerPhase : uint8_t {
  kQueueWait = 0,  ///< accepted socket waiting for a worker
  kAdmission,      ///< acquiring an in-flight slot (retry loop included)
  kDecode,         ///< framed read + request decode
  kEvaluate,       ///< snapshot acquire + engine evaluation (or ingest)
  kEncode,         ///< response frame encode (trace echo included)
  kWrite,          ///< socket write of the response frame
};
inline constexpr size_t kNumServerPhases = 6;

/// Stable phase label ("queue_wait", "admission", "decode", "evaluate",
/// "encode", "write") — the trace event name and the histogram suffix.
const char* ServerPhaseName(ServerPhase phase);

/// The global registry histogram for `phase`
/// ("server.phase.<name>_us"), resolved once and cached.
LatencyHistogram& ServerPhaseHistogram(ServerPhase phase);

/// \brief Per-request identity + trace collector for the serving path.
///
/// Constructed by the connection handler before the request's first byte
/// is decoded; MarkStart() re-anchors the clock (and replaces the Trace)
/// when the request actually begins, so keep-alive idle time between
/// requests on one connection is excluded. Not thread-safe except through
/// trace() (which is): one request is handled by one worker.
class RequestContext {
 public:
  RequestContext() { MarkStart(); }

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  /// Re-anchors the request start time and discards any previously
  /// recorded events. Call at the moment the request's first byte arrives.
  void MarkStart() {
    start_us_ = NowMicros();
    trace_ = std::make_unique<Trace>();
    request_id_ = 0;
    trace_requested_ = false;
  }

  /// Adopts the identity the client sent in the wire context extension.
  void AdoptWireContext(uint64_t request_id, bool trace_requested) {
    request_id_ = request_id;
    trace_requested_ = trace_requested;
  }

  /// Daemon-assigned fallback id for clients that sent no context (old
  /// protocol); keeps every slow-query record keyed.
  void set_request_id(uint64_t id) { request_id_ = id; }

  uint64_t request_id() const { return request_id_; }
  /// True when the client asked for the trace to be echoed in the
  /// response (wire context flag bit 0).
  bool trace_requested() const { return trace_requested_; }

  Trace& trace() { return *trace_; }
  const Trace& trace() const { return *trace_; }

  uint64_t start_us() const { return start_us_; }
  uint64_t ElapsedUs() const { return NowMicros() - start_us_; }

  /// Renders the joined trace as one JSON object:
  /// {"request_id":...,"snapshot_epoch":...,"total_us":...,
  ///  "events":[{"name":...,"start_us":...,"duration_us":...},...]}.
  /// This is the trace echoed to the client; event start times are
  /// relative to the request start.
  std::string ToJson(uint64_t snapshot_epoch) const;

 private:
  uint64_t request_id_ = 0;
  bool trace_requested_ = false;
  uint64_t start_us_ = 0;
  // unique_ptr (not inline) so MarkStart can discard stale events: Trace
  // anchors its origin at construction and is deliberately not resettable.
  std::unique_ptr<Trace> trace_;
};

/// \brief RAII server-phase timer: records into the phase's global
/// histogram and (when `ctx` is non-null) the request's trace, exactly
/// like Span does for QueryPhase.
class ServerSpan {
 public:
  ServerSpan(ServerPhase phase, RequestContext* ctx)
      : span_(&ServerPhaseHistogram(phase),
              ctx != nullptr ? &ctx->trace() : nullptr,
              ServerPhaseName(phase)) {}

  ServerSpan(const ServerSpan&) = delete;
  ServerSpan& operator=(const ServerSpan&) = delete;

 private:
  Span span_;
};

/// Records an already-measured queue-wait interval (the accept queue is
/// timed across threads, so no RAII scope exists): feeds the queue_wait
/// histogram and, when `ctx` is non-null, adds the event to its trace.
void RecordQueueWait(RequestContext* ctx, uint64_t enqueued_us,
                     uint64_t dequeued_us);

}  // namespace colgraph::obs
