#include "obs/metrics_exporter.h"

#include <filesystem>
#include <utility>

#include "columnstore/io_util.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace colgraph::obs {

namespace {

Counter& ExportsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("metrics_exporter.exports");
  return c;
}
Counter& FailuresCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("metrics_exporter.failures");
  return c;
}

}  // namespace

MetricsExporter::MetricsExporter(MetricsExporterOptions options)
    : options_(std::move(options)) {}

StatusOr<std::unique_ptr<MetricsExporter>> MetricsExporter::Start(
    MetricsExporterOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("metrics export dir must not be empty");
  }
  if (options.period_ms == 0) {
    return Status::InvalidArgument("metrics export period must be > 0");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot create metrics dir: " + options.dir);
  }
  std::unique_ptr<MetricsExporter> exporter(
      new MetricsExporter(std::move(options)));
  // The first document exists before Start returns; a write failure here
  // is the same degradation as a mid-run one (counted, not fatal).
  (void)exporter->ExportOnce();
  exporter->pool_ = std::make_unique<ThreadPool>(1);
  MetricsExporter* raw = exporter.get();
  exporter->pool_->Schedule([raw] { raw->Run(); });
  return exporter;
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  if (stopped_) return;
  stopped_ = true;
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  pool_.reset();  // drains + joins the loop
  // Final export: a process that stops between periods still leaves its
  // last counters behind.
  (void)ExportOnce();
}

void MetricsExporter::Run() {
  for (;;) {
    {
      const MutexLock lock(mu_);
      if (stop_) return;
      (void)cv_.WaitForMs(mu_, options_.period_ms);
      if (stop_) return;
    }
    (void)ExportOnce();
  }
}

std::string MetricsExporter::target_path() const {
  return options_.dir + "/" + options_.file_name;
}

Status MetricsExporter::ExportOnce() {
  const std::string metrics_json = options_.source != nullptr
                                       ? options_.source()
                                       : MetricsRegistry::Global().ToJson();
  const std::map<std::string, uint64_t> counters =
      MetricsRegistry::Global().SnapshotCounters();

  JsonWriter w;
  w.BeginObject();
  {
    const MutexLock lock(mu_);
    w.Key("seq");
    w.Uint(seq_);
    w.Key("period_ms");
    w.Uint(options_.period_ms);
    w.Key("uptime_seconds");
    w.Uint(ProcessUptimeSeconds());
    // Per-interval counter deltas: only counters that moved since the
    // previous export, so a collector reads rates directly. Counters are
    // monotone; a name absent from the previous snapshot delta-reports
    // its full value.
    w.Key("counters_delta");
    w.BeginObject();
    for (const auto& [name, value] : counters) {
      const auto it = last_counters_.find(name);
      const uint64_t prev = it == last_counters_.end() ? 0 : it->second;
      if (value > prev) {
        w.Key(name);
        w.Uint(value - prev);
      }
    }
    w.EndObject();
    w.Key("metrics");
    w.Raw(metrics_json);
    w.EndObject();

    const Status st = io::WriteFileAtomic(target_path(), w.str().data(),
                                          w.str().size());
    if (!st.ok()) {
      FailuresCounter().Increment();
      return st;
    }
    // Only a successful export advances the delta baseline and sequence:
    // after a failed write the next document reports the whole missed
    // interval.
    ++seq_;
    last_counters_ = counters;
  }
  ExportsCounter().Increment();
  return Status::OK();
}

uint64_t MetricsExporter::exports() const { return ExportsCounter().value(); }

uint64_t MetricsExporter::failures() const {
  return FailuresCounter().value();
}

}  // namespace colgraph::obs
