#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "obs/json_writer.h"
#include "obs/trace.h"
#include "util/check.h"

namespace colgraph::obs {

namespace {
// Anchored once at static initialization: "process start" for uptime
// reporting. NowMicros is steady-clock, so the difference is immune to
// wall-clock adjustments.
const uint64_t g_process_start_us = NowMicros();
}  // namespace

uint64_t ProcessUptimeSeconds() {
  return (NowMicros() - g_process_start_us) / 1000000;
}

void LatencyHistogram::Record(uint64_t micros) {
  // bucket 0: [0,1), bucket i: [2^(i-1), 2^i).
  size_t bucket = static_cast<size_t>(std::bit_width(micros));
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  ++buckets_[bucket];
  ++count_;
  total_micros_ += micros;
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen && !max_micros_.compare_exchange_weak(
                              seen, micros, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::BucketUpperMicros(size_t bucket) {
  COLGRAPH_CHECK_LT(bucket, kNumBuckets);
  if (bucket == 0) return 0;  // bucket 0 holds sub-microsecond durations
  return (uint64_t{1} << bucket) - 1;
}

uint64_t LatencyHistogram::ApproxQuantileMicros(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // rank of the q-th value, 1-based, at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += bucket_count(b);
    // Clamp to the observed maximum: the bucket bound is an upper estimate
    // and must never exceed a value that was actually recorded.
    if (seen >= rank) return std::min(BucketUpperMicros(b), max_micros());
  }
  return max_micros();
}

std::string LatencyHistogram::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("count");
  w.Uint(count());
  w.Key("total_us");
  w.Uint(total_micros());
  w.Key("max_us");
  w.Uint(max_micros());
  w.Key("p50_us");
  w.Uint(ApproxQuantileMicros(0.50));
  w.Key("p90_us");
  w.Uint(ApproxQuantileMicros(0.90));
  w.Key("p99_us");
  w.Uint(ApproxQuantileMicros(0.99));
  w.Key("buckets");
  w.BeginArray();
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = bucket_count(b);
    if (n == 0) continue;
    w.BeginObject();
    w.Key("le_us");
    w.Uint(BucketUpperMicros(b));
    w.Key("count");
    w.Uint(n);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b = 0;
  count_ = 0;
  total_micros_ = 0;
  max_micros_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

// Shared no-op sinks handed out while metrics are disabled: a lookup must
// not allocate or register anything (a disabled process would otherwise
// still grow the registry map on every first-touch). Leaked intentionally,
// like Global() — references escape to function-local statics at call
// sites and must stay valid through shutdown.
template <typename T>
T& DisabledSink() {
  static T* sink = new T();
  return *sink;
}

}  // namespace

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  if (!MetricsEnabled()) return DisabledSink<Counter>();
  const MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  if (!MetricsEnabled()) return DisabledSink<Gauge>();
  const MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  if (!MetricsEnabled()) return DisabledSink<LatencyHistogram>();
  const MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

size_t MetricsRegistry::num_counters() const {
  const MutexLock lock(mu_);
  return counters_.size();
}

size_t MetricsRegistry::num_gauges() const {
  const MutexLock lock(mu_);
  return gauges_.size();
}

size_t MetricsRegistry::num_histograms() const {
  const MutexLock lock(mu_);
  return histograms_.size();
}

std::string MetricsRegistry::ToJson() const {
  const MutexLock lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name);
    w.Uint(counter->value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name);
    w.Int(gauge->value());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, hist] : histograms_) {
    w.Key(name);
    w.Raw(hist->ToJson());
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::map<std::string, uint64_t> MetricsRegistry::SnapshotCounters() const {
  const MutexLock lock(mu_);
  std::map<std::string, uint64_t> snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot[name] = counter->value();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  const MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    (void)name;
    hist->Reset();
  }
}

}  // namespace colgraph::obs
