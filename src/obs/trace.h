// Scoped query tracing (DESIGN.md §9): Span is the one sanctioned way to
// time a region of the query path — it feeds the process-wide phase
// histograms and, when a Trace is attached via QueryOptions, records a
// per-query event the EXPLAIN/tracing consumers can render. The repo lint
// ([no-adhoc-timing]) bans ad-hoc Stopwatch timing inside src/query/ so
// every measured phase is visible through this API.
//
// Phases mirror the paper's cost decomposition (Figures 6/7): a graph
// query is resolve (parse ids against the catalog) → rewrite (set-cover
// against the views) → bitmap-AND → fetch (measure columns); aggregate
// queries add the fold phase.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/sync.h"

namespace colgraph::obs {

/// Steady-clock microseconds since an arbitrary epoch (comparable within
/// the process only).
inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The fixed phases of query evaluation. Kept as an enum (not free-form
/// strings) so the per-phase histograms are stable, cacheable and cheap.
enum class QueryPhase : uint8_t {
  kResolve = 0,
  kRewrite,
  kBitmapAnd,
  kFetch,
  kAggregate,
};
inline constexpr size_t kNumQueryPhases = 5;

/// Stable phase label ("resolve", "rewrite", "bitmap_and", "fetch",
/// "aggregate") — used as the trace event name and the histogram suffix.
const char* PhaseName(QueryPhase phase);

/// The global registry histogram for `phase`
/// ("query.phase.<name>_us"), resolved once and cached.
LatencyHistogram& PhaseHistogram(QueryPhase phase);

/// \brief One timed region inside a trace.
struct TraceEvent {
  const char* name;      ///< static string (phase or caller-provided label)
  uint64_t start_us;     ///< microseconds since the trace was constructed
  uint64_t duration_us;
};

/// \brief Per-query (or per-batch) span collector. Thread-safe: a batch
/// evaluated across the pool may share one Trace; events append under a
/// mutex in completion order. Attach via QueryOptions::trace.
class Trace {
 public:
  Trace() : origin_us_(NowMicros()) {}

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Records one event; `start_us` is absolute (NowMicros clock).
  void Add(const char* name, uint64_t start_us, uint64_t duration_us);

  /// Snapshot of the events recorded so far, in completion order.
  std::vector<TraceEvent> events() const;

  /// {"events":[{"name":...,"start_us":...,"duration_us":...},...]}
  std::string ToJson() const;

 private:
  const uint64_t origin_us_;
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ COLGRAPH_GUARDED_BY(mu_);
};

/// \brief RAII timer: on destruction records the scope's duration into a
/// histogram (if any) and a trace (if any). When metrics are disabled and
/// no trace is attached, construction and destruction are branch-only —
/// no clock reads, no stores.
class Span {
 public:
  Span(LatencyHistogram* histogram, Trace* trace, const char* name)
      : histogram_(MetricsEnabled() ? histogram : nullptr),
        trace_(trace),
        name_(name),
        start_us_(histogram_ != nullptr || trace_ != nullptr ? NowMicros()
                                                             : 0) {}

  /// Phase convenience: times into the phase's global histogram.
  Span(QueryPhase phase, Trace* trace)
      : Span(&PhaseHistogram(phase), trace, PhaseName(phase)) {}

  ~Span() {
    if (histogram_ == nullptr && trace_ == nullptr) return;
    const uint64_t duration = NowMicros() - start_us_;
    if (histogram_ != nullptr) histogram_->Record(duration);
    if (trace_ != nullptr) trace_->Add(name_, start_us_, duration);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  LatencyHistogram* histogram_;
  Trace* trace_;
  const char* name_;
  uint64_t start_us_;
};

}  // namespace colgraph::obs
