// EXPLAIN output (DESIGN.md §9): the rewriter's decisions for one query —
// which materialized views cover which edges, which edges fall back to
// atomic bitmaps, and the estimated (rank-directory) vs. actual (running
// conjunction) cardinalities — rendered as text or JSON. Produced by
// QueryEngine::Explain / ColGraphEngine::Explain; the plan sources are
// exactly the ones MatchIds would AND (same CoverQueryWithViews call),
// verified by tests/explain_test.cc.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/rewriter.h"

namespace colgraph::obs {

/// \brief One bitmap in the explained plan, in execution (AND) order.
struct ExplainSource {
  BitmapSource source;
  /// Query edges this bitmap constrains: the view's edge set for a view
  /// source, the edge itself for an atomic source.
  std::vector<EdgeId> covers;
  /// Set-bit count of this source's bitmap, read from the sealed column's
  /// rank directory — the "estimate" the selectivity ordering uses.
  size_t estimated_cardinality = 0;
  /// Set-bit count of the running conjunction *after* ANDing this source —
  /// what the plan actually produced at this step. Equal to
  /// estimated_cardinality for the first source; 0 from the first
  /// short-circuit on.
  size_t cumulative_cardinality = 0;
  /// True when the column carries a hybrid (roaring-style) sidecar the AND
  /// loop can consume instead of the plain words (seal-time density
  /// choice, DESIGN.md §13).
  bool hybrid = false;

  const char* KindName() const;
};

/// \brief Full EXPLAIN of one graph query.
struct ExplainResult {
  /// Catalog-resolved query edge ids (sorted, deduplicated).
  std::vector<EdgeId> query_edges;
  /// False when a structural edge is absent from the catalog: no record
  /// can match, the plan is empty.
  bool satisfiable = true;
  /// Whether the rewriter was offered views (QueryOptions::use_views and a
  /// non-empty catalog).
  bool used_views = false;
  /// The plan's bitmaps in AND order (post selectivity sort when enabled).
  std::vector<ExplainSource> sources;
  /// Query edges answered by their own atomic bitmap (the set-cover
  /// residual) — the kEdge entries of `sources`, sorted.
  std::vector<EdgeId> residual_edges;
  /// Relation view indexes of the graph views the rewriter chose.
  std::vector<size_t> graph_view_indexes;
  /// Cardinality of the final conjunction: the number of matching records.
  size_t matched_records = 0;

  /// True for ExplainAggregate output: the plan also offered aggregate-view
  /// bp bitmaps to the match and segmented the query's maximal paths.
  bool is_aggregate = false;
  /// Relation aggregate-view indexes the plan uses: bp bitmaps ANDed by the
  /// match plus the views chosen by the path segmentation (sorted,
  /// deduplicated — same semantics as a query-log record's agg view list).
  std::vector<size_t> agg_view_indexes;
  /// Maximal paths of the query DAG the aggregation folds over (0 for a
  /// match EXPLAIN, and for a cyclic query, which evaluation rejects).
  size_t num_paths = 0;
  /// Path elements answered by a materialized aggregate-view column vs.
  /// fetched atomically — the cost reduction Section 5.1.2's views buy.
  size_t path_elements_from_views = 0;
  size_t path_elements_atomic = 0;

  /// Human-readable rendering (one line per source).
  std::string ToText() const;
  /// Machine-readable rendering.
  std::string ToJson() const;
};

}  // namespace colgraph::obs
