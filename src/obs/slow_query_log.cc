#include "obs/slow_query_log.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/crc32.h"

namespace colgraph::obs {

namespace {

/// Process-wide mirror of per-log drop counts, like `query_log.dropped`:
/// disk-full capture loss must show up in DumpMetricsJson.
Counter& DroppedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("slow_query_log.dropped");
  return c;
}

/// Captured-record throughput, split by which rule fired, so operators can
/// see threshold hits vs. sampler picks without reading the log.
Counter& ThresholdCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("slow_query_log.threshold_hits");
  return c;
}
Counter& SampledCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("slow_query_log.sampled");
  return c;
}

constexpr uint8_t kFrameRecord = 0;
constexpr uint8_t kFrameFooter = 1;
constexpr size_t kFrameHeaderBytes = 13;  // u8 type + u64 len + u32 crc

void AppendBytes(std::vector<char>* out, const void* data, size_t n) {
  if (n == 0) return;
  const size_t old = out->size();
  out->resize(old + n);
  std::memcpy(out->data() + old, data, n);
}

template <typename T>
void AppendPod(std::vector<char>* out, const T& value) {
  AppendBytes(out, &value, sizeof(T));
}

void AppendRecordPayload(const SlowQueryRecord& r, std::vector<char>* out) {
  AppendPod(out, r.request_id);
  AppendPod(out, r.snapshot_epoch);
  AppendPod(out, r.total_us);
  AppendPod(out, r.wire_code);
  AppendPod(out, r.op);
  AppendPod(out, static_cast<uint8_t>(r.sampled ? 1 : 0));
  AppendPod(out, uint16_t{0});  // pad: keeps the u32 lengths aligned

  const size_t text_len = std::min(r.query.size(), kMaxSlowQueryTextBytes);
  AppendPod(out, static_cast<uint32_t>(text_len));
  AppendBytes(out, r.query.data(), text_len);

  AppendPod(out, static_cast<uint32_t>(r.spans.size()));
  for (const SlowQuerySpan& s : r.spans) {
    AppendPod(out, static_cast<uint32_t>(s.name.size()));
    AppendBytes(out, s.name.data(), s.name.size());
    AppendPod(out, s.start_us);
    AppendPod(out, s.duration_us);
  }
}

void AppendFrame(uint8_t type, const std::vector<char>& payload,
                 std::vector<char>* out) {
  AppendPod(out, type);
  AppendPod(out, static_cast<uint64_t>(payload.size()));
  AppendPod(out, Crc32c(payload.data(), payload.size()));
  AppendBytes(out, payload.data(), payload.size());
}

/// Bounds-checked cursor over the decoded file bytes; running out of data
/// is Corruption, never UB (same discipline as io::Reader).
class PayloadCursor {
 public:
  PayloadCursor(const char* data, size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  template <typename T>
  [[nodiscard]] Status Read(T* value) {
    if (sizeof(T) > size_ - pos_) return Corrupt("unexpected end of data");
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  [[nodiscard]] Status ReadString(uint32_t len, std::string* out) {
    if (len > size_ - pos_) return Corrupt("string length exceeds data");
    out->assign(data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }
  void Seek(size_t pos) { pos_ = pos; }

  Status Corrupt(const std::string& what) const {
    return Status::Corruption(what + " in " + path_);
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  const std::string& path_;
};

Status DecodeRecordPayload(PayloadCursor* in, SlowQueryRecord* r) {
  COLGRAPH_RETURN_NOT_OK(in->Read(&r->request_id));
  COLGRAPH_RETURN_NOT_OK(in->Read(&r->snapshot_epoch));
  COLGRAPH_RETURN_NOT_OK(in->Read(&r->total_us));
  COLGRAPH_RETURN_NOT_OK(in->Read(&r->wire_code));
  COLGRAPH_RETURN_NOT_OK(in->Read(&r->op));
  uint8_t sampled = 0;
  COLGRAPH_RETURN_NOT_OK(in->Read(&sampled));
  r->sampled = sampled != 0;
  uint16_t pad = 0;
  COLGRAPH_RETURN_NOT_OK(in->Read(&pad));

  uint32_t text_len = 0;
  COLGRAPH_RETURN_NOT_OK(in->Read(&text_len));
  COLGRAPH_RETURN_NOT_OK(in->ReadString(text_len, &r->query));

  uint32_t num_spans = 0;
  COLGRAPH_RETURN_NOT_OK(in->Read(&num_spans));
  // Each span needs at least its three fixed fields; a corrupt count must
  // fail cleanly instead of triggering an oversized reserve.
  if (num_spans > in->remaining() / (sizeof(uint32_t) + 2 * sizeof(uint64_t))) {
    return in->Corrupt("span count exceeds remaining data");
  }
  r->spans.resize(num_spans);
  for (SlowQuerySpan& s : r->spans) {
    uint32_t name_len = 0;
    COLGRAPH_RETURN_NOT_OK(in->Read(&name_len));
    COLGRAPH_RETURN_NOT_OK(in->ReadString(name_len, &s.name));
    COLGRAPH_RETURN_NOT_OK(in->Read(&s.start_us));
    COLGRAPH_RETURN_NOT_OK(in->Read(&s.duration_us));
  }
  return Status::OK();
}

}  // namespace

void AppendSlowQueryFrame(const SlowQueryRecord& record,
                          std::vector<char>* out) {
  std::vector<char> payload;
  AppendRecordPayload(record, &payload);
  AppendFrame(kFrameRecord, payload, out);
}

StatusOr<std::unique_ptr<SlowQueryLog>> SlowQueryLog::Open(
    SlowQueryLogOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("slow query log path must not be empty");
  }
  COLGRAPH_ASSIGN_OR_RETURN(io::AppendFile file,
                            io::AppendFile::Create(options.path));
  std::unique_ptr<SlowQueryLog> log(
      new SlowQueryLog(std::move(options), std::move(file)));
  AppendPod(&log->buffer_, kSlowQueryLogMagic);
  AppendPod(&log->buffer_, kSlowQueryLogVersion);
  return log;
}

SlowQueryLog::~SlowQueryLog() {
  const Status s = Close();
  if (!s.ok()) {
    std::fprintf(stderr, "colgraph: slow query log close failed: %s\n",
                 s.ToString().c_str());
  }
}

bool SlowQueryLog::AdmitForCapture(uint64_t total_us, bool* sampled_out) {
  bool threshold_hit = total_us >= options_.threshold_us;
  bool sampler_hit = false;
  {
    const MutexLock lock(mu_);
    ++offered_;
    if (options_.sample_every != 0) {
      sampler_hit = offered_ % options_.sample_every == 0;
    }
  }
  if (threshold_hit) {
    ThresholdCounter().Increment();
  } else if (sampler_hit) {
    SampledCounter().Increment();
  }
  if (sampled_out != nullptr) *sampled_out = !threshold_hit && sampler_hit;
  return threshold_hit || sampler_hit;
}

void SlowQueryLog::Append(const SlowQueryRecord& record) {
  // Serialize outside the lock, like QueryLog::Append: the buffer enqueue
  // is the only contended part.
  std::vector<char> frame;
  AppendSlowQueryFrame(record, &frame);

  const MutexLock lock(mu_);
  if (closed_) return;
  if (!first_error_.ok()) {
    ++dropped_;
    DroppedCounter().Increment();
    return;
  }
  AppendBytes(&buffer_, frame.data(), frame.size());
  ++records_;
  ++buffered_records_;
  if (buffer_.size() >= options_.flush_bytes) FlushLocked();
}

void SlowQueryLog::FlushLocked() {
  if (buffer_.empty() || !first_error_.ok()) return;
  const Status s = file_.Append(buffer_.data(), buffer_.size());
  buffer_.clear();
  if (!s.ok()) {
    first_error_ = s;
    dropped_ += buffered_records_;
    DroppedCounter().Add(buffered_records_);
    std::fprintf(stderr,
                 "colgraph: slow query log write failed, capture degraded "
                 "to dropping (%s)\n",
                 s.ToString().c_str());
  }
  buffered_records_ = 0;
}

Status SlowQueryLog::Close() {
  const MutexLock lock(mu_);
  if (closed_) return first_error_;
  closed_ = true;
  if (first_error_.ok()) {
    std::vector<char> footer;
    AppendPod(&footer, kSlowQueryLogFooterMagic);
    AppendPod(&footer, records_);
    AppendFrame(kFrameFooter, footer, &buffer_);
    FlushLocked();
  }
  const Status sync = file_.SyncAndClose();
  if (first_error_.ok()) first_error_ = sync;
  return first_error_;
}

uint64_t SlowQueryLog::records_appended() const {
  const MutexLock lock(mu_);
  return records_;
}

uint64_t SlowQueryLog::records_dropped() const {
  const MutexLock lock(mu_);
  return dropped_;
}

StatusOr<std::vector<SlowQueryRecord>> ReadSlowQueryLog(
    const std::string& path) {
  std::vector<char> bytes;
  COLGRAPH_ASSIGN_OR_RETURN(bytes, io::ReadFileBytes(path));
  PayloadCursor in(bytes.data(), bytes.size(), path);

  uint32_t magic = 0, version = 0;
  COLGRAPH_RETURN_NOT_OK(in.Read(&magic));
  COLGRAPH_RETURN_NOT_OK(in.Read(&version));
  if (magic != kSlowQueryLogMagic) return in.Corrupt("bad magic");
  if (version != kSlowQueryLogVersion) {
    return in.Corrupt("unsupported slow query log version " +
                      std::to_string(version));
  }

  std::vector<SlowQueryRecord> records;
  bool saw_footer = false;
  while (in.remaining() > 0) {
    if (in.remaining() < kFrameHeaderBytes) {
      return in.Corrupt("truncated frame header");
    }
    uint8_t type = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    COLGRAPH_RETURN_NOT_OK(in.Read(&type));
    COLGRAPH_RETURN_NOT_OK(in.Read(&len));
    COLGRAPH_RETURN_NOT_OK(in.Read(&crc));
    if (len > in.remaining()) return in.Corrupt("truncated frame payload");
    const size_t payload_pos = in.pos();
    if (Crc32c(bytes.data() + payload_pos, static_cast<size_t>(len)) != crc) {
      return in.Corrupt("frame checksum mismatch");
    }
    if (type == kFrameRecord) {
      PayloadCursor payload(bytes.data() + payload_pos,
                            static_cast<size_t>(len), path);
      SlowQueryRecord r;
      COLGRAPH_RETURN_NOT_OK(DecodeRecordPayload(&payload, &r));
      if (payload.remaining() != 0) {
        return in.Corrupt("trailing bytes in record frame");
      }
      records.push_back(std::move(r));
    } else if (type == kFrameFooter) {
      PayloadCursor payload(bytes.data() + payload_pos,
                            static_cast<size_t>(len), path);
      uint32_t footer_magic = 0;
      uint64_t count = 0;
      COLGRAPH_RETURN_NOT_OK(payload.Read(&footer_magic));
      COLGRAPH_RETURN_NOT_OK(payload.Read(&count));
      if (footer_magic != kSlowQueryLogFooterMagic) {
        return in.Corrupt("bad footer magic");
      }
      if (count != records.size()) {
        return in.Corrupt("footer record count mismatch");
      }
      if (payload.remaining() != 0 ||
          static_cast<size_t>(len) != in.remaining()) {
        return in.Corrupt("footer frame is not the last frame");
      }
      saw_footer = true;
    } else {
      return in.Corrupt("unknown frame type");
    }
    in.Seek(payload_pos + static_cast<size_t>(len));
  }
  if (!saw_footer) {
    return in.Corrupt("missing footer (truncated slow query log)");
  }
  return records;
}

}  // namespace colgraph::obs
