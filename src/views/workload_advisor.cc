#include "views/workload_advisor.h"

#include <algorithm>
#include <unordered_set>

#include "views/set_cover.h"

namespace colgraph {

namespace {

// Mirrors QueryEngine::Resolve (query/engine.cc) without needing a
// relation: structural edges the catalog never saw make the query
// unsatisfiable; unknown node measures are unconstrained; isolated nodes
// resolve through their Edge{n,n} measure column.
struct ResolvedUniverse {
  std::vector<EdgeId> ids;
  bool satisfiable = true;
};

ResolvedUniverse ResolveAgainstCatalog(const GraphQuery& query,
                                       const EdgeCatalog& catalog) {
  ResolvedUniverse resolved;
  const DirectedGraph& g = query.graph();
  for (const Edge& e : g.edges()) {
    const auto id = catalog.Lookup(e);
    if (!id.has_value()) {
      if (e.IsNode()) continue;
      resolved.satisfiable = false;
      continue;
    }
    resolved.ids.push_back(*id);
  }
  for (const NodeRef& n : g.nodes()) {
    if (g.OutDegree(n) == 0 && g.InDegree(n) == 0) {
      const auto id = catalog.Lookup(Edge{n, n});
      if (id.has_value()) resolved.ids.push_back(*id);
    }
  }
  std::sort(resolved.ids.begin(), resolved.ids.end());
  resolved.ids.erase(std::unique(resolved.ids.begin(), resolved.ids.end()),
                     resolved.ids.end());
  return resolved;
}

}  // namespace

std::vector<GraphQuery> WorkloadFromQueryLog(
    const std::vector<obs::QueryLogRecord>& records) {
  std::vector<GraphQuery> workload;
  workload.reserve(records.size());
  for (const obs::QueryLogRecord& r : records) {
    workload.push_back(r.ToQuery());
  }
  return workload;
}

StatusOr<WorkloadAdvice> AdviseGraphViews(
    const std::vector<GraphQuery>& workload, const EdgeCatalog& catalog,
    size_t budget, const CandidateGenOptions& gen_options) {
  WorkloadAdvice advice;

  // Same universe construction as SelectAndMaterializeGraphViews:
  // unsatisfiable or element-free queries contribute nothing to cover.
  std::vector<std::vector<EdgeId>> universes;
  universes.reserve(workload.size());
  for (const GraphQuery& q : workload) {
    const ResolvedUniverse resolved = ResolveAgainstCatalog(q, catalog);
    if (!resolved.satisfiable || resolved.ids.empty()) continue;
    advice.total_elements += resolved.ids.size();
    universes.push_back(resolved.ids);
  }
  advice.num_universes = universes.size();

  COLGRAPH_ASSIGN_OR_RETURN(
      std::vector<GraphViewDef> candidates,
      GenerateGraphViewCandidates(universes, gen_options));

  const SetCoverSelection selection =
      GreedyExtendedSetCover(universes, candidates, budget);
  advice.uncovered_elements = selection.uncovered_elements;

  // Re-walk the picks in order to attribute each one's gain — the greedy's
  // own objective at the moment it chose the view. Same set arithmetic as
  // GreedyExtendedSetCover, so the numbers are exactly what it maximized.
  std::vector<std::unordered_set<EdgeId>> uncovered(universes.size());
  for (size_t u = 0; u < universes.size(); ++u) {
    uncovered[u].insert(universes[u].begin(), universes[u].end());
  }
  for (const size_t c : selection.selected) {
    AdvisedView view;
    view.def = candidates[c];
    for (size_t u = 0; u < universes.size(); ++u) {
      if (!candidates[c].IsSubsetOf(universes[u])) continue;
      ++view.supporting_queries;
      for (EdgeId e : candidates[c].edges) {
        view.coverage_gain += uncovered[u].erase(e);
      }
    }
    advice.views.push_back(std::move(view));
  }
  return advice;
}

}  // namespace colgraph
