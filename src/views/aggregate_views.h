// Selection of aggregate graph views (Section 5.4): converts candidate
// paths into view definitions and runs the shared greedy extended set
// cover, with the benefit of a view proportional to the number of
// (uncovered) path elements it replaces — the paper's length-proportional
// cost model.
#pragma once

#include <vector>

#include "graph/catalog.h"
#include "graph/graph.h"
#include "graph/path.h"
#include "query/agg_fn.h"
#include "util/status.h"
#include "views/view_defs.h"

namespace colgraph {

/// \brief Maps a path to an aggregate-view definition via the edge catalog.
///
/// Path elements without a catalog entry (e.g. nodes for which the
/// application records no measure) carry no column and are skipped; a path
/// reduced below 2 elements is rejected (nothing to pre-aggregate).
StatusOr<AggViewDef> AggViewDefFromPath(const Path& path, AggFn fn,
                                        const EdgeCatalog& catalog);

/// \brief End-to-end aggregate-view selection for a workload.
///
/// 1. extracts the maximal paths of each query graph,
/// 2. generates candidate paths between interesting nodes of G_All,
/// 3. greedily selects at most `budget` views maximizing the number of
///    covered path elements across the workload.
///
/// Returns the selected definitions (ready for MaterializeAggView).
StatusOr<std::vector<AggViewDef>> SelectAggregateViews(
    const std::vector<GraphQuery>& workload, AggFn fn,
    const EdgeCatalog& catalog, size_t budget);

}  // namespace colgraph
