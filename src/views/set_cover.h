// Greedy algorithm for the extended set cover problem of Section 5.2:
// given universes (the edge sets of the workload's queries) and candidate
// sets (views, usable in a universe only when fully contained in it), pick
// at most k sets maximizing covered elements. The same greedy doubles as
// the query-time rewriter (single universe, Section 5.3), where it is the
// classic H(n)-approximation.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "views/view_defs.h"

namespace colgraph {

/// \brief Result of view selection.
struct SetCoverSelection {
  /// Indexes into the candidate vector, in greedy pick order.
  std::vector<size_t> selected;
  /// Elements (per universe) still uncovered after selection; these fall
  /// back to atomic edge bitmaps at query time.
  size_t uncovered_elements = 0;
};

/// \brief Greedy extended set cover over multiple universes.
///
/// \param universes   sorted edge-id sets, one per workload query
/// \param candidates  candidate views; candidate c is usable in universe u
///                    iff c.edges ⊆ u
/// \param max_views   selection budget k; the greedy stops after k picks or
///                    when no candidate covers ≥ 2 uncovered elements in any
///                    single universe (at that point atomic single-edge
///                    bitmaps are at least as good as any view in every
///                    query, the paper's stopping rule — the bar is per
///                    universe, not summed across universes)
SetCoverSelection GreedyExtendedSetCover(
    const std::vector<std::vector<EdgeId>>& universes,
    const std::vector<GraphViewDef>& candidates, size_t max_views);

/// \brief Query-time cover of a single query by materialized views.
struct QueryCover {
  /// Indexes into `views` (the usable, chosen ones).
  std::vector<size_t> view_indexes;
  /// Query edges not covered by any chosen view; answered by their own
  /// atomic bitmap columns.
  std::vector<EdgeId> residual_edges;
};

/// Greedy single-universe cover: picks views (those ⊆ the query) while they
/// cover ≥ 2 uncovered edges, then falls back to atomic bitmaps.
QueryCover CoverQueryWithViews(const std::vector<EdgeId>& query_edges,
                               const std::vector<GraphViewDef>& views);

}  // namespace colgraph
