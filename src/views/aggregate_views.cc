#include "views/aggregate_views.h"

#include <algorithm>
#include <set>

#include "views/candidate_generation.h"
#include "views/set_cover.h"

namespace colgraph {

StatusOr<AggViewDef> AggViewDefFromPath(const Path& path, AggFn fn,
                                        const EdgeCatalog& catalog) {
  AggViewDef def;
  def.fn = fn;
  for (const Edge& element : path.Elements()) {
    const auto id = catalog.Lookup(element);
    if (id.has_value()) def.elements.push_back(*id);
  }
  if (def.elements.size() < 2) {
    return Status::InvalidArgument(
        "path " + path.ToString() +
        " has fewer than two measured elements; not a useful aggregate view");
  }
  return def;
}

StatusOr<std::vector<AggViewDef>> SelectAggregateViews(
    const std::vector<GraphQuery>& workload, AggFn fn,
    const EdgeCatalog& catalog, size_t budget) {
  // 1. Maximal paths per query.
  std::vector<std::vector<Path>> maximal_paths;
  maximal_paths.reserve(workload.size());
  for (const GraphQuery& q : workload) {
    COLGRAPH_ASSIGN_OR_RETURN(std::vector<Path> paths,
                              MaximalPaths(q.graph()));
    maximal_paths.push_back(std::move(paths));
  }

  // 2. Candidate paths between interesting nodes of G_All.
  COLGRAPH_ASSIGN_OR_RETURN(std::vector<Path> candidate_paths,
                            GenerateAggViewCandidatePaths(maximal_paths));

  // 3. Convert to definitions; drop paths without enough measured elements.
  std::vector<AggViewDef> defs;
  std::vector<GraphViewDef> cover_sets;  // sorted element sets for the greedy
  for (const Path& p : candidate_paths) {
    auto def = AggViewDefFromPath(p, fn, catalog);
    if (!def.ok()) continue;
    cover_sets.push_back(GraphViewDef::Make(def->elements));
    defs.push_back(std::move(def).value());
  }

  // Universes: the measured elements of each query's maximal paths.
  std::vector<std::vector<EdgeId>> universes;
  universes.reserve(workload.size());
  for (const auto& paths : maximal_paths) {
    std::set<EdgeId> elements;
    for (const Path& p : paths) {
      for (const Edge& e : p.Elements()) {
        const auto id = catalog.Lookup(e);
        if (id.has_value()) elements.insert(*id);
      }
    }
    universes.emplace_back(elements.begin(), elements.end());
  }

  const SetCoverSelection selection =
      GreedyExtendedSetCover(universes, cover_sets, budget);

  std::vector<AggViewDef> selected;
  selected.reserve(selection.selected.size());
  for (size_t index : selection.selected) selected.push_back(defs[index]);
  return selected;
}

}  // namespace colgraph
