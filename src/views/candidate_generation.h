// Candidate-view generation (Sections 5.2 and 5.4).
//
// Graph views: the candidate set Cv is the closure of the workload's query
// edge sets under intersection (equivalently, the *closed* itemsets of the
// workload), filtered by minimum support and by the monotonicity
// ("supersedes") property. Candidates superseded by a larger view with the
// same query-support signature are redundant and removed.
//
// Aggregate graph views: candidates are all paths of length >= 2 between
// the *interesting nodes* of G_All, the union graph of the workload's
// maximal paths.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/path.h"
#include "util/status.h"
#include "views/view_defs.h"

namespace colgraph {

class ThreadPool;

struct CandidateGenOptions {
  /// Minimum number of workload queries a candidate must be contained in.
  /// 1 keeps every query graph itself as a candidate.
  size_t min_support = 1;
  /// Hard cap on generated candidates (guards pathological overlap where
  /// |Cv| is exponential in the number of queries, Section 5.2).
  size_t max_candidates = 200000;
  /// Fans the per-candidate support counting (the |Cv| × |workload| subset
  /// scan) across this pool; nullptr = serial. Output is identical either
  /// way: each candidate's support signature lands in its own slot and the
  /// monotonicity filter runs serially in candidate order.
  ThreadPool* pool = nullptr;
};

/// \brief Generates the candidate graph views for a workload of query edge
/// sets (each sorted ascending).
///
/// Returns candidates that (a) appear in >= min_support queries, (b) are
/// not superseded by another candidate. Candidates are sorted largest
/// first for determinism.
StatusOr<std::vector<GraphViewDef>> GenerateGraphViewCandidates(
    const std::vector<std::vector<EdgeId>>& query_edge_sets,
    const CandidateGenOptions& options = {});

/// \brief Computes the interesting nodes of the union graph of the
/// workload's maximal paths (Section 5.4): endpoints of maximal paths,
/// branch nodes (>= 2 distinct traversed out-edges) and merge nodes
/// (>= 2 distinct traversed in-edges).
std::vector<NodeRef> InterestingNodes(
    const std::vector<std::vector<Path>>& maximal_paths_per_query);

/// \brief Generates candidate aggregate-view paths: every subpath of a
/// workload maximal path that (a) starts and ends at interesting nodes of
/// G_All and (b) has at least 2 edges. (Length-1 paths are excluded: the
/// base schema already stores single-edge measures.)
///
/// Restricting to subpaths of maximal paths keeps enumeration linear in
/// the workload size even when G_All is cyclic (overlapping road-network
/// queries), while reproducing the paper's Figure 2 example exactly: by
/// the monotonicity property, any candidate that is *used* by a query must
/// lie within one of its maximal paths anyway.
StatusOr<std::vector<Path>> GenerateAggViewCandidatePaths(
    const std::vector<std::vector<Path>>& maximal_paths_per_query,
    size_t max_paths = 200000);

}  // namespace colgraph
