#include "views/apriori.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/thread_pool.h"

namespace colgraph {

namespace {

using Itemset = std::vector<EdgeId>;  // sorted

bool Contains(const Itemset& transaction, const Itemset& itemset) {
  return std::includes(transaction.begin(), transaction.end(),
                       itemset.begin(), itemset.end());
}

size_t CountSupport(const std::vector<Itemset>& transactions,
                    const Itemset& itemset) {
  size_t support = 0;
  for (const auto& t : transactions) support += Contains(t, itemset);
  return support;
}

// Candidate generation: joins L_{k-1} itemsets sharing their first k-2
// items, then prunes candidates with an infrequent (k-1)-subset.
std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& level,
                                        const std::set<Itemset>& frequent) {
  std::vector<Itemset> candidates;
  for (size_t i = 0; i < level.size(); ++i) {
    for (size_t j = i + 1; j < level.size(); ++j) {
      const Itemset& a = level[i];
      const Itemset& b = level[j];
      if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
        continue;
      }
      Itemset joined = a;
      joined.push_back(b.back());
      if (joined[joined.size() - 2] > joined.back()) {
        std::swap(joined[joined.size() - 2], joined.back());
      }
      // Apriori pruning: all (k-1)-subsets must be frequent.
      bool all_frequent = true;
      for (size_t drop = 0; drop < joined.size() && all_frequent; ++drop) {
        Itemset subset;
        subset.reserve(joined.size() - 1);
        for (size_t p = 0; p < joined.size(); ++p) {
          if (p != drop) subset.push_back(joined[p]);
        }
        all_frequent = frequent.count(subset) > 0;
      }
      if (all_frequent) candidates.push_back(std::move(joined));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

}  // namespace

StatusOr<AprioriResult> MineFrequentItemsets(
    const std::vector<std::vector<EdgeId>>& raw_transactions,
    const AprioriOptions& options) {
  std::vector<Itemset> transactions;
  transactions.reserve(raw_transactions.size());
  for (const auto& t : raw_transactions) {
    Itemset s = t;
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    transactions.push_back(std::move(s));
  }

  AprioriResult result;
  // L1: frequent single items.
  std::map<EdgeId, size_t> item_counts;
  for (const auto& t : transactions) {
    for (EdgeId e : t) ++item_counts[e];
  }
  std::vector<Itemset> level;
  std::set<Itemset> frequent;
  for (const auto& [item, count] : item_counts) {
    if (count >= options.min_support) {
      Itemset single{item};
      level.push_back(single);
      frequent.insert(single);
      result.itemsets.push_back(GraphViewDef{single});
      result.supports.push_back(count);
    }
  }

  for (size_t k = 2; k <= options.max_itemset_size && !level.empty(); ++k) {
    const std::vector<Itemset> candidates = GenerateCandidates(level, frequent);
    // Support counting dominates each level and every candidate's count is
    // independent — fan it across the pool into pre-sized slots. The
    // frequency filter below stays serial and in candidate order, so the
    // mined result is identical for every thread count.
    std::vector<size_t> supports(candidates.size());
    COLGRAPH_RETURN_NOT_OK(ParallelFor(
        options.pool, 0, candidates.size(), /*grain=*/0,
        [&](size_t chunk_begin, size_t chunk_end) -> Status {
          for (size_t c = chunk_begin; c < chunk_end; ++c) {
            supports[c] = CountSupport(transactions, candidates[c]);
          }
          return Status::OK();
        }));
    std::vector<Itemset> next_level;
    for (size_t c = 0; c < candidates.size(); ++c) {
      const Itemset& cand = candidates[c];
      if (supports[c] < options.min_support) continue;
      next_level.push_back(cand);
      frequent.insert(cand);
      result.itemsets.push_back(GraphViewDef{cand});
      result.supports.push_back(supports[c]);
      if (result.itemsets.size() > options.max_itemsets) {
        return Status::OutOfRange(
            "Apriori exceeded max_itemsets; raise min_support");
      }
    }
    level = std::move(next_level);
  }
  return result;
}

AprioriResult FilterSuperseded(
    const AprioriResult& mined,
    const std::vector<std::vector<EdgeId>>& raw_transactions) {
  std::vector<Itemset> transactions;
  transactions.reserve(raw_transactions.size());
  for (const auto& t : raw_transactions) {
    Itemset s = t;
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    transactions.push_back(std::move(s));
  }

  // Signature = exact set of supporting transactions; only the largest
  // itemset per signature survives (it supersedes the rest).
  std::map<std::vector<uint32_t>, size_t> best_by_signature;  // -> index
  std::vector<std::vector<uint32_t>> signatures(mined.itemsets.size());
  for (size_t i = 0; i < mined.itemsets.size(); ++i) {
    for (uint32_t t = 0; t < transactions.size(); ++t) {
      if (Contains(transactions[t], mined.itemsets[i].edges)) {
        signatures[i].push_back(t);
      }
    }
    auto [it, inserted] = best_by_signature.emplace(signatures[i], i);
    if (!inserted &&
        mined.itemsets[i].size() > mined.itemsets[it->second].size()) {
      it->second = i;
    }
  }

  AprioriResult filtered;
  for (const auto& [sig, index] : best_by_signature) {
    (void)sig;
    filtered.itemsets.push_back(mined.itemsets[index]);
    filtered.supports.push_back(mined.supports[index]);
  }
  return filtered;
}

}  // namespace colgraph
