#include "views/candidate_generation.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "util/thread_pool.h"

namespace colgraph {

namespace {

using EdgeSet = std::vector<EdgeId>;  // sorted ascending

EdgeSet Intersect(const EdgeSet& a, const EdgeSet& b) {
  EdgeSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

bool IsSubset(const EdgeSet& small, const EdgeSet& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

StatusOr<std::vector<GraphViewDef>> GenerateGraphViewCandidates(
    const std::vector<std::vector<EdgeId>>& query_edge_sets,
    const CandidateGenOptions& options) {
  // Normalize: sorted, deduplicated, non-empty.
  std::vector<EdgeSet> queries;
  queries.reserve(query_edge_sets.size());
  for (const auto& q : query_edge_sets) {
    EdgeSet s = q;
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    if (!s.empty()) queries.push_back(std::move(s));
  }

  // Closure of the query sets under intersection: every non-empty
  // intersection of a subset of queries is reachable by repeatedly
  // intersecting an existing candidate with one query. These are exactly
  // the closed itemsets of the workload.
  std::set<EdgeSet> pool(queries.begin(), queries.end());
  std::vector<EdgeSet> worklist(pool.begin(), pool.end());
  while (!worklist.empty()) {
    const EdgeSet current = std::move(worklist.back());
    worklist.pop_back();
    for (const EdgeSet& q : queries) {
      EdgeSet inter = Intersect(current, q);
      if (inter.empty()) continue;
      if (pool.insert(inter).second) {
        if (pool.size() > options.max_candidates) {
          return Status::OutOfRange(
              "candidate closure exceeded max_candidates; raise min_support "
              "or the cap");
        }
        worklist.push_back(std::move(inter));
      }
    }
  }

  // Support signature: the exact set of queries containing the candidate.
  // Counting support is the hot part (|Cv| × |workload| subset tests) and
  // each candidate's signature is independent, so it fans across the pool
  // into pre-sized slots; the merge below stays serial in candidate order.
  const std::vector<EdgeSet> candidates(pool.begin(), pool.end());
  std::vector<std::vector<uint32_t>> signatures(candidates.size());
  COLGRAPH_RETURN_NOT_OK(ParallelFor(
      options.pool, 0, candidates.size(), /*grain=*/0,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        for (size_t c = chunk_begin; c < chunk_end; ++c) {
          for (uint32_t qi = 0; qi < queries.size(); ++qi) {
            if (IsSubset(candidates[c], queries[qi])) {
              signatures[c].push_back(qi);
            }
          }
        }
        return Status::OK();
      }));

  // Monotonicity (supersedes) filter: among candidates with identical
  // signatures, only the largest is not superseded; candidates below
  // min_support are dropped entirely.
  std::map<std::vector<uint32_t>, EdgeSet> best_per_signature;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const EdgeSet& cand = candidates[c];
    if (signatures[c].size() < options.min_support) continue;
    auto [it, inserted] =
        best_per_signature.emplace(std::move(signatures[c]), cand);
    if (!inserted && cand.size() > it->second.size()) it->second = cand;
  }

  std::vector<GraphViewDef> result;
  result.reserve(best_per_signature.size());
  for (auto& [sig, cand] : best_per_signature) {
    (void)sig;
    result.push_back(GraphViewDef{std::move(cand)});
  }
  std::sort(result.begin(), result.end(),
            [](const GraphViewDef& a, const GraphViewDef& b) {
              return a.size() != b.size() ? a.size() > b.size()
                                          : a.edges < b.edges;
            });
  return result;
}

std::vector<NodeRef> InterestingNodes(
    const std::vector<std::vector<Path>>& maximal_paths_per_query) {
  std::set<NodeRef> interesting;
  // Distinct traversed edges, grouped by start / end node.
  std::unordered_set<Edge, EdgeHash> traversed;
  std::map<NodeRef, std::set<NodeRef>> out_targets;
  std::map<NodeRef, std::set<NodeRef>> in_sources;

  for (const auto& paths : maximal_paths_per_query) {
    for (const Path& p : paths) {
      if (p.empty()) continue;
      interesting.insert(p.front());  // origin of a maximal path
      interesting.insert(p.back());   // endpoint of a maximal path
      for (const Edge& e : p.Edges()) {
        if (traversed.insert(e).second) {
          out_targets[e.from].insert(e.to);
          in_sources[e.to].insert(e.from);
        }
      }
    }
  }
  for (const auto& [node, targets] : out_targets) {
    if (targets.size() >= 2) interesting.insert(node);  // branch node
  }
  for (const auto& [node, sources] : in_sources) {
    if (sources.size() >= 2) interesting.insert(node);  // merge node
  }
  return std::vector<NodeRef>(interesting.begin(), interesting.end());
}

StatusOr<std::vector<Path>> GenerateAggViewCandidatePaths(
    const std::vector<std::vector<Path>>& maximal_paths_per_query,
    size_t max_paths) {
  const std::vector<NodeRef> interesting =
      InterestingNodes(maximal_paths_per_query);
  const std::unordered_set<NodeRef, NodeRefHash> anchors(interesting.begin(),
                                                         interesting.end());
  // Every subpath of a maximal path whose endpoints are both interesting
  // and whose length is >= 2 edges. Deduplicate across queries (shared
  // subpaths are the whole point of the candidate set).
  std::set<std::vector<NodeRef>> seen;
  std::vector<Path> result;
  for (const auto& paths : maximal_paths_per_query) {
    for (const Path& p : paths) {
      const auto& nodes = p.nodes();
      std::vector<size_t> anchor_positions;
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (anchors.count(nodes[i])) anchor_positions.push_back(i);
      }
      for (size_t a = 0; a < anchor_positions.size(); ++a) {
        for (size_t b = a + 1; b < anchor_positions.size(); ++b) {
          const size_t i = anchor_positions[a];
          const size_t j = anchor_positions[b];
          if (j - i < 2) continue;  // single edges are already stored
          std::vector<NodeRef> sub(nodes.begin() + static_cast<long>(i),
                                   nodes.begin() + static_cast<long>(j + 1));
          if (!seen.insert(sub).second) continue;
          if (result.size() >= max_paths) {
            return Status::OutOfRange(
                "aggregate-view candidate paths exceeded cap");
          }
          result.emplace_back(std::move(sub));
        }
      }
    }
  }
  return result;
}

}  // namespace colgraph
