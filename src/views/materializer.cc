#include "views/materializer.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/agg_fn.h"
#include "util/thread_pool.h"

namespace colgraph {

namespace {

// Materialization accounting: view counts and per-view build latency (the
// Section 5.2 "views are cheap to build" claim, observable).
obs::LatencyHistogram& MaterializeHistogram() {
  static obs::LatencyHistogram& hist =
      obs::MetricsRegistry::Global().GetHistogram("views.materialize_us");
  return hist;
}

void CountMaterialized(const char* counter_name) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry::Global().GetCounter(counter_name).Increment();
}

Status ValidateIds(const std::vector<EdgeId>& ids,
                   const MasterRelation& relation) {
  for (EdgeId id : ids) {
    if (id >= relation.num_edge_columns()) {
      return Status::InvalidArgument("view references unknown edge id " +
                                     std::to_string(id));
    }
  }
  return Status::OK();
}

// AND of the presence bitmaps of `ids` (offline: bypasses fetch stats).
Bitmap ConjunctionBitmap(const std::vector<EdgeId>& ids,
                         const MasterRelation& relation) {
  Bitmap result(relation.num_records());
  if (ids.empty()) return result;
  result = relation.PeekMeasureColumn(ids[0]).presence().bits();
  for (size_t i = 1; i < ids.size(); ++i) {
    result.And(relation.PeekMeasureColumn(ids[i]).presence().bits());
  }
  return result;
}

}  // namespace

StatusOr<size_t> MaterializeGraphView(const GraphViewDef& def,
                                      MasterRelation* relation,
                                      ViewCatalog* catalog) {
  if (!relation->sealed()) {
    return Status::InvalidArgument("materialize requires a sealed relation");
  }
  if (def.edges.empty()) {
    return Status::InvalidArgument("cannot materialize an empty graph view");
  }
  COLGRAPH_RETURN_NOT_OK(ValidateIds(def.edges, *relation));
  const obs::Span span(&MaterializeHistogram(), nullptr, "materialize");
  const size_t index =
      relation->AddGraphView(ConjunctionBitmap(def.edges, *relation));
  catalog->AddGraphView(def, index);
  CountMaterialized("views.graph.materialized");
  return index;
}

namespace {

// Computes the (mp) column of an aggregate view from the base columns.
StatusOr<MeasureColumn> ComputeAggColumn(const AggViewDef& def,
                                         const MasterRelation& relation) {
  const Bitmap bp = ConjunctionBitmap(def.elements, relation);
  // The stored per-record value: for AVG the SUM sub-aggregate (count is
  // def.elements.size(), known statically); otherwise F itself.
  const AggFn stored_fn = def.fn == AggFn::kAvg ? AggFn::kSum : def.fn;

  std::vector<const MeasureColumn*> columns;
  columns.reserve(def.elements.size());
  for (EdgeId id : def.elements) {
    columns.push_back(&relation.PeekMeasureColumn(id));
  }

  MeasureColumn mp;
  Status status = Status::OK();
  bp.ForEachSetBit([&](size_t record) {
    if (!status.ok()) return;
    AggAccumulator acc(stored_fn);
    for (const MeasureColumn* col : columns) {
      const auto value = col->Get(record);
      // bp is the AND of the presences, so every element is non-NULL here.
      acc.Add(*value);
    }
    status = mp.Append(record, acc.Result());
  });
  COLGRAPH_RETURN_NOT_OK(status);
  mp.Seal(relation.num_records());
  return mp;
}

}  // namespace

StatusOr<size_t> MaterializeAggView(const AggViewDef& def,
                                    MasterRelation* relation,
                                    ViewCatalog* catalog) {
  if (!relation->sealed()) {
    return Status::InvalidArgument("materialize requires a sealed relation");
  }
  if (def.elements.size() < 2) {
    return Status::InvalidArgument(
        "aggregate views must cover at least two elements; single-element "
        "measures are already stored in the base schema");
  }
  COLGRAPH_RETURN_NOT_OK(ValidateIds(def.elements, *relation));
  const obs::Span span(&MaterializeHistogram(), nullptr, "materialize");
  COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn mp, ComputeAggColumn(def, *relation));
  const size_t index = relation->AddAggregateView(std::move(mp));
  catalog->AddAggView(def, index);
  CountMaterialized("views.agg.materialized");
  return index;
}

StatusOr<std::vector<size_t>> MaterializeGraphViews(
    const std::vector<GraphViewDef>& defs, MasterRelation* relation,
    ViewCatalog* catalog, ThreadPool* pool) {
  if (!relation->sealed()) {
    return Status::InvalidArgument("materialize requires a sealed relation");
  }
  // Validate everything up front (serially, so the first bad definition in
  // order is reported) — the parallel phase then cannot fail, and on error
  // the relation and catalog are untouched.
  for (const GraphViewDef& def : defs) {
    if (def.edges.empty()) {
      return Status::InvalidArgument("cannot materialize an empty graph view");
    }
    COLGRAPH_RETURN_NOT_OK(ValidateIds(def.edges, *relation));
  }

  // Phase 1 (parallel): each view's conjunction bitmap is an independent
  // read-only pass over the sealed base columns, computed into its own
  // pre-sized slot.
  std::vector<Bitmap> bitmaps(defs.size());
  COLGRAPH_RETURN_NOT_OK(
      ParallelFor(pool, 0, defs.size(), /*grain=*/1,
                  [&](size_t begin, size_t end) -> Status {
                    for (size_t i = begin; i < end; ++i) {
                      bitmaps[i] = ConjunctionBitmap(defs[i].edges, *relation);
                    }
                    return Status::OK();
                  }));

  // Phase 2 (serial): register in definition order so view indices are
  // identical to one-by-one materialization regardless of thread count.
  std::vector<size_t> indices;
  indices.reserve(defs.size());
  for (size_t i = 0; i < defs.size(); ++i) {
    const size_t index = relation->AddGraphView(std::move(bitmaps[i]));
    catalog->AddGraphView(defs[i], index);
    indices.push_back(index);
  }
  return indices;
}

StatusOr<std::vector<size_t>> MaterializeAggViews(
    const std::vector<AggViewDef>& defs, MasterRelation* relation,
    ViewCatalog* catalog, ThreadPool* pool) {
  if (!relation->sealed()) {
    return Status::InvalidArgument("materialize requires a sealed relation");
  }
  for (const AggViewDef& def : defs) {
    if (def.elements.size() < 2) {
      return Status::InvalidArgument(
          "aggregate views must cover at least two elements; single-element "
          "measures are already stored in the base schema");
    }
    COLGRAPH_RETURN_NOT_OK(ValidateIds(def.elements, *relation));
  }

  std::vector<MeasureColumn> columns(defs.size());
  COLGRAPH_RETURN_NOT_OK(ParallelFor(
      pool, 0, defs.size(), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          COLGRAPH_ASSIGN_OR_RETURN(columns[i],
                                    ComputeAggColumn(defs[i], *relation));
        }
        return Status::OK();
      }));

  std::vector<size_t> indices;
  indices.reserve(defs.size());
  for (size_t i = 0; i < defs.size(); ++i) {
    const size_t index = relation->AddAggregateView(std::move(columns[i]));
    catalog->AddAggView(defs[i], index);
    indices.push_back(index);
  }
  return indices;
}

Status RefreshAllViewsParallel(MasterRelation* relation,
                               const ViewCatalog& catalog, ThreadPool* pool) {
  if (!relation->sealed()) {
    return Status::InvalidArgument("refresh requires a sealed relation");
  }
  const auto& graph_views = catalog.graph_views();
  const auto& agg_views = catalog.agg_views();
  for (const auto& [def, index] : graph_views) {
    (void)index;
    COLGRAPH_RETURN_NOT_OK(ValidateIds(def.edges, *relation));
  }
  for (const auto& [def, index] : agg_views) {
    (void)index;
    COLGRAPH_RETURN_NOT_OK(ValidateIds(def.elements, *relation));
  }

  // Recompute all replacement columns in parallel (read-only over the base
  // columns), then swap them in serially in catalog order.
  std::vector<Bitmap> bitmaps(graph_views.size());
  COLGRAPH_RETURN_NOT_OK(ParallelFor(
      pool, 0, graph_views.size(), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          bitmaps[i] = ConjunctionBitmap(graph_views[i].first.edges, *relation);
        }
        return Status::OK();
      }));
  std::vector<MeasureColumn> columns(agg_views.size());
  COLGRAPH_RETURN_NOT_OK(ParallelFor(
      pool, 0, agg_views.size(), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          COLGRAPH_ASSIGN_OR_RETURN(
              columns[i], ComputeAggColumn(agg_views[i].first, *relation));
        }
        return Status::OK();
      }));

  for (size_t i = 0; i < graph_views.size(); ++i) {
    relation->ReplaceGraphView(graph_views[i].second, std::move(bitmaps[i]));
  }
  for (size_t i = 0; i < agg_views.size(); ++i) {
    relation->ReplaceAggregateView(agg_views[i].second, std::move(columns[i]));
  }
  return Status::OK();
}

Status RefreshViewsIncremental(MasterRelation* relation,
                               const ViewCatalog& catalog,
                               size_t first_new_record) {
  if (!relation->sealed()) {
    return Status::InvalidArgument("refresh requires a sealed relation");
  }
  for (const auto& [def, index] : catalog.graph_views()) {
    COLGRAPH_RETURN_NOT_OK(ValidateIds(def.edges, *relation));
    relation->ReplaceGraphView(index, ConjunctionBitmap(def.edges, *relation));
  }
  for (const auto& [def, index] : catalog.agg_views()) {
    COLGRAPH_RETURN_NOT_OK(ValidateIds(def.elements, *relation));
    const MeasureColumn& old_mp = relation->PeekAggregateView(index);
    const Bitmap bp = ConjunctionBitmap(def.elements, *relation);
    const AggFn stored_fn = def.fn == AggFn::kAvg ? AggFn::kSum : def.fn;

    std::vector<const MeasureColumn*> columns;
    columns.reserve(def.elements.size());
    for (EdgeId id : def.elements) {
      columns.push_back(&relation->PeekMeasureColumn(id));
    }

    // Old packed values carry over verbatim (records < first_new_record
    // are immutable); only the appended range is aggregated.
    std::vector<double> values;
    values.reserve(bp.Count());
    for (size_t r = 0; r < old_mp.num_values(); ++r) {
      values.push_back(old_mp.ValueAtRank(r));
    }
    Status status = Status::OK();
    bp.ForEachSetBit([&](size_t record) {
      if (!status.ok() || record < first_new_record) return;
      AggAccumulator acc(stored_fn);
      for (const MeasureColumn* col : columns) acc.Add(*col->Get(record));
      values.push_back(acc.Result());
    });
    COLGRAPH_RETURN_NOT_OK(status);
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn mp,
                              MeasureColumn::FromParts(bp, std::move(values)));
    relation->ReplaceAggregateView(index, std::move(mp));
  }
  return Status::OK();
}

Status RefreshAllViews(MasterRelation* relation, const ViewCatalog& catalog) {
  if (!relation->sealed()) {
    return Status::InvalidArgument("refresh requires a sealed relation");
  }
  for (const auto& [def, index] : catalog.graph_views()) {
    COLGRAPH_RETURN_NOT_OK(ValidateIds(def.edges, *relation));
    relation->ReplaceGraphView(index, ConjunctionBitmap(def.edges, *relation));
  }
  for (const auto& [def, index] : catalog.agg_views()) {
    COLGRAPH_RETURN_NOT_OK(ValidateIds(def.elements, *relation));
    COLGRAPH_ASSIGN_OR_RETURN(MeasureColumn mp,
                              ComputeAggColumn(def, *relation));
    relation->ReplaceAggregateView(index, std::move(mp));
  }
  return Status::OK();
}

}  // namespace colgraph
