// Classic level-wise Apriori frequent-itemset mining (Agrawal & Srikant,
// VLDB'94), used by Section 5.2's scalable candidate-view generation:
// transactions are query edge sets, items are edge ids, and a frequent
// itemset with support >= minSup is a graph view usable by at least minSup
// queries. A post-processing step removes views superseded by larger views
// with identical support (the monotonicity property).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"
#include "views/view_defs.h"

namespace colgraph {

class ThreadPool;

struct AprioriOptions {
  /// Minimum number of transactions (queries) an itemset must occur in.
  size_t min_support = 2;
  /// Maximum itemset size to mine (level cap).
  size_t max_itemset_size = 64;
  /// Hard cap on the total number of frequent itemsets produced.
  size_t max_itemsets = 500000;
  /// Fans each level's candidate support counting (the dominant cost:
  /// |candidates| × |transactions| subset tests) across this pool;
  /// nullptr = serial. Mining output is identical either way — supports
  /// land in per-candidate slots and level filtering stays serial.
  ThreadPool* pool = nullptr;
};

struct AprioriResult {
  /// Frequent itemsets (sorted item lists) with their support counts,
  /// aligned by index.
  std::vector<GraphViewDef> itemsets;
  std::vector<size_t> supports;
};

/// \brief Mines all frequent itemsets of the transaction database.
StatusOr<AprioriResult> MineFrequentItemsets(
    const std::vector<std::vector<EdgeId>>& transactions,
    const AprioriOptions& options = {});

/// \brief Drops itemsets superseded by a strictly larger itemset contained
/// in exactly the same transactions (the paper's post-processing step);
/// the survivors are the closed frequent itemsets.
AprioriResult FilterSuperseded(
    const AprioriResult& mined,
    const std::vector<std::vector<EdgeId>>& transactions);

}  // namespace colgraph
