#include "views/set_cover.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace colgraph {

namespace {

// Uncovered state of one universe: a hash set of still-uncovered edges.
using Uncovered = std::unordered_set<EdgeId>;

size_t GainIn(const GraphViewDef& candidate, const Uncovered& uncovered) {
  size_t gain = 0;
  for (EdgeId e : candidate.edges) gain += uncovered.count(e);
  return gain;
}

}  // namespace

SetCoverSelection GreedyExtendedSetCover(
    const std::vector<std::vector<EdgeId>>& universes,
    const std::vector<GraphViewDef>& candidates, size_t max_views) {
  // Usability is static: candidate c applies to universe u iff c ⊆ u.
  std::vector<std::vector<size_t>> usable_in(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    for (size_t u = 0; u < universes.size(); ++u) {
      if (candidates[c].IsSubsetOf(universes[u])) usable_in[c].push_back(u);
    }
  }

  std::vector<Uncovered> uncovered(universes.size());
  for (size_t u = 0; u < universes.size(); ++u) {
    uncovered[u] = Uncovered(universes[u].begin(), universes[u].end());
  }

  SetCoverSelection result;
  std::vector<bool> picked(candidates.size(), false);
  while (result.selected.size() < max_views) {
    size_t best = candidates.size();
    size_t best_gain = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (picked[c]) continue;
      size_t gain = 0;
      size_t max_universe_gain = 0;
      for (size_t u : usable_in[c]) {
        const size_t g = GainIn(candidates[c], uncovered[u]);
        gain += g;
        max_universe_gain = std::max(max_universe_gain, g);
      }
      // Stopping rule: a view pays for itself only where it replaces ≥ 2
      // atomic bitmaps with one AND. The bar is per universe — a candidate
      // covering one edge each in two queries sums to 2 but never beats
      // the atomic bitmaps that already exist for those edges.
      if (max_universe_gain < 2) continue;
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == candidates.size()) break;
    picked[best] = true;
    result.selected.push_back(best);
    for (size_t u : usable_in[best]) {
      for (EdgeId e : candidates[best].edges) uncovered[u].erase(e);
    }
  }

  for (const auto& u : uncovered) result.uncovered_elements += u.size();
  return result;
}

QueryCover CoverQueryWithViews(const std::vector<EdgeId>& query_edges,
                               const std::vector<GraphViewDef>& views) {
  Uncovered uncovered(query_edges.begin(), query_edges.end());

  // Lazy greedy: gains only shrink as edges get covered (submodularity),
  // so a max-heap of possibly-stale gains is correct — pop, refresh, and
  // accept when the refreshed gain still tops the heap. This touches a
  // handful of views per round instead of rescanning all of them, which
  // matters when many views are materialized and queries are cheap.
  std::priority_queue<std::pair<size_t, size_t>> heap;  // (gain, view)
  for (size_t v = 0; v < views.size(); ++v) {
    if (!views[v].IsSubsetOf(query_edges)) continue;
    const size_t gain = views[v].edges.size();  // upper bound: all uncovered
    if (gain >= 2) heap.emplace(gain, v);
  }

  QueryCover cover;
  while (!heap.empty()) {
    const auto [stale_gain, v] = heap.top();
    heap.pop();
    if (stale_gain < 2) break;
    const size_t gain = GainIn(views[v], uncovered);
    if (gain < 2) continue;  // atomic bitmaps are at least as good
    if (!heap.empty() && gain < heap.top().first) {
      heap.emplace(gain, v);  // stale: reinsert with the refreshed gain
      continue;
    }
    cover.view_indexes.push_back(v);
    for (EdgeId e : views[v].edges) uncovered.erase(e);
  }

  cover.residual_edges.assign(uncovered.begin(), uncovered.end());
  std::sort(cover.residual_edges.begin(), cover.residual_edges.end());
  return cover;
}

}  // namespace colgraph
