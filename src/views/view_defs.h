// Definitions of materialized graph views (Section 5.1) and the catalog
// that tracks what has been materialized into the master relation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/agg_fn.h"

namespace colgraph {

/// \brief A graph view: a set of edges whose conjunction bitmap
/// bitmap(B) = AND of the edges' bitmaps is materialized as one extra
/// bitmap column bv in the master relation.
struct GraphViewDef {
  /// Sorted, deduplicated edge ids of the view's subgraph.
  std::vector<EdgeId> edges;

  static GraphViewDef Make(std::vector<EdgeId> ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return GraphViewDef{std::move(ids)};
  }

  size_t size() const { return edges.size(); }

  /// True iff this view's edge set is a subset of `query_edges` (which must
  /// be sorted): the precondition for the view to be usable by that query.
  bool IsSubsetOf(const std::vector<EdgeId>& query_edges) const {
    return std::includes(query_edges.begin(), query_edges.end(),
                         edges.begin(), edges.end());
  }

  bool operator==(const GraphViewDef& o) const { return edges == o.edges; }
  bool operator<(const GraphViewDef& o) const { return edges < o.edges; }
};

/// \brief An aggregate graph view F_p: the aggregate of function `fn` along
/// path `elements` (the path's measurable elements, in path order),
/// materialized as a measure column mp plus its bitmap bp.
struct AggViewDef {
  /// Element ids along the path, in path order (edges and internal-node
  /// self-edges as produced by Path::Elements()).
  std::vector<EdgeId> elements;
  AggFn fn = AggFn::kSum;

  size_t size() const { return elements.size(); }

  bool operator==(const AggViewDef& o) const {
    return fn == o.fn && elements == o.elements;
  }
  bool operator<(const AggViewDef& o) const {
    return fn != o.fn ? fn < o.fn : elements < o.elements;
  }
};

/// \brief Registry of materialized views: maps each view definition to the
/// index of its column(s) inside the master relation. The query rewriter
/// consults this to reformulate queries (Section 5.3).
class ViewCatalog {
 public:
  /// Registers a materialized graph view stored at `column_index`
  /// (MasterRelation graph-view index).
  void AddGraphView(GraphViewDef def, size_t column_index) {
    graph_views_.emplace_back(std::move(def), column_index);
  }

  /// Registers a materialized aggregate view at `column_index`
  /// (MasterRelation aggregate-view index).
  void AddAggView(AggViewDef def, size_t column_index) {
    agg_views_.emplace_back(std::move(def), column_index);
  }

  const std::vector<std::pair<GraphViewDef, size_t>>& graph_views() const {
    return graph_views_;
  }
  const std::vector<std::pair<AggViewDef, size_t>>& agg_views() const {
    return agg_views_;
  }

  size_t num_graph_views() const { return graph_views_.size(); }
  size_t num_agg_views() const { return agg_views_.size(); }

 private:
  std::vector<std::pair<GraphViewDef, size_t>> graph_views_;
  std::vector<std::pair<AggViewDef, size_t>> agg_views_;
};

}  // namespace colgraph
