// Workload-driven view advice from a captured query log (DESIGN.md §10):
// the paper's view-selection pipeline (candidate generation §5.2 + greedy
// extended set cover) applied to the queries an engine actually executed,
// instead of a synthetic QueryGenerator workload. This is the mining half
// of the capture → replay → advise loop; tools/colgraph_replay
// --advise-views=k is the driver.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/catalog.h"
#include "graph/graph.h"
#include "obs/query_log.h"
#include "util/status.h"
#include "views/candidate_generation.h"
#include "views/view_defs.h"

namespace colgraph {

/// Rebuilds the executed workload (query graphs, in log order) from log
/// records. Both match and path-agg queries contribute: their structural
/// universes are what graph-view selection covers.
std::vector<GraphQuery> WorkloadFromQueryLog(
    const std::vector<obs::QueryLogRecord>& records);

/// \brief One advised view with its estimated benefit.
struct AdvisedView {
  GraphViewDef def;
  /// Workload queries this view is usable in (view ⊆ query universe).
  size_t supporting_queries = 0;
  /// Elements this pick newly covered across all universes at selection
  /// time — the greedy's own gain, i.e. how many atomic bitmap fetches the
  /// view replaces over the whole workload.
  size_t coverage_gain = 0;
};

/// \brief Result of advising over a workload.
struct WorkloadAdvice {
  /// Selected views, in greedy pick order.
  std::vector<AdvisedView> views;
  /// Total structural elements across all query universes.
  size_t total_elements = 0;
  /// Elements still uncovered after the selection (answered by atomic
  /// bitmaps at query time).
  size_t uncovered_elements = 0;
  /// Universes fed to selection (satisfiable, non-empty queries).
  size_t num_universes = 0;
};

/// \brief Runs candidate generation + GreedyExtendedSetCover over a
/// workload, resolving each query against `catalog` exactly as
/// QueryEngine::Resolve does (unknown structural edge → unsatisfiable,
/// skipped; unknown node measure → unconstrained). Deterministic: the
/// same multiset of queries yields the same advice in any order, so
/// advising from a replayed log matches advising from the original
/// in-memory workload.
StatusOr<WorkloadAdvice> AdviseGraphViews(
    const std::vector<GraphQuery>& workload, const EdgeCatalog& catalog,
    size_t budget, const CandidateGenOptions& gen_options = {});

}  // namespace colgraph
