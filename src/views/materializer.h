// Materialization of selected views into the master relation (Section 5.1).
// Both view kinds are computed in a single pass over the existing columns —
// the paper's key practicality argument versus mined graph indexes.
#pragma once

#include "columnstore/master_relation.h"
#include "util/status.h"
#include "views/view_defs.h"

namespace colgraph {

/// \brief Materializes a graph view: ANDs the bitmaps of the view's edges
/// into one new bitmap column bv. Registers the view in `catalog` and
/// returns the relation's view index.
StatusOr<size_t> MaterializeGraphView(const GraphViewDef& def,
                                      MasterRelation* relation,
                                      ViewCatalog* catalog);

/// \brief Materializes an aggregate graph view F_p: computes bp (the AND of
/// the path elements' bitmaps) and mp (the aggregate of the elements'
/// measures, per record containing p). For AVG the stored value is the SUM
/// sub-aggregate; the element count is known statically from the
/// definition. Returns the relation's aggregate-view index.
StatusOr<size_t> MaterializeAggView(const AggViewDef& def,
                                    MasterRelation* relation,
                                    ViewCatalog* catalog);

/// \brief Recomputes every materialized view column registered in
/// `catalog` from the current base columns — the maintenance step after
/// incremental ingest (new records make the old bv/mp/bp columns stale).
/// One pass per view, same as initial materialization.
Status RefreshAllViews(MasterRelation* relation, const ViewCatalog& catalog);

/// \brief Delta view maintenance after incremental ingest: records before
/// `first_new_record` are untouched by appends, so each aggregate view
/// keeps its existing per-record values and only computes aggregates for
/// the appended range — O(new records) instead of O(all records) per
/// view. Bitmap (graph) views are recomputed wholesale: a word-parallel
/// AND is cheaper than any bookkeeping.
Status RefreshViewsIncremental(MasterRelation* relation,
                               const ViewCatalog& catalog,
                               size_t first_new_record);

}  // namespace colgraph
