// Materialization of selected views into the master relation (Section 5.1).
// Both view kinds are computed in a single pass over the existing columns —
// the paper's key practicality argument versus mined graph indexes.
#pragma once

#include <vector>

#include "columnstore/master_relation.h"
#include "util/status.h"
#include "views/view_defs.h"

namespace colgraph {

class ThreadPool;

/// \brief Materializes a graph view: ANDs the bitmaps of the view's edges
/// into one new bitmap column bv. Registers the view in `catalog` and
/// returns the relation's view index.
StatusOr<size_t> MaterializeGraphView(const GraphViewDef& def,
                                      MasterRelation* relation,
                                      ViewCatalog* catalog);

/// \brief Materializes an aggregate graph view F_p: computes bp (the AND of
/// the path elements' bitmaps) and mp (the aggregate of the elements'
/// measures, per record containing p). For AVG the stored value is the SUM
/// sub-aggregate; the element count is known statically from the
/// definition. Returns the relation's aggregate-view index.
StatusOr<size_t> MaterializeAggView(const AggViewDef& def,
                                    MasterRelation* relation,
                                    ViewCatalog* catalog);

// --- Batch materialization (intra-materialization parallelism). ---
//
// Each view's column is an independent read-only pass over the sealed base
// columns, so a batch computes all of them across `pool` (nullptr = serial)
// and then registers the results serially in definition order. View
// indices, bitmap words and packed values are therefore bit-identical to
// materializing the definitions one by one — only the wall clock changes.
// Validation happens up front: on error nothing is registered.

/// \brief Materializes every definition in `defs`; returns the relation
/// view index of each, aligned with `defs`.
StatusOr<std::vector<size_t>> MaterializeGraphViews(
    const std::vector<GraphViewDef>& defs, MasterRelation* relation,
    ViewCatalog* catalog, ThreadPool* pool = nullptr);

/// \brief Materializes every aggregate-view definition in `defs`; returns
/// the relation's aggregate-view index of each, aligned with `defs`.
StatusOr<std::vector<size_t>> MaterializeAggViews(
    const std::vector<AggViewDef>& defs, MasterRelation* relation,
    ViewCatalog* catalog, ThreadPool* pool = nullptr);

/// \brief Recomputes every materialized view column registered in
/// `catalog` from the current base columns — the maintenance step after
/// incremental ingest (new records make the old bv/mp/bp columns stale).
/// One pass per view, same as initial materialization.
Status RefreshAllViews(MasterRelation* relation, const ViewCatalog& catalog);

/// \brief Delta view maintenance after incremental ingest: records before
/// `first_new_record` are untouched by appends, so each aggregate view
/// keeps its existing per-record values and only computes aggregates for
/// the appended range — O(new records) instead of O(all records) per
/// view. Bitmap (graph) views are recomputed wholesale: a word-parallel
/// AND is cheaper than any bookkeeping.
Status RefreshViewsIncremental(MasterRelation* relation,
                               const ViewCatalog& catalog,
                               size_t first_new_record);

/// \brief RefreshAllViews with the recomputation fanned across `pool`
/// (one task per view; replacement stays serial and in catalog order, so
/// the refreshed columns are bit-identical to the serial refresh).
Status RefreshAllViewsParallel(MasterRelation* relation,
                               const ViewCatalog& catalog, ThreadPool* pool);

}  // namespace colgraph
