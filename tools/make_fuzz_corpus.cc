// Regenerates the committed fuzz seed corpus (fuzz/corpus/) from real
// artifacts: every binary seed is produced by the production writers
// (WriteRelation, AppendRecordFrame, EwahBitmap::FromBitmap) and then
// deterministically damaged the way the torture tests damage snapshots —
// truncation, bit flips, bad magic, implausible counts. Run it when a
// format changes:
//
//   make_fuzz_corpus <repo>/fuzz/corpus
//
// Seeds are deliberately small: the fuzzers mutate them further; what
// matters is that each one parks the fuzzer next to a different validation
// branch (valid file, each rejection path, each legacy version).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bitmap/ewah_bitmap.h"
#include "bitmap/hybrid_bitmap.h"
#include "columnstore/persistence.h"
#include "obs/query_log.h"
#include "util/check.h"
#include "util/crc32.h"

namespace colgraph {
namespace {

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::vector<char>& bytes) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  COLGRAPH_CHECK(out.good()) << "cannot write " << (dir / name).string();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  COLGRAPH_CHECK(out.good());
}

template <typename T>
void AppendPod(std::vector<char>* out, const T& value) {
  const size_t old = out->size();
  out->resize(old + sizeof(T));
  std::memcpy(out->data() + old, &value, sizeof(T));
}

std::vector<char> Truncated(std::vector<char> bytes, size_t len) {
  bytes.resize(std::min(bytes.size(), len));
  return bytes;
}

std::vector<char> BitFlipped(std::vector<char> bytes, size_t pos,
                             uint8_t bit) {
  if (pos < bytes.size()) {
    bytes[pos] = static_cast<char>(static_cast<uint8_t>(bytes[pos]) ^
                                   (uint8_t{1} << bit));
  }
  return bytes;
}

template <typename T>
std::vector<char> Patched(std::vector<char> bytes, size_t pos,
                          const T& value) {
  COLGRAPH_CHECK(pos + sizeof(T) <= bytes.size());
  std::memcpy(bytes.data() + pos, &value, sizeof(T));
  return bytes;
}

std::vector<char> SlurpAndRemove(const std::string& path) {
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  std::remove(path.c_str());
  COLGRAPH_CHECK(!bytes.empty()) << "empty artifact at " << path;
  return bytes;
}

// --- fuzz_snapshot -------------------------------------------------------

void MakeSnapshotSeeds(const std::filesystem::path& dir) {
  MasterRelation rel;
  COLGRAPH_CHECK(rel.AddRecord({{0, 1.5}, {2, -2.0}}).ok());
  COLGRAPH_CHECK(rel.AddRecord({{1, 3.0}}).ok());
  COLGRAPH_CHECK(rel.AddRecord({}).ok());
  COLGRAPH_CHECK_OK(rel.Seal());

  const std::string tmp =
      (std::filesystem::temp_directory_path() / "colgraph_corpus_snap.bin")
          .string();
  COLGRAPH_CHECK_OK(WriteRelation(rel, tmp));
  const std::vector<char> valid = SlurpAndRemove(tmp);

  // Current-version snapshot (v4 since the mmap extent layout). Genuine
  // older images are produced below via WriteRelationAtVersion — except
  // v2's legacy_v2, committed static since the writer can no longer emit
  // untagged bitmaps.
  {
    uint32_t version = 0;
    std::memcpy(&version, valid.data() + 4, sizeof(version));
    COLGRAPH_CHECK(version == 4)
        << "WriteRelation emits v" << version
        << "; update the v4 seed geometry below";
  }
  WriteSeed(dir, "valid_snapshot", valid);
  WriteSeed(dir, "truncated_half", Truncated(valid, valid.size() / 2));
  WriteSeed(dir, "truncated_footer", Truncated(valid, valid.size() - 5));
  WriteSeed(dir, "bad_magic", BitFlipped(valid, 0, 3));
  WriteSeed(dir, "flipped_body_bit",
            BitFlipped(valid, valid.size() / 2, 0));
  WriteSeed(dir, "empty", {});
  WriteSeed(dir, "preamble_only", Truncated(valid, 8));

  // Section length larger than the file: the first rejection the v2
  // reader's section walk can hit.
  {
    std::vector<char> huge_section = valid;
    const uint64_t bogus = uint64_t{1} << 40;
    if (huge_section.size() >= 16) {
      std::memcpy(huge_section.data() + 8, &bogus, sizeof(bogus));
    }
    WriteSeed(dir, "huge_section_len", huge_section);
  }

  // v4 extent-directory damage. Fixed geometry of the valid image above
  // (io_util.h layout): preamble 8B; header section [12B frame][u64
  // num_records][u64 num_columns] ends at 36; extent-directory section
  // frame at 36 with payload [u64 count @48][{u64 offset, u64 len} @56,
  // one pair per column]. Stale CRCs are fine — the fuzz harness's fixup
  // pass recomputes them so these seeds reach the directory validator,
  // not the checksum rejection.
  {
    constexpr size_t kDirCountPos = 48;
    constexpr size_t kExt0OffsetPos = 56;
    constexpr size_t kExt0LenPos = 64;
    constexpr size_t kExt1OffsetPos = 72;
    uint64_t dir_count = 0;
    std::memcpy(&dir_count, valid.data() + kDirCountPos, sizeof(dir_count));
    COLGRAPH_CHECK(dir_count == 3)
        << "extent directory not at the expected offset (count "
        << dir_count << ")";
    // Count disagrees with the header's column count.
    WriteSeed(dir, "v4_extent_count_mismatch",
              Patched(valid, kDirCountPos, uint64_t{1000}));
    // First extent points far past the checksummed body.
    WriteSeed(dir, "v4_extent_offset_past_body",
              Patched(valid, kExt0OffsetPos, uint64_t{1} << 40));
    // Length so large that offset + len overflows / escapes the body.
    WriteSeed(dir, "v4_extent_len_overflow",
              Patched(valid, kExt0LenPos, ~uint64_t{0} - 8));
    // Second extent rewound on top of the first: non-ascending overlap.
    uint64_t ext0_offset = 0;
    std::memcpy(&ext0_offset, valid.data() + kExt0OffsetPos,
                sizeof(ext0_offset));
    WriteSeed(dir, "v4_extent_overlap",
              Patched(valid, kExt1OffsetPos, ext0_offset));
    // Single bit flipped inside the first raw column extent: no section
    // CRC shields it, only the whole-file footer (and the column decoder,
    // once the harness rebuilds the footer).
    WriteSeed(dir, "v4_extent_payload_flip",
              BitFlipped(valid, static_cast<size_t>(ext0_offset) + 10, 5));
  }

  // Sparse relation: columns fall under the hybrid density threshold, so
  // the writer emits tag-1 (hybrid) bitmap payloads — parks the fuzzer
  // on the FromRawChecked branch of the snapshot reader. Pinned to v3
  // (the last sequential-layout version) now that WriteRelation emits the
  // v4 extent layout.
  {
    MasterRelation sparse_rel;
    for (int i = 0; i < 300; ++i) {
      // Each edge set in exactly one of 300 records: under the 1/256
      // density cutoff, so every presence column hybrid-encodes.
      std::vector<std::pair<EdgeId, double>> record;
      if (i < 4) record.emplace_back(static_cast<EdgeId>(i), 1.0 * i);
      COLGRAPH_CHECK(sparse_rel.AddRecord(record).ok());
    }
    COLGRAPH_CHECK_OK(sparse_rel.Seal());
    const std::string sparse_tmp =
        (std::filesystem::temp_directory_path() /
         "colgraph_corpus_snap_hybrid.bin")
            .string();
    COLGRAPH_CHECK_OK(
        internal::WriteRelationAtVersion(sparse_rel, sparse_tmp, 3));
    const std::vector<char> hybrid_snap = SlurpAndRemove(sparse_tmp);
    WriteSeed(dir, "valid_v3_hybrid", hybrid_snap);
    WriteSeed(dir, "v3_hybrid_flipped_bit",
              BitFlipped(hybrid_snap, hybrid_snap.size() / 2, 4));
  }

  // Legacy v1 preamble claiming an 8-EiB relation: must reject on the
  // record-count sanity cap, not attempt the allocation.
  {
    std::vector<char> v1;
    AppendPod(&v1, uint32_t{0x4347524C});
    AppendPod(&v1, uint32_t{1});
    AppendPod(&v1, uint64_t{1} << 60);  // num_records
    AppendPod(&v1, uint64_t{4});        // num_columns
    WriteSeed(dir, "v1_huge_record_count", v1);
  }
}

// --- fuzz_ewah -----------------------------------------------------------

std::vector<char> EwahSeed(const EwahBitmap& ewah) {
  std::vector<char> out;
  AppendPod(&out, static_cast<uint64_t>(ewah.size_bits()));
  for (const uint64_t word : ewah.buffer()) AppendPod(&out, word);
  return out;
}

void MakeEwahSeeds(const std::filesystem::path& dir) {
  Bitmap sparse(1000);
  sparse.Set(3);
  sparse.Set(500);
  sparse.Set(999);
  WriteSeed(dir, "valid_sparse", EwahSeed(EwahBitmap::FromBitmap(sparse)));

  Bitmap dense(640);
  for (size_t i = 0; i < dense.size(); i += 3) dense.Set(i);
  WriteSeed(dir, "valid_dense", EwahSeed(EwahBitmap::FromBitmap(dense)));

  Bitmap ones(256);
  for (size_t i = 0; i < ones.size(); ++i) ones.Set(i);
  WriteSeed(dir, "valid_all_ones", EwahSeed(EwahBitmap::FromBitmap(ones)));

  WriteSeed(dir, "empty_bitmap", EwahSeed(EwahBitmap::FromBitmap(Bitmap(0))));

  // Marker claiming a million literal words that aren't there: the
  // overrun FromRawChecked exists to reject.
  {
    std::vector<char> bad;
    AppendPod(&bad, uint64_t{64});
    AppendPod(&bad, uint64_t{1000000} << 33);  // 1M literal words, 0 runs
    WriteSeed(dir, "literal_overrun", bad);
  }
  // Run length wildly larger than the claimed bit count.
  {
    std::vector<char> bad;
    AppendPod(&bad, uint64_t{64});
    AppendPod(&bad, (uint64_t{0xFFFFFFFF} << 1) | 1u);  // 4G-word one-run
    WriteSeed(dir, "huge_run", bad);
  }
}

// --- fuzz_hybrid_bitmap --------------------------------------------------

std::vector<char> HybridSeed(const HybridBitmap& hybrid) {
  std::vector<char> out;
  AppendPod(&out, static_cast<uint64_t>(hybrid.size_bits()));
  for (const uint64_t word : hybrid.ToRaw()) AppendPod(&out, word);
  return out;
}

void MakeHybridBitmapSeeds(const std::filesystem::path& dir) {
  // One seed per container type plus the chunk-boundary shapes, each
  // produced by the production encoder so the fuzzer starts on the accept
  // path of every container validator branch.
  Bitmap sparse(200000);  // array containers across 4 chunks
  for (size_t i = 0; i < sparse.size(); i += 997) sparse.Set(i);
  WriteSeed(dir, "valid_array",
            HybridSeed(HybridBitmap::FromBitmap(sparse)));

  Bitmap dense(1 << 16);  // one bitset container (card > 4096)
  for (size_t i = 0; i < dense.size(); i += 2) dense.Set(i);
  WriteSeed(dir, "valid_bitset",
            HybridSeed(HybridBitmap::FromBitmap(dense)));

  Bitmap runs(100000);  // run containers, one run crossing the chunk edge
  for (size_t i = 60000; i < 70000; ++i) runs.Set(i);
  for (size_t i = 90000; i < 90100; ++i) runs.Set(i);
  WriteSeed(dir, "valid_runs", HybridSeed(HybridBitmap::FromBitmap(runs)));

  Bitmap gap(3 << 16);  // empty middle chunk: descriptor keys skip 1
  gap.Set(5);
  gap.Set((2u << 16) + 123);
  WriteSeed(dir, "valid_chunk_gap", HybridSeed(HybridBitmap::FromBitmap(gap)));

  Bitmap tail((1 << 16) + 777);  // unaligned final chunk
  for (size_t i = 0; i < tail.size(); i += 13) tail.Set(i);
  WriteSeed(dir, "valid_unaligned_tail",
            HybridSeed(HybridBitmap::FromBitmap(tail)));

  WriteSeed(dir, "empty_bitmap",
            HybridSeed(HybridBitmap::FromBitmap(Bitmap(4096))));

  // Descriptor table claiming a million containers that aren't there.
  {
    std::vector<char> bad;
    AppendPod(&bad, uint64_t{1} << 20);  // num_bits
    AppendPod(&bad, uint64_t{1000000});  // container count
    AppendPod(&bad, uint64_t{0});
    WriteSeed(dir, "descriptor_overrun", bad);
  }
  // Unknown container type (3) in an otherwise plausible descriptor.
  {
    std::vector<char> bad;
    AppendPod(&bad, uint64_t{1} << 16);
    AppendPod(&bad, uint64_t{1});
    AppendPod(&bad, uint64_t{0} | (uint64_t{3} << 32) | (uint64_t{1} << 40));
    AppendPod(&bad, uint64_t{1});  // card word
    AppendPod(&bad, uint64_t{7});  // payload
    WriteSeed(dir, "bad_container_type", bad);
  }
}

// --- fuzz_query_log ------------------------------------------------------

void MakeQueryLogSeeds(const std::filesystem::path& dir) {
  obs::QueryLogRecord rec;
  rec.kind = obs::QueryLogKind::kPathAgg;
  rec.fn = AggFn::kMax;
  rec.edges = {Edge{NodeRef{1, 0}, NodeRef{2, 0}},
               Edge{NodeRef{2, 0}, NodeRef{3, 1}}};
  rec.isolated_nodes = {NodeRef{9, 0}};
  rec.graph_view_indexes = {0, 2};
  rec.agg_view_indexes = {1};
  for (size_t p = 0; p < obs::kNumQueryPhases; ++p) {
    rec.phase_us[p] = 10 * (p + 1);
  }
  rec.total_us = 12345;
  rec.result_cardinality = 42;

  std::vector<char> log;
  AppendPod(&log, obs::kQueryLogMagic);
  AppendPod(&log, obs::kQueryLogVersion);
  const size_t header_end = log.size();
  for (int i = 0; i < 3; ++i) {
    rec.result_cardinality = static_cast<uint64_t>(42 + i);
    obs::AppendRecordFrame(rec, &log);
  }
  const size_t records_end = log.size();

  // Footer frame, matching the writer's Close(): type 1, payload
  // [u32 footer magic][u64 record count].
  std::vector<char> footer_payload;
  AppendPod(&footer_payload, obs::kQueryLogFooterMagic);
  AppendPod(&footer_payload, uint64_t{3});
  AppendPod(&log, uint8_t{1});
  AppendPod(&log, static_cast<uint64_t>(footer_payload.size()));
  AppendPod(&log, Crc32c(footer_payload.data(), footer_payload.size()));
  log.insert(log.end(), footer_payload.begin(), footer_payload.end());

  WriteSeed(dir, "valid_log", log);
  WriteSeed(dir, "missing_footer", Truncated(log, records_end));
  WriteSeed(dir, "truncated_mid_frame", Truncated(log, header_end + 7));
  WriteSeed(dir, "header_only", Truncated(log, header_end));
  WriteSeed(dir, "bad_version", BitFlipped(log, 4, 6));
  WriteSeed(dir, "flipped_payload_bit",
            BitFlipped(log, header_end + 20, 2));
  WriteSeed(dir, "empty", {});
}

}  // namespace
}  // namespace colgraph

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  const char* kDirs[] = {"fuzz_snapshot", "fuzz_ewah", "fuzz_hybrid_bitmap",
                         "fuzz_query_log", "fuzz_parser"};
  for (const char* d : kDirs) {
    std::filesystem::create_directories(root / d);
  }

  colgraph::MakeSnapshotSeeds(root / "fuzz_snapshot");
  colgraph::MakeEwahSeeds(root / "fuzz_ewah");
  colgraph::MakeHybridBitmapSeeds(root / "fuzz_hybrid_bitmap");
  colgraph::MakeQueryLogSeeds(root / "fuzz_query_log");
  // fuzz_parser seeds are plain text, committed directly in the repo —
  // regenerating them here would only churn the files.

  std::fprintf(stderr, "fuzz corpus written under %s\n", root.string().c_str());
  return 0;
}
