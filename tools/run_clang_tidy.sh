#!/usr/bin/env bash
# Runs clang-tidy (using the repo .clang-tidy profile) over the library
# sources. Usage:
#   tools/run_clang_tidy.sh [--report FILE] [--warn-only] [build-dir] \
#                           [extra clang-tidy args...]
#
#   --report FILE  also write the full diagnostic stream to FILE (the CI
#                  job uploads it as an artifact)
#   --warn-only    always exit 0 when clang-tidy ran, whatever it found —
#                  the CI gate mode while the backlog is burned down
#
# The build dir must contain compile_commands.json; one is configured with
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
report_file=""
warn_only=0

while [ "$#" -gt 0 ]; do
  case "$1" in
    --report)
      report_file="$2"
      shift 2
      ;;
    --warn-only)
      warn_only=1
      shift
      ;;
    *)
      break
      ;;
  esac
done

build_dir="${1:-$repo_root/build}"
shift || true

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping" >&2
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $build_dir/compile_commands.json missing;" >&2
  echo "  configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

cd "$repo_root"
status=0
if [ -n "$report_file" ]; then
  find src -name '*.cc' -print0 \
    | xargs -0 -P "$(nproc)" -n 1 clang-tidy -p "$build_dir" --quiet "$@" \
    2>&1 | tee "$report_file" || status=$?
  warning_count="$(grep -c 'warning:' "$report_file" || true)"
  echo "run_clang_tidy.sh: $warning_count warning line(s) -> $report_file"
else
  find src -name '*.cc' -print0 \
    | xargs -0 -P "$(nproc)" -n 1 clang-tidy -p "$build_dir" --quiet "$@" \
    || status=$?
fi

if [ "$warn_only" -eq 1 ]; then
  echo "run_clang_tidy.sh: done (warn-only, exit forced to 0)"
  exit 0
fi
echo "run_clang_tidy.sh: done"
exit "$status"
