#!/usr/bin/env bash
# Runs clang-tidy (using the repo .clang-tidy profile) over the library
# sources. Usage:
#   tools/run_clang_tidy.sh [build-dir] [extra clang-tidy args...]
# The build dir must contain compile_commands.json; one is configured with
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping" >&2
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $build_dir/compile_commands.json missing;" >&2
  echo "  configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

cd "$repo_root"
find src -name '*.cc' -print0 \
  | xargs -0 -P "$(nproc)" -n 1 clang-tidy -p "$build_dir" --quiet "$@"
echo "run_clang_tidy.sh: done"
