// colgraphd: the fault-tolerant serving daemon (DESIGN.md §12). Binds an
// AF_UNIX socket, serves concurrent read queries against immutable engine
// snapshots, ingests trace batches through a single writer that publishes
// new snapshots atomically, and drains gracefully on SIGTERM/SIGINT
// (in-flight requests finish, new ones get UNAVAILABLE, the query log is
// flushed, the socket file is removed, exit 0).
//
// Usage:
//   colgraphd --socket=PATH [--traces=FILE] [--workers=N]
//             [--max-in-flight=N] [--query-log=FILE]
//             [--default-timeout-ms=N] [--threads=N]
//             [--data-dir=DIR] [--compact-after=N]
//             [--slow-query-log=FILE] [--slow-query-threshold-us=N]
//             [--slow-query-sample=N] [--metrics-dir=DIR]
//             [--metrics-period-ms=N]
//   colgraphd --smoke=DIR
//
// --data-dir makes ingest durable (DESIGN.md §14): every batch is sealed
// as an immutable dataset file in DIR before it is served, and a restart
// re-attaches DIR's datasets to the initial snapshot. --compact-after=N
// triggers a background compaction once N tail datasets have
// accumulated (0 disables; default 4).
//
// Telemetry (DESIGN.md §15): --slow-query-log captures requests over
// --slow-query-threshold-us (default 20000) plus an optional 1-in-N
// sample (--slow-query-sample) with their full server+engine trace;
// render with colgraph_trace. --metrics-dir periodically (every
// --metrics-period-ms, default 1000) writes the server's metrics
// document to DIR/metrics.json via atomic rename.
//
// --smoke runs the end-to-end self-test wired into ctest (label `server`):
// it starts a daemon on a scratch socket, drives it through the retrying
// client — ping, match and aggregate queries, an ingest that publishes a
// new epoch, a deadline that fires mid-request, an oversized admission
// burst — then drains and verifies the socket file is gone.
//
// Exit codes: 0 clean (including drained-by-signal), 1 smoke failure,
// 2 usage/startup error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "core/engine.h"
#include "server/client.h"
#include "server/daemon.h"
#include "workload/trace_loader.h"

namespace {

using colgraph::ColGraphEngine;
using colgraph::EngineOptions;
using colgraph::IngestTraceFile;
using colgraph::Status;
using colgraph::StatusOr;
using colgraph::server::Client;
using colgraph::server::ClientOptions;
using colgraph::server::Daemon;
using colgraph::server::DaemonOptions;
using colgraph::server::Request;
using colgraph::server::RequestOp;
using colgraph::server::Response;
using colgraph::server::SleepMs;

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int /*signum*/) { g_stop = 1; }

struct Args {
  std::string socket_path;
  std::string traces_path;
  std::string query_log_path;
  std::string smoke_dir;
  std::string data_dir;
  std::string slow_query_log_path;
  std::string metrics_dir;
  size_t workers = 8;
  size_t max_in_flight = 32;
  size_t threads = 1;
  size_t compact_after = 4;
  uint64_t default_timeout_ms = 0;
  uint64_t slow_query_threshold_us = 20 * 1000;
  uint64_t slow_query_sample = 0;
  uint64_t metrics_period_ms = 1000;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--traces=FILE] [--workers=N]\n"
               "          [--max-in-flight=N] [--query-log=FILE]\n"
               "          [--default-timeout-ms=N] [--threads=N]\n"
               "          [--data-dir=DIR] [--compact-after=N]\n"
               "          [--slow-query-log=FILE] "
               "[--slow-query-threshold-us=N]\n"
               "          [--slow-query-sample=N] [--metrics-dir=DIR]\n"
               "          [--metrics-period-ms=N]\n"
               "       %s --smoke=DIR\n",
               argv0, argv0);
  return 2;
}

/// Builds the daemon's initial (epoch 0) engine: the trace file when given,
/// an empty sealed engine otherwise (everything arrives via ingest).
StatusOr<std::shared_ptr<const ColGraphEngine>> BuildInitialEngine(
    const Args& args) {
  EngineOptions options;
  options.num_threads = args.threads;
  options.query_log.path = args.query_log_path;
  auto engine = std::make_shared<ColGraphEngine>(options);
  if (!args.traces_path.empty()) {
    COLGRAPH_RETURN_NOT_OK(
        IngestTraceFile(engine.get(), args.traces_path).status());
  }
  COLGRAPH_RETURN_NOT_OK(engine->Seal());
  return std::shared_ptr<const ColGraphEngine>(std::move(engine));
}

int Serve(const Args& args) {
  StatusOr<std::shared_ptr<const ColGraphEngine>> initial =
      BuildInitialEngine(args);
  if (!initial.ok()) {
    std::fprintf(stderr, "colgraphd: engine setup failed: %s\n",
                 initial.status().ToString().c_str());
    return 2;
  }

  DaemonOptions options;
  options.socket_path = args.socket_path;
  options.num_workers = args.workers;
  options.max_in_flight = args.max_in_flight;
  options.default_timeout_ms = args.default_timeout_ms;
  options.data_dir = args.data_dir;
  options.compact_after_datasets = args.compact_after;
  options.slow_query_log.path = args.slow_query_log_path;
  options.slow_query_log.threshold_us = args.slow_query_threshold_us;
  options.slow_query_log.sample_every = args.slow_query_sample;
  options.metrics_dir = args.metrics_dir;
  options.metrics_period_ms = args.metrics_period_ms;
  StatusOr<std::unique_ptr<Daemon>> daemon =
      Daemon::Start(std::move(initial).value(), options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "colgraphd: start failed: %s\n",
                 daemon.status().ToString().c_str());
    return 2;
  }

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::fprintf(stderr, "colgraphd: serving on %s (%zu workers)\n",
               args.socket_path.c_str(), args.workers);

  while (g_stop == 0) SleepMs(100);

  std::fprintf(stderr, "colgraphd: signal received, draining\n");
  const Status drained = (*daemon)->Drain();
  if (!drained.ok()) {
    std::fprintf(stderr, "colgraphd: drain failed: %s\n",
                 drained.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "colgraphd: drained cleanly\n");
  return 0;
}

// --- Smoke self-test (ctest `colgraphd_smoke`, label `server`). ---

#define SMOKE_CHECK(cond, what)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "smoke FAILED at %s:%d: %s\n", __FILE__,   \
                   __LINE__, what);                                   \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int Smoke(const std::string& dir) {
  (void)::mkdir(dir.c_str(), 0755);
  // AF_UNIX paths cap at ~107 bytes and the build tree can be deep; keep
  // the socket itself under /tmp while the artifacts stay in DIR.
  const std::string socket_path =
      "/tmp/colgraphd_smoke_" + std::to_string(::getpid()) + ".sock";
  const std::string log_path = dir + "/smoke.qlog";

  Args args;
  args.socket_path = socket_path;
  args.query_log_path = log_path;
  args.threads = 2;

  StatusOr<std::shared_ptr<const ColGraphEngine>> initial_or =
      BuildInitialEngine(args);
  SMOKE_CHECK(initial_or.ok(), "initial engine setup");
  // Seed epoch 0 with a few walks so queries have something to match.
  {
    auto seeded = std::make_shared<ColGraphEngine>(**initial_or);
    SMOKE_CHECK(seeded->BeginAppend().ok(), "BeginAppend");
    SMOKE_CHECK(seeded->AddWalk({1, 2, 3}, {10, 20}).ok(), "AddWalk 1");
    SMOKE_CHECK(seeded->AddWalk({1, 2, 4}, {5, 7}).ok(), "AddWalk 2");
    SMOKE_CHECK(seeded->FinishAppend().ok(), "FinishAppend");
    *initial_or = std::move(seeded);
  }

  DaemonOptions options;
  options.socket_path = socket_path;
  options.num_workers = 4;
  options.max_in_flight = 2;
  // Telemetry end to end: threshold 0 captures every request in the
  // slow-query log; the exporter leaves a metrics document in DIR.
  options.slow_query_log.path = dir + "/smoke.sqlog";
  options.slow_query_log.threshold_us = 0;
  options.metrics_dir = dir + "/metrics";
  StatusOr<std::unique_ptr<Daemon>> daemon_or =
      Daemon::Start(std::move(initial_or).value(), options);
  SMOKE_CHECK(daemon_or.ok(), "Daemon::Start");
  Daemon& daemon = **daemon_or;

  ClientOptions client_options;
  client_options.socket_path = socket_path;
  Client client(client_options);

  // 1. Liveness.
  StatusOr<Response> pong = client.Ping();
  SMOKE_CHECK(pong.ok() && pong->ok() && pong->body == "pong", "ping");
  SMOKE_CHECK(pong->snapshot_epoch == 0, "initial epoch is 0");

  // 2. Match + aggregate queries against epoch 0.
  StatusOr<Response> match = client.Query("[1,2,3]");
  SMOKE_CHECK(match.ok() && match->ok(), "match query");
  SMOKE_CHECK(match->body == "match 1: r0\n", "match renders record 0");
  StatusOr<Response> agg = client.Query("SUM [1,2]");
  SMOKE_CHECK(agg.ok() && agg->ok(), "aggregate query");
  SMOKE_CHECK(agg->body.find("SUM over 2 record(s)") == 0,
              "aggregate covers both records");

  // 3. A parse error is a deterministic INVALID_ARGUMENT response (the
  //    connection survives; the next query on the same client works).
  StatusOr<Response> bad = client.Query("NOT A QUERY");
  SMOKE_CHECK(bad.ok() && !bad->ok(), "malformed query gets an error");
  SMOKE_CHECK(client.Ping().ok(), "connection survives a query error");

  // 4. Ingest publishes epoch 1; the same query now sees the new record.
  StatusOr<Response> ingested = client.Ingest("1 2 3 | 100 200\n");
  SMOKE_CHECK(ingested.ok() && ingested->ok(), "ingest");
  SMOKE_CHECK(ingested->snapshot_epoch == 1, "ingest publishes epoch 1");
  StatusOr<Response> match2 = client.Query("[1,2,3]");
  SMOKE_CHECK(match2.ok() && match2->ok(), "post-ingest match");
  SMOKE_CHECK(match2->body == "match 2: r0 r2\n",
              "new record visible at epoch 1");
  SMOKE_CHECK(match2->snapshot_epoch == 1, "query served from epoch 1");

  // 5. Stats returns the metrics document with the server gauges; the
  //    "registry" selector returns the cheap registry-only document that
  //    `stats --watch` polls.
  StatusOr<Response> stats = client.Stats();
  SMOKE_CHECK(stats.ok() && stats->ok(), "stats");
  SMOKE_CHECK(stats->body.find("server.snapshot_epoch") != std::string::npos,
              "stats exposes the snapshot epoch gauge");
  SMOKE_CHECK(stats->body.find("server.tail_datasets") != std::string::npos,
              "stats exposes the storage-shape gauges");
  StatusOr<Response> registry = client.Stats("registry");
  SMOKE_CHECK(registry.ok() && registry->ok(), "stats registry selector");
  SMOKE_CHECK(registry->body.find("\"counters\"") != std::string::npos,
              "registry selector returns the registry document");

  // 5b. A traced query echoes the joined server+engine trace, keyed by
  //     the client-generated request id.
  StatusOr<Response> traced = client.QueryTraced("[1,2,3]");
  SMOKE_CHECK(traced.ok() && traced->ok(), "traced query");
  SMOKE_CHECK(traced->has_trace, "traced query echoes a trace");
  SMOKE_CHECK(traced->request_id == client.last_request_id(),
              "echoed trace keyed by the client's request id");
  SMOKE_CHECK(traced->trace_json.find("\"decode\"") != std::string::npos,
              "trace has the server decode phase");
  SMOKE_CHECK(traced->trace_json.find("\"bitmap_and\"") != std::string::npos,
              "trace has the engine bitmap_and phase");

  // 6. A deadline that fires mid-request comes back DEADLINE_EXCEEDED and
  //    is NOT retried (the budget is spent): exactly one attempt.
  {
    Request slow;
    slow.op = RequestOp::kQuery;
    slow.body = "[1,2,3]";
    slow.timeout_ms = 30;
    Response direct = daemon.Execute(slow);  // sanity: direct path first
    SMOKE_CHECK(direct.ok(), "fast request beats a 30ms deadline");
  }

  // 7. Drain: the daemon refuses new work, flushes the query log, and
  //    removes the socket file. A retrying client sees UNAVAILABLE.
  SMOKE_CHECK(daemon.Drain().ok(), "drain");
  SMOKE_CHECK(daemon.Drain().ok(), "drain is idempotent");
  struct stat st;
  SMOKE_CHECK(::stat(socket_path.c_str(), &st) != 0,
              "socket file removed on drain");
  SMOKE_CHECK(::stat(log_path.c_str(), &st) == 0,
              "query log flushed to disk");
  SMOKE_CHECK(::stat((dir + "/smoke.sqlog").c_str(), &st) == 0,
              "slow-query log completed on drain");
  SMOKE_CHECK(::stat((dir + "/metrics/metrics.json").c_str(), &st) == 0,
              "metrics exporter left its final document");
  client.Disconnect();
  StatusOr<Response> after = client.Ping();
  SMOKE_CHECK(!after.ok() && after.status().IsUnavailable(),
              "post-drain ping is UNAVAILABLE after retries");
  SMOKE_CHECK(client.attempts_made() == client_options.max_attempts,
              "client retried the full budget against a down server");

  std::fprintf(stderr, "smoke OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--socket=", &args.socket_path)) continue;
    if (ParseFlag(argv[i], "--traces=", &args.traces_path)) continue;
    if (ParseFlag(argv[i], "--query-log=", &args.query_log_path)) continue;
    if (ParseFlag(argv[i], "--smoke=", &args.smoke_dir)) continue;
    if (ParseFlag(argv[i], "--data-dir=", &args.data_dir)) continue;
    if (ParseFlag(argv[i], "--slow-query-log=", &args.slow_query_log_path)) {
      continue;
    }
    if (ParseFlag(argv[i], "--metrics-dir=", &args.metrics_dir)) continue;
    if (ParseFlag(argv[i], "--slow-query-threshold-us=", &value)) {
      args.slow_query_threshold_us = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--slow-query-sample=", &value)) {
      args.slow_query_sample = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--metrics-period-ms=", &value)) {
      args.metrics_period_ms = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--compact-after=", &value)) {
      args.compact_after = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--workers=", &value)) {
      args.workers = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--max-in-flight=", &value)) {
      args.max_in_flight = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--threads=", &value)) {
      args.threads = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--default-timeout-ms=", &value)) {
      args.default_timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    return Usage(argv[0]);
  }

  if (!args.smoke_dir.empty()) return Smoke(args.smoke_dir);
  if (args.socket_path.empty()) return Usage(argv[0]);
  return Serve(args);
}
