#!/usr/bin/env python3
"""Benchmark regression tracker for colgraph metrics dumps.

Compares two --metrics-out JSON files (the format bench/bench_util.h's
WriteMetricsOut and tools/colgraph_replay emit): a committed baseline
(bench/baselines/BENCH_*.json) against a fresh CI run. Latency histograms
are compared on mean (total_us / count) and approximate p99; counters
(including fetch_stats) on relative growth. Exits nonzero on regression so
the empty BENCH_* trajectory becomes a tracked, enforced time series.

Usage:
  bench_compare.py BASELINE FRESH [options]
  bench_compare.py --self-test

Options:
  --max-latency-ratio=R   flag a histogram whose fresh mean (or p99) exceeds
                          baseline * R (default 1.5 — a 2x regression is
                          always caught)
  --counter-tolerance=T   flag a counter whose fresh value exceeds
                          baseline * (1 + T) (default 0.10)
  --min-count=N           skip histograms with fewer than N samples on
                          either side (default 10: smoke runs are noisy)
  --min-mean-us=M         skip histograms whose baseline mean is below M
                          microseconds (default 50: sub-50us means are
                          dominated by clock and scheduler noise)
  --warn-only             report regressions but exit 0 (first landing of a
                          baseline, or while a box is being requalified)

Counters that *shrink* and histograms that get faster are reported as
improvements, never as failures.
"""

import argparse
import json
import sys


def find_registry(dump):
    """Locates the metrics registry inside a dump, wherever the harness
    put it, plus the flat fetch_stats block when present."""
    root = dump.get("engine_metrics", dump)
    registry = root.get("metrics", root if "counters" in root else {})
    fetch_stats = root.get("fetch_stats", {})
    return registry, fetch_stats


def flatten_counters(dump):
    registry, fetch_stats = find_registry(dump)
    counters = dict(registry.get("counters", {}))
    for name, value in fetch_stats.items():
        counters["fetch_stats." + name] = value
    return counters


def histograms(dump):
    registry, _ = find_registry(dump)
    return registry.get("histograms", {})


def mean_us(hist):
    count = hist.get("count", 0)
    if not count:
        return None
    return hist.get("total_us", 0) / count


def compare(baseline, fresh, opts):
    """Returns (regressions, notes): lists of human-readable lines."""
    regressions = []
    notes = []

    base_hists = histograms(baseline)
    fresh_hists = histograms(fresh)
    for name in sorted(base_hists):
        if name not in fresh_hists:
            notes.append(f"histogram {name}: present in baseline only")
            continue
        b, f = base_hists[name], fresh_hists[name]
        if min(b.get("count", 0), f.get("count", 0)) < opts.min_count:
            continue
        b_mean, f_mean = mean_us(b), mean_us(f)
        if b_mean is None or f_mean is None or b_mean < opts.min_mean_us:
            continue
        if f_mean > b_mean * opts.max_latency_ratio:
            regressions.append(
                f"histogram {name}: mean {b_mean:.1f}us -> {f_mean:.1f}us "
                f"({f_mean / b_mean:.2f}x > {opts.max_latency_ratio}x)"
            )
        elif f_mean * opts.max_latency_ratio < b_mean:
            notes.append(
                f"histogram {name}: improved {b_mean:.1f}us -> {f_mean:.1f}us"
            )
        b_p99, f_p99 = b.get("p99_us"), f.get("p99_us")
        if (
            b_p99 and f_p99
            and b_p99 >= opts.min_mean_us
            and f_p99 > b_p99 * opts.max_latency_ratio
        ):
            regressions.append(
                f"histogram {name}: p99 {b_p99}us -> {f_p99}us "
                f"({f_p99 / b_p99:.2f}x > {opts.max_latency_ratio}x)"
            )

    base_counters = flatten_counters(baseline)
    fresh_counters = flatten_counters(fresh)
    for name in sorted(base_counters):
        if name not in fresh_counters:
            notes.append(f"counter {name}: present in baseline only")
            continue
        b, f = base_counters[name], fresh_counters[name]
        if b == 0:
            if f != 0:
                notes.append(f"counter {name}: 0 -> {f}")
            continue
        if f > b * (1 + opts.counter_tolerance):
            regressions.append(
                f"counter {name}: {b} -> {f} "
                f"(+{100.0 * (f - b) / b:.1f}% > {100 * opts.counter_tolerance:.0f}%)"
            )
        elif f < b * (1 - opts.counter_tolerance):
            notes.append(f"counter {name}: shrank {b} -> {f}")

    return regressions, notes


def make_dump(mean_by_hist, counters, count=100):
    """Builds a CI-format dump for the self-test."""
    return {
        "bench": "selftest",
        "scale": 1.0,
        "threads": 1,
        "engine_metrics": {
            "engine": {"num_records": 10},
            "fetch_stats": dict(counters),
            "metrics": {
                "counters": {"query.graph.count": count},
                "gauges": {},
                "histograms": {
                    name: {
                        "count": count,
                        "total_us": int(mean * count),
                        "max_us": int(mean * 4),
                        "p50_us": int(mean),
                        "p90_us": int(mean * 2),
                        "p99_us": int(mean * 3),
                    }
                    for name, mean in mean_by_hist.items()
                },
            },
        },
    }


def self_test(opts):
    base = make_dump({"query.graph.total_us": 400.0}, {"values_fetched": 1000})

    identical, _ = compare(base, base, opts)
    assert identical == [], f"identical dumps flagged: {identical}"

    doubled = make_dump(
        {"query.graph.total_us": 800.0}, {"values_fetched": 1000}
    )
    regressions, _ = compare(base, doubled, opts)
    assert any(
        "query.graph.total_us" in r and "mean" in r for r in regressions
    ), f"2x latency regression not flagged: {regressions}"

    fetch_blowup = make_dump(
        {"query.graph.total_us": 400.0}, {"values_fetched": 2000}
    )
    regressions, _ = compare(base, fetch_blowup, opts)
    assert any(
        "fetch_stats.values_fetched" in r for r in regressions
    ), f"counter regression not flagged: {regressions}"

    faster = make_dump({"query.graph.total_us": 100.0}, {"values_fetched": 900})
    regressions, notes = compare(base, faster, opts)
    assert regressions == [], f"improvement flagged as regression: {regressions}"
    assert notes, "improvement produced no note"

    noisy = make_dump({"tiny_us": 5.0}, {})
    noisy_double = make_dump({"tiny_us": 10.0}, {})
    regressions, _ = compare(noisy, noisy_double, opts)
    assert regressions == [], f"sub-threshold histogram flagged: {regressions}"

    print("bench_compare.py self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", nargs="?", help="baseline metrics JSON")
    parser.add_argument("fresh", nargs="?", help="fresh metrics JSON")
    parser.add_argument("--max-latency-ratio", type=float, default=1.5)
    parser.add_argument("--counter-tolerance", type=float, default=0.10)
    parser.add_argument("--min-count", type=int, default=10)
    parser.add_argument("--min-mean-us", type=float, default=50.0)
    parser.add_argument("--warn-only", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    opts = parser.parse_args()

    if opts.self_test:
        return self_test(opts)
    if not opts.baseline or not opts.fresh:
        parser.error("BASELINE and FRESH are required (or --self-test)")

    with open(opts.baseline) as f:
        baseline = json.load(f)
    with open(opts.fresh) as f:
        fresh = json.load(f)

    regressions, notes = compare(baseline, fresh, opts)
    for line in notes:
        print(f"note: {line}")
    for line in regressions:
        print(f"REGRESSION: {line}")
    if not regressions:
        print(
            f"bench_compare: no regressions "
            f"({opts.baseline} vs {opts.fresh})"
        )
        return 0
    if opts.warn_only:
        print(
            f"bench_compare: {len(regressions)} regression(s) found "
            f"(--warn-only: not failing)"
        )
        return 0
    print(f"bench_compare: {len(regressions)} regression(s) found")
    return 1


if __name__ == "__main__":
    sys.exit(main())
