#!/usr/bin/env python3
"""Negative-compilation harness for the util/sync.h capability annotations.

Clang's thread-safety analysis is a *compile-time* race detector: the
GUARDED_BY / REQUIRES / ACQUIRE / RELEASE annotations in util/sync.h only
protect the codebase if the compiler actually rejects code that violates
them. This script proves that by compiling every fixture under
tests/negcompile/ with `-Wthread-safety -Wthread-safety-beta -Werror` and
checking the outcome against the fixture's embedded expectation:

  * A fixture containing one or more `// negcompile-expect: <substring>`
    comments MUST fail to compile, and the compiler diagnostics must
    contain every expected substring.
  * A fixture with no expectation comment is a positive control and MUST
    compile cleanly (it proves the flags don't reject correct code, so
    the negative results are meaningful).

Exit codes: 0 all fixtures behave as expected, 1 a fixture misbehaved,
77 no thread-safety-capable clang++ is available (ctest SKIP_RETURN_CODE).
Only Clang implements the analysis; on GCC-only hosts the gate runs in
the Clang CI job instead.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

EXPECT_RE = re.compile(r"//\s*negcompile-expect:\s*(?P<text>.+?)\s*$")

CLANG_CANDIDATES = [
    "clang++",
    "clang++-21",
    "clang++-20",
    "clang++-19",
    "clang++-18",
    "clang++-17",
    "clang++-16",
    "clang++-15",
    "clang++-14",
]


def find_clang():
    """Returns a clang++ that understands -Wthread-safety, or None."""
    candidates = []
    env = os.environ.get("CLANG_CXX")
    if env:
        candidates.append(env)
    candidates.extend(CLANG_CANDIDATES)
    for name in candidates:
        path = shutil.which(name)
        if path is None:
            continue
        with tempfile.TemporaryDirectory() as tmp:
            probe = os.path.join(tmp, "probe.cc")
            with open(probe, "w", encoding="utf-8") as f:
                f.write("int main() { return 0; }\n")
            try:
                result = subprocess.run(
                    [path, "-std=c++20", "-fsyntax-only", "-Wthread-safety",
                     "-Wthread-safety-beta", probe],
                    capture_output=True,
                    text=True,
                    timeout=60,
                )
            except OSError:
                continue
        if result.returncode == 0 and "unknown warning" not in result.stderr:
            return path
    return None


def read_expectations(path):
    expects = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = EXPECT_RE.search(line)
            if m:
                expects.append(m.group("text"))
    return expects


def compile_fixture(clang, root, path):
    cmd = [
        clang,
        "-std=c++20",
        "-fsyntax-only",
        "-I", os.path.join(root, "src"),
        "-Wall",
        "-Wextra",
        "-Wthread-safety",
        "-Wthread-safety-beta",
        "-Werror",
        path,
    ]
    result = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    return result.returncode, result.stdout + result.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    fixture_dir = os.path.join(root, "tests", "negcompile")
    fixtures = sorted(
        os.path.join(fixture_dir, name)
        for name in os.listdir(fixture_dir)
        if name.endswith(".cc")
    )
    if not fixtures:
        print("check_negative_compile: no fixtures under tests/negcompile/")
        return 1

    clang = find_clang()
    if clang is None:
        print("check_negative_compile: SKIP — no clang++ with -Wthread-safety "
              "found (set CLANG_CXX or install clang)")
        return 77
    print(f"check_negative_compile: using {clang}")

    failures = 0
    for path in fixtures:
        rel = os.path.relpath(path, root)
        expects = read_expectations(path)
        rc, output = compile_fixture(clang, root, path)
        if not expects:
            # Positive control: must compile cleanly.
            if rc != 0:
                print(f"FAIL {rel}: positive control did not compile:\n{output}")
                failures += 1
            else:
                print(f"ok   {rel} (positive control compiles cleanly)")
            continue
        if rc == 0:
            print(f"FAIL {rel}: expected a thread-safety error, but the "
                  "fixture compiled cleanly")
            failures += 1
            continue
        missing = [e for e in expects if e not in output]
        if missing:
            print(f"FAIL {rel}: diagnostics missing expected text "
                  f"{missing!r}; got:\n{output}")
            failures += 1
        else:
            print(f"ok   {rel} (rejected with expected diagnostics)")

    if failures:
        print(f"check_negative_compile: {failures} fixture(s) misbehaved")
        return 1
    print(f"check_negative_compile: all {len(fixtures)} fixtures behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
