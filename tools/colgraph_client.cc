// colgraph_client: command-line client for colgraphd. Speaks the framed
// protocol (server/protocol.h) through the retrying client
// (server/client.h) — connect failures and overload rejections back off
// and retry automatically; deadline expiries and deterministic errors do
// not.
//
// Usage:
//   colgraph_client --socket=PATH [--timeout-ms=N] [--attempts=N] COMMAND
//   COMMAND:
//     ping                 liveness probe
//     query 'TEXT'         run one query (query/parser.h grammar)
//     ingest FILE          ingest a trace file ('-' reads stdin)
//     stats                dump the server's metrics document
//
// Exit codes: 0 OK, 1 the server answered with an error, 2 usage error,
// 3 transport failure (all retry attempts exhausted).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "server/client.h"

namespace {

using colgraph::StatusOr;
using colgraph::server::Client;
using colgraph::server::ClientOptions;
using colgraph::server::Response;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--timeout-ms=N] [--attempts=N] "
               "COMMAND\n"
               "  COMMAND: ping | query 'TEXT' | ingest FILE | stats\n",
               argv0);
  return 2;
}

int Report(const StatusOr<Response>& response) {
  if (!response.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 response.status().ToString().c_str());
    return 3;
  }
  if (!response->ok()) {
    std::fprintf(stderr, "server error: %s\n",
                 response->ToStatus().ToString().c_str());
    return 1;
  }
  std::fputs(response->body.c_str(), stdout);
  if (!response->body.empty() && response->body.back() != '\n') {
    std::fputc('\n', stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  uint64_t timeout_ms = 0;
  std::string value;
  int i = 1;
  for (; i < argc; ++i) {
    if (ParseFlag(argv[i], "--socket=", &options.socket_path)) continue;
    if (ParseFlag(argv[i], "--timeout-ms=", &value)) {
      timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--attempts=", &value)) {
      options.max_attempts = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) return Usage(argv[0]);
    break;  // first non-flag token is the command
  }
  if (options.socket_path.empty() || i >= argc) return Usage(argv[0]);

  const std::string command = argv[i];
  Client client(options);

  if (command == "ping") return Report(client.Ping());
  if (command == "stats") return Report(client.Stats());
  if (command == "query") {
    if (i + 1 >= argc) return Usage(argv[0]);
    return Report(client.Query(argv[i + 1], timeout_ms));
  }
  if (command == "ingest") {
    if (i + 1 >= argc) return Usage(argv[0]);
    const std::string path = argv[i + 1];
    std::ostringstream body;
    if (path == "-") {
      body << std::cin.rdbuf();
    } else {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      body << in.rdbuf();
    }
    return Report(client.Ingest(body.str()));
  }
  return Usage(argv[0]);
}
