// colgraph_client: command-line client for colgraphd. Speaks the framed
// protocol (server/protocol.h) through the retrying client
// (server/client.h) — connect failures and overload rejections back off
// and retry automatically; deadline expiries and deterministic errors do
// not.
//
// Usage:
//   colgraph_client --socket=PATH [--timeout-ms=N] [--attempts=N] COMMAND
//   COMMAND:
//     ping                 liveness probe
//     query [--trace] 'TEXT'
//                          run one query; --trace attaches a request id
//                          and prints the server's end-to-end trace
//     ingest FILE          ingest a trace file ('-' reads stdin)
//     stats [--json] [--watch=SECONDS] [--watch-count=N]
//                          pretty table of the server's telemetry;
//                          --json prints the raw document; --watch polls
//                          the cheap registry endpoint every SECONDS
//                          (--watch-count bounds the polls, 0 = forever)
//
// Exit codes: 0 OK, 1 the server answered with an error, 2 usage error,
// 3 transport failure (all retry attempts exhausted).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

using colgraph::StatusOr;
using colgraph::server::Client;
using colgraph::server::ClientOptions;
using colgraph::server::Response;
using colgraph::server::SleepMs;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--timeout-ms=N] [--attempts=N] "
               "COMMAND\n"
               "  COMMAND: ping | query [--trace] 'TEXT' | ingest FILE |\n"
               "           stats [--json] [--watch=SECONDS] "
               "[--watch-count=N]\n",
               argv0);
  return 2;
}

int Report(const StatusOr<Response>& response) {
  if (!response.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 response.status().ToString().c_str());
    return 3;
  }
  if (!response->ok()) {
    std::fprintf(stderr, "server error: %s\n",
                 response->ToStatus().ToString().c_str());
    return 1;
  }
  std::fputs(response->body.c_str(), stdout);
  if (!response->body.empty() && response->body.back() != '\n') {
    std::fputc('\n', stdout);
  }
  return 0;
}

// --- Minimal scanners over the server's stats documents. ---
//
// The server renders with obs/json_writer.h: no whitespace, every key
// quoted exactly once, metric names free of braces/quotes. These helpers
// are just enough to build the table — not a general JSON parser.

bool FindNumber(const std::string& json, const std::string& key,
                int64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = json.c_str() + pos + needle.size();
  char* end = nullptr;
  const long long v = std::strtoll(p, &end, 10);
  if (end == p) return false;
  *out = v;
  return true;
}

/// Index of the bracket matching the one at `open` ({ or [).
size_t MatchBracket(const std::string& json, size_t open) {
  int depth = 0;
  for (size_t i = open; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth == 0) return i;
    }
  }
  return json.size() - 1;
}

struct HistRow {
  std::string name;
  int64_t count = 0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p99 = 0;
  int64_t max = 0;
};

std::vector<HistRow> ParseHistograms(const std::string& json) {
  std::vector<HistRow> rows;
  const std::string section = "\"histograms\":{";
  const size_t hpos = json.find(section);
  if (hpos == std::string::npos) return rows;
  size_t pos = hpos + section.size();
  while (pos < json.size() && json[pos] == '"') {
    const size_t name_end = json.find('"', pos + 1);
    if (name_end == std::string::npos) break;
    HistRow row;
    row.name = json.substr(pos + 1, name_end - pos - 1);
    const size_t obj = name_end + 2;  // skip `":`
    if (obj >= json.size() || json[obj] != '{') break;
    const size_t end = MatchBracket(json, obj);
    const std::string body = json.substr(obj, end - obj + 1);
    FindNumber(body, "count", &row.count);
    FindNumber(body, "p50_us", &row.p50);
    FindNumber(body, "p90_us", &row.p90);
    FindNumber(body, "p99_us", &row.p99);
    FindNumber(body, "max_us", &row.max);
    rows.push_back(std::move(row));
    pos = end + 1;
    if (pos < json.size() && json[pos] == ',') ++pos;
  }
  return rows;
}

void PrintStatsTable(const std::string& json) {
  int64_t epoch = -1, in_flight = -1, queue = -1, tails = -1, records = -1,
          uptime = -1;
  FindNumber(json, "server.snapshot_epoch", &epoch);
  FindNumber(json, "server.in_flight", &in_flight);
  FindNumber(json, "server.queue_depth", &queue);
  FindNumber(json, "server.tail_datasets", &tails);
  FindNumber(json, "server.total_records", &records);
  FindNumber(json, "uptime_seconds", &uptime);
  std::printf("epoch %" PRId64 " | in-flight %" PRId64 " | queue %" PRId64
              " | tails %" PRId64 " | records %" PRId64,
              epoch, in_flight, queue, tails, records);
  // The registry document (what --watch polls) has no uptime field; only
  // print it when the full document provided one.
  if (uptime >= 0) std::printf(" | uptime %" PRId64 "s", uptime);
  std::printf("\n");

  std::vector<HistRow> rows = ParseHistograms(json);
  std::stable_sort(rows.begin(), rows.end(),
                   [](const HistRow& a, const HistRow& b) {
                     return a.count > b.count;
                   });
  if (rows.size() > 12) rows.resize(12);  // the busiest histograms
  if (!rows.empty()) {
    std::printf("%-34s %10s %8s %8s %8s %8s\n", "histogram (us)", "count",
                "p50", "p90", "p99", "max");
    for (const HistRow& row : rows) {
      std::printf("%-34s %10" PRId64 " %8" PRId64 " %8" PRId64 " %8" PRId64
                  " %8" PRId64 "\n",
                  row.name.c_str(), row.count, row.p50, row.p90, row.p99,
                  row.max);
    }
  }
  std::fflush(stdout);
}

int RunStats(Client& client, bool json, double watch_seconds,
             uint64_t watch_count) {
  const bool watching = watch_seconds > 0;
  for (uint64_t tick = 0;; ++tick) {
    // One-shot renders the full document; --watch polls the cheap
    // registry-only endpoint so a 1s cadence costs the server nothing.
    StatusOr<Response> response =
        client.Stats(watching ? "registry" : "");
    if (!response.ok() || !response->ok()) return Report(response);
    if (json) {
      std::fputs(response->body.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    } else {
      if (watching && tick > 0) std::fputc('\n', stdout);
      PrintStatsTable(response->body);
    }
    if (!watching) return 0;
    if (watch_count > 0 && tick + 1 >= watch_count) return 0;
    SleepMs(static_cast<uint64_t>(watch_seconds * 1000.0));
  }
}

int RunTracedQuery(Client& client, const std::string& text,
                   uint64_t timeout_ms) {
  StatusOr<Response> response = client.QueryTraced(text, timeout_ms);
  const int code = Report(response);
  if (code != 0) return code;
  std::printf("trace (request_id %" PRIu64 "):\n%s\n", response->request_id,
              response->trace_json.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  uint64_t timeout_ms = 0;
  std::string value;
  int i = 1;
  for (; i < argc; ++i) {
    if (ParseFlag(argv[i], "--socket=", &options.socket_path)) continue;
    if (ParseFlag(argv[i], "--timeout-ms=", &value)) {
      timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--attempts=", &value)) {
      options.max_attempts = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) return Usage(argv[0]);
    break;  // first non-flag token is the command
  }
  if (options.socket_path.empty() || i >= argc) return Usage(argv[0]);

  const std::string command = argv[i];
  Client client(options);

  if (command == "ping") return Report(client.Ping());
  if (command == "stats") {
    bool json = false;
    double watch_seconds = 0;
    uint64_t watch_count = 0;
    for (int j = i + 1; j < argc; ++j) {
      if (std::strcmp(argv[j], "--json") == 0) {
        json = true;
        continue;
      }
      if (ParseFlag(argv[j], "--watch=", &value)) {
        watch_seconds = std::strtod(value.c_str(), nullptr);
        if (watch_seconds <= 0) return Usage(argv[0]);
        continue;
      }
      if (ParseFlag(argv[j], "--watch-count=", &value)) {
        watch_count = std::strtoull(value.c_str(), nullptr, 10);
        continue;
      }
      return Usage(argv[0]);
    }
    return RunStats(client, json, watch_seconds, watch_count);
  }
  if (command == "query") {
    bool trace = false;
    int arg = i + 1;
    if (arg < argc && std::strcmp(argv[arg], "--trace") == 0) {
      trace = true;
      ++arg;
    }
    if (arg >= argc) return Usage(argv[0]);
    if (trace) return RunTracedQuery(client, argv[arg], timeout_ms);
    return Report(client.Query(argv[arg], timeout_ms));
  }
  if (command == "ingest") {
    if (i + 1 >= argc) return Usage(argv[0]);
    const std::string path = argv[i + 1];
    std::ostringstream body;
    if (path == "-") {
      body << std::cin.rdbuf();
    } else {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      body << in.rdbuf();
    }
    return Report(client.Ingest(body.str()));
  }
  return Usage(argv[0]);
}
