#!/usr/bin/env python3
"""colgraph repo lint: enforces repository-wide correctness invariants.

Run from the repo root (or pass --root); exits non-zero and prints
`path:line: [rule] message` for every violation. Wired into the build as the
`colgraph_lint` custom target and ctest test of the same name.

Rules
-----
  no-raw-assert      `assert(...)` is banned in src/ — use COLGRAPH_CHECK /
                     COLGRAPH_DCHECK from util/check.h so failures carry
                     file:line and a message in every build type
                     (static_assert is fine; util/check.h itself is exempt).
  unchecked-status   A statement that calls a Status/StatusOr-returning
                     function and ignores the result drops an error. The
                     checker collects the names of Status-returning functions
                     from src/ headers and flags bare `Foo(...);` statements.
                     Names that also have a void/value-returning overload are
                     skipped (the call site is ambiguous without full type
                     resolution).
  pragma-once        Every header under src/ must open with #pragma once.
  include-hygiene    No `..` path segments and no <bits/...> internals in
                     includes; library includes use the "dir/file.h" form
                     rooted at src/.
  no-stdout          Library code must not write to stdout (std::cout,
                     printf, puts); diagnostics go to stderr or a caller
                     provided stream. Benches/examples/tests are exempt.
  raw-stream         Library code must not open files with raw std::ifstream /
                     std::ofstream / std::fstream: all snapshot and trace file
                     I/O goes through columnstore/io_util.h so it is
                     checksummed, bounds-checked, crash-atomic, and failpoint
                     instrumented. io_util.{h,cc} itself is exempt.
  no-raw-thread      Library code must not spawn raw std::thread / std::jthread
                     / std::async: all parallelism goes through
                     util/thread_pool.h (ParallelFor) so it is bounded,
                     deterministic in serial mode, and propagates errors as
                     Status. thread_pool.{h,cc} itself is exempt;
                     std::this_thread is fine.
  no-raw-mutex       Library code must not use std::mutex / std::lock_guard /
                     std::condition_variable and friends directly: locking
                     goes through util/sync.h (Mutex, MutexLock, CondVar) so
                     every critical section carries the Clang thread-safety
                     capability annotations (GUARDED_BY/REQUIRES) and the
                     debug lock-rank checks. util/sync.h itself is exempt
                     (it wraps the std primitives).
  no-adhoc-timing    Instrumented layers (src/query/, src/views/, src/core/,
                     src/server/, src/columnstore/) must not time themselves
                     with Stopwatch / PhaseTimer / ScopedPhase or raw
                     std::chrono clocks: all phase timing goes through the
                     span API (obs/trace.h Span + QueryPhase, or
                     obs/request_context.h ServerSpan + ServerPhase on the
                     serving path) so every measurement lands in the metrics
                     registry and in request traces instead of a one-off
                     local that EXPLAIN and the slow-query log never see.
  no-raw-mmap        Library code must not call raw mmap/munmap/mremap:
                     all memory mapping goes through columnstore/mem_map.h
                     (MemMap) so mappings are RAII-released, zero-length
                     files map to a well-defined empty range, and the
                     SIGBUS-freedom argument (whole-file CRC faults every
                     page at open) holds in one place. mem_map.cc itself is
                     exempt; identifiers merely containing "mmap" (MemMap)
                     are not matched.
  no-raw-socket      Library code must not call the raw socket(2) API
                     (socket/connect/bind/listen/accept/send/recv and
                     friends): all wire I/O goes through src/server/
                     net_socket.h (UnixSocket/UnixListener) so it is
                     timeout-bounded (poll), EINTR-looped, SIGPIPE-safe,
                     and failpoint instrumented. src/server/net_* itself is
                     exempt; capitalized wrappers (Connect/Bind/Accept) and
                     std::bind are not matched.
"""

import argparse
import os
import re
import sys

SRC_EXTS = (".h", ".cc", ".cpp", ".hpp")

# Raw socket(2)-family calls: an optional `::` prefix, never preceded by a
# word char / `.` / `->` / a bare `:` — so std::bind, socket_.Connect(...) and
# the repo's capitalized wrappers never match, while `socket(`, `::send(`,
# `(void)recv(` do.
RAW_SOCKET_CALL = re.compile(
    r"(^|[^\w.>:])(::\s*)?"
    r"(?:socket|connect|bind|listen|accept4?|send|recv|sendto|recvfrom|"
    r"sendmsg|recvmsg|setsockopt|getsockopt|getpeername|getsockname)\s*\("
)

# Raw memory-mapping calls: same shape as RAW_SOCKET_CALL, so MemMap,
# MappedRelationFile and friends (word char before the name) never match
# while `mmap(`, `::munmap(` and `(void)mremap(` do.
RAW_MMAP_CALL = re.compile(
    r"(^|[^\w.>:])(::\s*)?(?:mmap|munmap|mremap)\s*\("
)

# Statement openers that legitimately consume a Status result.
CONSUMED_PREFIX = re.compile(
    r"\s*(return\b|if\b|while\b|for\b|case\b|throw\b|"
    r"COLGRAPH_\w+\(|EXPECT_|ASSERT_|\(void\)|"
    r"[A-Za-z_][\w:<>,\s*&]*\s*[\w\]]+\s*=|=)"
)


def iter_src_files(src_dir):
    for dirpath, _dirnames, filenames in os.walk(src_dir):
        for name in sorted(filenames):
            if name.endswith(SRC_EXTS):
                yield os.path.join(dirpath, name)


def strip_comments(line):
    """Removes // comments (good enough: repo style has no multi-line /* */)."""
    idx = line.find("//")
    return line[:idx] if idx >= 0 else line


def collect_status_functions(src_dir):
    """Names of functions declared in src/ headers returning Status/StatusOr,
    minus names that also appear with a non-Status return type (ambiguous
    overloads a textual checker cannot resolve)."""
    decl = re.compile(
        r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+)?(?:static\s+)?"
        r"(?P<ret>Status|StatusOr<[^;={}]*?>)\s+(?P<name>[A-Za-z_]\w*)\s*\("
    )
    other_decl = re.compile(
        r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+)?(?:static\s+)?"
        r"(?P<ret>void|bool|int|size_t|double|auto|[A-Z]\w*(?:<[^;={}]*>)?)"
        r"[&*]?\s+(?P<name>[A-Za-z_]\w*)\s*\("
    )
    status_names = set()
    other_names = set()
    for path in iter_src_files(src_dir):
        if not path.endswith((".h", ".hpp")):
            continue
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = strip_comments(line)
                m = decl.match(line)
                if m:
                    status_names.add(m.group("name"))
                    continue
                m = other_decl.match(line)
                if m and m.group("ret") not in ("Status",) and not m.group(
                    "ret"
                ).startswith("StatusOr"):
                    other_names.add(m.group("name"))
    return status_names - other_names


def lint_file(path, rel, status_fns, errors, in_library):
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()

    is_header = rel.endswith((".h", ".hpp"))
    posix_rel = rel.replace(os.sep, "/")
    is_check_header = posix_rel.endswith("util/check.h")
    is_io_util = os.path.basename(posix_rel).startswith("io_util.")
    is_thread_pool = os.path.basename(posix_rel).startswith("thread_pool.")
    is_sync = posix_rel.endswith("util/sync.h")
    is_net = posix_rel.startswith("src/server/net_")
    is_mem_map = posix_rel.endswith("columnstore/mem_map.cc")

    if is_header:
        first_code = next(
            (l.strip() for l in lines
             if l.strip() and not l.strip().startswith("//")),
            "",
        )
        if first_code != "#pragma once":
            errors.append(
                f"{rel}:1: [pragma-once] header must start with #pragma once"
            )

    bare_call = None
    if status_fns:
        names = "|".join(sorted(re.escape(n) for n in status_fns))
        bare_call = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(?:" + names + r")\s*\(.*\)\s*;\s*$"
        )

    # A bare-call statement must *start* a statement: the previous code line
    # must have ended one (`;`, `{`, `}`, a label `:`), been blank, or been a
    # preprocessor line. This keeps continuation lines of multi-line calls
    # (e.g. inside COLGRAPH_ASSIGN_OR_RETURN) from being flagged.
    at_statement_start = True
    for i, raw in enumerate(lines, start=1):
        line = strip_comments(raw)
        stripped = line.strip()

        if in_library and not is_check_header:
            if re.search(r"(?<!_)\bassert\s*\(", line) and "static_assert" not in line:
                errors.append(
                    f"{rel}:{i}: [no-raw-assert] use COLGRAPH_CHECK/"
                    f"COLGRAPH_DCHECK from util/check.h instead of assert()"
                )
            if re.search(r"std::cout\b", line) or re.search(
                r"(?<![\w.:])(?:printf|puts)\s*\(", line
            ):
                errors.append(
                    f"{rel}:{i}: [no-stdout] library code must not write to "
                    f"stdout"
                )
            if not is_io_util and re.search(
                r"std::[io]?fstream\b", line
            ):
                errors.append(
                    f"{rel}:{i}: [raw-stream] library file I/O must go "
                    f"through columnstore/io_util.h (checksummed, "
                    f"crash-atomic, failpoint instrumented), not raw "
                    f"std::ifstream/std::ofstream"
                )
            if not is_thread_pool and re.search(
                r"std::(?:thread|jthread|async)\b", line
            ):
                errors.append(
                    f"{rel}:{i}: [no-raw-thread] library code must not spawn "
                    f"raw std::thread/std::jthread/std::async; use "
                    f"util/thread_pool.h (ParallelFor) so parallelism is "
                    f"bounded, serial-mode testable, and error-propagating"
                )
            if not is_sync and re.search(
                r"std::(?:mutex|timed_mutex|recursive_mutex|"
                r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
                r"lock_guard|unique_lock|scoped_lock|condition_variable|"
                r"condition_variable_any)\b",
                line,
            ):
                errors.append(
                    f"{rel}:{i}: [no-raw-mutex] library code must lock "
                    f"through util/sync.h (Mutex/MutexLock/CondVar) so "
                    f"critical sections carry thread-safety annotations "
                    f"and lock-rank checks, not raw std::mutex/"
                    f"std::lock_guard/std::condition_variable"
                )
            if not is_mem_map and RAW_MMAP_CALL.search(line):
                errors.append(
                    f"{rel}:{i}: [no-raw-mmap] memory mapping must go "
                    f"through columnstore/mem_map.h (MemMap: RAII release, "
                    f"empty-file contract, single home for the SIGBUS "
                    f"argument), not raw mmap/munmap/mremap"
                )
            if not is_net and RAW_SOCKET_CALL.search(line):
                errors.append(
                    f"{rel}:{i}: [no-raw-socket] wire I/O must go through "
                    f"server/net_socket.h (UnixSocket/UnixListener: "
                    f"poll-timeout bounded, EINTR-looped, SIGPIPE-safe, "
                    f"failpoint instrumented), not the raw socket(2)/"
                    f"send/recv API"
                )
            if posix_rel.startswith(
                (
                    "src/query/",
                    "src/views/",
                    "src/core/",
                    "src/server/",
                    "src/columnstore/",
                )
            ) and (
                re.search(r"\b(?:Stopwatch|PhaseTimer|ScopedPhase)\b", line)
                or re.search(
                    r"std::chrono::(?:steady_clock|system_clock|"
                    r"high_resolution_clock)\b",
                    line,
                )
            ):
                errors.append(
                    f"{rel}:{i}: [no-adhoc-timing] instrumented-layer "
                    f"timing must go through the span API (obs/trace.h Span "
                    f"/ obs/request_context.h ServerSpan), not ad-hoc "
                    f"Stopwatch/PhaseTimer/chrono clocks, so measurements "
                    f"reach the metrics registry and request traces"
                )

        if stripped.startswith("#include"):
            m = re.match(r'#include\s+([<"])([^">]+)[">]', stripped)
            if m:
                target = m.group(2)
                if ".." in target.split("/"):
                    errors.append(
                        f"{rel}:{i}: [include-hygiene] no relative '..' "
                        f"includes; include relative to src/"
                    )
                if target.startswith("bits/"):
                    errors.append(
                        f"{rel}:{i}: [include-hygiene] do not include "
                        f"libstdc++ internals (<bits/...>)"
                    )

        if (
            in_library
            and at_statement_start
            and bare_call is not None
            and bare_call.match(line)
            and not CONSUMED_PREFIX.match(line)
        ):
            errors.append(
                f"{rel}:{i}: [unchecked-status] result of a Status-returning "
                f"call is dropped; handle it, COLGRAPH_RETURN_NOT_OK it, or "
                f"COLGRAPH_CHECK_OK it"
            )

        if stripped:
            at_statement_start = (
                stripped.endswith((";", "{", "}", ":"))
                or stripped.startswith("#")
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=".", help="repository root (contains src/)"
    )
    args = parser.parse_args()

    src_dir = os.path.join(args.root, "src")
    if not os.path.isdir(src_dir):
        print(f"lint.py: no src/ directory under {args.root}", file=sys.stderr)
        return 2

    status_fns = collect_status_functions(src_dir)
    errors = []
    for path in iter_src_files(src_dir):
        rel = os.path.relpath(path, args.root)
        lint_file(path, rel, status_fns, errors, in_library=True)

    for err in errors:
        print(err)
    if errors:
        print(f"lint.py: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint.py: OK ({len(status_fns)} Status-returning functions tracked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
