#!/usr/bin/env python3
"""Snapshot corruption tool: truncates or bit-flips a file, reproducibly.

Companion to the in-tree torture harness (tests/persistence_torture_test.cc)
for corrupting snapshots by hand — e.g. to check that a colgraph tool under
development fails cleanly on damaged input:

    tools/corrupt.py engine.bin --truncate 100 -o engine.trunc.bin
    tools/corrupt.py engine.bin --flips 3 --seed 42 -o engine.flip.bin
    tools/corrupt.py engine.bin --flips 1 --offset 4   # flip in byte 4 only

Mutations are deterministic for a given (--seed, input) pair. Without -o the
file is corrupted in place.
"""

import argparse
import random
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="snapshot file to corrupt")
    parser.add_argument(
        "-o", "--output", help="write the mutant here (default: in place)"
    )
    parser.add_argument(
        "--truncate",
        type=int,
        metavar="N",
        help="keep only the first N bytes (negative: drop the last -N)",
    )
    parser.add_argument(
        "--flips",
        type=int,
        default=0,
        metavar="K",
        help="flip K randomly chosen bits",
    )
    parser.add_argument(
        "--offset",
        type=int,
        metavar="B",
        help="constrain all flips to byte offset B",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="RNG seed for --flips (default 0)"
    )
    args = parser.parse_args()

    with open(args.path, "rb") as f:
        data = bytearray(f.read())
    if not data:
        print("corrupt.py: input file is empty", file=sys.stderr)
        return 2

    if args.truncate is not None:
        keep = args.truncate if args.truncate >= 0 else len(data) + args.truncate
        if not 0 <= keep <= len(data):
            print(
                f"corrupt.py: --truncate {args.truncate} out of range for "
                f"{len(data)}-byte file",
                file=sys.stderr,
            )
            return 2
        del data[keep:]

    if args.flips:
        if not data:
            print("corrupt.py: nothing left to flip", file=sys.stderr)
            return 2
        rng = random.Random(args.seed)
        for _ in range(args.flips):
            byte = args.offset if args.offset is not None else rng.randrange(
                len(data)
            )
            if not 0 <= byte < len(data):
                print(
                    f"corrupt.py: --offset {byte} out of range", file=sys.stderr
                )
                return 2
            data[byte] ^= 1 << rng.randrange(8)

    out_path = args.output or args.path
    with open(out_path, "wb") as f:
        f.write(data)
    print(
        f"corrupt.py: wrote {len(data)} bytes to {out_path} "
        f"(truncate={args.truncate}, flips={args.flips}, seed={args.seed})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
