// colgraph_replay: replays a captured query log (obs/query_log.h) against
// a persisted engine snapshot, verifies result cardinalities against the
// ones recorded at capture time, and optionally mines the log for view
// advice (views/workload_advisor.h).
//
// Usage:
//   colgraph_replay --engine=ENGINE.snapshot --log=QUERIES.qlog
//                   [--threads=N] [--no-views] [--advise-views=K]
//                   [--metrics-out=FILE] [--timeout-ms=N]
//   colgraph_replay --self-test=DIR
//
// --self-test builds a small engine under DIR, captures a mixed workload
// into a log, snapshots the engine, then replays the snapshot+log through
// the exact production path below — a binary-level capture → persist →
// replay round trip (wired into ctest).
//
// Exit codes: 0 replay clean, 1 cardinality mismatches, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/engine_io.h"
#include "core/replay.h"
#include "obs/query_log_reader.h"
#include "views/workload_advisor.h"

namespace {

using colgraph::AdviseGraphViews;
using colgraph::ColGraphEngine;
using colgraph::ReadEngine;
using colgraph::ReplayOptions;
using colgraph::ReplayQueryLog;
using colgraph::ReplayReport;
using colgraph::WorkloadAdvice;
using colgraph::WorkloadFromQueryLog;
using colgraph::obs::QueryLogRecord;
using colgraph::obs::ReadQueryLog;

struct Args {
  std::string engine_path;
  std::string log_path;
  std::string metrics_out;
  size_t threads = 1;
  size_t advise_views = 0;
  uint64_t timeout_ms = 0;
  bool use_views = true;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --engine=ENGINE.snapshot --log=QUERIES.qlog\n"
               "          [--threads=N] [--no-views] [--advise-views=K]\n"
               "          [--metrics-out=FILE] [--timeout-ms=N]\n"
               "       %s --self-test=DIR\n",
               argv0, argv0);
  return 2;
}

// Builds a small engine with capture on, runs a mixed workload, and leaves
// DIR/selftest.engine + DIR/selftest.qlog for the normal replay path to
// consume. Returns 0 on success, 2 on any setup failure.
int BuildSelfTestArtifacts(const std::string& dir, Args* args) {
  args->engine_path = dir + "/selftest.engine";
  args->log_path = dir + "/selftest.qlog";
  args->advise_views = 2;

  colgraph::obs::SetQueryLogEnabled(true);
  colgraph::EngineOptions options;
  options.query_log.path = args->log_path;
  ColGraphEngine engine(options);
  for (int i = 0; i < 10; ++i) {
    if (!engine.AddWalk({1, 2, 3, 4, 5}, {1, 2, 3, 4}).ok()) return 2;
  }
  for (int i = 0; i < 4; ++i) {
    if (!engine.AddWalk({2, 3, 4}, {5, 6}).ok()) return 2;
  }
  if (!engine.Seal().ok()) return 2;
  if (!engine.MaterializeView(colgraph::GraphViewDef::Make({0, 1})).ok()) {
    return 2;
  }

  using colgraph::GraphQuery;
  using colgraph::NodeRef;
  const std::vector<GraphQuery> workload = {
      GraphQuery::FromPath({NodeRef{1, 0}, NodeRef{2, 0}, NodeRef{3, 0}}),
      GraphQuery::FromPath({NodeRef{2, 0}, NodeRef{3, 0}, NodeRef{4, 0}}),
      GraphQuery::FromPath({NodeRef{8, 0}, NodeRef{9, 0}}),  // unsatisfiable
  };
  for (const GraphQuery& q : workload) {
    auto result = engine.RunGraphQuery(q);
    if (!result.ok()) return 2;
  }
  auto agg = engine.RunAggregateQuery(workload[0], colgraph::AggFn::kSum);
  if (!agg.ok()) return 2;

  if (!engine.CloseQueryLog().ok()) return 2;
  if (!colgraph::WriteEngine(engine, args->engine_path).ok()) return 2;
  std::printf("self-test artifacts under %s\n", dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::string self_test_dir;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--self-test=", &self_test_dir)) continue;
    if (ParseFlag(argv[i], "--engine=", &args.engine_path)) continue;
    if (ParseFlag(argv[i], "--log=", &args.log_path)) continue;
    if (ParseFlag(argv[i], "--metrics-out=", &args.metrics_out)) continue;
    if (ParseFlag(argv[i], "--threads=", &value)) {
      args.threads = static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(argv[i], "--advise-views=", &value)) {
      args.advise_views =
          static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(argv[i], "--timeout-ms=", &value)) {
      args.timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (std::strcmp(argv[i], "--no-views") == 0) {
      args.use_views = false;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return Usage(argv[0]);
  }
  if (!self_test_dir.empty()) {
    const int rc = BuildSelfTestArtifacts(self_test_dir, &args);
    if (rc != 0) {
      std::fprintf(stderr, "self-test setup failed\n");
      return rc;
    }
  }
  if (args.engine_path.empty() || args.log_path.empty()) {
    return Usage(argv[0]);
  }

  auto engine_or = ReadEngine(args.engine_path);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "cannot load engine: %s\n",
                 engine_or.status().ToString().c_str());
    return 2;
  }
  const ColGraphEngine& engine = engine_or.value();

  auto records_or = ReadQueryLog(args.log_path);
  if (!records_or.ok()) {
    std::fprintf(stderr, "cannot read query log: %s\n",
                 records_or.status().ToString().c_str());
    return 2;
  }
  const std::vector<QueryLogRecord>& records = records_or.value();

  ReplayOptions options;
  options.num_threads = args.threads;
  options.use_views = args.use_views;
  options.timeout_ms = args.timeout_ms;
  auto report_or = ReplayQueryLog(engine, records, options);
  if (!report_or.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 report_or.status().ToString().c_str());
    return 2;
  }
  const ReplayReport& report = report_or.value();

  std::printf("replayed %llu queries (%llu match, %llu path-agg) from %s\n",
              static_cast<unsigned long long>(report.queries_replayed),
              static_cast<unsigned long long>(report.match_queries),
              static_cast<unsigned long long>(report.path_agg_queries),
              args.log_path.c_str());
  std::printf("cardinality mismatches: %llu\n",
              static_cast<unsigned long long>(report.cardinality_mismatches));
  for (const ReplayReport::Mismatch& m : report.mismatches) {
    std::printf("  record %zu: logged %llu, replayed %llu\n", m.record_index,
                static_cast<unsigned long long>(m.logged),
                static_cast<unsigned long long>(m.replayed));
  }

  if (args.advise_views > 0) {
    auto advice_or = AdviseGraphViews(WorkloadFromQueryLog(records),
                                      engine.catalog(), args.advise_views);
    if (!advice_or.ok()) {
      std::fprintf(stderr, "view advice failed: %s\n",
                   advice_or.status().ToString().c_str());
      return 2;
    }
    const WorkloadAdvice& advice = advice_or.value();
    std::printf(
        "view advice (budget %zu) over %zu universes, %zu elements:\n",
        args.advise_views, advice.num_universes, advice.total_elements);
    for (size_t i = 0; i < advice.views.size(); ++i) {
      const auto& v = advice.views[i];
      std::printf("  view %zu: %zu edges {", i + 1, v.def.edges.size());
      for (size_t e = 0; e < v.def.edges.size(); ++e) {
        std::printf("%s%u", e == 0 ? "" : ",", v.def.edges[e]);
      }
      std::printf("} used by %zu queries, coverage gain %zu\n",
                  v.supporting_queries, v.coverage_gain);
    }
    std::printf("uncovered elements after selection: %zu\n",
                advice.uncovered_elements);
  }

  if (!args.metrics_out.empty()) {
    std::ofstream out(args.metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   args.metrics_out.c_str());
      return 2;
    }
    out << "{\"bench\":\"colgraph_replay\",\"threads\":" << args.threads
        << ",\"engine_metrics\":" << engine.DumpMetricsJson() << "}\n";
  }

  return report.cardinality_mismatches == 0 ? 0 : 1;
}
