// colgraph_trace: renders a colgraphd slow-query log
// (obs/slow_query_log.h) for humans. Each record is one captured request —
// over the latency threshold or picked by the 1-in-N sampler — with its
// full joined trace: server phases (queue_wait, admission, decode,
// evaluate, encode, write) and engine phases (resolve, rewrite,
// bitmap_and, fetch, aggregate), keyed by the wire-propagated request id.
//
// Usage:
//   colgraph_trace [--json] [--min-us=N] FILE
//   colgraph_trace --self-test=DIR
//
// --json emits one JSON object per line (machine consumption); the default
// rendering shows each record with a proportional phase bar. --min-us
// filters records below a total latency. --self-test writes a log through
// the production writer, reads it back, and checks the rendering — wired
// into ctest.
//
// Exit codes: 0 OK, 1 corrupt/unreadable log or self-test failure,
// 2 usage error.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "obs/json_writer.h"
#include "obs/slow_query_log.h"

namespace {

using colgraph::StatusOr;
using colgraph::obs::ReadSlowQueryLog;
using colgraph::obs::SlowQueryLog;
using colgraph::obs::SlowQueryLogOptions;
using colgraph::obs::SlowQueryRecord;
using colgraph::obs::SlowQuerySpan;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--min-us=N] FILE\n"
               "       %s --self-test=DIR\n",
               argv0, argv0);
  return 2;
}

std::string RecordToJson(const SlowQueryRecord& record) {
  colgraph::obs::JsonWriter w;
  w.BeginObject();
  w.Key("request_id");
  w.Uint(record.request_id);
  w.Key("snapshot_epoch");
  w.Uint(record.snapshot_epoch);
  w.Key("total_us");
  w.Uint(record.total_us);
  w.Key("wire_code");
  w.Uint(record.wire_code);
  w.Key("op");
  w.Uint(record.op);
  w.Key("sampled");
  w.Bool(record.sampled);
  w.Key("query");
  w.String(record.query);
  w.Key("spans");
  w.BeginArray();
  for (const SlowQuerySpan& span : record.spans) {
    w.BeginObject();
    w.Key("name");
    w.String(span.name);
    w.Key("start_us");
    w.Uint(span.start_us);
    w.Key("duration_us");
    w.Uint(span.duration_us);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void PrintRecord(const SlowQueryRecord& record) {
  std::printf("request %" PRIu64 "  epoch %" PRIu64 "  total %" PRIu64
              "us  code %u  op %u%s\n",
              record.request_id, record.snapshot_epoch, record.total_us,
              record.wire_code, record.op,
              record.sampled ? "  [sampled]" : "");
  if (!record.query.empty()) {
    // First line of the query only; ingest bodies can be huge.
    const size_t newline = record.query.find('\n');
    std::printf("  query: %s\n",
                record.query.substr(0, newline).c_str());
  }
  const uint64_t total = record.total_us > 0 ? record.total_us : 1;
  for (const SlowQuerySpan& span : record.spans) {
    // Proportional bar: 32 columns = the whole request.
    const uint64_t width = (span.duration_us * 32 + total - 1) / total;
    std::string bar(static_cast<size_t>(width > 32 ? 32 : width), '#');
    std::printf("  %-12s %8" PRIu64 "us  +%-8" PRIu64 " |%s\n",
                span.name.c_str(), span.duration_us, span.start_us,
                bar.c_str());
  }
}

int Render(const std::string& path, bool json, uint64_t min_us) {
  StatusOr<std::vector<SlowQueryRecord>> records = ReadSlowQueryLog(path);
  if (!records.ok()) {
    std::fprintf(stderr, "colgraph_trace: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  size_t shown = 0;
  for (const SlowQueryRecord& record : *records) {
    if (record.total_us < min_us) continue;
    ++shown;
    if (json) {
      std::printf("%s\n", RecordToJson(record).c_str());
    } else {
      if (shown > 1) std::printf("\n");
      PrintRecord(record);
    }
  }
  if (!json) {
    std::printf("%zu record(s), %zu shown\n", records->size(), shown);
  }
  return 0;
}

// --- Self-test (ctest `colgraph_trace_selftest`). ---

#define TRACE_CHECK(cond, what)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "self-test FAILED at %s:%d: %s\n", __FILE__,  \
                   __LINE__, what);                                      \
      return 1;                                                          \
    }                                                                    \
  } while (0)

int SelfTest(const std::string& dir) {
  (void)::mkdir(dir.c_str(), 0755);
  const std::string path = dir + "/selftest.sqlog";

  SlowQueryLogOptions options;
  options.path = path;
  options.threshold_us = 100;
  options.sample_every = 2;
  options.flush_bytes = 1;  // flush every record
  auto log_or = SlowQueryLog::Open(options);
  TRACE_CHECK(log_or.ok(), "SlowQueryLog::Open");
  SlowQueryLog& log = **log_or;

  SlowQueryRecord slow;
  slow.request_id = 0xABCDu;
  slow.snapshot_epoch = 3;
  slow.total_us = 2500;
  slow.op = 1;
  slow.query = "SUM [1,2]";
  slow.spans.push_back(SlowQuerySpan{"decode", 0, 40});
  slow.spans.push_back(SlowQuerySpan{"evaluate", 50, 2400});
  bool sampled = false;
  TRACE_CHECK(log.AdmitForCapture(slow.total_us, &sampled),
              "threshold admits the slow request");
  TRACE_CHECK(!sampled, "threshold capture is not a sample");
  log.Append(slow);
  TRACE_CHECK(log.AdmitForCapture(10, &sampled),
              "deterministic sampler admits every 2nd offer");
  TRACE_CHECK(sampled, "sampler capture is marked sampled");
  TRACE_CHECK(!log.AdmitForCapture(10, &sampled),
              "fast request off the sampler beat is skipped");
  SlowQueryRecord fast = slow;
  fast.request_id = 0x1111u;
  fast.total_us = 10;
  fast.sampled = true;
  log.Append(fast);
  TRACE_CHECK(log.Close().ok(), "Close");
  TRACE_CHECK(log.records_appended() == 2, "two records appended");

  StatusOr<std::vector<SlowQueryRecord>> read = ReadSlowQueryLog(path);
  TRACE_CHECK(read.ok(), "ReadSlowQueryLog");
  TRACE_CHECK(read->size() == 2, "both records read back");
  TRACE_CHECK((*read)[0].request_id == 0xABCDu, "request id round-trips");
  TRACE_CHECK((*read)[0].spans.size() == 2, "spans round-trip");
  TRACE_CHECK((*read)[0].spans[1].name == "evaluate", "span name");
  TRACE_CHECK((*read)[1].sampled, "sampled flag round-trips");

  const std::string json = RecordToJson((*read)[0]);
  TRACE_CHECK(json.find("\"request_id\":43981") != std::string::npos,
              "json rendering carries the request id");
  TRACE_CHECK(json.find("\"name\":\"evaluate\"") != std::string::npos,
              "json rendering carries the spans");

  TRACE_CHECK(Render(path, false, 0) == 0, "pretty rendering succeeds");
  TRACE_CHECK(Render(path, true, 100) == 0, "json rendering succeeds");

  std::fprintf(stderr, "self-test OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  uint64_t min_us = 0;
  std::string self_test_dir;
  std::string path;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    if (ParseFlag(argv[i], "--min-us=", &value)) {
      min_us = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(argv[i], "--self-test=", &self_test_dir)) continue;
    if (std::strncmp(argv[i], "--", 2) == 0) return Usage(argv[0]);
    if (!path.empty()) return Usage(argv[0]);
    path = argv[i];
  }
  if (!self_test_dir.empty()) return SelfTest(self_test_dir);
  if (path.empty()) return Usage(argv[0]);
  return Render(path, json, min_us);
}
