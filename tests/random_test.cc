#include "util/random.h"

#include <gtest/gtest.h>

#include <map>

namespace colgraph {
namespace {

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformRealStaysInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformReal(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfTest, SamplesInDomain) {
  ZipfSampler zipf(10, 1.0, 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(), 10u);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfSampler zipf(100, 1.2, 6);
  std::map<size_t, size_t> histogram;
  for (int i = 0; i < 20000; ++i) ++histogram[zipf.Sample()];
  // Rank 0 should dominate rank 50 decisively under theta=1.2.
  EXPECT_GT(histogram[0], histogram[50] * 5 + 1);
}

TEST(ZipfTest, ZeroThetaIsUniform) {
  ZipfSampler zipf(4, 0.0, 7);
  std::map<size_t, size_t> histogram;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++histogram[zipf.Sample()];
  for (const auto& [rank, count] : histogram) {
    (void)rank;
    EXPECT_NEAR(static_cast<double>(count), n / 4.0, n * 0.02);
  }
}

TEST(ZipfTest, SingletonDomain) {
  ZipfSampler zipf(1, 2.0, 8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(), 0u);
}

}  // namespace
}  // namespace colgraph
