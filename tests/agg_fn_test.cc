#include "query/agg_fn.h"

#include <gtest/gtest.h>

#include <vector>

namespace colgraph {
namespace {

TEST(AggFnTest, Names) {
  EXPECT_STREQ(AggFnName(AggFn::kSum), "SUM");
  EXPECT_STREQ(AggFnName(AggFn::kCount), "COUNT");
  EXPECT_STREQ(AggFnName(AggFn::kMin), "MIN");
  EXPECT_STREQ(AggFnName(AggFn::kMax), "MAX");
  EXPECT_STREQ(AggFnName(AggFn::kAvg), "AVG");
}

TEST(AggAccumulatorTest, SumOverValues) {
  AggAccumulator acc(AggFn::kSum);
  for (double v : {1.0, 2.0, 4.0}) acc.Add(v);
  EXPECT_EQ(acc.Result(), 7.0);
  EXPECT_EQ(acc.count(), 3u);
}

TEST(AggAccumulatorTest, CountIgnoresValues) {
  AggAccumulator acc(AggFn::kCount);
  for (double v : {10.0, -5.0}) acc.Add(v);
  EXPECT_EQ(acc.Result(), 2.0);
}

TEST(AggAccumulatorTest, MinMax) {
  AggAccumulator mn(AggFn::kMin), mx(AggFn::kMax);
  for (double v : {3.0, -1.0, 7.0}) {
    mn.Add(v);
    mx.Add(v);
  }
  EXPECT_EQ(mn.Result(), -1.0);
  EXPECT_EQ(mx.Result(), 7.0);
}

TEST(AggAccumulatorTest, AvgDividesByCount) {
  AggAccumulator acc(AggFn::kAvg);
  for (double v : {2.0, 4.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.Result(), 5.0);
}

TEST(AggAccumulatorTest, EmptyAvgIsZeroNotNan) {
  AggAccumulator acc(AggFn::kAvg);
  EXPECT_EQ(acc.Result(), 0.0);
}

// The distributivity property that makes aggregate graph views sound:
// folding segment pre-aggregates must equal folding the raw values.
class DistributivityTest : public ::testing::TestWithParam<AggFn> {};

TEST_P(DistributivityTest, SegmentMergeEqualsRawFold) {
  const AggFn fn = GetParam();
  const std::vector<double> values{4.0, -2.0, 7.5, 0.0, 3.25, 9.0};

  AggAccumulator raw(fn);
  for (double v : values) raw.Add(v);

  // Split into segments [0,3) and [3,6); precompute each segment with the
  // *stored* function (SUM sub-aggregate for AVG) then Merge.
  const AggFn stored = fn == AggFn::kAvg ? AggFn::kSum : fn;
  AggAccumulator seg1(stored), seg2(stored);
  for (size_t i = 0; i < 3; ++i) seg1.Add(values[i]);
  for (size_t i = 3; i < 6; ++i) seg2.Add(values[i]);

  AggAccumulator merged(fn);
  merged.Merge(seg1.Result(), 3);
  merged.Merge(seg2.Result(), 3);
  EXPECT_DOUBLE_EQ(merged.Result(), raw.Result());
}

TEST_P(DistributivityTest, MixedAtomsAndSegments) {
  const AggFn fn = GetParam();
  const std::vector<double> values{1.5, 2.5, -3.0, 8.0};

  AggAccumulator raw(fn);
  for (double v : values) raw.Add(v);

  const AggFn stored = fn == AggFn::kAvg ? AggFn::kSum : fn;
  AggAccumulator seg(stored);
  seg.Add(values[1]);
  seg.Add(values[2]);

  AggAccumulator mixed(fn);
  mixed.Add(values[0]);
  mixed.Merge(seg.Result(), 2);
  mixed.Add(values[3]);
  EXPECT_DOUBLE_EQ(mixed.Result(), raw.Result());
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, DistributivityTest,
                         ::testing::Values(AggFn::kSum, AggFn::kCount,
                                           AggFn::kMin, AggFn::kMax,
                                           AggFn::kAvg));

}  // namespace
}  // namespace colgraph
