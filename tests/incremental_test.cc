// Incremental ingest: BeginAppend / FinishAppend must grow the record set,
// keep old data intact, and refresh every materialized view so rewritten
// queries remain correct.
#include <gtest/gtest.h>

#include "core/engine.h"

namespace colgraph {
namespace {

NodeRef N(NodeId id, uint32_t occ = 0) { return NodeRef{id, occ}; }

TEST(IncrementalTest, AppendGrowsRecordSet) {
  ColGraphEngine engine;
  ASSERT_TRUE(engine.AddWalk({1, 2, 3}, {1, 2}).ok());
  ASSERT_TRUE(engine.Seal().ok());
  EXPECT_EQ(engine.num_records(), 1u);

  ASSERT_TRUE(engine.BeginAppend().ok());
  ASSERT_TRUE(engine.AddWalk({1, 2, 3}, {3, 4}).ok());
  ASSERT_TRUE(engine.AddWalk({2, 3, 4}, {5, 6}).ok());
  ASSERT_TRUE(engine.FinishAppend().ok());
  EXPECT_EQ(engine.num_records(), 3u);

  const Bitmap m = engine.Match(GraphQuery::FromPath({N(1), N(2), N(3)}));
  EXPECT_EQ(m.ToVector(), (std::vector<uint64_t>{0, 1}));
}

TEST(IncrementalTest, OldMeasuresSurviveAppend) {
  ColGraphEngine engine;
  ASSERT_TRUE(engine.AddWalk({1, 2}, {42.0}).ok());
  ASSERT_TRUE(engine.Seal().ok());
  ASSERT_TRUE(engine.BeginAppend().ok());
  ASSERT_TRUE(engine.AddWalk({1, 2}, {43.0}).ok());
  ASSERT_TRUE(engine.FinishAppend().ok());

  const EdgeId e = *engine.catalog().Lookup(Edge{N(1), N(2)});
  EXPECT_EQ(engine.relation().PeekMeasureColumn(e).Get(0), 42.0);
  EXPECT_EQ(engine.relation().PeekMeasureColumn(e).Get(1), 43.0);
}

TEST(IncrementalTest, NewEdgesExtendTheSchema) {
  ColGraphEngine engine;
  ASSERT_TRUE(engine.AddWalk({1, 2}, {1.0}).ok());
  ASSERT_TRUE(engine.Seal().ok());
  const size_t before = engine.relation().num_edge_columns();

  ASSERT_TRUE(engine.BeginAppend().ok());
  ASSERT_TRUE(engine.AddWalk({7, 8, 9}, {1.0, 2.0}).ok());
  ASSERT_TRUE(engine.FinishAppend().ok());
  EXPECT_GT(engine.relation().num_edge_columns(), before);

  const Bitmap m = engine.Match(GraphQuery::FromPath({N(7), N(8), N(9)}));
  EXPECT_EQ(m.ToVector(), (std::vector<uint64_t>{1}));
}

TEST(IncrementalTest, GraphViewsRefreshedAfterAppend) {
  ColGraphEngine engine;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.AddWalk({1, 2, 3, 4}, {1, 1, 1}).ok());
  }
  ASSERT_TRUE(engine.Seal().ok());

  const EdgeId e0 = *engine.catalog().Lookup(Edge{N(1), N(2)});
  const EdgeId e1 = *engine.catalog().Lookup(Edge{N(2), N(3)});
  const EdgeId e2 = *engine.catalog().Lookup(Edge{N(3), N(4)});
  ASSERT_TRUE(engine.MaterializeView(GraphViewDef::Make({e0, e1, e2})).ok());

  ASSERT_TRUE(engine.BeginAppend().ok());
  ASSERT_TRUE(engine.AddWalk({1, 2, 3, 4}, {2, 2, 2}).ok());
  ASSERT_TRUE(engine.FinishAppend().ok());

  // A view-rewritten match must see the appended record.
  const Bitmap m = engine.Match(GraphQuery::FromPath({N(1), N(2), N(3), N(4)}));
  EXPECT_EQ(m.Count(), 5u);
  EXPECT_TRUE(m.Test(4));
  // And it really uses the view (1 bitmap fetched).
  engine.stats().Reset();
  engine.Match(GraphQuery::FromPath({N(1), N(2), N(3), N(4)}));
  EXPECT_EQ(engine.stats().bitmap_columns_fetched, 1u);
}

TEST(IncrementalTest, AggViewsRefreshedAfterAppend) {
  ColGraphEngine engine;
  ASSERT_TRUE(engine.AddWalk({1, 2, 3}, {1, 2}).ok());
  ASSERT_TRUE(engine.Seal().ok());
  const EdgeId e0 = *engine.catalog().Lookup(Edge{N(1), N(2)});
  const EdgeId e1 = *engine.catalog().Lookup(Edge{N(2), N(3)});
  AggViewDef def;
  def.elements = {e0, e1};
  def.fn = AggFn::kSum;
  ASSERT_TRUE(engine.MaterializeView(def).ok());

  ASSERT_TRUE(engine.BeginAppend().ok());
  ASSERT_TRUE(engine.AddWalk({1, 2, 3}, {10, 20}).ok());
  ASSERT_TRUE(engine.FinishAppend().ok());

  auto result = engine.RunAggregateQuery(
      GraphQuery::FromPath({N(1), N(2), N(3)}), AggFn::kSum);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values[0], (std::vector<double>{3, 30}));
  // The fold used the (refreshed) aggregate view: one measure column.
  engine.stats().Reset();
  ASSERT_TRUE(engine
                  .RunAggregateQuery(GraphQuery::FromPath({N(1), N(2), N(3)}),
                                     AggFn::kSum)
                  .ok());
  EXPECT_EQ(engine.stats().measure_columns_fetched, 1u);
}

TEST(IncrementalTest, QueriesRejectedWhileAppending) {
  ColGraphEngine engine;
  ASSERT_TRUE(engine.AddWalk({1, 2}, {1.0}).ok());
  ASSERT_TRUE(engine.Seal().ok());
  ASSERT_TRUE(engine.BeginAppend().ok());
  // The relation is unsealed: seal-requiring operations must fail loudly.
  EXPECT_TRUE(engine.MaterializeView(GraphViewDef::Make({0}))
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(engine.FinishAppend().ok());
}

TEST(IncrementalTest, DoubleBeginAppendRejected) {
  ColGraphEngine engine;
  ASSERT_TRUE(engine.AddWalk({1, 2}, {1.0}).ok());
  ASSERT_TRUE(engine.Seal().ok());
  ASSERT_TRUE(engine.BeginAppend().ok());
  EXPECT_TRUE(engine.BeginAppend().IsInvalidArgument());
}

TEST(IncrementalTest, MultipleAppendRounds) {
  ColGraphEngine engine;
  ASSERT_TRUE(engine.AddWalk({1, 2}, {1.0}).ok());
  ASSERT_TRUE(engine.Seal().ok());
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(engine.BeginAppend().ok());
    ASSERT_TRUE(engine.AddWalk({1, 2}, {1.0}).ok());
    ASSERT_TRUE(engine.FinishAppend().ok());
  }
  EXPECT_EQ(engine.num_records(), 6u);
  EXPECT_EQ(engine.Match(GraphQuery::FromPath({N(1), N(2)})).Count(), 6u);
}

}  // namespace
}  // namespace colgraph
