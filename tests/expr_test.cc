#include "query/expr.h"

#include <gtest/gtest.h>

namespace colgraph {
namespace {

NodeRef N(NodeId id, uint32_t occ = 0) { return NodeRef{id, occ}; }

// Records over a small network:
//   r0: 1->2->3     r1: 2->3->4     r2: 1->2, 3->4     r3: 5->6
class QueryExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](std::vector<Edge> elements) {
      std::vector<std::pair<EdgeId, double>> shredded;
      for (const Edge& e : elements) {
        shredded.emplace_back(catalog_.GetOrAssign(e), 1.0);
      }
      ASSERT_TRUE(relation_.AddRecord(shredded).ok());
    };
    add({Edge{N(1), N(2)}, Edge{N(2), N(3)}});
    add({Edge{N(2), N(3)}, Edge{N(3), N(4)}});
    add({Edge{N(1), N(2)}, Edge{N(3), N(4)}});
    add({Edge{N(5), N(6)}});
    ASSERT_TRUE(relation_.Seal().ok());
  }

  QueryEngine Engine() const {
    return QueryEngine(&relation_, &catalog_, &views_);
  }

  static std::shared_ptr<QueryExpr> Q(std::vector<NodeRef> path) {
    return QueryExpr::Leaf(GraphQuery::FromPath(std::move(path)));
  }

  EdgeCatalog catalog_;
  MasterRelation relation_;
  ViewCatalog views_;
};

TEST_F(QueryExprTest, LeafMatchesLikeEngine) {
  const auto expr = Q({N(1), N(2)});
  EXPECT_EQ(expr->Evaluate(Engine()).ToVector(),
            (std::vector<uint64_t>{0, 2}));
  EXPECT_EQ(expr->NumLeaves(), 1u);
}

TEST_F(QueryExprTest, AndIntersects) {
  // [1->2] AND [3->4]: records containing both edges.
  const auto expr = QueryExpr::And(Q({N(1), N(2)}), Q({N(3), N(4)}));
  EXPECT_EQ(expr->Evaluate(Engine()).ToVector(), (std::vector<uint64_t>{2}));
  EXPECT_EQ(expr->NumLeaves(), 2u);
}

TEST_F(QueryExprTest, OrUnions) {
  const auto expr = QueryExpr::Or(Q({N(1), N(2)}), Q({N(3), N(4)}));
  EXPECT_EQ(expr->Evaluate(Engine()).ToVector(),
            (std::vector<uint64_t>{0, 1, 2}));
}

TEST_F(QueryExprTest, AndNotSubtracts) {
  // The paper's example shape: via region edges but NOT via hub F.
  const auto expr = QueryExpr::AndNot(Q({N(2), N(3)}), Q({N(3), N(4)}));
  EXPECT_EQ(expr->Evaluate(Engine()).ToVector(), (std::vector<uint64_t>{0}));
}

TEST_F(QueryExprTest, NestedExpression) {
  // (a OR b) AND NOT c.
  const auto expr = QueryExpr::AndNot(
      QueryExpr::Or(Q({N(1), N(2)}), Q({N(5), N(6)})), Q({N(2), N(3)}));
  EXPECT_EQ(expr->Evaluate(Engine()).ToVector(),
            (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(expr->NumLeaves(), 3u);
}

TEST_F(QueryExprTest, ShortCircuitOnEmptyLeft) {
  // AND with an unsatisfiable left side evaluates to empty without error.
  const auto expr = QueryExpr::And(Q({N(9), N(10)}), Q({N(1), N(2)}));
  EXPECT_TRUE(expr->Evaluate(Engine()).None());
}

TEST_F(QueryExprTest, DeMorganProperty) {
  // |a OR b| + |a AND b| == |a| + |b| (inclusion-exclusion check).
  QueryEngine engine = Engine();
  const auto a = Q({N(1), N(2)});
  const auto b = Q({N(2), N(3)});
  const size_t or_count =
      QueryExpr::Or(a, b)->Evaluate(engine).Count();
  const size_t and_count =
      QueryExpr::And(a, b)->Evaluate(engine).Count();
  EXPECT_EQ(or_count + and_count,
            a->Evaluate(engine).Count() + b->Evaluate(engine).Count());
}

}  // namespace
}  // namespace colgraph
