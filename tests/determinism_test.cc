// Determinism tests (ctest label: concurrency): every batch API must
// produce byte-identical results for 1, 2 and 8 worker threads and for an
// injected serial-mode (0-worker) pool. Workloads are seed-driven through
// workload/query_generator.h so every engine sees identical inputs; doubles
// are compared bitwise (operator== would wave NaNs through and conflate
// 0.0 with -0.0).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "util/thread_pool.h"
#include "views/materializer.h"
#include "workload/base_graphs.h"
#include "workload/query_generator.h"
#include "workload/record_generator.h"

namespace colgraph {
namespace {

bool BitEqual(double a, double b) {
  uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

::testing::AssertionResult ColumnsBitIdentical(
    const std::vector<std::vector<double>>& a,
    const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "column count " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      return ::testing::AssertionFailure()
             << "column " << i << " size " << a[i].size() << " vs "
             << b[i].size();
    }
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!BitEqual(a[i][j], b[i][j])) {
        return ::testing::AssertionFailure()
               << "column " << i << " row " << j << ": " << a[i][j] << " vs "
               << b[i][j] << " differ bitwise";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct Workbench {
  DirectedGraph universe;
  std::vector<GraphRecord> records;
  std::vector<GraphQuery> workload;
};

Workbench MakeWorkbench(uint64_t seed) {
  Workbench wb;
  const DirectedGraph base = MakePowerLawNetwork(400, 3, seed);
  auto universe = SelectEdgeUniverse(base, 120, seed + 1);
  COLGRAPH_CHECK_OK(universe.status());
  wb.universe = std::move(universe).value();

  RecordGenOptions rec_options;
  rec_options.min_edges = 6;
  rec_options.max_edges = 18;
  WalkRecordGenerator generator(&wb.universe, rec_options, seed + 2);
  std::vector<std::vector<NodeRef>> trunks;
  for (size_t i = 0; i < 150; ++i) {
    std::vector<NodeRef> trunk;
    wb.records.push_back(generator.Next(&trunk));
    trunks.push_back(std::move(trunk));
  }

  QueryGenerator qgen(&trunks, &wb.universe, seed + 3);
  QueryGenOptions q_options;
  q_options.min_edges = 3;
  q_options.max_edges = 7;
  wb.workload = qgen.UniformWorkload(30, q_options);
  return wb;
}

ColGraphEngine BuildEngine(const Workbench& wb, size_t num_threads) {
  EngineOptions options;
  options.num_threads = num_threads;
  ColGraphEngine engine(options);
  for (const GraphRecord& r : wb.records) {
    COLGRAPH_CHECK_OK(engine.AddRecord(r));
  }
  COLGRAPH_CHECK_OK(engine.Seal());
  return engine;
}

constexpr size_t kThreadCounts[] = {1, 2, 8};

// Workbench whose per-edge record counts straddle the hybrid density
// threshold (count * 256 <= records): small records over a wide power-law
// universe put the long tail of edges under the threshold while the
// popular head stays word-parallel, so AND plans mix both encodings.
Workbench MakeSparseWorkbench(uint64_t seed) {
  Workbench wb;
  const DirectedGraph base = MakePowerLawNetwork(500, 3, seed);
  auto universe = SelectEdgeUniverse(base, 800, seed + 1);
  COLGRAPH_CHECK_OK(universe.status());
  wb.universe = std::move(universe).value();

  RecordGenOptions rec_options;
  rec_options.min_edges = 2;
  rec_options.max_edges = 5;
  WalkRecordGenerator generator(&wb.universe, rec_options, seed + 2);
  std::vector<std::vector<NodeRef>> trunks;
  for (size_t i = 0; i < 1200; ++i) {
    std::vector<NodeRef> trunk;
    wb.records.push_back(generator.Next(&trunk));
    trunks.push_back(std::move(trunk));
  }

  QueryGenerator qgen(&trunks, &wb.universe, seed + 3);
  QueryGenOptions q_options;
  q_options.min_edges = 2;
  q_options.max_edges = 4;
  wb.workload = qgen.UniformWorkload(40, q_options);
  return wb;
}

ColGraphEngine BuildEngineWithEncoding(const Workbench& wb,
                                       bool hybrid_bitmaps) {
  EngineOptions options;
  options.num_threads = 1;
  options.relation.hybrid_bitmaps = hybrid_bitmaps;
  ColGraphEngine engine(options);
  for (const GraphRecord& r : wb.records) {
    COLGRAPH_CHECK_OK(engine.AddRecord(r));
  }
  COLGRAPH_CHECK_OK(engine.Seal());
  return engine;
}

size_t CountHybridColumns(const MasterRelation& relation) {
  size_t n = 0;
  for (EdgeId e = 0; e < relation.num_edge_columns(); ++e) {
    if (relation.PeekEdgeBitmapHybrid(e) != nullptr) ++n;
  }
  return n;
}

// ISSUE 8 satellite: a fig6-style query mix (materialized graph views +
// uniform workload) evaluated by an EWAH-only engine and a hybrid-enabled
// engine must produce byte-identical responses. The hybrid AND loop is a
// pure encoding change; any drift in records or measure bytes is a bug.
TEST(DeterminismTest, HybridAndEwahEnginesAreByteIdentical) {
  const Workbench wb = MakeSparseWorkbench(500);
  ColGraphEngine ewah_engine = BuildEngineWithEncoding(wb, false);
  ColGraphEngine hybrid_engine = BuildEngineWithEncoding(wb, true);

  // The comparison is only meaningful if the engines actually diverge in
  // encoding: the workbench's long-tail columns must sit under the
  // threshold (and its head above it, so plans mix both encodings).
  ASSERT_EQ(CountHybridColumns(ewah_engine.relation()), 0u);
  const size_t hybrid_columns = CountHybridColumns(hybrid_engine.relation());
  ASSERT_GT(hybrid_columns, hybrid_engine.relation().num_edge_columns() / 4);
  ASSERT_LT(hybrid_columns, hybrid_engine.relation().num_edge_columns());

  // Fig6 shape: materialize graph views on both engines, then evaluate the
  // workload with views enabled — the AND plans mix view and edge bitmaps.
  auto ewah_views = ewah_engine.SelectAndMaterializeGraphViews(wb.workload, 8);
  ASSERT_TRUE(ewah_views.ok()) << ewah_views.status().ToString();
  auto hybrid_views =
      hybrid_engine.SelectAndMaterializeGraphViews(wb.workload, 8);
  ASSERT_TRUE(hybrid_views.ok()) << hybrid_views.status().ToString();
  ASSERT_EQ(*hybrid_views, *ewah_views);

  auto expected = ewah_engine.EvaluateBatch(wb.workload);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto got = hybrid_engine.EvaluateBatch(wb.workload);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*got)[i].records, (*expected)[i].records) << "query " << i;
    EXPECT_EQ((*got)[i].edges, (*expected)[i].edges) << "query " << i;
    EXPECT_TRUE(
        ColumnsBitIdentical((*got)[i].columns, (*expected)[i].columns))
        << "query " << i;
  }

  // Aggregate path too (agg-view bp bitmaps flow through the same loop).
  auto agg_expected = ewah_engine.EvaluatePathAggBatch(wb.workload, AggFn::kSum);
  ASSERT_TRUE(agg_expected.ok()) << agg_expected.status().ToString();
  auto agg_got = hybrid_engine.EvaluatePathAggBatch(wb.workload, AggFn::kSum);
  ASSERT_TRUE(agg_got.ok()) << agg_got.status().ToString();
  ASSERT_EQ(agg_got->size(), agg_expected->size());
  for (size_t i = 0; i < agg_expected->size(); ++i) {
    EXPECT_EQ((*agg_got)[i].records, (*agg_expected)[i].records)
        << "query " << i;
    EXPECT_TRUE(ColumnsBitIdentical((*agg_got)[i].values,
                                    (*agg_expected)[i].values))
        << "query " << i;
  }
}

TEST(DeterminismTest, EvaluateBatchIsByteIdenticalAcrossThreadCounts) {
  const Workbench wb = MakeWorkbench(100);
  const ColGraphEngine reference = BuildEngine(wb, 1);
  auto expected = reference.EvaluateBatch(wb.workload);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_EQ(expected->size(), wb.workload.size());

  for (const size_t threads : kThreadCounts) {
    const ColGraphEngine engine = BuildEngine(wb, threads);
    auto batch = engine.EvaluateBatch(wb.workload);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*batch)[i].records, (*expected)[i].records)
          << "threads=" << threads << " query " << i;
      EXPECT_EQ((*batch)[i].edges, (*expected)[i].edges)
          << "threads=" << threads << " query " << i;
      EXPECT_TRUE(ColumnsBitIdentical((*batch)[i].columns,
                                      (*expected)[i].columns))
          << "threads=" << threads << " query " << i;
    }
  }

  // Injected serial-mode pool: same parallel code path, 0 workers.
  ThreadPool serial_pool(0);
  auto serial = reference.query_engine().EvaluateBatch(wb.workload, {},
                                                       &serial_pool);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*serial)[i].records, (*expected)[i].records) << "query " << i;
    EXPECT_TRUE(
        ColumnsBitIdentical((*serial)[i].columns, (*expected)[i].columns))
        << "query " << i;
  }
}

TEST(DeterminismTest, EvaluatePathAggBatchIsByteIdenticalAcrossThreadCounts) {
  const Workbench wb = MakeWorkbench(200);
  const ColGraphEngine reference = BuildEngine(wb, 1);
  auto expected = reference.EvaluatePathAggBatch(wb.workload, AggFn::kSum);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (const size_t threads : kThreadCounts) {
    const ColGraphEngine engine = BuildEngine(wb, threads);
    auto batch = engine.EvaluatePathAggBatch(wb.workload, AggFn::kSum);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*batch)[i].records, (*expected)[i].records)
          << "threads=" << threads << " query " << i;
      ASSERT_EQ((*batch)[i].paths.size(), (*expected)[i].paths.size());
      for (size_t p = 0; p < (*expected)[i].paths.size(); ++p) {
        EXPECT_EQ((*batch)[i].paths[p].nodes(), (*expected)[i].paths[p].nodes());
      }
      EXPECT_TRUE(
          ColumnsBitIdentical((*batch)[i].values, (*expected)[i].values))
          << "threads=" << threads << " query " << i;
    }
  }

  ThreadPool serial_pool(0);
  auto serial = reference.query_engine().EvaluatePathAggBatch(
      wb.workload, AggFn::kSum, {}, &serial_pool);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_TRUE(ColumnsBitIdentical((*serial)[i].values, (*expected)[i].values))
        << "query " << i;
  }
}

TEST(DeterminismTest, MaterializedViewBitmapsAreIdenticalAcrossThreadCounts) {
  const Workbench wb = MakeWorkbench(300);

  // Reference: full view-selection pipeline on a single-threaded engine.
  ColGraphEngine reference = BuildEngine(wb, 1);
  auto ref_count = reference.SelectAndMaterializeGraphViews(wb.workload, 16);
  ASSERT_TRUE(ref_count.ok()) << ref_count.status().ToString();
  ASSERT_GT(*ref_count, 0u);

  for (const size_t threads : kThreadCounts) {
    ColGraphEngine engine = BuildEngine(wb, threads);
    auto count = engine.SelectAndMaterializeGraphViews(wb.workload, 16);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    // Same candidate generation, same greedy order, same views.
    ASSERT_EQ(*count, *ref_count) << "threads=" << threads;
    ASSERT_EQ(engine.relation().num_graph_views(),
              reference.relation().num_graph_views());
    const auto& ref_views = reference.views().graph_views();
    const auto& got_views = engine.views().graph_views();
    ASSERT_EQ(got_views.size(), ref_views.size());
    for (size_t v = 0; v < ref_views.size(); ++v) {
      EXPECT_EQ(got_views[v].first.edges, ref_views[v].first.edges)
          << "threads=" << threads << " view " << v;
      EXPECT_EQ(got_views[v].second, ref_views[v].second);
      EXPECT_TRUE(engine.relation().FetchGraphView(got_views[v].second) ==
                  reference.relation().FetchGraphView(ref_views[v].second))
          << "threads=" << threads << " view " << v << ": bitmaps differ";
    }
  }
}

TEST(DeterminismTest, MaterializedAggViewsAreByteIdenticalAcrossThreadCounts) {
  const Workbench wb = MakeWorkbench(400);
  ColGraphEngine reference = BuildEngine(wb, 1);
  auto ref_count =
      reference.SelectAndMaterializeAggViews(wb.workload, AggFn::kSum, 16);
  ASSERT_TRUE(ref_count.ok()) << ref_count.status().ToString();
  ASSERT_GT(*ref_count, 0u);

  for (const size_t threads : kThreadCounts) {
    ColGraphEngine engine = BuildEngine(wb, threads);
    auto count =
        engine.SelectAndMaterializeAggViews(wb.workload, AggFn::kSum, 16);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    ASSERT_EQ(*count, *ref_count) << "threads=" << threads;
    ASSERT_EQ(engine.relation().num_aggregate_views(),
              reference.relation().num_aggregate_views());
    for (size_t v = 0; v < reference.relation().num_aggregate_views(); ++v) {
      const MeasureColumn& ref_col = reference.relation().FetchAggregateView(v);
      const MeasureColumn& got_col = engine.relation().FetchAggregateView(v);
      ASSERT_EQ(got_col.num_values(), ref_col.num_values())
          << "threads=" << threads << " view " << v;
      EXPECT_TRUE(got_col.presence().bits() == ref_col.presence().bits())
          << "threads=" << threads << " view " << v;
      for (size_t r = 0; r < ref_col.num_values(); ++r) {
        EXPECT_TRUE(BitEqual(got_col.ValueAtRank(r), ref_col.ValueAtRank(r)))
            << "threads=" << threads << " view " << v << " rank " << r;
      }
    }
  }
}

}  // namespace
}  // namespace colgraph
